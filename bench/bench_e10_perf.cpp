// E10 — timing microbenchmarks (google-benchmark): construction and query
// costs of every core primitive vs mesh size.
#include <benchmark/benchmark.h>

#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/model.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "proto/stack2d.h"

namespace {

using namespace mcc;

mesh::FaultSet2D make_faults2(const mesh::Mesh2D& m, double rate,
                              uint64_t seed) {
  util::Rng rng(seed);
  return mesh::inject_uniform(m, rate, rng);
}

void BM_Labeling2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.10, 42);
  for (auto _ : state) {
    core::LabelField2D labels(m, f);
    benchmark::DoNotOptimize(labels.healthy_unsafe_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m.node_count()));
}
BENCHMARK(BM_Labeling2D)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Labeling3D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh3D m(k, k, k);
  util::Rng rng(43);
  const auto f = mesh::inject_uniform(m, 0.10, rng);
  for (auto _ : state) {
    core::LabelField3D labels(m, f);
    benchmark::DoNotOptimize(labels.healthy_unsafe_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m.node_count()));
}
BENCHMARK(BM_Labeling3D)->Arg(8)->Arg(16)->Arg(24);

void BM_RegionExtraction2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.10, 44);
  const core::LabelField2D labels(m, f);
  for (auto _ : state) {
    core::MccSet2D mccs(m, labels);
    benchmark::DoNotOptimize(mccs.regions().size());
  }
}
BENCHMARK(BM_RegionExtraction2D)->Arg(32)->Arg(64)->Arg(128);

void BM_BoundaryConstruction2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.10, 45);
  const core::LabelField2D labels(m, f);
  const core::MccSet2D mccs(m, labels);
  for (auto _ : state) {
    core::Boundary2D b(m, labels, mccs);
    benchmark::DoNotOptimize(b.record_count());
  }
}
BENCHMARK(BM_BoundaryConstruction2D)->Arg(32)->Arg(64)->Arg(128);

void BM_ReachField2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.10, 46);
  const core::LabelField2D labels(m, f);
  for (auto _ : state) {
    core::ReachField2D field(m, labels, {k - 1, k - 1},
                             core::NodeFilter::SafeOnly);
    benchmark::DoNotOptimize(field.feasible({0, 0}));
  }
}
BENCHMARK(BM_ReachField2D)->Arg(32)->Arg(64)->Arg(128);

void BM_Detect2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.10, 47);
  const core::LabelField2D labels(m, f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::detect2d(m, labels, {0, 0}, {k - 1, k - 1}).feasible());
  }
}
BENCHMARK(BM_Detect2D)->Arg(32)->Arg(64)->Arg(128);

void BM_Detect3D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh3D m(k, k, k);
  util::Rng rng(48);
  const auto f = mesh::inject_uniform(m, 0.08, rng);
  const core::LabelField3D labels(m, f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::detect3d(m, labels, {0, 0, 0}, {k - 1, k - 1, k - 1})
            .feasible());
  }
}
BENCHMARK(BM_Detect3D)->Arg(8)->Arg(16)->Arg(24);

void BM_RouteRecords2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.08, 49);
  const core::MccModel2D model(m, f);
  // Warm the octant cache outside the loop.
  benchmark::DoNotOptimize(model.feasible({0, 0}, {k - 1, k - 1}).feasible);
  uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = model.route({0, 0}, {k - 1, k - 1},
                               core::RouterKind::Records,
                               core::RoutePolicy::Random, ++seed);
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_RouteRecords2D)->Arg(32)->Arg(64);

void BM_DistributedStack2D(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const mesh::Mesh2D m(k, k);
  const auto f = make_faults2(m, 0.08, 50);
  for (auto _ : state) {
    proto::Stack2D stack(m, f);
    benchmark::DoNotOptimize(stack.total_messages());
  }
}
BENCHMARK(BM_DistributedStack2D)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
