// E11 — flit-level wormhole evaluation: latency-throughput curves for the
// MCC-guided adaptive minimal router under sustained traffic, with and
// without injected fault regions.
//
// Thin front over the experiment API: the scenario (mesh, fault
// environments, traffic patterns, load points, seeds — and its CI smoke
// shape via smoke.* pins) lives in configs/e11_wormhole.cfg; this main
// adds only the BENCH_*.json emission. Output is byte-identical with the
// pre-redesign bench (tests/test_api_differential.cc pins it).
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e11_wormhole.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e11_wormhole.json", "e11_wormhole",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
