// E11 — flit-level wormhole evaluation: latency-throughput curves for the
// MCC-guided adaptive minimal router under sustained traffic, with and
// without injected fault regions.
//
// Thin front over the experiment API: the scenario (mesh, fault
// environments, traffic patterns, load points, seeds — and its CI smoke
// shape via smoke.* pins) lives in configs/e11_wormhole.cfg; this main
// adds only the BENCH_*.json emission. Output is byte-identical with the
// pre-redesign bench (tests/test_api_differential.cc pins it).
//
// A second run times the router-parallel tick: the same 32x32 2-D load
// point at threads=1 and threads=4. The result tables must be identical
// (the two-phase barrier makes threads a pure wall-clock knob; the
// bench_trend gate compares every count column), while the *_ms/
// *_speedup metrics are wall-clock and therefore informational-only:
// the speedup tracks the machine's core count (~94% of a cycle is in
// the parallel phases — see docs/wormhole.md — so 4 real cores land
// >=2x, while a single-core CI container pins it near 1.0x). The
// hardware lanes line on stdout says which regime a log came from.
#include <chrono>
#include <iostream>
#include <thread>

#include "api/experiment.h"

namespace {

double timed_run_ms(mcc::api::Configuration cfg, mcc::api::RunReport* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = mcc::api::Experiment(std::move(cfg)).run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

mcc::api::Configuration mesh32(int threads) {
  mcc::api::Configuration cfg;
  cfg.set("driver", "wormhole_load");
  cfg.set("name", "E11 parallel tick 32x32");
  cfg.set("dims", "2");
  cfg.set("k", "32");
  cfg.set("policy", "model");
  cfg.set("traffic", "uniform");
  cfg.set("rates", "0.02");
  cfg.set("warmup", "200");
  cfg.set("measure", "1000");
  cfg.set("drain", "20000");
  cfg.set("seed", "0xE1132");
  cfg.set("threads", std::to_string(threads));
  return cfg;
}

}  // namespace

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e11_wormhole.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);

  // Router-parallel tick: serial reference vs 4 lanes on 1024 routers.
  api::RunReport serial("warm", "wormhole_load", 1), parallel = serial;
  timed_run_ms(mesh32(1), &serial);  // warm caches/allocator once
  const double t1_ms = timed_run_ms(mesh32(1), &serial);
  const double t4_ms = timed_run_ms(mesh32(4), &parallel);
  parallel.metric("tick t1 ms", t1_ms);
  parallel.metric("tick t4 ms", t4_ms);
  parallel.metric("tick speedup", t4_ms > 0 ? t1_ms / t4_ms : 0.0);
  parallel.render(std::cout);
  std::cout << "hardware lanes: " << std::thread::hardware_concurrency()
            << " (speedup is wall-clock; expect ~1.0x on one core)\n";

  api::RunReport::write_bench_json("BENCH_e11_wormhole.json", "e11_wormhole",
                                   {&report, &serial, &parallel});
  return (report.failed() || serial.failed() || parallel.failed()) ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
