// E11 — flit-level wormhole evaluation: latency-throughput curves for the
// MCC-guided adaptive minimal router under sustained traffic, with and
// without injected fault regions. This extends the paper's E7-E9 evaluation
// (path existence, construction cost, path quality) with the dimension a
// production interconnect is actually judged by: saturation behavior under
// load, congestion around fault regions, and deadlock-free drainage.
// Deterministic given the seed constants below; rerunning reproduces the
// tables bit for bit.
#include <iostream>
#include <string>

#include "bench/common.h"
#include "mesh/fault_injection.h"
#include "sim/wormhole/driver.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  using sim::wh::Config;
  using sim::wh::GuidanceMode;
  using sim::wh::LoadPoint;
  using sim::wh::Pattern;
  using sim::wh::SimResult;

  const bool smoke = bench::smoke();
  const int k = smoke ? 5 : 8;
  const mesh::Mesh3D m(k, k, k);

  const std::vector<double> rates =
      smoke ? std::vector<double>{0.01}
            : std::vector<double>{0.002, 0.005, 0.01, 0.02, 0.035, 0.05};
  const Pattern patterns[] = {Pattern::Uniform, Pattern::Transpose,
                              Pattern::BitComplement, Pattern::Hotspot};

  Config cfg;
  cfg.vcs_per_class = 2;
  cfg.buffer_depth = 4;
  cfg.packet_size = 4;
  LoadPoint base;
  base.warmup = smoke ? 100 : 500;
  base.measure = smoke ? 300 : 2000;
  base.drain = smoke ? 10000 : 30000;

  std::cout << "# E11: wormhole latency-throughput (" << k << "x" << k << "x"
            << k << " mesh, " << cfg.packet_size << "-flit packets, "
            << cfg.vcs_per_class << " VCs/class, depth " << cfg.buffer_depth
            << ")\n";

  for (const bool faulty : {false, true}) {
    mesh::FaultSet3D f(m);
    if (faulty) {
      util::Rng frng(0xE11);
      f = mesh::inject_clustered(m, smoke ? 8 : 30, 3, frng);
    }
    sim::wh::MccRouting3D routing(m, f, GuidanceMode::Model);

    std::cout << "\n## " << (faulty ? "clustered MCC fault regions ("
                                    : "fault-free (")
              << f.count() << " dead nodes)\n\n";
    util::Table t({"pattern", "offered (f/n/c)", "accepted (f/n/c)",
                   "avg lat", "p99 lat", "max lat", "packets", "filtered",
                   "state"});
    for (const Pattern p : patterns) {
      for (const double rate : rates) {
        LoadPoint load = base;
        load.rate = rate;
        const SimResult r = sim::wh::run_load_point3d(
            m, f, routing, p, cfg, core::RoutePolicy::Random, load,
            0xE1100 + static_cast<uint64_t>(rate * 10000));
        t.add_row({to_string(p), util::Table::fmt(r.offered_flits, 4),
                   util::Table::fmt(r.accepted_flits, 4),
                   util::Table::fmt(r.avg_latency, 1),
                   std::to_string(r.p99_latency),
                   std::to_string(r.max_latency),
                   std::to_string(r.delivered_packets),
                   std::to_string(r.filtered),
                   std::string(r.violations   ? "VIOLATION"
                               : r.deadlocked ? "DEADLOCK"
                               : !r.drained   ? "backlogged"
                               : r.saturated  ? "saturated"
                                              : "stable")});
        if (r.violations != 0 || r.deadlocked) return 1;  // must never happen
      }
    }
    t.render(std::cout);
  }

  std::cout << "\nExpected shape: latency flat near zero-load, rising toward "
               "the saturation knee; fault regions\nlower the knee (fewer "
               "links, detours concentrate load around MCC boundaries) and "
               "raise p99 first.\nEvery load point drains completely after "
               "injection stops — the VC-class scheme keeps the\nadaptive "
               "router deadlock-free even past saturation.\n";
  return 0;
}
