// E12 — dynamic-fault runtime: cost of absorbing a fault/repair event.
//
// Part A sweeps churn over 2-D and 3-D meshes (up to 16^3) at several
// initial fault rates and measures, per event, the incremental update
// (DynamicModel: cascade relabel + region merge/split + wall rebuilds +
// record deltas) against a full rebuild (fresh MccModel with every octant
// forced), plus the proto-layer record-delta payload a distributed
// deployment would broadcast (2-D). Part B runs the wormhole simulator
// under live churn with the epoch-versioned GuidanceCache serving every
// per-hop decision and reports delivery/drop behavior and cache hit rates.
// Deterministic given the seed constants; rerunning reproduces the tables
// bit for bit (timings vary, counts do not).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mesh/fault_injection.h"
#include "proto/boundary_delta.h"
#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/dynamic_routing.h"
#include "util/table.h"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace mcc;
  const bool smoke = bench::smoke();

  std::cout << "# E12: dynamic-fault runtime — incremental MCC maintenance "
               "vs full rebuild, epoch-versioned guidance cache\n";

  // -------------------------------------------------------------------------
  // Part A1: 2-D incremental vs rebuild (+ record-delta payload)
  {
    std::cout << "\n## A1: per-event cost, 2-D (all 4 quadrant models "
                 "maintained; rebuild = fresh MccModel2D, all octants "
                 "forced)\n\n";
    util::Table t({"mesh", "rate", "events", "fallback ev", "relabel/ev",
                   "regions/ev", "walls/ev", "delta ints/ev", "incr ms/ev",
                   "rebuild ms/ev", "speedup"});
    const std::vector<int> sizes = smoke ? std::vector<int>{12}
                                         : std::vector<int>{16, 32, 48};
    for (const int k : sizes) {
      for (const double rate : {0.02, 0.06}) {
        const mesh::Mesh2D mesh(k, k);
        util::Rng rng(0xE1201 + static_cast<uint64_t>(k * 977 + rate * 1000));
        const mesh::FaultSet2D initial = mesh::inject_uniform(mesh, rate, rng);
        runtime::DynamicModel2D dyn(mesh, initial);

        util::ChurnParams p;
        p.rate = 0.05;
        p.horizon = smoke ? 200 : 1200;
        p.repair_min = 20;
        p.repair_max = 200;
        auto timeline = runtime::FaultTimeline2D::sample(mesh, initial, rng, p);

        size_t events = 0, ambiguous = 0, relabeled = 0, regions = 0,
               walls = 0, delta = 0;
        double incr_ms = 0, rebuild_ms = 0;
        const mesh::Octant2 canon{false, false};
        for (const auto& e : timeline.events()) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto rep = e.repair ? dyn.repair(e.node) : dyn.fail(e.node);
          incr_ms += ms_since(t0);
          if (rep.epoch == 0) continue;
          ++events;
          // Events absorbed via the full-relabel fallback (doubly-blocked
          // ambiguous regime, labeling.h) — zero at the paper's operating
          // fault rates.
          if (rep.any_label_fallback()) ++ambiguous;
          relabeled += rep.relabeled_total();
          for (const auto& od : rep.octants)
            regions += od.regions.removed.size() + od.regions.added.size();
          walls += rep.walls_rebuilt();
          delta += proto::make_boundary_delta(dyn.octant(canon).boundary,
                                              rep.octants[canon.id()].boundary)
                       .payload_ints();

          const auto t1 = std::chrono::steady_clock::now();
          const core::MccModel2D fresh(mesh, dyn.faults());
          for (const bool fx : {false, true})
            for (const bool fy : {false, true})
              (void)fresh.octant(mesh::Octant2{fx, fy});
          rebuild_ms += ms_since(t1);
        }
        if (events == 0) continue;
        const double n = static_cast<double>(events);
        t.add_row({std::to_string(k) + "x" + std::to_string(k),
                   util::Table::pct(rate), std::to_string(events),
                   std::to_string(ambiguous),
                   util::Table::fmt(static_cast<double>(relabeled) / n, 2),
                   util::Table::fmt(static_cast<double>(regions) / n, 2),
                   util::Table::fmt(static_cast<double>(walls) / n, 2),
                   util::Table::fmt(static_cast<double>(delta) / n, 1),
                   util::Table::fmt(incr_ms / n, 4),
                   util::Table::fmt(rebuild_ms / n, 4),
                   util::Table::fmt(rebuild_ms / std::max(incr_ms, 1e-9), 1) +
                       "x"});
      }
    }
    t.render(std::cout);
  }

  // -------------------------------------------------------------------------
  // Part A2: 3-D incremental vs rebuild up to 16^3
  {
    std::cout << "\n## A2: per-event cost, 3-D (all 8 octant models "
                 "maintained; rebuild = fresh MccModel3D, all octants "
                 "forced)\n\n";
    util::Table t({"mesh", "rate", "events", "fallback ev", "relabel/ev",
                   "regions/ev", "incr ms/ev", "rebuild ms/ev", "speedup"});
    const std::vector<int> sizes =
        smoke ? std::vector<int>{6} : std::vector<int>{8, 12, 16};
    for (const int k : sizes) {
      for (const double rate : {0.02, 0.05}) {
        const mesh::Mesh3D mesh(k, k, k);
        util::Rng rng(0xE1202 + static_cast<uint64_t>(k * 977 + rate * 1000));
        const mesh::FaultSet3D initial = mesh::inject_uniform(mesh, rate, rng);
        runtime::DynamicModel3D dyn(mesh, initial);

        util::ChurnParams p;
        p.rate = 0.05;
        p.horizon = smoke ? 200 : 1000;
        p.repair_min = 20;
        p.repair_max = 200;
        auto timeline = runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

        size_t events = 0, ambiguous = 0, relabeled = 0, regions = 0;
        double incr_ms = 0, rebuild_ms = 0;
        for (const auto& e : timeline.events()) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto rep = e.repair ? dyn.repair(e.node) : dyn.fail(e.node);
          incr_ms += ms_since(t0);
          if (rep.epoch == 0) continue;
          ++events;
          if (rep.any_label_fallback()) ++ambiguous;
          relabeled += rep.relabeled_total();
          for (const auto& od : rep.octants)
            regions += od.regions.removed.size() + od.regions.added.size();

          const auto t1 = std::chrono::steady_clock::now();
          const core::MccModel3D fresh(mesh, dyn.faults());
          for (int id = 0; id < 8; ++id)
            (void)fresh.octant(
                mesh::Octant3{(id & 1) != 0, (id & 2) != 0, (id & 4) != 0});
          rebuild_ms += ms_since(t1);
        }
        if (events == 0) continue;
        const double n = static_cast<double>(events);
        t.add_row({std::to_string(k) + "^3", util::Table::pct(rate),
                   std::to_string(events), std::to_string(ambiguous),
                   util::Table::fmt(static_cast<double>(relabeled) / n, 2),
                   util::Table::fmt(static_cast<double>(regions) / n, 2),
                   util::Table::fmt(incr_ms / n, 4),
                   util::Table::fmt(rebuild_ms / n, 4),
                   util::Table::fmt(rebuild_ms / std::max(incr_ms, 1e-9), 1) +
                       "x"});
      }
    }
    t.render(std::cout);
  }

  // -------------------------------------------------------------------------
  // Part B: wormhole under churn, guidance served by the epoch cache
  {
    std::cout << "\n## B: wormhole churn runs (uniform traffic, "
                 "DynamicMccRouting3D over the epoch-versioned cache)\n\n";
    util::Table t({"mesh", "churn/kcyc", "events (f+r)", "delivered",
                   "dropped", "accepted (f/n/c)", "avg lat", "cache hit%",
                   "state"});
    sim::wh::Config cfg;
    sim::wh::LoadPoint load;
    load.rate = 0.01;
    load.warmup = smoke ? 100 : 500;
    load.measure = smoke ? 300 : 2000;
    load.drain = smoke ? 10000 : 30000;

    const std::vector<int> sizes =
        smoke ? std::vector<int>{5} : std::vector<int>{8, 12, 16};
    for (const int k : sizes) {
      for (const double churn : {2.0, 10.0}) {  // events per 1000 cycles
        const mesh::Mesh3D mesh(k, k, k);
        util::Rng rng(0xE1203 + static_cast<uint64_t>(k * 31 + churn));
        const mesh::FaultSet3D initial =
            mesh::inject_uniform(mesh, 0.02, rng);
        runtime::DynamicModel3D model(mesh, initial);
        sim::wh::DynamicMccRouting3D routing(model);

        util::ChurnParams p;
        p.rate = churn / 1000.0;
        p.horizon =
            static_cast<uint64_t>(load.warmup + load.measure + load.drain / 4);
        p.repair_min = 100;
        p.repair_max = 1000;
        auto timeline =
            runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

        const auto r = sim::wh::run_churn_load_point3d(
            model, routing, sim::wh::Pattern::Uniform, cfg,
            core::RoutePolicy::Random, load, timeline,
            0xE12B0 + static_cast<uint64_t>(k));
        t.add_row(
            {std::to_string(k) + "^3", util::Table::fmt(churn, 1),
             std::to_string(r.fault_events) + "+" +
                 std::to_string(r.repair_events),
             std::to_string(r.sim.delivered_packets),
             std::to_string(r.dropped_packets),
             util::Table::fmt(r.sim.accepted_flits, 4),
             util::Table::fmt(r.sim.avg_latency, 1),
             util::Table::pct(r.cache.hit_rate()),
             std::string(r.sim.violations    ? "VIOLATION"
                         : r.sim.deadlocked  ? "DEADLOCK"
                         : !r.sim.drained    ? "backlogged"
                                             : "ok")});
      }
    }
    t.render(std::cout);
  }

  return 0;
}
