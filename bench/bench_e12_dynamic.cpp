// E12 — dynamic-fault runtime: cost of absorbing a fault/repair event
// (parts A1/A2, incremental vs rebuild, via driver=event_cost) and the
// wormhole under live churn over the epoch-versioned guidance cache
// (part B, driver=wormhole_churn).
//
// Thin front over the experiment API: the three scenarios live in
// configs/e12_event2d.cfg, e12_event3d.cfg and e12_churn.cfg; this main
// sequences them, prints the shared heading and merges the reports into
// BENCH_e12_dynamic.json. Counts are deterministic given the seeds;
// timing columns vary run to run.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  std::cout << "# E12: dynamic-fault runtime — incremental MCC maintenance "
               "vs full rebuild, epoch-versioned guidance cache\n";

  std::vector<api::RunReport> reports;
  for (const char* preset :
       {"/e12_event2d.cfg", "/e12_event3d.cfg", "/e12_churn.cfg"}) {
    api::Configuration cfg;
    cfg.load_file(std::string(MCC_CONFIG_DIR) + preset);
    reports.push_back(api::Experiment(std::move(cfg)).run());
    reports.back().render(std::cout);
  }

  std::vector<const api::RunReport*> runs;
  bool failed = false;
  for (const api::RunReport& r : reports) {
    runs.push_back(&r);
    failed = failed || r.failed();
  }
  api::RunReport::write_bench_json("BENCH_e12_dynamic.json", "e12_dynamic",
                                   runs);
  return failed ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
