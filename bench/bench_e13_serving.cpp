// E13 — guidance-as-a-service: sustained route/feasibility queries per
// second and tail latency (p50/p95/p99/max) from concurrent readers over
// RCU epoch snapshots while a writer applies live churn, plus the 2-D
// boundary_delta replica payload.
//
// Thin front over the experiment API: the two scenarios live in
// configs/e13_serve2d.cfg and e13_serve3d.cfg; this main sequences them
// and merges the reports into BENCH_e13_serving.json. Counts (queries,
// events, epochs, delta payload) are deterministic given the seeds;
// QPS/latency columns vary run to run.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  std::cout << "# E13: guidance-as-a-service — epoch-snapshot serving "
               "under concurrent churn\n";

  std::vector<api::RunReport> reports;
  for (const char* preset : {"/e13_serve2d.cfg", "/e13_serve3d.cfg"}) {
    api::Configuration cfg;
    cfg.load_file(std::string(MCC_CONFIG_DIR) + preset);
    reports.push_back(api::Experiment(std::move(cfg)).run());
    reports.back().render(std::cout);
  }

  std::vector<const api::RunReport*> runs;
  bool failed = false;
  for (const api::RunReport& r : reports) {
    runs.push_back(&r);
    failed = failed || r.failed();
  }
  api::RunReport::write_bench_json("BENCH_e13_serving.json", "e13_serving",
                                   runs);
  return failed ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
