// E14 — three-class fault universe: Monte-Carlo reliability curves plus
// the wormhole surfaces that consume the same universe.
//
//   e14_reliability_curve  reachable / route-success / delivered vs
//                          per-link failure probability, Wilson 95%
//                          intervals, with the conservative projection's
//                          residual gap measured in its own column;
//   e14_linkload           latency-throughput with links physically
//                          severed in the flit simulator while guidance
//                          runs on the node projection;
//   e14_transient_churn    composite hard-churn + transient MTBF/MTTR
//                          schedule applied live to universe, projection
//                          and network.
//
// Thin front over the experiment API (`mcc_run configs/<preset>.cfg` runs
// the same scenarios); this main only sequences the presets and merges
// the reports into BENCH_e14_reliability.json. All counts and proportions
// are deterministic given the seeds; timing columns vary run to run.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  std::cout << "# E14: reliability under node / router / link faults, "
               "hard and transient\n";

  std::vector<api::RunReport> reports;
  for (const char* preset :
       {"/e14_reliability_curve.cfg", "/e14_linkload.cfg",
        "/e14_transient_churn.cfg"}) {
    api::Configuration cfg;
    cfg.load_file(std::string(MCC_CONFIG_DIR) + preset);
    reports.push_back(api::Experiment(std::move(cfg)).run());
    reports.back().render(std::cout);
  }

  std::vector<const api::RunReport*> runs;
  bool failed = false;
  for (const api::RunReport& r : reports) {
    runs.push_back(&r);
    failed = failed || r.failed();
  }
  api::RunReport::write_bench_json("BENCH_e14_reliability.json",
                                   "e14_reliability", runs);
  return failed ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
