// E1 — healthy nodes captured inside fault regions, 2-D.
//
// Thin front over the experiment API: the scenario lives in
// configs/e1_fill2d.cfg (single source of truth, also runnable as
// `mcc_run configs/e1_fill2d.cfg`); this main adds only the BENCH_*.json
// emission. Output is byte-identical with the pre-redesign bench
// (tests/test_api_differential.cc pins it).
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e1_fill2d.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e1_fill2d.json", "e1_fill2d",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
