// E1 — healthy nodes captured inside fault regions, 2-D.
//
// Reproduces the Wang'03-style comparison the paper builds on (§1: the MCC
// model "includes much fewer non-faulty nodes in its fault region than the
// conventional rectangular model"). For each mesh size and fault rate we
// report the mean number of healthy nodes absorbed by
//   - the MCC labelling (this paper),
//   - the safety-rule rectangular fault blocks (Wu/Boppana-Chalasani),
//   - bounding-box blocks (most conservative classic model).
#include <iostream>
#include <mutex>

#include "bench/common.h"
#include "baselines/fault_block.h"
#include "core/labeling.h"
#include "mesh/fault_injection.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(100);
  const int sizes[] = {16, 32, 48};
  const double rates[] = {0.01, 0.02, 0.05, 0.10, 0.15, 0.20};

  util::Table table({"mesh", "fault rate", "faults", "MCC healthy",
                     "safety-block healthy", "bbox healthy",
                     "MCC/safety ratio"});

  for (const int k : sizes) {
    const mesh::Mesh2D m(k, k);
    for (const double rate : rates) {
      util::RunningStats faults, mcc_fill, safety_fill_stat, bbox_fill;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t t) {
        util::Rng rng(0xE1000 + static_cast<uint64_t>(k) * 1000 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::LabelField2D labels(m, f);
        const auto safety = baselines::safety_fill(m, f);
        const auto bbox = baselines::bounding_box_fill(m, f);
        std::lock_guard<std::mutex> lock(mu);
        faults.add(f.count());
        mcc_fill.add(labels.healthy_unsafe_count());
        safety_fill_stat.add(safety.healthy_unsafe_count());
        bbox_fill.add(bbox.healthy_unsafe_count());
      });
      const double ratio =
          safety_fill_stat.mean() > 0
              ? mcc_fill.mean() / safety_fill_stat.mean()
              : 1.0;
      table.add_row({std::to_string(k) + "x" + std::to_string(k),
                     util::Table::pct(rate, 0),
                     util::Table::fmt(faults.mean(), 1),
                     util::Table::mean_ci(mcc_fill.mean(), mcc_fill.ci95(), 2),
                     util::Table::mean_ci(safety_fill_stat.mean(),
                                          safety_fill_stat.ci95(), 2),
                     util::Table::mean_ci(bbox_fill.mean(), bbox_fill.ci95(),
                                          2),
                     util::Table::fmt(ratio, 3)});
    }
  }

  std::cout << "# E1: healthy nodes absorbed into fault regions (2-D, "
               "uniform faults, "
            << kTrials << " seeds)\n\n";
  table.render(std::cout);
  std::cout << "\nExpected shape: MCC << safety blocks <= bounding boxes, "
               "gap widening with fault rate.\n";
  return 0;
}
