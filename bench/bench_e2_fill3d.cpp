// E2 — healthy nodes captured inside fault regions, 3-D (the paper's
// headline simulation: "the number of non-faulty nodes included in MCCs in
// 3-D meshes ... compared with the best existing known result").
#include <iostream>
#include <mutex>

#include "bench/common.h"
#include "baselines/fault_block.h"
#include "core/labeling.h"
#include "mesh/fault_injection.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(60);
  const int sizes[] = {8, 12, 16};
  const double rates[] = {0.01, 0.02, 0.05, 0.10, 0.15};

  util::Table table({"mesh", "fault rate", "faults", "MCC healthy",
                     "safety-block healthy", "bbox healthy",
                     "MCC/safety ratio"});

  for (const int k : sizes) {
    const mesh::Mesh3D m(k, k, k);
    for (const double rate : rates) {
      util::RunningStats faults, mcc_fill, safety, bbox;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t t) {
        util::Rng rng(0xE2000 + static_cast<uint64_t>(k) * 1000 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::LabelField3D labels(m, f);
        const auto sf = baselines::safety_fill(m, f);
        const auto bb = baselines::bounding_box_fill(m, f);
        std::lock_guard<std::mutex> lock(mu);
        faults.add(f.count());
        mcc_fill.add(labels.healthy_unsafe_count());
        safety.add(sf.healthy_unsafe_count());
        bbox.add(bb.healthy_unsafe_count());
      });
      const double ratio =
          safety.mean() > 0 ? mcc_fill.mean() / safety.mean() : 1.0;
      table.add_row(
          {std::to_string(k) + "^3", util::Table::pct(rate, 0),
           util::Table::fmt(faults.mean(), 1),
           util::Table::mean_ci(mcc_fill.mean(), mcc_fill.ci95(), 2),
           util::Table::mean_ci(safety.mean(), safety.ci95(), 2),
           util::Table::mean_ci(bbox.mean(), bbox.ci95(), 2),
           util::Table::fmt(ratio, 3)});
    }
  }

  std::cout << "# E2: healthy nodes absorbed into fault regions (3-D, "
               "uniform faults, "
            << kTrials << " seeds)\n\n";
  table.render(std::cout);
  std::cout << "\nExpected shape: the 3-D labelling needs all THREE positive "
               "(negative) neighbors blocked,\nso MCC absorbs near-zero "
               "healthy nodes at realistic fault rates — far fewer than "
               "block models.\n";
  return 0;
}
