// E3 — minimal-routing success rate in 2-D: the MCC model against the
// oracle, the rectangular fault-block models, greedy local routing and
// dimension-order routing.
//
// Thin front over the experiment API: the scenario lives in
// configs/e3_success2d.cfg; this main adds only the BENCH_*.json
// emission. Output is byte-identical with the pre-redesign bench.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e3_success2d.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e3_success2d.json", "e3_success2d",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
