// E4 — minimal-routing success rate in 3-D (the paper's headline claim).
//
// Thin front over the experiment API: the scenario lives in
// configs/e4_success3d.cfg; this main adds only the BENCH_*.json
// emission. Output is byte-identical with the pre-redesign bench.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e4_success3d.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e4_success3d.json", "e4_success3d",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
