// E4 — minimal-routing success rate in 3-D (the paper's headline claim:
// the detection floods admit a minimal route exactly when one exists).
#include <iostream>
#include <mutex>

#include "baselines/fault_block.h"
#include "baselines/simple_routers.h"
#include "bench/common.h"
#include "core/feasibility3d.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(30);
  constexpr int kPairs = 40;
  const int k = 12;
  const double rates[] = {0.01, 0.02, 0.05, 0.10, 0.15};

  util::Table table({"fault rate", "oracle", "MCC model", "safety blocks",
                     "bbox blocks", "greedy local", "dim-order"});
  const mesh::Mesh3D m(k, k, k);

  std::cout << "# E4: minimal-routing success rate, 3-D " << k << "^3 ("
            << kTrials << " seeds x " << kPairs
            << " safe pairs, uniform faults)\n\n";

  for (const double rate : rates) {
    util::RunningStats oracle_s, mcc_s, safety_s, bbox_s, greedy_s, dor_s;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t t) {
      util::Rng rng(0xE4000 + static_cast<uint64_t>(rate * 1000) * 131 + t);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField3D labels(m, f);
      const auto safety = baselines::safety_fill(m, f);
      const auto bbox = baselines::bounding_box_fill(m, f);

      int n = 0, n_oracle = 0, n_mcc = 0, n_safety = 0, n_bbox = 0,
          n_greedy = 0, n_dor = 0;
      for (int p = 0; p < kPairs; ++p) {
        const auto pair = bench::sample_pair3d(m, labels, rng);
        if (!pair) continue;
        const auto [s, d] = *pair;
        ++n;
        const core::ReachField3D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        n_oracle += oracle.feasible(s);
        n_mcc += core::detect3d(m, labels, s, d).feasible();
        n_safety += baselines::block_feasible(m, safety, s, d);
        n_bbox += baselines::block_feasible(m, bbox, s, d);
        util::Rng grng(rng.fork());
        n_greedy += baselines::greedy_route(m, f, s, d, grng);
        n_dor += baselines::dimension_order_route(m, f, s, d);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      oracle_s.add(double(n_oracle) / n);
      mcc_s.add(double(n_mcc) / n);
      safety_s.add(double(n_safety) / n);
      bbox_s.add(double(n_bbox) / n);
      greedy_s.add(double(n_greedy) / n);
      dor_s.add(double(n_dor) / n);
    });
    table.add_row({util::Table::pct(rate, 0),
                   util::Table::pct(oracle_s.mean(), 1),
                   util::Table::pct(mcc_s.mean(), 1),
                   util::Table::pct(safety_s.mean(), 1),
                   util::Table::pct(bbox_s.mean(), 1),
                   util::Table::pct(greedy_s.mean(), 1),
                   util::Table::pct(dor_s.mean(), 1)});
  }

  table.render(std::cout);
  std::cout << "\nExpected shape: 3-D meshes route around faults far more "
               "easily than 2-D; MCC tracks the oracle;\nthe conservative "
               "block models lose feasible pairs as blocks inflate.\n";
  return 0;
}
