// E5 — fault-region geometry: how many MCCs form, how large they get, how
// many healthy nodes each absorbs, and the per-orientation asymmetry
// (Figure 1/5 of the paper, quantified).
#include <iostream>
#include <mutex>

#include "bench/common.h"
#include "core/mcc_region.h"
#include "mesh/fault_injection.h"
#include "mesh/octant.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(50);
  const int k = 32;
  const mesh::Mesh2D m(k, k);
  const double rates[] = {0.02, 0.05, 0.10, 0.15, 0.20};

  util::Table table({"fault rate", "regions", "largest region",
                     "healthy/region", "width x height", "multi-fault %"});

  for (const double rate : rates) {
    util::RunningStats regions, largest, healthy_per, width, height, multi;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t t) {
      util::Rng rng(0xE5000 + static_cast<uint64_t>(rate * 1000) * 37 + t);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D mccs(m, labels);
      size_t big = 0;
      int multi_fault = 0;
      util::RunningStats h, w, ht;
      for (const auto& r : mccs.regions()) {
        big = std::max(big, r.cells.size());
        h.add(r.healthy_cells);
        w.add(r.width());
        ht.add(r.height());
        multi_fault += r.faulty_cells > 1;
      }
      std::lock_guard<std::mutex> lock(mu);
      regions.add(static_cast<double>(mccs.regions().size()));
      largest.add(static_cast<double>(big));
      if (h.count()) {
        healthy_per.add(h.mean());
        width.add(w.mean());
        height.add(ht.mean());
        multi.add(double(multi_fault) /
                  static_cast<double>(mccs.regions().size()));
      }
    });
    table.add_row({util::Table::pct(rate, 0),
                   util::Table::mean_ci(regions.mean(), regions.ci95(), 1),
                   util::Table::fmt(largest.mean(), 1),
                   util::Table::fmt(healthy_per.mean(), 2),
                   util::Table::fmt(width.mean(), 2) + " x " +
                       util::Table::fmt(height.mean(), 2),
                   util::Table::pct(multi.mean(), 1)});
  }

  std::cout << "# E5a: 2-D MCC geometry, " << k << "x" << k << ", "
            << kTrials << " seeds\n\n";
  table.render(std::cout);

  // Orientation asymmetry: the same fault pattern labelled for all four
  // quadrant classes absorbs different healthy node counts.
  util::Table table2({"fault rate", "octant ++", "octant -+", "octant +-",
                      "octant --", "max/min ratio"});
  for (const double rate : {0.10, 0.20}) {
    util::RunningStats per_oct[4], ratio;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t t) {
      util::Rng rng(0xE5500 + static_cast<uint64_t>(rate * 1000) * 37 + t);
      const auto f = mesh::inject_uniform(m, rate, rng);
      double counts[4];
      for (int o = 0; o < 4; ++o) {
        const mesh::Octant2 oct{(o & 1) != 0, (o & 2) != 0};
        const auto flipped = materialize(f, m, oct);
        const core::LabelField2D labels(m, flipped);
        counts[o] = labels.healthy_unsafe_count();
      }
      std::lock_guard<std::mutex> lock(mu);
      double lo = counts[0], hi = counts[0];
      for (int o = 0; o < 4; ++o) {
        per_oct[o].add(counts[o]);
        lo = std::min(lo, counts[o]);
        hi = std::max(hi, counts[o]);
      }
      if (lo > 0) ratio.add(hi / lo);
    });
    table2.add_row({util::Table::pct(rate, 0),
                    util::Table::fmt(per_oct[0].mean(), 2),
                    util::Table::fmt(per_oct[1].mean(), 2),
                    util::Table::fmt(per_oct[2].mean(), 2),
                    util::Table::fmt(per_oct[3].mean(), 2),
                    util::Table::fmt(ratio.count() ? ratio.mean() : 1.0, 2)});
  }
  std::cout << "\n# E5b: per-orientation fill (same faults, four quadrant "
               "classes)\n\n";
  table2.render(std::cout);
  std::cout << "\nExpected shape: fills are orientation-specific (a "
               "staircase ascending for one quadrant descends for the "
               "mirrored one), but symmetric in distribution.\n";
  return 0;
}
