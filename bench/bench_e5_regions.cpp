// E5 — fault-region geometry and the per-orientation asymmetry
// (Figure 1/5 of the paper, quantified).
//
// Thin front over the experiment API: the scenario lives in
// configs/e5_regions.cfg; this main adds only the BENCH_*.json emission.
// Output is byte-identical with the pre-redesign bench.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e5_regions.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e5_regions.json", "e5_regions",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
