// E6 — model-vs-oracle agreement: empirical validation of Lemma 1 /
// Theorem 1 / Theorem 2 over random and adversarial workloads.
//
// Thin front over the experiment API: the scenario lives in
// configs/e6_agreement.cfg; this main adds only the BENCH_*.json
// emission. Output is byte-identical with the pre-redesign bench.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e6_agreement.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e6_agreement.json", "e6_agreement",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
