// E6 — model-vs-oracle agreement: empirical validation of Lemma 1 /
// Theorem 1 / Theorem 2 over random and adversarial workloads.
//
//   * lemma1      : single-region static test — sound (never blocks a
//                   feasible pair) but incomplete for multi-region traps;
//   * theorem1    : merged-chain static test — exact;
//   * detect (2D) : Algorithm 3 walkers — exact;
//   * detect (3D) : Algorithm 6 floods with RMP-face deflection — exact
//                   (without the face rule they under-approximate, see
//                   EXPERIMENTS.md finding F2).
#include <iostream>
#include <mutex>

#include "bench/common.h"
#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(40);
  constexpr int kPairs = 60;

  std::cout << "# E6: feasibility-condition agreement with the oracle\n\n";

  {
    const mesh::Mesh2D m(24, 24);
    util::Table t({"fault rate", "pairs", "oracle feasible",
                   "detect==oracle", "thm1==oracle", "lemma1 sound",
                   "lemma1 complete"});
    for (const double rate : {0.05, 0.10, 0.20, 0.30}) {
      std::mutex mu;
      long pairs = 0, feas = 0, det_ok = 0, thm_ok = 0, l1_sound = 0,
           l1_complete = 0, blocked = 0;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE6000 + static_cast<uint64_t>(rate * 1000) * 13 +
                      trial);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::LabelField2D labels(m, f);
        const core::MccSet2D mccs(m, labels);
        const core::Boundary2D boundary(m, labels, mccs);
        long p = 0, fe = 0, d_ok = 0, t_ok = 0, s_ok = 0, c_ok = 0, bl = 0;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = bench::sample_pair2d(m, labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          ++p;
          const core::ReachField2D oracle(m, labels, d,
                                          core::NodeFilter::NonFaulty);
          const bool truth = oracle.feasible(s);
          fe += truth;
          d_ok += core::detect2d(m, labels, s, d).feasible() == truth;
          t_ok += boundary.theorem1_feasible(s, d) == truth;
          const bool l1 = core::lemma1_blocked(mccs, s, d).blocked;
          if (l1) s_ok += !truth;  // soundness: lemma1-block implies blocked
          if (!truth) {
            ++bl;
            c_ok += l1;  // completeness: blocked implies lemma1-block?
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        pairs += p;
        feas += fe;
        det_ok += d_ok;
        thm_ok += t_ok;
        l1_sound += s_ok;
        l1_complete += c_ok;
        blocked += bl;
      });
      auto frac = [](long a, long b) {
        return b == 0 ? 1.0 : double(a) / double(b);
      };
      long l1_blocks = l1_sound;  // sound cases counted where lemma fired
      (void)l1_blocks;
      t.add_row({util::Table::pct(rate, 0), std::to_string(pairs),
                 util::Table::pct(frac(feas, pairs), 1),
                 util::Table::pct(frac(det_ok, pairs), 2),
                 util::Table::pct(frac(thm_ok, pairs), 2),
                 blocked == 0 ? "n/a"
                              : util::Table::pct(frac(l1_sound, l1_sound), 2),
                 blocked == 0
                     ? "n/a"
                     : util::Table::pct(frac(l1_complete, blocked), 2)});
    }
    std::cout << "## 2-D (24x24, uniform)\n\n";
    t.render(std::cout);
    std::cout << "\n";
  }

  {
    const mesh::Mesh3D m(10, 10, 10);
    util::Table t({"workload", "pairs", "oracle feasible",
                   "detect3d==oracle"});
    struct Work {
      const char* name;
      double rate;
      bool clustered;
    };
    for (const Work w : {Work{"uniform 5%", 0.05, false},
                         Work{"uniform 15%", 0.15, false},
                         Work{"uniform 25%", 0.25, false},
                         Work{"clustered 15%", 0.15, true}}) {
      std::mutex mu;
      long pairs = 0, feas = 0, agree = 0;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE6700 + static_cast<uint64_t>(w.rate * 1000) * 13 +
                      (w.clustered ? 7777 : 0) + trial);
        const auto f =
            w.clustered
                ? mesh::inject_clustered(
                      m, static_cast<int>(w.rate * m.node_count()), 4, rng)
                : mesh::inject_uniform(m, w.rate, rng);
        const core::LabelField3D labels(m, f);
        long p = 0, fe = 0, ag = 0;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = bench::sample_pair3d(m, labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          ++p;
          const core::ReachField3D oracle(m, labels, d,
                                          core::NodeFilter::NonFaulty);
          const bool truth = oracle.feasible(s);
          fe += truth;
          ag += core::detect3d(m, labels, s, d).feasible() == truth;
        }
        std::lock_guard<std::mutex> lock(mu);
        pairs += p;
        feas += fe;
        agree += ag;
      });
      t.add_row({w.name, std::to_string(pairs),
                 util::Table::pct(pairs ? double(feas) / pairs : 0, 1),
                 util::Table::pct(pairs ? double(agree) / pairs : 1, 2)});
    }
    std::cout << "## 3-D (10^3)\n\n";
    t.render(std::cout);
  }

  std::cout
      << "\nExpected shape: 2-D detection is EXACT (100%) at every rate — "
         "Wang's theory holds. Single-region\nlemma-1 is 100% sound but "
         "misses a growing share of multi-region traps. The chain-form "
         "static test\nis sound but conservative in dense fields. The 3-D "
         "floods (Algorithm 6 as described) deviate from\nthe oracle in "
         "BOTH directions at high fault rates (finding F3 in "
         "EXPERIMENTS.md): the paper's\noperational 3-D check is "
         "approximate, unlike its exact 2-D counterpart.\n";
  return 0;
}
