// E7 — distributed construction cost: rounds, messages and payload volume
// per protocol phase (the paper's "practical and efficient implementation
// in a system where each node knows only the status of its neighbors").
#include <iostream>
#include <mutex>

#include "bench/common.h"
#include "mesh/fault_injection.h"
#include "proto/stack2d.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(20);

  std::cout << "# E7: distributed protocol cost (2-D stack)\n\n";

  util::Table t({"mesh", "fault rate", "label msgs", "label rounds",
                 "ident msgs", "boundary msgs", "total payload (words)",
                 "msgs/node", "identified", "discarded"});

  for (const int k : {16, 24, 32}) {
    const mesh::Mesh2D m(k, k);
    for (const double rate : {0.02, 0.05, 0.10, 0.15}) {
      util::RunningStats lab_m, lab_r, id_m, bd_m, payload, per_node, ident,
          disc;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE7000 + static_cast<uint64_t>(k) * 100 +
                      static_cast<uint64_t>(rate * 1000) * 17 + trial);
        const auto f = mesh::inject_uniform(m, rate, rng);
        proto::Stack2D stack(m, f);
        std::lock_guard<std::mutex> lock(mu);
        lab_m.add(static_cast<double>(stack.labeling_stats.messages));
        lab_r.add(static_cast<double>(stack.labeling_stats.rounds));
        id_m.add(static_cast<double>(stack.ident_stats.messages));
        bd_m.add(static_cast<double>(stack.boundary_stats.messages));
        payload.add(static_cast<double>(stack.total_payload_words()));
        per_node.add(static_cast<double>(stack.total_messages()) /
                     static_cast<double>(m.node_count()));
        ident.add(stack.ident.identified());
        disc.add(stack.ident.discarded());
      });
      t.add_row({std::to_string(k) + "x" + std::to_string(k),
                 util::Table::pct(rate, 0), util::Table::fmt(lab_m.mean(), 0),
                 util::Table::fmt(lab_r.mean(), 1),
                 util::Table::fmt(id_m.mean(), 0),
                 util::Table::fmt(bd_m.mean(), 0),
                 util::Table::fmt(payload.mean(), 0),
                 util::Table::fmt(per_node.mean(), 2),
                 util::Table::fmt(ident.mean(), 1),
                 util::Table::fmt(disc.mean(), 1)});
    }
  }
  t.render(std::cout);

  // Detection / routing message cost for individual queries.
  util::Table t2({"mesh", "fault rate", "detect msgs (2D)",
                  "route msgs (2D)", "detect msgs (3D flood)"});
  for (const double rate : {0.05, 0.10}) {
    const int k = 24;
    const mesh::Mesh2D m2(k, k);
    const mesh::Mesh3D m3(10, 10, 10);
    util::RunningStats det2, rt2, det3;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE7900 + static_cast<uint64_t>(rate * 1000) + trial);
      const auto f2 = mesh::inject_uniform(m2, rate, rng);
      proto::Stack2D stack(m2, f2);
      const core::LabelField2D labels(m2, f2);
      util::RunningStats d2, r2;
      for (int i = 0; i < 10; ++i) {
        const auto pr = bench::sample_pair2d(m2, labels, rng);
        if (!pr) continue;
        const auto det = proto::run_detect2d(m2, stack.labeling, pr->first,
                                             pr->second);
        d2.add(static_cast<double>(det.stats.messages));
        if (det.feasible()) {
          const auto rt =
              proto::run_route2d(m2, stack.labeling, stack.boundary,
                                 pr->first, pr->second, trial * 31 + i);
          if (rt.delivered) r2.add(static_cast<double>(rt.stats.messages));
        }
      }
      const auto f3 = mesh::inject_uniform(m3, rate, rng);
      proto::LabelingProtocol3D lab3(m3, f3);
      lab3.run();
      const core::LabelField3D labels3(m3, f3);
      util::RunningStats d3;
      for (int i = 0; i < 5; ++i) {
        const auto pr = bench::sample_pair3d(m3, labels3, rng);
        if (!pr) continue;
        const auto det =
            proto::run_detect3d(m3, lab3, pr->first, pr->second);
        d3.add(static_cast<double>(det.stats.messages));
      }
      std::lock_guard<std::mutex> lock(mu);
      if (d2.count()) det2.add(d2.mean());
      if (r2.count()) rt2.add(r2.mean());
      if (d3.count()) det3.add(d3.mean());
    });
    t2.add_row({"24x24 / 10^3", util::Table::pct(rate, 0),
                util::Table::fmt(det2.mean(), 1),
                util::Table::fmt(rt2.mean(), 1),
                util::Table::fmt(det3.mean(), 1)});
  }
  std::cout << "\n";
  t2.render(std::cout);
  std::cout << "\nExpected shape: labelling costs ~1 broadcast wave per node "
               "plus fill cascades; identification and\nboundary messages "
               "scale with fault-region perimeter, not mesh volume; routing "
               "costs ~path length.\n";
  return 0;
}
