// E7 — distributed construction cost: rounds, messages and payload volume
// per protocol phase (the paper's "practical and efficient implementation
// in a system where each node knows only the status of its neighbors").
//
// Thin front over the experiment API: the scenario lives in
// configs/e7_protocol_cost.cfg (single source of truth, also runnable as
// `mcc_run configs/e7_protocol_cost.cfg`); this main adds only the
// BENCH_*.json emission.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e7_protocol_cost.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e7_protocol_cost.json",
                                   "e7_protocol_cost", {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
