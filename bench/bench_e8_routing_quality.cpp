// E8 — routing quality: delivery, path-length optimality and the
// adaptivity left to the selection policy under each guidance mode.
//
// Thin front over the experiment API: the scenario lives in
// configs/e8_routing_quality.cfg (single source of truth, also runnable as
// `mcc_run configs/e8_routing_quality.cfg`); this main adds only the
// BENCH_*.json emission. MCC_SMOKE=1 still works as the deprecated alias
// of smoke=1 and applies the preset's smoke.* pins.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e8_routing_quality.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e8_routing_quality.json",
                                   "e8_routing_quality", {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
