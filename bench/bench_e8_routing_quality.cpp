// E8 — routing quality: delivery, path-length optimality and the
// adaptivity left to the selection policy under each guidance mode.
#include <iostream>
#include <mutex>
#include <set>

#include "bench/common.h"
#include "core/model.h"
#include "mesh/fault_injection.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(25);
  constexpr int kPairs = 25;
  const int k = 24;
  const mesh::Mesh2D m(k, k);

  std::cout << "# E8: routing quality, 2-D " << k << "x" << k << "\n\n";

  util::Table t({"fault rate", "router", "delivered", "minimal",
                 "multi-choice hops", "mean candidates/hop"});

  for (const double rate : {0.05, 0.10, 0.15}) {
    for (const core::RouterKind kind :
         {core::RouterKind::Oracle, core::RouterKind::Records,
          core::RouterKind::LabelsOnly}) {
      util::RunningStats delivered, minimal, multi, cand;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE8000 + static_cast<uint64_t>(rate * 1000) * 7 +
                      trial);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::MccModel2D model(m, f);
        const auto& oct = model.octant(mesh::Octant2{false, false});
        long n = 0, del = 0, min_ok = 0;
        util::RunningStats mstat, cstat;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = bench::sample_pair2d(m, oct.labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          if (!model.feasible(s, d).feasible) continue;
          ++n;
          const auto r = model.route(s, d, kind, core::RoutePolicy::Random,
                                     trial * 1000 + i);
          del += r.delivered;
          if (r.delivered) {
            min_ok += r.hops() == manhattan(s, d);
            if (r.hops() > 0) {
              mstat.add(double(r.stats.multi_choice_hops) / r.hops());
              cstat.add(double(r.stats.candidate_sum) / r.hops());
            }
          }
        }
        if (n == 0) return;
        std::lock_guard<std::mutex> lock(mu);
        delivered.add(double(del) / n);
        minimal.add(del ? double(min_ok) / del : 0.0);
        if (mstat.count()) multi.add(mstat.mean());
        if (cstat.count()) cand.add(cstat.mean());
      });
      t.add_row({util::Table::pct(rate, 0), core::to_string(kind),
                 util::Table::pct(delivered.mean(), 1),
                 util::Table::pct(minimal.mean(), 1),
                 util::Table::pct(multi.mean(), 1),
                 util::Table::fmt(cand.mean(), 2)});
    }
  }
  t.render(std::cout);

  // Path diversity: distinct minimal paths found by the random policy.
  util::Table t2({"fault rate", "distinct paths (20 tries)", "path length"});
  for (const double rate : {0.0, 0.10}) {
    util::RunningStats distinct, len;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE8700 + static_cast<uint64_t>(rate * 1000) + trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::MccModel2D model(m, f);
      const auto& oct = model.octant(mesh::Octant2{false, false});
      const auto pr = bench::sample_pair2d(m, oct.labels, rng, 12);
      if (!pr || !model.feasible(pr->first, pr->second).feasible) return;
      std::set<std::vector<int>> paths;
      int hops = 0;
      for (int i = 0; i < 20; ++i) {
        const auto r = model.route(pr->first, pr->second,
                                   core::RouterKind::Records,
                                   core::RoutePolicy::Random, trial * 77 + i);
        if (!r.delivered) continue;
        hops = r.hops();
        std::vector<int> key;
        for (const auto c : r.path) key.push_back(c.y * k + c.x);
        paths.insert(key);
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!paths.empty()) {
        distinct.add(static_cast<double>(paths.size()));
        len.add(hops);
      }
    });
    t2.add_row({util::Table::pct(rate, 0),
                util::Table::mean_ci(distinct.mean(), distinct.ci95(), 1),
                util::Table::fmt(len.mean(), 1)});
  }
  std::cout << "\n";
  t2.render(std::cout);
  std::cout << "\nExpected shape: oracle and record routers deliver 100% "
               "minimal; labels-only loses messages to\nmulti-region traps; "
               "adaptivity (choice-rich hops) shrinks as faults densify.\n";
  return 0;
}
