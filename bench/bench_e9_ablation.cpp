// E9 — ablations of the design choices DESIGN.md calls out: information,
// fill and connectivity ablations of the MCC model.
//
// Thin front over the experiment API: the scenario lives in
// configs/e9_ablation.cfg; this main adds only the BENCH_*.json emission.
// Output is byte-identical with the pre-redesign bench.
#include <iostream>

#include "api/experiment.h"

int main() try {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/e9_ablation.cfg");
  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  api::RunReport::write_bench_json("BENCH_e9_ablation.json", "e9_ablation",
                                   {&report});
  return report.failed() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
