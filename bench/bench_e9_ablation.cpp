// E9 — ablations of the design choices DESIGN.md calls out:
//   (a) information ablation: full records vs labels-only vs fault-only
//       greedy routing, on pairs the model certifies feasible;
//   (b) fill ablation: how much of the model's precision comes from the
//       useless/can't-reach fill (no-fill treats only faulty nodes as
//       unsafe, the fill-less "MCC" degenerates to raw components);
//   (c) connectivity ablation: orthogonal vs eight-connected grouping.
#include <iostream>
#include <mutex>

#include "baselines/simple_routers.h"
#include "bench/common.h"
#include "core/model.h"
#include "mesh/fault_injection.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mcc;
  const int kTrials = bench::trials(30);
  constexpr int kPairs = 30;
  const int k = 24;
  const mesh::Mesh2D m(k, k);

  std::cout << "# E9: ablations (2-D " << k << "x" << k << ")\n\n";

  // (a) information ablation on certified-feasible pairs.
  util::Table t({"fault rate", "records router", "labels-only router",
                 "greedy (fault info only)"});
  for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
    util::RunningStats rec_s, lab_s, greedy_s;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE9000 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::MccModel2D model(m, f);
      const auto& oct = model.octant(mesh::Octant2{false, false});
      long n = 0, rec = 0, lab = 0, gr = 0;
      for (int i = 0; i < kPairs; ++i) {
        const auto pr = bench::sample_pair2d(m, oct.labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        if (!model.feasible(s, d).feasible) continue;
        ++n;
        rec += model
                   .route(s, d, core::RouterKind::Records,
                          core::RoutePolicy::Random, trial * 97 + i)
                   .delivered;
        lab += model
                   .route(s, d, core::RouterKind::LabelsOnly,
                          core::RoutePolicy::Random, trial * 97 + i)
                   .delivered;
        util::Rng grng(trial * 131 + i);
        gr += baselines::greedy_route(m, f, s, d, grng);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      rec_s.add(double(rec) / n);
      lab_s.add(double(lab) / n);
      greedy_s.add(double(gr) / n);
    });
    t.add_row({util::Table::pct(rate, 0), util::Table::pct(rec_s.mean(), 1),
               util::Table::pct(lab_s.mean(), 1),
               util::Table::pct(greedy_s.mean(), 1)});
  }
  std::cout << "## (a) routing success on pairs the model certifies "
               "feasible\n\n";
  t.render(std::cout);

  // (b) fill ablation: fraction of blocked pairs a fill-less model would
  // wrongly certify, i.e., raw-fault reachability vs safe reachability.
  util::Table t2({"fault rate", "blocked pairs", "no-fill wrongly feasible"});
  for (const double rate : {0.10, 0.20, 0.30}) {
    std::mutex mu;
    long blocked = 0, wrong = 0;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE9500 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField2D labels(m, f);
      long bl = 0, wr = 0;
      for (int i = 0; i < kPairs; ++i) {
        const auto pr = bench::sample_pair2d(m, labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        const core::ReachField2D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        if (oracle.feasible(s)) continue;
        ++bl;
        // A fill-less model sees only faulty nodes: it would accept the
        // pair whenever a monotone path over non-faulty nodes exists in
        // SOME relaxation — here: whether a plain greedy walk could be
        // fooled is already covered by (a); we count the pairs where the
        // labelling (the fill) is what identifies the blockage, i.e.,
        // safe-reachability differs from a hypothetical fill-less check
        // that only looks for a fault-free staircase of width 1 along the
        // two detection lines.
        const bool line_x_clear = [&] {
          for (int x = s.x; x <= d.x; ++x)
            if (labels.state({x, s.y}) == core::NodeState::Faulty)
              return false;
          return true;
        }();
        const bool line_y_clear = [&] {
          for (int y = s.y; y <= d.y; ++y)
            if (labels.state({s.x, y}) == core::NodeState::Faulty)
              return false;
          return true;
        }();
        wr += line_x_clear || line_y_clear;
      }
      std::lock_guard<std::mutex> lock(mu);
      blocked += bl;
      wrong += wr;
    });
    t2.add_row({util::Table::pct(rate, 0), std::to_string(blocked),
                blocked ? util::Table::pct(double(wrong) / blocked, 1)
                        : "n/a"});
  }
  std::cout << "\n## (b) blocked pairs a naive fault-only check misses\n\n";
  t2.render(std::cout);

  // (c) connectivity ablation.
  util::Table t3({"fault rate", "regions (ortho)", "regions (eight)",
                  "largest (ortho)", "largest (eight)"});
  for (const double rate : {0.05, 0.15, 0.25}) {
    util::RunningStats ro, re, lo, le;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE9900 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D ortho(m, labels, core::Connectivity::Ortho);
      const core::MccSet2D eight(m, labels, core::Connectivity::Eight);
      size_t biggest_o = 0, biggest_e = 0;
      for (const auto& r : ortho.regions())
        biggest_o = std::max(biggest_o, r.cells.size());
      for (const auto& r : eight.regions())
        biggest_e = std::max(biggest_e, r.cells.size());
      std::lock_guard<std::mutex> lock(mu);
      ro.add(static_cast<double>(ortho.regions().size()));
      re.add(static_cast<double>(eight.regions().size()));
      lo.add(static_cast<double>(biggest_o));
      le.add(static_cast<double>(biggest_e));
    });
    t3.add_row({util::Table::pct(rate, 0), util::Table::fmt(ro.mean(), 1),
                util::Table::fmt(re.mean(), 1), util::Table::fmt(lo.mean(), 1),
                util::Table::fmt(le.mean(), 1)});
  }
  std::cout << "\n## (c) region grouping: orthogonal vs eight-connected\n\n";
  t3.render(std::cout);
  std::cout << "\nExpected shape: records are what guarantees delivery; the "
               "fill is what catches staircase traps;\neight-connectivity "
               "merges diagonal chains into fewer, larger regions.\n";
  return 0;
}
