// Shared helpers for the experiment binaries: scenario sampling re-exported
// from util/scenario.h plus smoke-mode support. With MCC_SMOKE=1 in the
// environment every bench shrinks to one repetition on its smallest
// configuration so CI can execute each binary cheaply (bench code cannot
// rot into a compile-only artifact).
#pragma once

#include <cstdlib>

#include "util/scenario.h"

namespace mcc::bench {

using util::sample_pair2d;
using util::sample_pair3d;

/// True when the MCC_SMOKE environment variable is set to a non-zero value.
inline bool smoke() {
  const char* v = std::getenv("MCC_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Trial count for a sweep: `full` normally, 1 in smoke mode.
inline int trials(int full) { return smoke() ? 1 : full; }

}  // namespace mcc::bench
