// Shared helpers for the experiment binaries.
#pragma once

#include <optional>

#include "core/labeling.h"
#include "mesh/mesh.h"
#include "util/rng.h"

namespace mcc::bench {

/// Draws a safe source/destination pair with strictly positive offsets in
/// the canonical quadrant/octant; returns nullopt when none is found.
inline std::optional<std::pair<mesh::Coord2, mesh::Coord2>> sample_pair2d(
    const mesh::Mesh2D& m, const core::LabelField2D& labels, util::Rng& rng,
    int min_distance = 4) {
  for (int t = 0; t < 200; ++t) {
    const mesh::Coord2 s{rng.uniform_int(0, m.nx() - 2),
                         rng.uniform_int(0, m.ny() - 2)};
    const mesh::Coord2 d{rng.uniform_int(s.x + 1, m.nx() - 1),
                         rng.uniform_int(s.y + 1, m.ny() - 1)};
    if (manhattan(s, d) < min_distance) continue;
    if (!labels.safe(s) || !labels.safe(d)) continue;
    return std::make_pair(s, d);
  }
  return std::nullopt;
}

inline std::optional<std::pair<mesh::Coord3, mesh::Coord3>> sample_pair3d(
    const mesh::Mesh3D& m, const core::LabelField3D& labels, util::Rng& rng,
    int min_distance = 4) {
  for (int t = 0; t < 200; ++t) {
    const mesh::Coord3 s{rng.uniform_int(0, m.nx() - 2),
                         rng.uniform_int(0, m.ny() - 2),
                         rng.uniform_int(0, m.nz() - 2)};
    const mesh::Coord3 d{rng.uniform_int(s.x + 1, m.nx() - 1),
                         rng.uniform_int(s.y + 1, m.ny() - 1),
                         rng.uniform_int(s.z + 1, m.nz() - 1)};
    if (manhattan(s, d) < min_distance) continue;
    if (!labels.safe(s) || !labels.safe(d)) continue;
    return std::make_pair(s, d);
  }
  return std::nullopt;
}

}  // namespace mcc::bench
