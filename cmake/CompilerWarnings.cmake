# Warning flags shared by every target via mcc_apply_warnings().
#
# The project builds with -Wall -Wextra and (by default) -Werror so that the
# seed's latent format/shadowing issues stay fixed instead of regressing.

function(mcc_apply_warnings target)
  if(MSVC)
    target_compile_options(${target} INTERFACE /W4)
    if(MCC_WERROR)
      target_compile_options(${target} INTERFACE /WX)
    endif()
  else()
    target_compile_options(${target} INTERFACE -Wall -Wextra)
    if(MCC_WERROR)
      target_compile_options(${target} INTERFACE -Werror)
    endif()
  endif()
endfunction()
