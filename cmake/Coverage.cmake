# gcov instrumentation toggled by -DMCC_COVERAGE=ON (used by the coverage
# CI job, which runs gcovr over the build tree and enforces a line floor).
# Applied through the shared interface target so every object in the tree
# emits .gcno/.gcda data.

function(mcc_apply_coverage target)
  if(NOT MCC_COVERAGE)
    return()
  endif()
  if(MSVC)
    message(WARNING "MCC_COVERAGE is gcc/clang-only; ignored under MSVC")
    return()
  endif()
  target_compile_options(${target} INTERFACE --coverage -O0)
  target_link_options(${target} INTERFACE --coverage)
endfunction()
