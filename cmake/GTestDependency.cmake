# GoogleTest acquisition: prefer an installed package (system libgtest-dev or
# a toolchain-provided config), fall back to FetchContent for clean-room
# machines with network access. Defines GTest::gtest and GTest::gtest_main
# either way.

macro(mcc_provide_gtest)
  find_package(GTest CONFIG QUIET)
  if(GTest_FOUND)
    message(STATUS "GoogleTest: using installed package (${GTest_DIR})")
  else()
    message(STATUS "GoogleTest: no installed package, fetching v1.14.0")
    include(FetchContent)
    FetchContent_Declare(
      googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
      URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    # Keep gtest out of the project's warning/sanitizer install set.
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
  endif()
endmacro()
