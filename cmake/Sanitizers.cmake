# ASan + UBSan toggled by -DMCC_SANITIZE=ON (used by the `asan` preset and
# the sanitizer CI job). Applied through the shared interface target so the
# whole tree — libraries, tests, benches — is instrumented consistently.

function(mcc_apply_sanitizers target)
  if(NOT MCC_SANITIZE)
    return()
  endif()
  if(MSVC)
    target_compile_options(${target} INTERFACE /fsanitize=address)
  else()
    set(flags -fsanitize=address,undefined -fno-omit-frame-pointer
        -fno-sanitize-recover=all)
    target_compile_options(${target} INTERFACE ${flags})
    target_link_options(${target} INTERFACE ${flags})
  endif()
endfunction()
