# ASan + UBSan toggled by -DMCC_SANITIZE=ON (used by the `asan` preset and
# the sanitizer CI job), ThreadSanitizer by -DMCC_TSAN=ON (the `tsan`
# preset; exercises the sharded GuidanceCache under concurrent readers).
# The two are mutually exclusive. Applied through the shared interface
# target so the whole tree — libraries, tests, benches — is instrumented
# consistently.

function(mcc_apply_sanitizers target)
  if(MCC_SANITIZE AND MCC_TSAN)
    message(FATAL_ERROR "MCC_SANITIZE (ASan+UBSan) and MCC_TSAN cannot be combined")
  endif()
  if(MCC_SANITIZE)
    if(MSVC)
      target_compile_options(${target} INTERFACE /fsanitize=address)
    else()
      set(flags -fsanitize=address,undefined -fno-omit-frame-pointer
          -fno-sanitize-recover=all)
      target_compile_options(${target} INTERFACE ${flags})
      target_link_options(${target} INTERFACE ${flags})
      # libstdc++ container bounds checks: ASan cannot see e.g. operator[]
      # past size() but within a vector's retained capacity.
      target_compile_definitions(${target} INTERFACE _GLIBCXX_ASSERTIONS)
    endif()
  elseif(MCC_TSAN)
    if(MSVC)
      message(FATAL_ERROR "MCC_TSAN requires GCC or Clang")
    endif()
    set(flags -fsanitize=thread -fno-omit-frame-pointer)
    target_compile_options(${target} INTERFACE ${flags})
    target_link_options(${target} INTERFACE ${flags})
  endif()
endfunction()
