// Distributed stack demo: runs the paper's protocols — labelling by status
// exchange, identification by two-head-on contour messages, boundary
// construction, detection and routing — as real neighbor messages on the
// synchronous simulator, and prints the cost of every phase.
//
//   $ ./distributed_protocol [seed]
#include <cstdlib>
#include <iostream>

#include "core/labeling.h"
#include "mesh/fault_injection.h"
#include "proto/stack2d.h"
#include "util/ascii_viz.h"

using namespace mcc;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const mesh::Mesh2D mesh(20, 14);
  util::Rng rng(seed);
  auto faults = mesh::inject_uniform(mesh, 0.07, rng);
  // Keep the border clear so every region ring is walkable (DESIGN.md §8).
  for (int x = 0; x < mesh.nx(); ++x) {
    faults.set_faulty({x, 0}, false);
    faults.set_faulty({x, mesh.ny() - 1}, false);
  }
  for (int y = 0; y < mesh.ny(); ++y) {
    faults.set_faulty({0, y}, false);
    faults.set_faulty({mesh.nx() - 1, y}, false);
  }

  proto::Stack2D stack(mesh, faults);

  const core::LabelField2D reference(mesh, faults);
  std::cout << "mesh 20x14, " << faults.count() << " faults\n";
  std::cout << util::render_mesh(mesh, reference);

  auto phase = [](const char* name, const sim::RunStats& s) {
    std::cout << "  " << name << ": " << s.rounds << " rounds, "
              << s.messages << " messages, " << s.payload_words
              << " payload words\n";
  };
  std::cout << "protocol phases:\n";
  phase("labelling     ", stack.labeling_stats);
  phase("neighborhood  ", stack.exchange_stats);
  phase("identification", stack.ident_stats);
  phase("boundaries    ", stack.boundary_stats);
  std::cout << "  corners found: " << stack.ident.corners().size()
            << ", regions identified: " << stack.ident.identified()
            << ", discarded: " << stack.ident.discarded()
            << ", records deposited: " << stack.boundary.record_count()
            << "\n\n";

  // Detection + routing as messages.
  const mesh::Coord2 s{1, 1};
  const mesh::Coord2 d{mesh.nx() - 2, mesh.ny() - 2};
  const auto det = proto::run_detect2d(mesh, stack.labeling, s, d);
  std::cout << "detection " << s << " -> " << d << ": +Y walker "
            << (det.y_walker_ok ? "ok" : "blocked") << ", +X walker "
            << (det.x_walker_ok ? "ok" : "blocked") << " ("
            << det.stats.messages << " messages)\n";
  if (det.feasible()) {
    const auto route =
        proto::run_route2d(mesh, stack.labeling, stack.boundary, s, d, seed);
    std::cout << "routing: " << (route.delivered ? "delivered" : "stuck")
              << " in " << route.hops() << " hops (distance "
              << manhattan(s, d) << ")\n";
    util::VizOptions opts;
    opts.boundary = nullptr;
    opts.path = route.path;
    opts.source = s;
    opts.destination = d;
    std::cout << util::render_mesh(mesh, reference, opts);
  }
  return 0;
}
