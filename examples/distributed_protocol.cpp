// Distributed stack demo: runs the paper's protocols — labelling by status
// exchange, identification by two-head-on contour messages, boundary
// construction, detection and routing — as real neighbor messages on the
// synchronous simulator, and prints the cost of every phase plus a
// rendered instance (driver=protocol_cost with render=1).
//
//   $ ./distributed_protocol [seed]
#include <cstdlib>
#include <iostream>

#include "api/experiment.h"

int main(int argc, char** argv) {
  using namespace mcc;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  api::Configuration cfg;
  cfg.load_text(R"(
    driver = protocol_cost
    name = distributed_protocol
    dims = 2
    fault_rates = 0.07
    trials = 1
    render = 1            # one labelled mesh + per-phase costs + a route
    nx = 20
    ny = 14
    fault_pattern = uniform
    fault_rate = 0.07
    clear_border = 1      # keep every region ring walkable (DESIGN.md §8)
  )",
                "distributed_protocol");
  cfg.set("seed", std::to_string(seed));
  cfg.set("fault_seed", std::to_string(seed));

  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  return report.failed() ? 1 : 0;
}
