// Live churn demo: a 3-D wormhole network absorbing fault and repair
// events mid-run. The FaultTimeline (Poisson arrivals, bounded repairs)
// drives the DynamicModel3D — each event relabels only its cascade
// neighborhood and bumps the epoch — while the network flushes severed
// worms and every surviving head re-routes from epoch-fresh cached
// guidance. The whole scenario is one wormhole_churn config; swap
// policy=fault_block or dims=2 to churn the baselines or a 2-D mesh.
//
// Usage: dynamic_churn [seed]
#include <cstdlib>
#include <iostream>

#include "api/experiment.h"

int main(int argc, char** argv) {
  using namespace mcc;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  api::Configuration cfg;
  cfg.load_text(R"(
    driver = wormhole_churn
    name = dynamic_churn
    dims = 3
    k = 8
    fault_model = dynamic
    fault_rate = 0.02
    policy = model          # DynamicMccRouting3D over the epoch cache
    traffic = uniform
    rates = 0.015
    churn = 4               # ~4 strikes per 1000 cycles
    churn_horizon = 1500
    repair_min = 150
    repair_max = 600
    warmup = 300
    measure = 1300
    drain = 20000
  )",
                "dynamic_churn");
  cfg.set("seed", std::to_string(seed));
  cfg.set("fault_seed", std::to_string(seed));

  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  return report.failed() ? 1 : 0;
}
