// Live churn demo: a 3-D wormhole network absorbing fault and repair
// events mid-run. A FaultTimeline (Poisson arrivals, bounded repairs)
// drives the DynamicModel3D — each event relabels only its cascade
// neighborhood, merges/splits the affected MCCs and bumps the epoch — and
// the network flushes the worms the event severed while every surviving
// head re-routes from epoch-fresh cached guidance at its next decision.
//
// Usage: dynamic_churn [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "mesh/fault_injection.h"
#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"
#include "sim/wormhole/dynamic_routing.h"
#include "sim/wormhole/network.h"
#include "sim/wormhole/traffic.h"
#include "util/scenario.h"

int main(int argc, char** argv) {
  using namespace mcc;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const mesh::Mesh3D mesh(8, 8, 8);
  util::Rng rng(seed);
  const mesh::FaultSet3D initial = mesh::inject_uniform(mesh, 0.02, rng);

  runtime::DynamicModel3D model(mesh, initial);
  sim::wh::DynamicMccRouting3D routing(model);

  sim::wh::Config cfg;
  cfg.drop_infeasible = true;
  sim::wh::Network3D net(mesh, model.faults(), routing, cfg,
                         core::RoutePolicy::Random, seed);
  sim::wh::TrafficGen3D traffic(mesh, model.faults(), routing,
                                sim::wh::Pattern::Uniform, seed + 1);

  util::ChurnParams p;
  p.rate = 0.004;  // ~4 strikes per 1000 cycles
  p.horizon = 1500;
  p.repair_min = 150;
  p.repair_max = 600;
  auto timeline = runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

  std::cout << "8x8x8 wormhole under churn: " << initial.count()
            << " initial faults, " << timeline.events().size()
            << " scheduled events, seed " << seed << "\n\n";

  const uint64_t run_cycles = 2200;
  while (net.cycle() < run_cycles) {
    while (const auto* e = timeline.next_due(net.cycle())) {
      const auto rep =
          e->repair ? model.repair(e->node) : model.fail(e->node);
      if (rep.epoch == 0) continue;
      if (e->repair)
        net.apply_repair(e->node);
      else
        net.apply_fault(e->node);
      std::cout << "cycle " << net.cycle() << ": "
                << (e->repair ? "REPAIR" : "FAULT ") << " at (" << e->node.x
                << "," << e->node.y << "," << e->node.z << ")  epoch "
                << rep.epoch << ", relabeled " << rep.relabeled_total()
                << " cells across 8 octants, in flight "
                << net.in_flight() << ", dropped so far "
                << net.stats().dropped_packets << "\n";
    }
    if (net.cycle() < run_cycles - 600) traffic.tick(net, 0.015);
    net.step();
  }
  while (!net.idle() && net.cycle() < run_cycles + 20000) net.step();

  const auto& st = net.stats();
  const auto cache = model.cache().stats();
  std::cout << "\ninjected " << st.injected_packets << " packets, delivered "
            << st.delivered_packets << ", dropped by events "
            << st.dropped_packets << " (" << st.dropped_flits << " flits)\n"
            << "fault events " << st.fault_events << ", repair events "
            << st.repair_events << ", violations " << st.violations.size()
            << ", drained " << (net.idle() ? "yes" : "NO") << "\n"
            << "guidance cache: " << cache.hits << " hits / " << cache.misses
            << " misses (hit rate "
            << static_cast<int>(cache.hit_rate() * 100 + 0.5) << "%), final epoch "
            << model.epoch() << "\n";
  return st.violations.empty() && net.idle() ? 0 : 1;
}
