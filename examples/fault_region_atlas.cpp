// Fault-region atlas: renders the canonical fault patterns of the paper
// and shows how the MCC model absorbs fewer healthy nodes than the
// rectangular block models (Figure 1 of the paper, live). Each pattern is
// one region_atlas config — the patterns themselves are registry entries,
// so a new adversarial shape is one Registry::add() away.
//
//   $ ./fault_region_atlas [seed]
#include <cstdlib>
#include <iostream>

#include "api/experiment.h"

namespace {

int show(const std::string& name, const std::string& pattern, int nx, int ny,
         uint64_t fault_seed, double rate = 0) {
  mcc::api::Configuration cfg;
  cfg.set("driver", "region_atlas");
  cfg.set("name", name);
  cfg.set("dims", "2");
  cfg.set("nx", std::to_string(nx));
  cfg.set("ny", std::to_string(ny));
  cfg.set("fault_pattern", pattern);
  cfg.set("fault_rate", std::to_string(rate));
  cfg.set("fault_seed", std::to_string(fault_seed));
  cfg.set("render", pattern == "uniform" ? "1" : "0");
  mcc::api::RunReport report = mcc::api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  int rc = 0;
  // Descending staircase: worst case for the (+,+) quadrant — the MCC fill
  // absorbs the whole shadow, as does every block model.
  rc |= show("descending staircase (fills: the diagonal is impassable NE)",
             "staircase_down", 12, 10, 1);
  // Ascending staircase: every diagonal gap is passable toward NE; the MCC
  // model absorbs nothing while the bounding box swallows 4x4.
  rc |= show("ascending staircase (no fill: orientation-awareness)",
             "staircase_up", 12, 10, 1);
  // Concave pocket: the fill closes the trap exactly.
  rc |= show("L-shaped wall (the pocket fills as can't-reach)", "lshape", 12,
             10, 1);
  // Random field with boundary records marked.
  rc |= show("random 8% faults with boundary records ('r')", "uniform", 24,
             16, seed, 0.08);
  return rc;
}
