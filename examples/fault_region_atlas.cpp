// Fault-region atlas: renders the canonical fault patterns of the paper and
// shows how the MCC model absorbs fewer healthy nodes than the rectangular
// block models (Figure 1 of the paper, live).
//
//   $ ./fault_region_atlas [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/fault_block.h"
#include "core/boundary2d.h"
#include "mesh/fault_injection.h"
#include "util/ascii_viz.h"
#include "util/rng.h"

using namespace mcc;

namespace {

void show(const char* title, const mesh::Mesh2D& m,
          const mesh::FaultSet2D& f, bool with_boundaries = false) {
  const core::LabelField2D labels(m, f);
  const core::MccSet2D mccs(m, labels);
  const core::Boundary2D boundary(m, labels, mccs);
  const auto safety = baselines::safety_fill(m, f);
  const auto bbox = baselines::bounding_box_fill(m, f);

  std::cout << "== " << title << "\n";
  util::VizOptions opts;
  if (with_boundaries) opts.boundary = &boundary;
  std::cout << util::render_mesh(m, labels, opts);
  std::cout << "faults=" << f.count()
            << "  MCC healthy-absorbed=" << labels.healthy_unsafe_count()
            << "  safety-blocks=" << safety.healthy_unsafe_count()
            << "  bounding-box=" << bbox.healthy_unsafe_count()
            << "  regions=" << mccs.regions().size()
            << "  boundary records=" << boundary.record_count() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  {
    // Descending staircase: worst case for the (+,+) quadrant — the MCC
    // fill absorbs the whole shadow, as does every block model.
    const mesh::Mesh2D m(12, 10);
    mesh::FaultSet2D f(m);
    for (const mesh::Coord2 c :
         {mesh::Coord2{3, 7}, mesh::Coord2{4, 6}, mesh::Coord2{5, 5},
          mesh::Coord2{6, 4}})
      f.set_faulty(c);
    show("descending staircase (fills: the diagonal is impassable NE)", m,
         f);
  }
  {
    // Ascending staircase: every diagonal gap is passable toward NE; the
    // MCC model absorbs nothing while the bounding box swallows 4x4.
    const mesh::Mesh2D m(12, 10);
    mesh::FaultSet2D f(m);
    for (const mesh::Coord2 c :
         {mesh::Coord2{3, 3}, mesh::Coord2{4, 4}, mesh::Coord2{5, 5},
          mesh::Coord2{6, 6}})
      f.set_faulty(c);
    show("ascending staircase (no fill: orientation-awareness)", m, f);
  }
  {
    // Concave pocket: the fill closes the trap exactly.
    const mesh::Mesh2D m(12, 10);
    mesh::FaultSet2D f(m);
    mesh::add_wall_x(f, m, 3, 2, 6);
    mesh::add_wall_y(f, m, 3, 7, 2);
    show("L-shaped wall (the pocket fills as can't-reach)", m, f);
  }
  {
    // Random field with boundary records marked.
    const mesh::Mesh2D m(24, 16);
    util::Rng rng(seed);
    const auto f = mesh::inject_uniform(m, 0.08, rng);
    show("random 8% faults with boundary records ('r')", m, f, true);
  }
  return 0;
}
