// Quickstart: build a mesh, inject faults, inspect the MCC fault regions,
// check minimal-path feasibility and route a message — all through the
// experiment API's one front door. The same scenario is runnable as
// `mcc_run configs/quickstart.cfg`, and any key can be overridden the same
// way (`mcc_run configs/quickstart.cfg k=32 fault_rate=0.12`).
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "api/experiment.h"

int main(int argc, char** argv) {
  using namespace mcc;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  api::Configuration cfg;
  cfg.load_text(R"(
    driver = route_demo
    name = quickstart
    dims = 2
    k = 16
    fault_pattern = uniform
    fault_rate = 0.08
    policy = model        # the paper's record rule in 2-D
    route_policy = random
  )",
                "quickstart");
  cfg.set("seed", std::to_string(seed));

  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  return report.failed() ? 1 : 0;
}
