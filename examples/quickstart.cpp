// Quickstart: build a mesh, inject faults, inspect the MCC fault regions,
// check minimal-path feasibility and route a message.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/model.h"
#include "mesh/fault_injection.h"

int main(int argc, char** argv) {
  using namespace mcc;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A 16x16 2-D mesh with 8% random node faults; the corners we route
  // between stay alive.
  const mesh::Mesh2D mesh(16, 16);
  util::Rng rng(seed);
  const mesh::Coord2 s{0, 0}, d{15, 15};
  auto faults = mesh::inject_uniform(mesh, 0.08, rng, {s, d});
  std::cout << "mesh 16x16, " << faults.count() << " faulty nodes\n";

  const core::MccModel2D model(mesh, faults);

  // The canonical-octant view for routing s -> d.
  const auto& oct = model.octant(mesh::Octant2::from_pair(s, d));
  std::cout << "MCC fault regions: " << oct.mccs.regions().size()
            << " (healthy nodes absorbed: "
            << oct.labels.healthy_unsafe_count() << ")\n";

  const auto feas = model.feasible(s, d);
  std::cout << "minimal path s->d exists: " << (feas.feasible ? "yes" : "no")
            << "\n";
  if (!feas.feasible) return 0;

  const auto route = model.route(s, d, core::RouterKind::Records,
                                 core::RoutePolicy::Random, seed);
  std::cout << "routed in " << route.hops() << " hops (distance "
            << manhattan(s, d) << ")\npath:";
  for (const auto c : route.path) std::cout << ' ' << c;
  std::cout << '\n';
  return route.delivered ? 0 : 1;
}
