// 3-D routing demo on the paper's own example (Figure 5): the fault set
// {(5,5,6),(6,5,5),(5,6,5),(6,7,5),(7,6,5),(5,4,7),(4,5,7),(7,8,4)} in a
// 10x10x10 mesh, registered as fault_pattern=figure5 in the experiment
// API. Shows the labelling counts (the paper's useless/can't-reach nodes),
// the MCC regions and an adaptively routed minimal path via the per-hop
// detection floods (policy=model in 3-D).
//
//   $ ./routing_3d
#include <iostream>

#include "api/experiment.h"

int main() {
  using namespace mcc;
  api::Configuration cfg;
  cfg.load_text(R"(
    driver = route_demo
    name = routing_3d (paper Figure 5)
    dims = 3
    k = 10
    fault_pattern = figure5
    policy = model        # Algorithm 6's detection floods per hop
    route_policy = balanced
    seed = 7
  )",
                "routing_3d");

  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  return report.failed() ? 1 : 0;
}
