// 3-D routing demo on the paper's own example (Figure 5): the fault set
// {(5,5,6),(6,5,5),(5,6,5),(6,7,5),(7,6,5),(5,4,7),(4,5,7),(7,8,4)} in a
// 10x10x10 mesh. Shows the labelling, the two MCCs, the feasibility
// surfaces and several adaptively routed minimal paths.
//
//   $ ./routing_3d
#include <iostream>

#include "core/feasibility3d.h"
#include "core/model.h"
#include "mesh/fault_injection.h"

using namespace mcc;

int main() {
  const mesh::Mesh3D mesh(10, 10, 10);
  mesh::FaultSet3D faults(mesh);
  for (const mesh::Coord3 c :
       {mesh::Coord3{5, 5, 6}, mesh::Coord3{6, 5, 5}, mesh::Coord3{5, 6, 5},
        mesh::Coord3{6, 7, 5}, mesh::Coord3{7, 6, 5}, mesh::Coord3{5, 4, 7},
        mesh::Coord3{4, 5, 7}, mesh::Coord3{7, 8, 4}})
    faults.set_faulty(c);

  const core::MccModel3D model(mesh, faults);
  const auto& oct = model.octant(mesh::Octant3{});

  std::cout << "Figure-5 fault set: " << faults.count() << " faults\n";
  std::cout << "labelling: " << oct.labels.useless_count() << " useless ("
            << "(5,5,5) per the paper), " << oct.labels.cant_reach_count()
            << " can't-reach ((5,5,7))\n";
  std::cout << "MCC regions: " << oct.mccs.regions().size()
            << " (the 9-cell component and the lone fault (7,8,4))\n\n";

  const mesh::Coord3 s{0, 0, 0};
  for (const mesh::Coord3 d :
       {mesh::Coord3{9, 9, 9}, mesh::Coord3{6, 6, 8}, mesh::Coord3{8, 9, 6}}) {
    const auto det = core::detect3d(mesh, oct.labels, s, d);
    std::cout << "s=" << s << " d=" << d
              << "  surfaces: (-X)->" << (det.x_surface_ok ? "yes" : "no")
              << " (-Y)->" << (det.y_surface_ok ? "yes" : "no")
              << " (-Z)->" << (det.z_surface_ok ? "yes" : "no") << "\n";
    if (!det.feasible()) continue;
    for (const core::RoutePolicy policy :
         {core::RoutePolicy::XFirst, core::RoutePolicy::Balanced,
          core::RoutePolicy::Random}) {
      const auto r = model.route(s, d, core::RouterKind::Flood, policy, 7);
      std::cout << "  " << core::to_string(policy) << " (" << r.hops()
                << " hops):";
      for (const auto c : r.path) std::cout << ' ' << c;
      std::cout << '\n';
    }
  }

  // A destination whose minimal rectangle is sealed: feasibility says no
  // and the router refuses to inject the message.
  mesh::FaultSet3D sealed(mesh);
  mesh::add_plate_z(sealed, mesh, 0, 5, 0, 5, 3);
  const core::MccModel3D blocked(mesh, sealed);
  const auto verdict = blocked.feasible({0, 0, 0}, {5, 5, 5});
  std::cout << "\nfull plate under (5,5,5): feasible="
            << (verdict.feasible ? "yes" : "no")
            << " (detection rejects at the source, Algorithm 6 phase 1)\n";
  return 0;
}
