// Wormhole demo: drive Bernoulli uniform and hotspot traffic through the
// flit-level simulator on a small 3-D mesh with a clustered fault region,
// and print the latency/throughput picture at two load points — one
// config through the experiment façade instead of a hand-wired main.
//
//   ./wormhole_traffic [seed]
#include <cstdlib>
#include <iostream>

#include "api/experiment.h"

int main(int argc, char** argv) {
  using namespace mcc;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  api::Configuration cfg;
  cfg.load_text(R"(
    driver = wormhole_load
    name = wormhole_traffic
    dims = 3
    k = 6
    fault_pattern = clustered
    fault_count = 14
    fault_clusters = 2
    policy = model
    traffic = uniform, hotspot
    rates = 0.01, 0.04
    warmup = 200
    measure = 1000
  )",
                "wormhole_traffic");
  cfg.set("seed", std::to_string(seed));
  cfg.set("fault_seed", std::to_string(seed));

  api::RunReport report = api::Experiment(std::move(cfg)).run();
  report.render(std::cout);
  return report.failed() ? 1 : 0;
}
