// Wormhole demo: drive Bernoulli uniform and hotspot traffic through the
// flit-level simulator on a small 3-D mesh with a clustered fault region,
// and print the latency/throughput picture at two load points.
//
//   ./wormhole_traffic [seed]
#include <cstdlib>
#include <iostream>

#include "mesh/fault_injection.h"
#include "sim/wormhole/driver.h"

int main(int argc, char** argv) {
  using namespace mcc;
  using sim::wh::Config;
  using sim::wh::GuidanceMode;
  using sim::wh::LoadPoint;
  using sim::wh::Pattern;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  const mesh::Mesh3D m(6, 6, 6);
  util::Rng frng(seed);
  const auto faults = mesh::inject_clustered(m, 14, 2, frng);
  sim::wh::MccRouting3D routing(m, faults, GuidanceMode::Model);

  std::cout << "6x6x6 mesh, " << faults.count()
            << " dead nodes (clustered), MCC-guided adaptive minimal "
               "routing, 4-flit packets\n\n";

  Config cfg;
  for (const Pattern p : {Pattern::Uniform, Pattern::Hotspot}) {
    for (const double rate : {0.01, 0.04}) {
      LoadPoint load;
      load.rate = rate;
      load.warmup = 200;
      load.measure = 1000;
      const auto r = sim::wh::run_load_point3d(
          m, faults, routing, p, cfg, core::RoutePolicy::Random, load, seed);
      std::cout << to_string(p) << " @ " << rate << " pkt/node/cycle:"
                << "  accepted " << r.accepted_flits << " flits/node/cycle"
                << ", avg latency " << r.avg_latency << " cycles"
                << ", p99 " << r.p99_latency << ", "
                << (r.saturated ? "saturated" : "stable")
                << (r.deadlocked ? " [DEADLOCK]" : "") << "\n";
      if (r.deadlocked || r.violations != 0) return 1;
    }
  }
  std::cout << "\nAll load points drained completely after injection "
               "stopped: the per-octant VC classes keep\nthe adaptive "
               "wormhole network deadlock-free around the fault regions.\n";
  return 0;
}
