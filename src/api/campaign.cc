#include "api/campaign.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <set>
#include <stdexcept>

#include "api/experiment.h"
#include "util/table.h"

namespace mcc::api {

uint64_t derive_point_seed(
    uint64_t base_seed,
    const std::vector<std::pair<std::string, std::string>>& coords) {
  // FNV-1a over the base seed and the coordinates in sorted-key order:
  // independent of axis declaration order, value order and point index.
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  unsigned char seed_bytes[8];
  for (int i = 0; i < 8; ++i)
    seed_bytes[i] = static_cast<unsigned char>(base_seed >> (8 * i));
  mix(seed_bytes, sizeof seed_bytes);
  std::vector<std::pair<std::string, std::string>> sorted = coords;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [key, value] : sorted) {
    // threads= is a wall-clock knob, not a scenario knob: points that
    // differ only in thread count must run the SAME seed, so a
    // sweep.threads axis (configs/e11_parallel.cfg) produces identical
    // point tables — the tick's thread-count invariance, kept observable.
    if (key == "threads") continue;
    mix(key.data(), key.size());
    mix("\x1f", 1);
    mix(value.data(), value.size());
    mix("\x1e", 1);
  }
  if (h == 0) h = 0x9E3779B97F4A7C15ULL;  // seed 0 means "derive" downstream
  return h;
}

namespace {

std::string coords_label(
    const std::vector<std::pair<std::string, std::string>>& coords) {
  std::string label;
  for (const auto& [key, value] : coords) {
    if (!label.empty()) label += ",";
    label += key + "=" + value;
  }
  return label;
}

}  // namespace

Campaign::Campaign(Configuration base) : cfg_(std::move(base)) {
  register_builtins();
  axes_ = cfg_.sweep_axes();
  if (axes_.empty())
    throw ConfigError(
        "config: no sweep.* axes — run this configuration as a single "
        "Experiment (mcc_run picks the right layer automatically)");
  std::set<std::string> swept;
  for (const SweepAxis& axis : axes_)
    for (const std::string& key : axis.keys)
      if (!swept.insert(key).second)
        throw ConfigError("config: key '" + key +
                          "' appears in more than one sweep axis");

  name_ = cfg_.get_string("name");
  if (name_.empty()) name_ = cfg_.get_string("driver");
  if (name_.empty()) name_ = "campaign";
  base_seed_ = cfg_.get_uint64("seed");

  const auto cap = static_cast<uint64_t>(cfg_.get_int("max_points"));
  uint64_t count = 1;
  for (const SweepAxis& axis : axes_) {
    count *= axis.points.size();
    if (count > cap)
      throw ConfigError(
          "config: campaign expands past max_points=" + std::to_string(cap) +
          " (axis '" + axis.label +
          "' alone brings the product to " + std::to_string(count) +
          "+); raise max_points= if the grid is intended");
  }

  const Configuration stripped = cfg_.strip_sweeps();
  points_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CampaignPoint pt;
    pt.index = i;
    // Row-major expansion: the first-declared axis varies slowest.
    std::vector<size_t> digit(axes_.size(), 0);
    uint64_t rem = i;
    for (size_t a = axes_.size(); a-- > 0;) {
      digit[a] = rem % axes_[a].points.size();
      rem /= axes_[a].points.size();
    }
    for (size_t a = 0; a < axes_.size(); ++a)
      for (size_t k = 0; k < axes_[a].keys.size(); ++k)
        pt.coords.emplace_back(axes_[a].keys[k],
                               axes_[a].points[digit[a]][k]);

    Configuration pc = stripped;
    for (const auto& [key, value] : pt.coords) pc.set(key, value);
    pt.seed = derive_point_seed(base_seed_, pt.coords);
    pc.set("seed", std::to_string(pt.seed));
    // A point never writes its own files; the campaign owns the outputs
    // (trace/flit paths would collide across points, and progress_json is
    // a campaign-level heartbeat). The obs paths are cleared only when
    // actually set: an unconditional set would add them to every point's
    // config echo and drift the committed campaign baselines.
    pc.set("report_json", "");
    pc.set("bench_json", "");
    pc.set("campaign_json", "");
    for (const char* key : {"trace_json", "flit_trace", "progress_json"})
      if (!pc.get_string(key).empty()) pc.set(key, "");
    pc.set("name", name_ + "@" + coords_label(pt.coords));
    pt.config = std::move(pc);

    // Resolve the point against the registries now, so a bad combination
    // fails before any sibling burns compute.
    Experiment probe(pt.config);
    (void)probe;
    points_.push_back(std::move(pt));
  }
}

std::string Campaign::json_path() const {
  std::string path = cfg_.get_string("campaign_json");
  if (path.empty()) path = cfg_.get_string("report_json");
  return path;
}

std::vector<Campaign::PointResult> Campaign::run_shard(
    int shard, int shard_count, std::ostream* progress) const {
  if (shard_count < 1 || shard < 1 || shard > shard_count)
    throw ConfigError("campaign: shard must be i/N with 1 <= i <= N");

  // Live-progress heartbeat: one mcc.progress/1 NDJSON line appended per
  // event. Each line is written through its own append-mode open+close so
  // forked --jobs workers interleave whole lines (O_APPEND), never
  // fragments; a monitoring harness can tail the file while the campaign
  // runs. Write failures are deliberately ignored — the heartbeat must
  // never fail the campaign.
  const std::string progress_path = cfg_.get_string("progress_json");
  const std::string shard_label =
      std::to_string(shard) + "/" + std::to_string(shard_count);
  const auto heartbeat = [&](Json line) {
    if (progress_path.empty()) return;
    line.set("shard", Json::string(shard_label));
    std::ofstream f(progress_path, std::ios::app);
    if (f) f << line.dump() << "\n";
  };
  const auto progress_event = [&](const char* ev) {
    Json line = Json::object();
    line.set("schema", Json::string(kProgressSchema));
    line.set("ev", Json::string(ev));
    return line;
  };
  size_t shard_points = 0;
  for (const CampaignPoint& pt : points_)
    if (pt.index % static_cast<size_t>(shard_count) ==
        static_cast<size_t>(shard - 1))
      ++shard_points;
  {
    Json line = progress_event("shard_start");
    line.set("name", Json::string(name_));
    line.set("points", Json::number(static_cast<uint64_t>(shard_points)));
    line.set("total", Json::number(static_cast<uint64_t>(points_.size())));
    heartbeat(std::move(line));
  }

  std::vector<PointResult> out;
  for (const CampaignPoint& pt : points_) {
    if (pt.index % static_cast<size_t>(shard_count) !=
        static_cast<size_t>(shard - 1))
      continue;
    const std::string label = coords_label(pt.coords);
    PointResult r;
    r.index = pt.index;
    std::string status;
    try {
      Experiment exp(pt.config);
      const RunReport report = exp.run();
      r.failed = report.failed();
      r.report = report.to_json();
      status = r.failed ? "FAILED: " + report.failure() : "ok";
    } catch (const std::exception& e) {
      // A point that throws is a failed point, not a failed campaign: the
      // siblings still run and the merged document flags this one.
      RunReport report(pt.config.get_string("name"),
                       pt.config.get_string("driver"), pt.seed);
      report.set_config_echo(pt.config.echo());
      report.fail(e.what());
      r.failed = true;
      r.report = report.to_json();
      status = std::string("FAILED: ") + e.what();
    }
    if (progress != nullptr)
      *progress << "[" << pt.index + 1 << "/" << points_.size() << "] "
                << label << ": " << status << "\n";
    {
      Json line = progress_event("point");
      line.set("index", Json::number(static_cast<uint64_t>(pt.index)));
      line.set("total", Json::number(static_cast<uint64_t>(points_.size())));
      line.set("coords", Json::string(label));
      line.set("failed", Json::boolean(r.failed));
      heartbeat(std::move(line));
    }
    out.push_back(std::move(r));
  }
  {
    size_t failed_points = 0;
    for (const PointResult& r : out)
      if (r.failed) ++failed_points;
    Json line = progress_event("shard_done");
    line.set("points", Json::number(static_cast<uint64_t>(out.size())));
    line.set("failed", Json::number(static_cast<uint64_t>(failed_points)));
    heartbeat(std::move(line));
  }
  return out;
}

std::vector<Campaign::PointResult> Campaign::run(
    int jobs, std::ostream* progress) const {
  if (jobs < 1) jobs = 1;
  jobs = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs), points_.size()));
  if (jobs <= 1) return run_shard(1, 1, progress);

  // One forked worker per shard. Workers are forked before any point has
  // run, so no thread pool exists yet (parallel_for pools are per-call);
  // each worker ships its partial document back over a pipe and exits
  // without running atexit handlers.
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Worker> workers;
  for (int j = 0; j < jobs; ++j) {
    int fds[2];
    if (pipe(fds) != 0) throw ConfigError("campaign: pipe() failed");
    const pid_t pid = fork();
    if (pid < 0) throw ConfigError("campaign: fork() failed");
    if (pid == 0) {
      close(fds[0]);
      int code = 0;
      try {
        const auto results = run_shard(j + 1, jobs, nullptr);
        const std::string doc = to_json(results, j + 1, jobs).dump();
        size_t off = 0;
        while (off < doc.size()) {
          const ssize_t n =
              write(fds[1], doc.data() + off, doc.size() - off);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) {
            code = 3;
            break;
          }
          off += static_cast<size_t>(n);
        }
      } catch (...) {
        code = 3;
      }
      close(fds[1]);
      _exit(code);
    }
    close(fds[1]);
    workers.push_back({pid, fds[0]});
  }

  std::vector<Json> partials;
  std::string problem;
  for (size_t j = 0; j < workers.size(); ++j) {
    const Worker& w = workers[j];
    std::string doc;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = read(w.fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        problem = "campaign: worker pipe read failed";
        break;
      }
      if (n == 0) break;
      doc.append(buf, static_cast<size_t>(n));
    }
    close(w.fd);
    int status = 0;
    waitpid(w.pid, &status, 0);
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      // A worker that died (a point segfaulted, the OOM killer struck, …)
      // fails its own shard's points, not the whole campaign: the sibling
      // shards' finished results are kept, and each lost point carries a
      // failure naming the signal so the merged document says what
      // happened and where.
      const std::string shard_label =
          std::to_string(j + 1) + "/" + std::to_string(jobs);
      std::string why;
      if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        const char* name = strsignal(sig);
        why = "campaign: worker shard " + shard_label +
              " killed by signal " + std::to_string(sig) + " (" +
              (name != nullptr ? name : "?") + ")";
      } else {
        why = "campaign: worker shard " + shard_label +
              " exited with code " +
              std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      }
      std::vector<PointResult> lost;
      for (const CampaignPoint& pt : points_) {
        if (pt.index % static_cast<size_t>(jobs) != j) continue;
        PointResult r;
        r.index = pt.index;
        r.failed = true;
        RunReport report(pt.config.get_string("name"),
                         pt.config.get_string("driver"), pt.seed);
        report.set_config_echo(pt.config.echo());
        report.fail(why);
        r.report = report.to_json();
        lost.push_back(std::move(r));
      }
      partials.push_back(to_json(lost, static_cast<int>(j) + 1, jobs));
      continue;
    }
    std::string error;
    Json parsed = Json::parse(doc, error);
    if (!error.empty()) {
      problem = "campaign: worker emitted unparsable JSON: " + error;
      continue;
    }
    partials.push_back(std::move(parsed));
  }
  // Pipe loss or a clean worker shipping garbage is a RUN failure, not a
  // configuration error: surface it on the exit-1 path, so retrying
  // harnesses classify it.
  if (!problem.empty()) throw std::runtime_error(problem);

  const Json merged = merge(partials);
  std::vector<PointResult> out;
  for (const Json& p : merged.find("points")->items()) {
    PointResult r;
    r.index = static_cast<size_t>(p.find("index")->as_uint64());
    r.failed = p.find("failed")->as_bool();
    r.report = *p.find("report");
    if (progress != nullptr) {
      const Json* failure = r.report.find("failure");
      *progress << "[" << r.index + 1 << "/" << points_.size() << "] "
                << coords_label(points_[r.index].coords) << ": "
                << (r.failed ? "FAILED: " + (failure != nullptr
                                                 ? failure->as_string()
                                                 : std::string("?"))
                             : std::string("ok"))
                << "\n";
    }
    out.push_back(std::move(r));
  }
  return out;
}

Json Campaign::to_json(const std::vector<PointResult>& results, int shard,
                       int shard_count) const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kCampaignSchema));
  doc.set("name", Json::string(name_));
  doc.set("seed", Json::number(base_seed_));
  Json cfg = Json::object();
  // The header describes the scenario grid; where THIS process wrote its
  // file is not part of it (shards pass different paths, and the merged
  // document must be byte-identical across shard counts).
  for (const auto& [k, v] : cfg_.echo())
    if (k != "report_json" && k != "campaign_json" && k != "bench_json" &&
        k != "trace_json" && k != "flit_trace" && k != "progress_json")
      cfg.set(k, Json::string(v));
  doc.set("config", std::move(cfg));
  Json axes = Json::array();
  for (const SweepAxis& axis : axes_) {
    Json ja = Json::object();
    ja.set("label", Json::string(axis.label));
    Json keys = Json::array();
    for (const std::string& k : axis.keys) keys.push_back(Json::string(k));
    ja.set("keys", std::move(keys));
    Json values = Json::array();
    for (const auto& row : axis.points) {
      Json jr = Json::array();
      for (const std::string& v : row) jr.push_back(Json::string(v));
      values.push_back(std::move(jr));
    }
    ja.set("values", std::move(values));
    axes.push_back(std::move(ja));
  }
  doc.set("axes", std::move(axes));
  doc.set("point_count", Json::number(static_cast<uint64_t>(points_.size())));
  doc.set("shard", Json::string(std::to_string(shard) + "/" +
                                std::to_string(shard_count)));
  bool failed = false;
  for (const PointResult& r : results) failed = failed || r.failed;
  doc.set("failed", Json::boolean(failed));
  Json pts = Json::array();
  for (const PointResult& r : results) {
    Json p = Json::object();
    p.set("index", Json::number(static_cast<uint64_t>(r.index)));
    Json coords = Json::object();
    for (const auto& [k, v] : points_[r.index].coords)
      coords.set(k, Json::string(v));
    p.set("coords", std::move(coords));
    p.set("seed", Json::number(points_[r.index].seed));
    p.set("failed", Json::boolean(r.failed));
    p.set("report", r.report);
    pts.push_back(std::move(p));
  }
  doc.set("points", std::move(pts));
  return doc;
}

Json Campaign::merge(const std::vector<Json>& partials) {
  if (partials.empty())
    throw ConfigError("campaign: merge needs at least one partial document");
  static constexpr const char* kHeader[] = {"schema", "name",  "seed",
                                            "config", "axes", "point_count"};
  for (const Json& p : partials) {
    if (!p.is_object())
      throw ConfigError("campaign: merge input is not a JSON object");
    for (const char* key : kHeader)
      if (p.find(key) == nullptr)
        throw ConfigError(std::string("campaign: merge input misses '") +
                          key + "'");
    const Json* schema = p.find("schema");
    if (!schema->is_string() || schema->as_string() != kCampaignSchema)
      throw ConfigError("campaign: merge input is not " +
                        std::string(kCampaignSchema));
  }
  const Json& first = partials.front();
  for (const Json& p : partials)
    for (const char* key : kHeader)
      if (p.find(key)->dump() != first.find(key)->dump())
        throw ConfigError(std::string("campaign: partials disagree on '") +
                          key + "' — they come from different campaigns");

  const auto point_count =
      static_cast<uint64_t>(first.find("point_count")->as_uint64());
  // Sizes the index table below; max_points= bounds real campaigns at
  // 1e8, so anything larger is a corrupt partial, not a grid.
  if (point_count > 100000000)
    throw ConfigError("campaign: implausible point_count " +
                      std::to_string(point_count) + " in a partial");
  std::vector<const Json*> by_index(point_count, nullptr);
  for (const Json& p : partials) {
    const Json* pts = p.find("points");
    if (pts == nullptr || !pts->is_array())
      throw ConfigError("campaign: merge input misses points[]");
    for (const Json& pt : pts->items()) {
      const Json* idx = pt.find("index");
      if (idx == nullptr || !idx->is_number())
        throw ConfigError("campaign: a merged point misses its index");
      const uint64_t i = idx->as_uint64();
      if (i >= point_count)
        throw ConfigError("campaign: point index " + std::to_string(i) +
                          " out of range (point_count " +
                          std::to_string(point_count) + ")");
      if (by_index[i] != nullptr)
        throw ConfigError("campaign: point " + std::to_string(i) +
                          " appears in more than one partial");
      by_index[i] = &pt;
    }
  }
  std::string missing;
  for (uint64_t i = 0; i < point_count; ++i)
    if (by_index[i] == nullptr) {
      if (!missing.empty()) missing += ", ";
      missing += std::to_string(i);
    }
  if (!missing.empty())
    throw ConfigError("campaign: merge is missing points " + missing +
                      " — run (or pass) the remaining shards");

  // Rebuilt fresh with a fixed member order, so the merged document is
  // byte-identical for every shard count and partial order.
  Json doc = Json::object();
  doc.set("schema", *first.find("schema"));
  doc.set("name", *first.find("name"));
  doc.set("seed", *first.find("seed"));
  doc.set("config", *first.find("config"));
  doc.set("axes", *first.find("axes"));
  doc.set("point_count", *first.find("point_count"));
  bool failed = false;
  for (const Json* pt : by_index) {
    const Json* f = pt->find("failed");
    failed = failed || (f != nullptr && f->is_bool() && f->as_bool());
  }
  doc.set("failed", Json::boolean(failed));
  Json pts = Json::array();
  for (const Json* pt : by_index) pts.push_back(*pt);
  doc.set("points", std::move(pts));
  return doc;
}

void Campaign::render_summary(const Json& doc, std::ostream& os) {
  const Json* name = doc.find("name");
  const Json* points = doc.find("points");
  const Json* axes = doc.find("axes");
  const Json* count = doc.find("point_count");
  if (name == nullptr || points == nullptr || axes == nullptr ||
      count == nullptr)
    return;
  std::vector<std::string> keys;
  std::string axis_desc;
  for (const Json& axis : axes->items()) {
    const Json* label = axis.find("label");
    if (label != nullptr) {
      if (!axis_desc.empty()) axis_desc += " x ";
      axis_desc += label->as_string();
    }
    const Json* ak = axis.find("keys");
    if (ak != nullptr)
      for (const Json& k : ak->items()) keys.push_back(k.as_string());
  }
  os << "\n# campaign " << name->as_string() << ": "
     << static_cast<uint64_t>(count->as_uint64()) << " points over "
     << axis_desc;
  const Json* shard = doc.find("shard");
  if (shard != nullptr && shard->is_string() &&
      shard->as_string() != "1/1")
    os << " — shard " << shard->as_string() << " ("
       << points->items().size() << " points)";
  os << "\n\n";

  std::vector<std::string> headers{"point"};
  headers.insert(headers.end(), keys.begin(), keys.end());
  headers.push_back("seed");
  headers.push_back("status");
  util::Table t(std::move(headers));
  for (const Json& pt : points->items()) {
    std::vector<std::string> row;
    const Json* idx = pt.find("index");
    row.push_back(idx != nullptr ? std::to_string(idx->as_uint64()) : "?");
    const Json* coords = pt.find("coords");
    for (const std::string& k : keys) {
      const Json* v = coords != nullptr ? coords->find(k) : nullptr;
      row.push_back(v != nullptr ? v->as_string() : "?");
    }
    const Json* seed = pt.find("seed");
    row.push_back(seed != nullptr ? std::to_string(seed->as_uint64()) : "?");
    const Json* failed = pt.find("failed");
    std::string status = "ok";
    if (failed != nullptr && failed->as_bool()) {
      const Json* report = pt.find("report");
      const Json* why =
          report != nullptr ? report->find("failure") : nullptr;
      status = "FAILED: " + (why != nullptr ? why->as_string()
                                            : std::string("?"));
    }
    row.push_back(std::move(status));
    t.add_row(std::move(row));
  }
  t.render(os);
}

}  // namespace mcc::api
