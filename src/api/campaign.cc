#include "api/campaign.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "api/experiment.h"
#include "util/table.h"

namespace mcc::api {

uint64_t derive_point_seed(
    uint64_t base_seed,
    const std::vector<std::pair<std::string, std::string>>& coords) {
  // FNV-1a over the base seed and the coordinates in sorted-key order:
  // independent of axis declaration order, value order and point index.
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  unsigned char seed_bytes[8];
  for (int i = 0; i < 8; ++i)
    seed_bytes[i] = static_cast<unsigned char>(base_seed >> (8 * i));
  mix(seed_bytes, sizeof seed_bytes);
  std::vector<std::pair<std::string, std::string>> sorted = coords;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [key, value] : sorted) {
    // threads= is a wall-clock knob, not a scenario knob: points that
    // differ only in thread count must run the SAME seed, so a
    // sweep.threads axis (configs/e11_parallel.cfg) produces identical
    // point tables — the tick's thread-count invariance, kept observable.
    if (key == "threads") continue;
    mix(key.data(), key.size());
    mix("\x1f", 1);
    mix(value.data(), value.size());
    mix("\x1e", 1);
  }
  if (h == 0) h = 0x9E3779B97F4A7C15ULL;  // seed 0 means "derive" downstream
  return h;
}

namespace {

std::string coords_label(
    const std::vector<std::pair<std::string, std::string>>& coords) {
  std::string label;
  for (const auto& [key, value] : coords) {
    if (!label.empty()) label += ",";
    label += key + "=" + value;
  }
  return label;
}

/// Keys the campaign header (and the welcome config a dist worker replays)
/// excludes: where a particular process wrote its files and how its work
/// queue was scheduled are not part of the scenario grid, and the merged
/// document must be byte-identical across shard counts, worker counts,
/// lease shapes, transports and resumes.
bool is_execution_key(const std::string& k) {
  return k == "report_json" || k == "campaign_json" || k == "bench_json" ||
         k == "trace_json" || k == "flit_trace" || k == "progress_json" ||
         k == "results_ndjson" || k == "dist_report_json" || k == "listen" ||
         k == "lease_batch" || k == "lease_ms" || k == "heartbeat_ms";
}

/// The mcc.progress/1 heartbeat sink: one NDJSON line appended per event,
/// each through its own append-mode open+close so forked workers
/// interleave whole lines (O_APPEND), never fragments. Write failures are
/// deliberately ignored — the heartbeat must never fail the campaign.
struct HeartbeatSink {
  std::string path;
  std::string shard_label;

  void emit(const char* ev,
            const std::function<void(Json&)>& fill = nullptr) const {
    if (path.empty()) return;
    Json line = Json::object();
    line.set("schema", Json::string(kProgressSchema));
    line.set("ev", Json::string(ev));
    if (fill) fill(line);
    line.set("shard", Json::string(shard_label));
    std::ofstream f(path, std::ios::app);
    if (f) f << line.dump() << "\n";
  }
};

}  // namespace

Campaign::Campaign(Configuration base) : cfg_(std::move(base)) {
  register_builtins();
  axes_ = cfg_.sweep_axes();
  if (axes_.empty())
    throw ConfigError(
        "config: no sweep.* axes — run this configuration as a single "
        "Experiment (mcc_run picks the right layer automatically)");
  std::set<std::string> swept;
  for (const SweepAxis& axis : axes_)
    for (const std::string& key : axis.keys)
      if (!swept.insert(key).second)
        throw ConfigError("config: key '" + key +
                          "' appears in more than one sweep axis");

  name_ = cfg_.get_string("name");
  if (name_.empty()) name_ = cfg_.get_string("driver");
  if (name_.empty()) name_ = "campaign";
  base_seed_ = cfg_.get_uint64("seed");

  const auto cap = static_cast<uint64_t>(cfg_.get_int("max_points"));
  uint64_t count = 1;
  for (const SweepAxis& axis : axes_) {
    count *= axis.points.size();
    if (count > cap)
      throw ConfigError(
          "config: campaign expands past max_points=" + std::to_string(cap) +
          " (axis '" + axis.label +
          "' alone brings the product to " + std::to_string(count) +
          "+); raise max_points= if the grid is intended");
  }

  const Configuration stripped = cfg_.strip_sweeps();
  points_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CampaignPoint pt;
    pt.index = i;
    // Row-major expansion: the first-declared axis varies slowest.
    std::vector<size_t> digit(axes_.size(), 0);
    uint64_t rem = i;
    for (size_t a = axes_.size(); a-- > 0;) {
      digit[a] = rem % axes_[a].points.size();
      rem /= axes_[a].points.size();
    }
    for (size_t a = 0; a < axes_.size(); ++a)
      for (size_t k = 0; k < axes_[a].keys.size(); ++k)
        pt.coords.emplace_back(axes_[a].keys[k],
                               axes_[a].points[digit[a]][k]);

    Configuration pc = stripped;
    for (const auto& [key, value] : pt.coords) pc.set(key, value);
    pt.seed = derive_point_seed(base_seed_, pt.coords);
    pc.set("seed", std::to_string(pt.seed));
    // A point never writes its own files; the campaign owns the outputs
    // (trace/flit paths would collide across points, and progress_json is
    // a campaign-level heartbeat). The obs paths are cleared only when
    // actually set: an unconditional set would add them to every point's
    // config echo and drift the committed campaign baselines.
    pc.set("report_json", "");
    pc.set("bench_json", "");
    pc.set("campaign_json", "");
    for (const char* key : {"trace_json", "flit_trace", "progress_json"})
      if (!pc.get_string(key).empty()) pc.set(key, "");
    // The dist execution keys vanish outright: a point's scenario (and so
    // its config echo) must not depend on how the campaign was scheduled.
    for (const char* key : {"results_ndjson", "dist_report_json", "listen",
                            "lease_batch", "lease_ms", "heartbeat_ms"})
      pc.unset(key);
    pc.set("name", name_ + "@" + coords_label(pt.coords));
    pt.config = std::move(pc);

    // Resolve the point against the registries now, so a bad combination
    // fails before any sibling burns compute.
    Experiment probe(pt.config);
    (void)probe;
    points_.push_back(std::move(pt));
  }
}

std::string Campaign::json_path() const {
  std::string path = cfg_.get_string("campaign_json");
  if (path.empty()) path = cfg_.get_string("report_json");
  return path;
}

Campaign::PointResult Campaign::run_point(size_t index) const {
  if (index >= points_.size())
    throw ConfigError("campaign: point index " + std::to_string(index) +
                      " out of range (point_count " +
                      std::to_string(points_.size()) + ")");
  const CampaignPoint& pt = points_[index];
  PointResult r;
  r.index = pt.index;
  try {
    Experiment exp(pt.config);
    const RunReport report = exp.run();
    r.failed = report.failed();
    r.report = report.to_json();
  } catch (const std::exception& e) {
    // A point that throws is a failed point, not a failed campaign: the
    // siblings still run and the merged document flags this one.
    RunReport report(pt.config.get_string("name"),
                     pt.config.get_string("driver"), pt.seed);
    report.set_config_echo(pt.config.echo());
    report.fail(e.what());
    r.failed = true;
    r.report = report.to_json();
  }
  return r;
}

namespace {

std::string point_status(const Campaign::PointResult& r) {
  if (!r.failed) return "ok";
  const Json* why = r.report.find("failure");
  return "FAILED: " + (why != nullptr ? why->as_string() : std::string("?"));
}

}  // namespace

std::vector<Campaign::PointResult> Campaign::run_shard(
    int shard, int shard_count, std::ostream* progress,
    const ResultSink& sink) const {
  if (shard_count < 1 || shard < 1 || shard > shard_count)
    throw ConfigError("campaign: shard must be i/N with 1 <= i <= N");

  const HeartbeatSink hb{cfg_.get_string("progress_json"),
                         std::to_string(shard) + "/" +
                             std::to_string(shard_count)};
  size_t shard_points = 0;
  for (const CampaignPoint& pt : points_)
    if (pt.index % static_cast<size_t>(shard_count) ==
        static_cast<size_t>(shard - 1))
      ++shard_points;
  hb.emit("shard_start", [&](Json& line) {
    line.set("name", Json::string(name_));
    line.set("points", Json::number(static_cast<uint64_t>(shard_points)));
    line.set("total", Json::number(static_cast<uint64_t>(points_.size())));
  });

  std::vector<PointResult> out;
  size_t failed_points = 0;
  for (const CampaignPoint& pt : points_) {
    if (pt.index % static_cast<size_t>(shard_count) !=
        static_cast<size_t>(shard - 1))
      continue;
    PointResult r = run_point(pt.index);
    if (r.failed) ++failed_points;
    if (progress != nullptr)
      *progress << "[" << pt.index + 1 << "/" << points_.size() << "] "
                << coords_label(pt.coords) << ": " << point_status(r)
                << "\n";
    hb.emit("point", [&](Json& line) {
      line.set("index", Json::number(static_cast<uint64_t>(pt.index)));
      line.set("total", Json::number(static_cast<uint64_t>(points_.size())));
      line.set("coords", Json::string(coords_label(pt.coords)));
      line.set("failed", Json::boolean(r.failed));
    });
    if (sink) sink(r);
    out.push_back(std::move(r));
  }
  hb.emit("shard_done", [&](Json& line) {
    line.set("points", Json::number(static_cast<uint64_t>(out.size())));
    line.set("failed", Json::number(static_cast<uint64_t>(failed_points)));
  });
  return out;
}

std::vector<Campaign::PointResult> Campaign::run_points(
    const std::vector<size_t>& indices, int jobs, std::ostream* progress,
    const ResultSink& sink) const {
  for (const size_t i : indices)
    if (i >= points_.size())
      throw ConfigError("campaign: point index " + std::to_string(i) +
                        " out of range (point_count " +
                        std::to_string(points_.size()) + ")");
  if (jobs < 1) jobs = 1;
  jobs = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs), indices.size()));

  if (jobs <= 1) {
    std::vector<PointResult> out;
    for (const size_t i : indices) {
      PointResult r = run_point(i);
      if (progress != nullptr)
        *progress << "[" << i + 1 << "/" << points_.size() << "] "
                  << coords_label(points_[i].coords) << ": "
                  << point_status(r) << "\n";
      if (sink) sink(r);
      out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end(),
              [](const PointResult& a, const PointResult& b) {
                return a.index < b.index;
              });
    return out;
  }

  // One forked worker per position-modulo slice of `indices`. Workers are
  // forked before any point has run, so no thread pool exists yet
  // (parallel_for pools are per-call); each worker streams one NDJSON
  // point line per finished result back over its pipe and exits without
  // running atexit handlers — the parent folds lines as they arrive, so a
  // worker that dies loses only the points it had not yet streamed, and
  // nothing ever assembles a whole partial document in memory.
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::string buf;              // partial trailing line
    bool eof = false;
    bool parse_error = false;
    std::vector<size_t> assigned;
  };
  std::vector<Worker> workers(static_cast<size_t>(jobs));
  for (size_t i = 0; i < indices.size(); ++i)
    workers[i % static_cast<size_t>(jobs)].assigned.push_back(indices[i]);

  const std::string progress_path = cfg_.get_string("progress_json");
  for (int j = 0; j < jobs; ++j) {
    int fds[2];
    if (pipe(fds) != 0) throw ConfigError("campaign: pipe() failed");
    const pid_t pid = fork();
    if (pid < 0) throw ConfigError("campaign: fork() failed");
    if (pid == 0) {
      close(fds[0]);
      int code = 0;
      const auto send_line = [&](const std::string& line) {
        size_t off = 0;
        while (off < line.size()) {
          const ssize_t n =
              write(fds[1], line.data() + off, line.size() - off);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) return false;
          off += static_cast<size_t>(n);
        }
        return true;
      };
      try {
        const Worker& self = workers[static_cast<size_t>(j)];
        const HeartbeatSink hb{progress_path,
                               std::to_string(j + 1) + "/" +
                                   std::to_string(jobs)};
        hb.emit("shard_start", [&](Json& line) {
          line.set("name", Json::string(name_));
          line.set("points",
                   Json::number(static_cast<uint64_t>(self.assigned.size())));
          line.set("total",
                   Json::number(static_cast<uint64_t>(points_.size())));
        });
        size_t failed_points = 0;
        for (const size_t i : self.assigned) {
          const PointResult r = run_point(i);
          if (r.failed) ++failed_points;
          hb.emit("point", [&](Json& line) {
            line.set("index", Json::number(static_cast<uint64_t>(i)));
            line.set("total",
                     Json::number(static_cast<uint64_t>(points_.size())));
            line.set("coords",
                     Json::string(coords_label(points_[i].coords)));
            line.set("failed", Json::boolean(r.failed));
          });
          if (!send_line(point_json(r).dump() + "\n")) {
            code = 3;
            break;
          }
        }
        hb.emit("shard_done", [&](Json& line) {
          line.set("points",
                   Json::number(static_cast<uint64_t>(self.assigned.size())));
          line.set("failed",
                   Json::number(static_cast<uint64_t>(failed_points)));
        });
      } catch (...) {
        code = 3;
      }
      close(fds[1]);
      _exit(code);
    }
    close(fds[1]);
    workers[static_cast<size_t>(j)].pid = pid;
    workers[static_cast<size_t>(j)].fd = fds[0];
  }

  // Fold result lines as they arrive across all pipes, so the journal
  // sink sees points in completion order (streamed, not batched).
  std::map<size_t, PointResult> by_index;
  std::string problem;
  const auto handle_line = [&](Worker& w, const std::string& line) {
    if (line.empty()) return;
    std::string error;
    const Json parsed = Json::parse(line, error);
    if (!error.empty()) {
      w.parse_error = true;
      return;
    }
    PointResult r;
    try {
      r = point_from_json(parsed);
    } catch (const ConfigError&) {
      w.parse_error = true;
      return;
    }
    if (by_index.count(r.index) != 0) return;  // first result wins
    if (sink) sink(r);
    by_index.emplace(r.index, std::move(r));
  };

  size_t open_fds = workers.size();
  std::vector<char> buf(1 << 16);
  while (open_fds > 0) {
    std::vector<pollfd> fds;
    std::vector<size_t> who;
    for (size_t j = 0; j < workers.size(); ++j)
      if (!workers[j].eof) {
        fds.push_back({workers[j].fd, POLLIN, 0});
        who.push_back(j);
      }
    const int rc = poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      problem = "campaign: worker pipe poll failed";
      break;
    }
    for (size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers[who[k]];
      const ssize_t n = read(w.fd, buf.data(), buf.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        problem = "campaign: worker pipe read failed";
        w.eof = true;
        close(w.fd);
        --open_fds;
        continue;
      }
      if (n == 0) {
        handle_line(w, w.buf);  // torn tail: parse_error on a dead worker
        w.buf.clear();
        w.eof = true;
        close(w.fd);
        --open_fds;
        continue;
      }
      w.buf.append(buf.data(), static_cast<size_t>(n));
      size_t nl;
      while ((nl = w.buf.find('\n')) != std::string::npos) {
        handle_line(w, w.buf.substr(0, nl));
        w.buf.erase(0, nl + 1);
      }
    }
  }

  for (size_t j = 0; j < workers.size(); ++j) {
    Worker& w = workers[j];
    int status = 0;
    waitpid(w.pid, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::vector<size_t> lost;
    for (const size_t i : w.assigned)
      if (by_index.count(i) == 0) lost.push_back(i);
    if (clean) {
      // A clean worker that shipped garbage or short-counted its results
      // is a RUN failure, not a configuration error: surface it on the
      // exit-1 path, so retrying harnesses classify it.
      if (w.parse_error) {
        problem = "campaign: worker emitted unparsable JSON";
      } else if (!lost.empty()) {
        problem = "campaign: worker shard " + std::to_string(j + 1) + "/" +
                  std::to_string(jobs) + " exited cleanly but delivered " +
                  std::to_string(w.assigned.size() - lost.size()) + " of " +
                  std::to_string(w.assigned.size()) + " results";
      }
      continue;
    }
    // A worker that died (a point segfaulted, the OOM killer struck, …)
    // fails only the points it had not yet streamed, not the whole
    // campaign: everything already received — its own earlier points
    // included — is kept, and each lost point carries a failure naming
    // the signal so the merged document says what happened and where.
    const std::string shard_label =
        std::to_string(j + 1) + "/" + std::to_string(jobs);
    std::string why;
    if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      const char* name = strsignal(sig);
      why = "campaign: worker shard " + shard_label + " killed by signal " +
            std::to_string(sig) + " (" + (name != nullptr ? name : "?") +
            ")";
    } else {
      why = "campaign: worker shard " + shard_label + " exited with code " +
            std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
    for (const size_t i : lost) {
      const CampaignPoint& pt = points_[i];
      PointResult r;
      r.index = pt.index;
      r.failed = true;
      RunReport report(pt.config.get_string("name"),
                       pt.config.get_string("driver"), pt.seed);
      report.set_config_echo(pt.config.echo());
      report.fail(why);
      r.report = report.to_json();
      if (sink) sink(r);
      by_index.emplace(i, std::move(r));
    }
  }
  if (!problem.empty()) throw std::runtime_error(problem);

  std::vector<PointResult> out;
  out.reserve(by_index.size());
  for (auto& [i, r] : by_index) {
    if (progress != nullptr)
      *progress << "[" << i + 1 << "/" << points_.size() << "] "
                << coords_label(points_[i].coords) << ": " << point_status(r)
                << "\n";
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<Campaign::PointResult> Campaign::run(
    int jobs, std::ostream* progress, const ResultSink& sink) const {
  if (jobs < 1) jobs = 1;
  jobs = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs), points_.size()));
  if (jobs <= 1) return run_shard(1, 1, progress, sink);
  std::vector<size_t> all(points_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return run_points(all, jobs, progress, sink);
}

Json Campaign::to_json(const std::vector<PointResult>& results, int shard,
                       int shard_count) const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kCampaignSchema));
  doc.set("name", Json::string(name_));
  doc.set("seed", Json::number(base_seed_));
  Json cfg = Json::object();
  // The header describes the scenario grid; where THIS process wrote its
  // file is not part of it (shards pass different paths, and the merged
  // document must be byte-identical across shard counts).
  for (const auto& [k, v] : cfg_.echo())
    if (!is_execution_key(k)) cfg.set(k, Json::string(v));
  doc.set("config", std::move(cfg));
  Json axes = Json::array();
  for (const SweepAxis& axis : axes_) {
    Json ja = Json::object();
    ja.set("label", Json::string(axis.label));
    Json keys = Json::array();
    for (const std::string& k : axis.keys) keys.push_back(Json::string(k));
    ja.set("keys", std::move(keys));
    Json values = Json::array();
    for (const auto& row : axis.points) {
      Json jr = Json::array();
      for (const std::string& v : row) jr.push_back(Json::string(v));
      values.push_back(std::move(jr));
    }
    ja.set("values", std::move(values));
    axes.push_back(std::move(ja));
  }
  doc.set("axes", std::move(axes));
  doc.set("point_count", Json::number(static_cast<uint64_t>(points_.size())));
  doc.set("shard", Json::string(std::to_string(shard) + "/" +
                                std::to_string(shard_count)));
  bool failed = false;
  for (const PointResult& r : results) failed = failed || r.failed;
  doc.set("failed", Json::boolean(failed));
  Json pts = Json::array();
  for (const PointResult& r : results) pts.push_back(point_json(r));
  doc.set("points", std::move(pts));
  return doc;
}

Json Campaign::point_json(const PointResult& r) const {
  if (r.index >= points_.size())
    throw ConfigError("campaign: point index " + std::to_string(r.index) +
                      " out of range (point_count " +
                      std::to_string(points_.size()) + ")");
  Json p = Json::object();
  p.set("index", Json::number(static_cast<uint64_t>(r.index)));
  Json coords = Json::object();
  for (const auto& [k, v] : points_[r.index].coords)
    coords.set(k, Json::string(v));
  p.set("coords", std::move(coords));
  p.set("seed", Json::number(points_[r.index].seed));
  p.set("failed", Json::boolean(r.failed));
  p.set("report", r.report);
  return p;
}

Campaign::PointResult Campaign::point_from_json(const Json& pt) const {
  if (!pt.is_object())
    throw ConfigError("campaign: point record is not a JSON object");
  const Json* idx = pt.find("index");
  const Json* failed = pt.find("failed");
  const Json* report = pt.find("report");
  if (idx == nullptr || !idx->is_number() || failed == nullptr ||
      !failed->is_bool() || report == nullptr || !report->is_object())
    throw ConfigError(
        "campaign: point record needs index, failed and report{}");
  PointResult r;
  r.index = static_cast<size_t>(idx->as_uint64());
  if (r.index >= points_.size())
    throw ConfigError("campaign: point index " + std::to_string(r.index) +
                      " out of range (point_count " +
                      std::to_string(points_.size()) + ")");
  r.failed = failed->as_bool();
  r.report = *report;
  return r;
}

Json Campaign::journal_header() const {
  Json h = Json::object();
  h.set("schema", Json::string(kJournalSchema));
  h.set("name", Json::string(name_));
  h.set("seed", Json::number(base_seed_));
  Json cfg = Json::object();
  for (const auto& [k, v] : cfg_.echo())
    if (!is_execution_key(k)) cfg.set(k, Json::string(v));
  h.set("config", std::move(cfg));
  h.set("point_count", Json::number(static_cast<uint64_t>(points_.size())));
  return h;
}

void Campaign::check_journal_header(const Json& header) const {
  const Json want = journal_header();
  if (!header.is_object() || header.find("schema") == nullptr ||
      !header.find("schema")->is_string() ||
      header.find("schema")->as_string() != kJournalSchema)
    throw ConfigError("campaign: journal does not start with a " +
                      std::string(kJournalSchema) + " header line");
  for (const char* key : {"name", "seed", "config", "point_count"}) {
    const Json* got = header.find(key);
    if (got == nullptr || got->dump() != want.find(key)->dump())
      throw ConfigError(std::string("campaign: journal header '") + key +
                        "' does not match this campaign — the journal "
                        "belongs to a different run");
  }
}

std::vector<Campaign::PointResult> Campaign::load_journal(
    const std::string& path) const {
  std::ifstream f(path);
  if (!f)
    throw ConfigError("campaign: cannot open journal '" + path + "'");
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(f, line))
    if (!line.empty()) lines.push_back(std::move(line));
  if (lines.empty())
    throw ConfigError("campaign: journal '" + path + "' is empty");

  std::string error;
  const Json header = Json::parse(lines.front(), error);
  if (!error.empty())
    throw ConfigError("campaign: journal header line is unparsable: " +
                      error);
  check_journal_header(header);

  std::map<size_t, PointResult> by_index;
  for (size_t i = 1; i < lines.size(); ++i) {
    const Json pt = Json::parse(lines[i], error);
    if (!error.empty() || !pt.is_object()) {
      // A torn FINAL line is the expected signature of a process killed
      // mid-append: the half-written point simply is not done yet. A torn
      // line anywhere else means the file was corrupted, not interrupted.
      if (i + 1 == lines.size()) break;
      throw ConfigError("campaign: journal line " + std::to_string(i + 1) +
                        " is unparsable (corrupt journal?)");
    }
    PointResult r = point_from_json(pt);
    // First result wins: a reissued point is bit-identical by
    // construction (coordinate-derived seeds), so dedup order cannot
    // change the merged document.
    if (by_index.count(r.index) == 0)
      by_index.emplace(r.index, std::move(r));
  }
  std::vector<PointResult> out;
  out.reserve(by_index.size());
  for (auto& [i, r] : by_index) {
    (void)i;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<size_t> Campaign::missing_points(
    const std::vector<PointResult>& done) const {
  std::vector<bool> have(points_.size(), false);
  for (const PointResult& r : done)
    if (r.index < have.size()) have[r.index] = true;
  std::vector<size_t> missing;
  for (size_t i = 0; i < have.size(); ++i)
    if (!have[i]) missing.push_back(i);
  return missing;
}

JournalWriter::JournalWriter(const std::string& path, const Json& header,
                             bool fresh)
    : path_(path) {
  out_.open(path, fresh ? std::ios::trunc : std::ios::app);
  if (!out_)
    throw ConfigError("campaign: cannot write journal '" + path + "'");
  if (fresh) {
    out_ << header.dump() << "\n";
    out_.flush();
  }
}

void JournalWriter::append(const Json& point_line) {
  out_ << point_line.dump() << "\n";
  out_.flush();
  if (!out_)
    throw std::runtime_error("campaign: journal append to '" + path_ +
                             "' failed");
}

Json Campaign::merge(const std::vector<Json>& partials) {
  if (partials.empty())
    throw ConfigError("campaign: merge needs at least one partial document");
  static constexpr const char* kHeader[] = {"schema", "name",  "seed",
                                            "config", "axes", "point_count"};
  for (const Json& p : partials) {
    if (!p.is_object())
      throw ConfigError("campaign: merge input is not a JSON object");
    for (const char* key : kHeader)
      if (p.find(key) == nullptr)
        throw ConfigError(std::string("campaign: merge input misses '") +
                          key + "'");
    const Json* schema = p.find("schema");
    if (!schema->is_string() || schema->as_string() != kCampaignSchema)
      throw ConfigError("campaign: merge input is not " +
                        std::string(kCampaignSchema));
  }
  const Json& first = partials.front();
  for (const Json& p : partials)
    for (const char* key : kHeader)
      if (p.find(key)->dump() != first.find(key)->dump())
        throw ConfigError(std::string("campaign: partials disagree on '") +
                          key + "' — they come from different campaigns");

  const auto point_count =
      static_cast<uint64_t>(first.find("point_count")->as_uint64());
  // Sizes the index table below; max_points= bounds real campaigns at
  // 1e8, so anything larger is a corrupt partial, not a grid.
  if (point_count > 100000000)
    throw ConfigError("campaign: implausible point_count " +
                      std::to_string(point_count) + " in a partial");

  // Each partial's "shard" marker, so coverage problems can be named at
  // the level the operator works at: WHICH shard files are missing or
  // passed twice, not just which raw point indices.
  const auto shard_of = [](const Json& p) -> std::string {
    const Json* s = p.find("shard");
    return s != nullptr && s->is_string() ? s->as_string() : "?";
  };
  // All partials' markers must agree on the shard count N for shard-level
  // diagnostics to be meaningful; mixed-N merges fall back to raw points.
  uint64_t shard_n = 0;
  bool shard_n_consistent = true;
  for (const Json& p : partials) {
    const std::string label = shard_of(p);
    const size_t slash = label.find('/');
    uint64_t n = 0;
    if (slash != std::string::npos) {
      errno = 0;
      char* end = nullptr;
      n = std::strtoull(label.c_str() + slash + 1, &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0') n = 0;
    }
    if (n == 0)
      shard_n_consistent = false;
    else if (shard_n == 0)
      shard_n = n;
    else if (shard_n != n)
      shard_n_consistent = false;
  }

  std::vector<const Json*> by_index(point_count, nullptr);
  std::vector<std::string> source_shard(point_count);
  std::set<std::string> duplicate_shards;
  std::string first_duplicate_point;
  for (const Json& p : partials) {
    const Json* pts = p.find("points");
    if (pts == nullptr || !pts->is_array())
      throw ConfigError("campaign: merge input misses points[]");
    for (const Json& pt : pts->items()) {
      const Json* idx = pt.find("index");
      if (idx == nullptr || !idx->is_number())
        throw ConfigError("campaign: a merged point misses its index");
      const uint64_t i = idx->as_uint64();
      if (i >= point_count)
        throw ConfigError("campaign: point index " + std::to_string(i) +
                          " out of range (point_count " +
                          std::to_string(point_count) + ")");
      if (by_index[i] != nullptr) {
        duplicate_shards.insert(source_shard[i]);
        duplicate_shards.insert(shard_of(p));
        if (first_duplicate_point.empty())
          first_duplicate_point = std::to_string(i);
        continue;
      }
      by_index[i] = &pt;
      source_shard[i] = shard_of(p);
    }
  }
  if (!duplicate_shards.empty()) {
    std::string shards;
    for (const std::string& s : duplicate_shards) {
      if (!shards.empty()) shards += ", ";
      shards += s;
    }
    throw ConfigError(
        "campaign: duplicated shards: " + shards + " (point " +
        first_duplicate_point +
        " arrived more than once) — pass each shard partial exactly once");
  }
  std::string missing;
  std::set<uint64_t> missing_shards;
  for (uint64_t i = 0; i < point_count; ++i)
    if (by_index[i] == nullptr) {
      if (!missing.empty()) missing += ", ";
      missing += std::to_string(i);
      if (shard_n != 0) missing_shards.insert(i % shard_n + 1);
    }
  if (!missing.empty()) {
    std::string shards;
    if (shard_n_consistent && shard_n != 0) {
      for (const uint64_t s : missing_shards) {
        if (!shards.empty()) shards += ", ";
        shards += std::to_string(s) + "/" + std::to_string(shard_n);
      }
      shards = " (missing shards: " + shards + ")";
    }
    throw ConfigError("campaign: merge is missing points " + missing +
                      shards + " — run (or pass) the remaining shards");
  }

  // Rebuilt fresh with a fixed member order, so the merged document is
  // byte-identical for every shard count and partial order.
  Json doc = Json::object();
  doc.set("schema", *first.find("schema"));
  doc.set("name", *first.find("name"));
  doc.set("seed", *first.find("seed"));
  doc.set("config", *first.find("config"));
  doc.set("axes", *first.find("axes"));
  doc.set("point_count", *first.find("point_count"));
  bool failed = false;
  for (const Json* pt : by_index) {
    const Json* f = pt->find("failed");
    failed = failed || (f != nullptr && f->is_bool() && f->as_bool());
  }
  doc.set("failed", Json::boolean(failed));
  Json pts = Json::array();
  for (const Json* pt : by_index) pts.push_back(*pt);
  doc.set("points", std::move(pts));
  return doc;
}

void Campaign::render_summary(const Json& doc, std::ostream& os) {
  const Json* name = doc.find("name");
  const Json* points = doc.find("points");
  const Json* axes = doc.find("axes");
  const Json* count = doc.find("point_count");
  if (name == nullptr || points == nullptr || axes == nullptr ||
      count == nullptr)
    return;
  std::vector<std::string> keys;
  std::string axis_desc;
  for (const Json& axis : axes->items()) {
    const Json* label = axis.find("label");
    if (label != nullptr) {
      if (!axis_desc.empty()) axis_desc += " x ";
      axis_desc += label->as_string();
    }
    const Json* ak = axis.find("keys");
    if (ak != nullptr)
      for (const Json& k : ak->items()) keys.push_back(k.as_string());
  }
  os << "\n# campaign " << name->as_string() << ": "
     << static_cast<uint64_t>(count->as_uint64()) << " points over "
     << axis_desc;
  const Json* shard = doc.find("shard");
  if (shard != nullptr && shard->is_string() &&
      shard->as_string() != "1/1")
    os << " — shard " << shard->as_string() << " ("
       << points->items().size() << " points)";
  os << "\n\n";

  std::vector<std::string> headers{"point"};
  headers.insert(headers.end(), keys.begin(), keys.end());
  headers.push_back("seed");
  headers.push_back("status");
  util::Table t(std::move(headers));
  for (const Json& pt : points->items()) {
    std::vector<std::string> row;
    const Json* idx = pt.find("index");
    row.push_back(idx != nullptr ? std::to_string(idx->as_uint64()) : "?");
    const Json* coords = pt.find("coords");
    for (const std::string& k : keys) {
      const Json* v = coords != nullptr ? coords->find(k) : nullptr;
      row.push_back(v != nullptr ? v->as_string() : "?");
    }
    const Json* seed = pt.find("seed");
    row.push_back(seed != nullptr ? std::to_string(seed->as_uint64()) : "?");
    const Json* failed = pt.find("failed");
    std::string status = "ok";
    if (failed != nullptr && failed->as_bool()) {
      const Json* report = pt.find("report");
      const Json* why =
          report != nullptr ? report->find("failure") : nullptr;
      status = "FAILED: " + (why != nullptr ? why->as_string()
                                            : std::string("?"));
    }
    row.push_back(std::move(status));
    t.add_row(std::move(row));
  }
  t.render(os);
}

}  // namespace mcc::api
