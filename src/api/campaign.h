// Campaign: the grid layer over Experiment. A configuration with sweep.*
// axes expands into an ordered vector of single-scenario points (cartesian
// product of its axes, zip groups locked together; the axis declared first
// varies slowest), each with a deterministic seed derived from the BASE
// seed and the point's coordinates — not its index — so permuting a sweep
// value list never changes any point's result.
//
//   api::Configuration cfg;
//   cfg.load_file("configs/churn_saturation.cfg");
//   api::Campaign campaign(std::move(cfg));
//   auto results = campaign.run(/*jobs=*/4, &std::cerr);
//   api::Json doc = api::Campaign::merge({campaign.to_json(results, 1, 1)});
//
// Execution is shard-friendly: run_shard(i, N) runs the points with
// index % N == i-1 and to_json() wraps the results as a PARTIAL
// mcc.campaign/1 document (a "shard":"i/N" marker); merge() combines
// partials into the complete document, byte-identical regardless of shard
// count and input order. run(jobs) forks `jobs` local worker processes
// (one shard each) and merges their partials in-process.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/config.h"
#include "api/json.h"
#include "api/run_report.h"  // kCampaignSchema, validate_report_json

namespace mcc::api {

/// One expanded grid point: its position in the expansion order, its
/// (key, value) coordinates in axis order, the derived seed and the fully
/// resolved single-scenario configuration (sweeps stripped, seed set,
/// output paths cleared).
struct CampaignPoint {
  size_t index = 0;
  std::vector<std::pair<std::string, std::string>> coords;
  uint64_t seed = 0;
  Configuration config;
};

/// Derives a point seed: FNV-1a over the base seed and the coordinate
/// `key=value` pairs in sorted-key order (independent of axis declaration
/// and value order). Exposed for the determinism tests.
uint64_t derive_point_seed(
    uint64_t base_seed,
    const std::vector<std::pair<std::string, std::string>>& coords);

class Campaign {
 public:
  /// Expands and validates the campaign: every point's configuration is
  /// resolved against the registries (a bad combination fails here, before
  /// anything runs) and the point count is checked against max_points=.
  /// Throws ConfigError on any problem, including a sweep-free config.
  explicit Campaign(Configuration base);

  const std::string& name() const { return name_; }
  const std::vector<SweepAxis>& axes() const { return axes_; }
  const std::vector<CampaignPoint>& points() const { return points_; }

  /// Where the campaign JSON goes: campaign_json=, else report_json=,
  /// else empty (no file).
  std::string json_path() const;

  struct PointResult {
    size_t index = 0;
    bool failed = false;
    Json report;  // mcc.run_report/1 document of the point's run
  };

  /// Called once per finished point, in completion order — the streaming
  /// hook the NDJSON result journal (results_ndjson=) hangs off.
  using ResultSink = std::function<void(const PointResult&)>;

  /// Runs one point in-process. Never throws on a failing point: a throw
  /// inside the driver becomes a failed PointResult carrying the config
  /// echo and the what() text.
  PointResult run_point(size_t index) const;

  /// Runs shard `shard` of `shard_count` (1-based; points with
  /// index % shard_count == shard-1) serially in-process. Never throws on
  /// a failing point: the point's report carries failed/failure and the
  /// siblings still run. `progress` (optional) gets one line per point;
  /// `sink` (optional) gets each PointResult as it finishes.
  std::vector<PointResult> run_shard(int shard, int shard_count,
                                     std::ostream* progress,
                                     const ResultSink& sink = nullptr) const;

  /// Runs the given point indices — serially when jobs <= 1, else across
  /// `jobs` forked workers (position i of `indices` goes to worker
  /// i % jobs) that stream one point-JSON NDJSON line back per finished
  /// point. A worker that dies mid-shard fails only the points it had not
  /// yet streamed (synthesized reports naming the signal); results return
  /// sorted by point index. This is the resume entry: pass only the
  /// missing indices.
  std::vector<PointResult> run_points(const std::vector<size_t>& indices,
                                      int jobs, std::ostream* progress,
                                      const ResultSink& sink = nullptr) const;

  /// Runs every point across `jobs` forked worker processes (jobs <= 1:
  /// serial in-process). Results come back complete and in point order.
  std::vector<PointResult> run(int jobs, std::ostream* progress,
                               const ResultSink& sink = nullptr) const;

  /// The point object embedded in the campaign document's points[] — also
  /// the NDJSON journal line and the mcc.dist/1 result payload, so every
  /// transport ships bit-identical point records.
  Json point_json(const PointResult& r) const;

  /// Parses one point object back (the inverse of point_json). Throws
  /// ConfigError when the object is malformed or its index out of range.
  PointResult point_from_json(const Json& pt) const;

  /// The mcc.campaign.journal/1 header line: schema, name, seed, the
  /// filtered config echo and point_count — enough for --resume to refuse
  /// a journal from a different campaign.
  Json journal_header() const;

  /// Throws ConfigError unless `header` matches this campaign.
  void check_journal_header(const Json& header) const;

  /// Loads an NDJSON result journal: validates the header, parses one
  /// point per line with first-result-wins dedup (a reissued point is
  /// bit-identical by construction, so first-wins keeps merges
  /// deterministic), and tolerates a torn final line (the append that a
  /// dying coordinator did not finish). Results return sorted by index.
  std::vector<PointResult> load_journal(const std::string& path) const;

  /// The point indices NOT present in `done` — what a resumed run still
  /// has to execute, in index order.
  std::vector<size_t> missing_points(
      const std::vector<PointResult>& done) const;

  /// Wraps `results` as an mcc.campaign/1 document for shard
  /// `shard`/`shard_count` (the complete serial run is shard 1/1; merge()
  /// strips the shard marker).
  Json to_json(const std::vector<PointResult>& results, int shard,
               int shard_count) const;

  /// Merges partial documents into the complete campaign document. The
  /// output is byte-identical for any shard count and input order. Throws
  /// ConfigError on header mismatches, duplicate or missing points.
  static Json merge(const std::vector<Json>& partials);

  /// The human summary of a (complete or partial) campaign document:
  /// heading plus one table row per point (coordinates, seed, status).
  static void render_summary(const Json& doc, std::ostream& os);

 private:
  Configuration cfg_;
  std::string name_;
  uint64_t base_seed_ = 0;
  std::vector<SweepAxis> axes_;
  std::vector<CampaignPoint> points_;
};

/// Append-mode NDJSON result journal (results_ndjson=). A fresh run
/// truncates and writes the campaign's header line first; a resumed run
/// opens in append mode after the caller validated the existing header.
/// Every line is flushed as written, so a SIGKILLed process loses at most
/// the line it was mid-append on (load_journal tolerates the torn tail).
class JournalWriter {
 public:
  /// Opens `path`. `fresh` truncates and writes `header`; otherwise the
  /// file is appended to as-is. Throws ConfigError when the file cannot
  /// be opened.
  JournalWriter(const std::string& path, const Json& header, bool fresh);

  /// Appends one point line (Campaign::point_json form) and flushes.
  void append(const Json& point_line);

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace mcc::api
