#include "api/config.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <set>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace mcc::api {

const char* to_string(KeyType t) {
  switch (t) {
    case KeyType::Bool: return "bool";
    case KeyType::Int: return "int";
    case KeyType::UInt64: return "uint64";
    case KeyType::Double: return "double";
    case KeyType::String: return "string";
    case KeyType::IntList: return "int list";
    case KeyType::DoubleList: return "double list";
    case KeyType::StringList: return "string list";
  }
  return "?";
}

namespace {

std::string trim(const std::string& s) {
  size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0)
    --b;
  return s.substr(a, b - a);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  // An entirely empty string means the empty list; otherwise every
  // element (including a trailing empty one) is kept for validation.
  if (!out.empty() || !last.empty()) out.push_back(last);
  return out;
}

bool parse_bool(const std::string& v, bool& out) {
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    out = false;
    return true;
  }
  return false;
}

bool parse_i64(const std::string& v, long long& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoll(v.c_str(), &end, 0);  // base 0: 0x... accepted
  return errno != ERANGE && end != nullptr && *end == '\0';
}

bool parse_u64(const std::string& v, uint64_t& out) {
  if (v.empty() || v[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(v.c_str(), &end, 0);
  return errno != ERANGE && end != nullptr && *end == '\0';
}

bool parse_f64(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(v.c_str(), &end);
  return errno != ERANGE && end != nullptr && *end == '\0';
}

[[noreturn]] void bad_value(const std::string& key, const KeySpec& spec,
                            const std::string& value, const char* why) {
  throw ConfigError("config: key '" + key + "' " + why + " (type " +
                    to_string(spec.type) + ", got '" + value + "')");
}

void check_range(const std::string& key, const KeySpec& spec, double v,
                 const std::string& raw) {
  if (v < spec.min || v > spec.max) {
    std::ostringstream os;
    os << "config: key '" << key << "' value " << raw << " out of range ["
       << spec.min << ", " << spec.max << "]";
    throw ConfigError(os.str());
  }
}

/// Type/range-validates `value` for `spec`; throws ConfigError otherwise.
void validate(const std::string& key, const KeySpec& spec,
              const std::string& value) {
  switch (spec.type) {
    case KeyType::Bool: {
      bool b = false;
      if (!parse_bool(value, b))
        bad_value(key, spec, value, "expects a boolean (0/1/true/false)");
      return;
    }
    case KeyType::Int: {
      long long i = 0;
      if (!parse_i64(value, i)) bad_value(key, spec, value, "is not an int");
      check_range(key, spec, static_cast<double>(i), value);
      return;
    }
    case KeyType::UInt64: {
      uint64_t u = 0;
      if (!parse_u64(value, u))
        bad_value(key, spec, value, "is not a uint64");
      return;
    }
    case KeyType::Double: {
      double d = 0;
      if (!parse_f64(value, d))
        bad_value(key, spec, value, "is not a double");
      check_range(key, spec, d, value);
      return;
    }
    case KeyType::String:
      return;
    case KeyType::IntList: {
      for (const std::string& item : split_list(value)) {
        long long i = 0;
        if (!parse_i64(item, i))
          bad_value(key, spec, item, "has a non-int element");
        check_range(key, spec, static_cast<double>(i), item);
      }
      return;
    }
    case KeyType::DoubleList: {
      for (const std::string& item : split_list(value)) {
        double d = 0;
        if (!parse_f64(item, d))
          bad_value(key, spec, item, "has a non-double element");
        check_range(key, spec, d, item);
      }
      return;
    }
    case KeyType::StringList:
      return;
  }
}

/// Edit distance for the unknown-key suggestion (small strings only).
size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::atomic<int> g_env_warnings{0};

/// True when the alias env var is present and non-empty.
bool env_alias_present(const KeySpec& spec) {
  if (spec.env_alias == nullptr) return false;
  const char* v = std::getenv(spec.env_alias);
  return v != nullptr && *v != '\0';
}

/// Reads a deprecated env alias; warns once per process per alias name
/// (the hint is derived from the key the alias stands for, so new aliases
/// need no special-casing here).
bool env_alias_value(const std::string& key, const KeySpec& spec,
                     bool& out) {
  if (!env_alias_present(spec)) return false;
  const bool truthy = *std::getenv(spec.env_alias) != '0';
  {
    static std::mutex mu;
    static std::set<std::string> warned;
    std::lock_guard<std::mutex> lock(mu);
    if (warned.insert(spec.env_alias).second) {
      ++g_env_warnings;
      std::cerr << "mcc: warning: " << spec.env_alias
                << " is deprecated; use the config key instead (" << key
                << (spec.env_inverted ? "=0" : "=1") << ")\n";
    }
  }
  out = spec.env_inverted ? !truthy : truthy;
  return true;
}

}  // namespace

const std::map<std::string, KeySpec>& Configuration::schema() {
  static const std::map<std::string, KeySpec> kSchema = {
      // --- run identity / IO ------------------------------------------------
      {"driver", {KeyType::String, "", "experiment driver (see mcc_run --list)"}},
      {"name", {KeyType::String, "", "run name for the report (default: driver)"}},
      {"report_json", {KeyType::String, "", "write the RunReport JSON here"}},
      {"campaign_json",
       {KeyType::String, "",
        "write the merged mcc.campaign/1 JSON here (campaigns; falls back "
        "to report_json)"}},
      {"max_points",
       {KeyType::Int, "4096", "campaign expansion cap (guards cartesian "
        "blow-ups)", 1, 100000000}},
      {"bench_json", {KeyType::String, "", "write BENCH_<value>.json (schema mcc.bench/1)"}},
      {"render", {KeyType::Bool, "0", "include ASCII mesh renderings where supported"}},
      {"detail", {KeyType::Bool, "0", "include optional secondary tables"}},
      // --- observability ----------------------------------------------------
      {"metrics",
       {KeyType::Bool, "0",
        "publish the mcc.metrics/1 registry block into the report"}},
      {"profile",
       {KeyType::Bool, "0",
        "time tick phases and MCC kernels; adds the profile table"}},
      {"trace_json",
       {KeyType::String, "",
        "write a Chrome trace-event JSON (Perfetto-loadable) here"}},
      {"flit_trace",
       {KeyType::String, "",
        "write the cycle-stamped flit-lifecycle NDJSON trace here"}},
      {"progress_json",
       {KeyType::String, "",
        "campaigns: append mcc.progress/1 NDJSON heartbeats here"}},
      {"results_ndjson",
       {KeyType::String, "",
        "campaigns: stream one point-result NDJSON line here as points "
        "finish (the mcc.campaign.journal/1 resume journal)"}},
      {"dist_report_json",
       {KeyType::String, "",
        "distributed runs: write the scheduler's mcc.run_report/1 (dist.* "
        "obs counters) here"}},
      {"listen",
       {KeyType::String, "",
        "coordinator bind address: unix:<path> or tcp:<host>:<port> "
        "(empty = a private unix socket under /tmp)"}},
      {"lease_batch",
       {KeyType::Int, "4",
        "dist: point indices leased to a worker per grant", 1, 65536}},
      {"lease_ms",
       {KeyType::Int, "30000",
        "dist: lease deadline in ms; expired leases reissue to live "
        "workers", 50, 86400000}},
      {"heartbeat_ms",
       {KeyType::Int, "1000",
        "dist: worker heartbeat / lease-retry interval in ms", 10,
        600000}},
      // --- mesh -------------------------------------------------------------
      {"dims", {KeyType::Int, "3", "mesh dimensionality", 2, 3}},
      {"k", {KeyType::Int, "16", "edge length (square/cubic mesh)", 2, 512}},
      {"nx", {KeyType::Int, "0", "mesh x size override (0 = k)", 0, 512}},
      {"ny", {KeyType::Int, "0", "mesh y size override (0 = k)", 0, 512}},
      {"nz", {KeyType::Int, "0", "mesh z size override (0 = k)", 0, 512}},
      {"ks", {KeyType::IntList, "", "mesh edge sweep (empty = [k])", 2, 512}},
      // --- seeds / modes ----------------------------------------------------
      {"seed", {KeyType::UInt64, "1", "base seed of the run"}},
      {"seed2", {KeyType::UInt64, "0", "secondary seed (0 = derived from seed)"}},
      {"fault_seed", {KeyType::UInt64, "0", "fault-injection seed (0 = derived from seed)"}},
      {"smoke",
       {KeyType::Bool, "0", "CI smoke mode: smoke.* pins apply", 0, 1,
        "MCC_SMOKE"}},
      {"guidance_cache",
       {KeyType::Bool, "1", "serve Model-mode guidance from the epoch cache",
        0, 1, "MCC_NOCACHE", /*env_inverted=*/true}},
      // --- fault axis -------------------------------------------------------
      {"fault_model",
       {KeyType::String, "static",
        "fault model registry: static | dynamic | link | transient | "
        "composite"}},
      {"fault_pattern",
       {KeyType::String, "uniform",
        "fault injection registry: none | uniform | uniform_links | "
        "clustered | exact | figure5 | staircase_up | staircase_down | "
        "lshape"}},
      {"fault_rate", {KeyType::Double, "0", "per-node fault probability", 0, 0.95}},
      {"fault_rates", {KeyType::DoubleList, "", "fault-rate sweep (empty = [fault_rate])", 0, 0.95}},
      {"link_fault_rate",
       {KeyType::Double, "0",
        "per-link fault probability (universe fault models)", 0, 0.95}},
      {"router_fault_rate",
       {KeyType::Double, "0",
        "per-router-internal fault probability (universe fault models)", 0,
        0.95}},
      {"mtbf",
       {KeyType::Double, "0",
        "transient process: mean cycles between strikes per component (0 = "
        "derive the total strike rate from churn)", 0, 1e12}},
      {"mttr",
       {KeyType::Double, "200",
        "transient process: mean recovery delay in cycles", 1, 1e12}},
      {"fault_count", {KeyType::Int, "0", "faults for exact/clustered patterns", 0, 1000000}},
      {"fault_clusters", {KeyType::Int, "1", "cluster count for the clustered pattern", 1, 1000000}},
      {"fault_envs",
       {KeyType::StringList, "",
        "wormhole_load fault environments: none | faults (empty = one env "
        "from the fault_* keys)"}},
      {"clear_border", {KeyType::Bool, "0", "keep the mesh border fault-free (2-D)"}},
      // --- policy / traffic axes -------------------------------------------
      {"policy",
       {KeyType::String, "model",
        "guidance policy registry: oracle | model | labels_only | "
        "fault_block | dor"}},
      {"policies", {KeyType::StringList, "", "policy sweep (empty = [policy])"}},
      {"route_policy",
       {KeyType::String, "random",
        "candidate selection: xfirst | yfirst | random | balanced | alternate"}},
      {"block_fill", {KeyType::String, "safety", "fault_block fill: safety | bbox"}},
      {"traffic",
       {KeyType::StringList, "uniform",
        "traffic pattern registry: uniform | transpose | bit_complement | "
        "hotspot"}},
      {"hotspot_fraction", {KeyType::Double, "0.5", "hotspot packet fraction", 0, 1}},
      {"hotspot_count", {KeyType::Int, "2", "hotspot destination count", 1, 64}},
      // --- route_quality / protocol_cost -----------------------------------
      {"trials", {KeyType::Int, "25", "Monte-Carlo repetitions", 1, 1000000}},
      {"pairs", {KeyType::Int, "25", "(s,d) pairs per trial", 1, 1000000}},
      {"min_distance", {KeyType::Int, "4", "minimum pair Manhattan distance", 1, 4096}},
      {"diversity", {KeyType::Bool, "0", "route_quality: add the path-diversity table"}},
      // --- wormhole ---------------------------------------------------------
      {"rates", {KeyType::DoubleList, "0.01", "injection rates (pkt/node/cycle)", 0, 1}},
      {"vcs_per_class", {KeyType::Int, "2", "virtual channels per deadlock class", 1, 16}},
      {"buffer_depth", {KeyType::Int, "4", "flit buffer depth per VC", 1, 256}},
      {"packet_size", {KeyType::Int, "4", "flits per packet", 1, 256}},
      {"warmup", {KeyType::Int, "500", "warmup cycles (convergence mode: upper bound)", 0, 100000000}},
      {"measure", {KeyType::Int, "2000", "measurement window cycles", 1, 100000000}},
      {"drain", {KeyType::Int, "30000", "drain cycle budget", 0, 1000000000}},
      {"stall", {KeyType::Int, "1000", "drain stall cycles = deadlock", 1, 100000000}},
      {"threads", {KeyType::Int, "1", "router-parallel tick lanes (results are thread-count invariant)", 1, 64}},
      {"warmup_mode", {KeyType::String, "fixed", "warmup policy: fixed | converge (steady-state detection)"}},
      {"sample_period", {KeyType::Int, "250", "converge mode: cycles per throughput/latency sample", 1, 100000000}},
      {"convergence", {KeyType::Double, "0.05", "converge mode: relative-delta threshold between samples", 0.000001, 1}},
      // --- churn ------------------------------------------------------------
      {"churn", {KeyType::DoubleList, "2", "fault strikes per 1000 cycles", 0, 1000}},
      {"churn_horizon", {KeyType::UInt64, "0", "churn schedule horizon in cycles (0 = driver default)"}},
      {"repair_min", {KeyType::Int, "100", "minimum repair delay, cycles", 0, 100000000}},
      {"repair_max", {KeyType::Int, "1000", "maximum repair delay, cycles (0 = no repairs)", 0, 100000000}},
      // --- serving ----------------------------------------------------------
      {"readers", {KeyType::Int, "4", "serve_load: concurrent reader threads", 1, 256}},
      {"queries", {KeyType::Int, "2000", "serve_load: queries per reader", 1, 100000000}},
      {"query_mix",
       {KeyType::String, "mixed",
        "serve_load query mix: feasible | route | mixed"}},
      {"target_qps", {KeyType::Double, "0", "serve_load aggregate query-rate cap (0 = unthrottled)", 0, 1000000000}},
      {"event_interval_us",
       {KeyType::Int, "0",
        "serve_load: writer pause between fault events, microseconds "
        "(0 = back-to-back)", 0, 100000000}},
  };
  return kSchema;
}

namespace {

/// The decomposed form of a (possibly prefixed) key name. `base` is the
/// schema key candidate; `zip` is only non-empty for sweep.zip.* members.
struct KeyName {
  bool smoke = false;
  bool sweep = false;
  std::string zip;
  std::string base;
};

/// Splits smoke./sweep./sweep.zip.<group>. prefixes off `key`. Returns
/// false on malformed sweep.zip syntax (missing group or member key); does
/// NOT check that `base` names a schema key.
bool split_key_name(const std::string& key, KeyName& out) {
  out = KeyName{};
  std::string rest = key;
  if (rest.rfind("smoke.", 0) == 0) {
    out.smoke = true;
    rest = rest.substr(6);
  }
  if (rest.rfind("sweep.", 0) == 0) {
    out.sweep = true;
    rest = rest.substr(6);
    if (rest.rfind("zip.", 0) == 0) {
      rest = rest.substr(4);
      const size_t dot = rest.find('.');
      if (dot == 0 || dot == std::string::npos ||
          dot + 1 == rest.size())
        return false;
      out.zip = rest.substr(0, dot);
      rest = rest.substr(dot + 1);
    }
  }
  out.base = rest;
  return !out.base.empty();
}

[[noreturn]] void unknown_key(const std::string& base) {
  const auto& schema = Configuration::schema();
  std::string best;
  size_t best_d = 4;  // suggest only close matches
  for (const auto& [name, spec] : schema) {
    (void)spec;
    const size_t d = edit_distance(base, name);
    if (d < best_d) {
      best_d = d;
      best = name;
    }
  }
  std::string msg = "config: unknown key '" + base + "'";
  if (!best.empty()) msg += " (did you mean '" + best + "'?)";
  msg += "; run mcc_run --list for the key reference";
  throw ConfigError(msg);
}

/// Parses `key` and resolves its base against the schema, throwing the
/// suggestion-bearing ConfigError on failure.
KeyName parse_key(const std::string& key) {
  KeyName name;
  if (!split_key_name(key, name))
    throw ConfigError("config: malformed sweep key '" + key +
                      "' (expected sweep.<key> or sweep.zip.<group>.<key>)");
  if (Configuration::schema().count(name.base) == 0) unknown_key(name.base);
  return name;
}

const KeySpec& spec_for(const std::string& key) {
  return Configuration::schema().at(parse_key(key).base);
}

/// Splits a sweep axis value into its elements: on ';' when one is
/// present (so list-typed keys can sweep whole lists), else on ','.
std::vector<std::string> split_sweep_elements(const std::string& s) {
  const char sep = s.find(';') != std::string::npos ? ';' : ',';
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(trim(cur));
  return out;
}

/// Keys whose semantics are per-run plumbing, not scenario shape; sweeping
/// them would make campaign points fight over output files or recurse.
bool sweepable(const std::string& base) {
  return base != "smoke" && base != "report_json" && base != "bench_json" &&
         base != "campaign_json" && base != "max_points" && base != "name" &&
         base != "trace_json" && base != "flit_trace" &&
         base != "progress_json" && base != "results_ndjson" &&
         base != "dist_report_json" && base != "listen" &&
         base != "lease_batch" && base != "lease_ms" &&
         base != "heartbeat_ms";
}

}  // namespace

bool Configuration::is_valid_key_name(const std::string& key) {
  KeyName name;
  return split_key_name(key, name) && schema().count(name.base) != 0;
}

void Configuration::set(const std::string& key, const std::string& value) {
  const KeyName name = parse_key(key);
  const KeySpec& spec = schema().at(name.base);
  if (name.sweep) {
    if (!sweepable(name.base))
      throw ConfigError("config: key '" + name.base +
                        "' cannot be swept (run-plumbing key)");
    const std::vector<std::string> elements = split_sweep_elements(value);
    for (const std::string& e : elements) {
      if (e.empty())
        throw ConfigError("config: sweep axis '" + key +
                          "' has an empty element in '" + value + "'");
      validate(name.base, spec, e);
    }
  } else {
    validate(key, spec, value);
  }
  values_[key] = Entry{value, next_seq_++};
}

void Configuration::unset(const std::string& key) {
  values_.erase(key);
  values_.erase("smoke." + key);
}

void Configuration::load_text(const std::string& text,
                              const std::string& origin) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw ConfigError("config: " + origin + ":" + std::to_string(lineno) +
                        ": expected 'key = value', got '" + line + "'");
    try {
      set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    } catch (const ConfigError& e) {
      throw ConfigError(origin + ":" + std::to_string(lineno) + ": " +
                        e.what());
    }
  }
}

void Configuration::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ConfigError("config: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  load_text(ss.str(), path);
}

void Configuration::apply_overrides(const std::vector<std::string>& tokens) {
  for (const std::string& tok : tokens) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos)
      throw ConfigError("config: override '" + tok +
                        "' is not of the form key=value");
    set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
}

bool Configuration::smoke() const {
  const auto it = values_.find("smoke");
  if (it != values_.end()) {
    bool b = false;
    parse_bool(it->second.value, b);
    return b;
  }
  bool from_env = false;
  if (env_alias_value("smoke", schema().at("smoke"), from_env))
    return from_env;
  return false;
}

std::vector<Configuration::SweepMember> Configuration::resolved_sweeps()
    const {
  // Pair every declared axis member with its smoke pin, resolve the winner
  // (same last-writer-wins rule as scalar keys), and order members by
  // their first declaration so expansion order is the file order.
  struct Decl {
    const Entry* base = nullptr;
    const Entry* pin = nullptr;
    std::string zip, key;
    int order = std::numeric_limits<int>::max();
  };
  std::map<std::string, Decl> decls;  // canonical member name -> decl
  for (const auto& [name, entry] : values_) {
    KeyName kn;
    if (!split_key_name(name, kn) || !kn.sweep) continue;
    const std::string canonical =
        "sweep." + (kn.zip.empty() ? "" : "zip." + kn.zip + ".") + kn.base;
    Decl& d = decls[canonical];
    d.zip = kn.zip;
    d.key = kn.base;
    d.order = std::min(d.order, entry.seq);
    (kn.smoke ? d.pin : d.base) = &entry;
  }
  const bool smoke_on = smoke();
  std::vector<SweepMember> out;
  for (const auto& [canonical, d] : decls) {
    const Entry* winner = d.base;
    if (smoke_on && d.pin != nullptr &&
        (winner == nullptr || d.pin->seq > winner->seq))
      winner = d.pin;
    if (winner == nullptr) continue;  // pin-only axis outside smoke mode
    out.push_back({canonical, d.zip, d.key, winner->value, d.order});
  }
  std::sort(out.begin(), out.end(),
            [](const SweepMember& a, const SweepMember& b) {
              return a.order < b.order;
            });
  return out;
}

bool Configuration::has_sweeps() const { return !resolved_sweeps().empty(); }

std::vector<SweepAxis> Configuration::sweep_axes() const {
  std::vector<SweepAxis> axes;
  std::vector<bool> is_zip;  // parallel: a zip group never merges with a
                             // plain axis that happens to share its label
  const auto zip_axis_for = [&](const std::string& label) -> SweepAxis& {
    for (size_t i = 0; i < axes.size(); ++i)
      if (is_zip[i] && axes[i].label == label) return axes[i];
    axes.push_back({label, {}, {}});
    is_zip.push_back(true);
    return axes.back();
  };
  for (const SweepMember& m : resolved_sweeps()) {
    std::vector<std::string> values = split_sweep_elements(m.raw);
    if (m.zip.empty()) {
      SweepAxis axis{m.key, {m.key}, {}};
      for (std::string& v : values) axis.points.push_back({std::move(v)});
      axes.push_back(std::move(axis));
      is_zip.push_back(false);
      continue;
    }
    SweepAxis& axis = zip_axis_for(m.zip);
    if (!axis.points.empty() && axis.points.size() != values.size())
      throw ConfigError(
          "config: zip group '" + m.zip + "' members disagree on length (" +
          m.key + " has " + std::to_string(values.size()) + " values, " +
          axis.keys.front() + " has " + std::to_string(axis.points.size()) +
          ")");
    if (axis.points.empty())
      axis.points.resize(values.size());
    axis.keys.push_back(m.key);
    for (size_t j = 0; j < values.size(); ++j)
      axis.points[j].push_back(std::move(values[j]));
  }
  for (const SweepAxis& a : axes)
    if (a.points.empty())
      throw ConfigError("config: sweep axis '" + a.label + "' has no values");
  return axes;
}

Configuration Configuration::strip_sweeps() const {
  Configuration out = *this;
  for (auto it = out.values_.begin(); it != out.values_.end();) {
    KeyName kn;
    if (split_key_name(it->first, kn) && kn.sweep)
      it = out.values_.erase(it);
    else
      ++it;
  }
  return out;
}

bool Configuration::is_set(const std::string& key) const {
  (void)spec_for(key);
  if (smoke() && values_.count("smoke." + key) != 0) return true;
  return values_.count(key) != 0;
}

std::string Configuration::resolved_raw(const std::string& key,
                                        const KeySpec& spec) const {
  const auto it = values_.find(key);
  if (key != "smoke" && smoke()) {
    const auto pin = values_.find("smoke." + key);
    // Last writer wins between the base key and its pin: a preset's pin
    // (written below the base line) applies under smoke=1, while a later
    // explicit override of the base key beats the pin again.
    if (pin != values_.end() &&
        (it == values_.end() || pin->second.seq > it->second.seq))
      return pin->second.value;
  }
  if (it != values_.end()) return it->second.value;
  bool from_env = false;
  if (env_alias_value(key, spec, from_env)) return from_env ? "1" : "0";
  return spec.def;
}

bool Configuration::get_bool(const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::Bool)
    throw ConfigError("config: key '" + key + "' is not a bool");
  bool b = false;
  parse_bool(resolved_raw(key, spec), b);
  return b;
}

int Configuration::get_int(const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::Int)
    throw ConfigError("config: key '" + key + "' is not an int");
  long long i = 0;
  parse_i64(resolved_raw(key, spec), i);
  return static_cast<int>(i);
}

uint64_t Configuration::get_uint64(const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::UInt64)
    throw ConfigError("config: key '" + key + "' is not a uint64");
  uint64_t u = 0;
  parse_u64(resolved_raw(key, spec), u);
  return u;
}

double Configuration::get_double(const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::Double)
    throw ConfigError("config: key '" + key + "' is not a double");
  double d = 0;
  parse_f64(resolved_raw(key, spec), d);
  return d;
}

std::string Configuration::get_string(const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::String)
    throw ConfigError("config: key '" + key + "' is not a string");
  return resolved_raw(key, spec);
}

std::vector<int> Configuration::get_int_list(const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::IntList)
    throw ConfigError("config: key '" + key + "' is not an int list");
  std::vector<int> out;
  for (const std::string& item : split_list(resolved_raw(key, spec))) {
    long long i = 0;
    parse_i64(item, i);
    out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<double> Configuration::get_double_list(
    const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::DoubleList)
    throw ConfigError("config: key '" + key + "' is not a double list");
  std::vector<double> out;
  for (const std::string& item : split_list(resolved_raw(key, spec))) {
    double d = 0;
    parse_f64(item, d);
    out.push_back(d);
  }
  return out;
}

std::vector<std::string> Configuration::get_string_list(
    const std::string& key) const {
  const KeySpec& spec = spec_for(key);
  if (spec.type != KeyType::StringList)
    throw ConfigError("config: key '" + key + "' is not a string list");
  return split_list(resolved_raw(key, spec));
}

std::vector<std::pair<std::string, std::string>> Configuration::echo() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, spec] : schema()) {
    bool explicitly = values_.count(key) != 0;
    if (smoke() && values_.count("smoke." + key) != 0) explicitly = true;
    // A value resolved from a deprecated env alias is part of the run's
    // effective configuration: echo it so replaying the echoed config
    // reproduces the run without the environment.
    if (env_alias_present(spec)) explicitly = true;
    if (!explicitly) continue;
    out.emplace_back(key, resolved_raw(key, spec));
  }
  // Sweep axes follow the base keys under their canonical sweep.* names
  // (declaration order), so an echoed campaign config replays as one.
  for (const SweepMember& m : resolved_sweeps()) out.emplace_back(m.name, m.raw);
  return out;
}

int Configuration::env_alias_warning_count() { return g_env_warnings.load(); }

}  // namespace mcc::api
