// Typed key=value configuration for the experiment API (booksim-style "one
// front door": every run is a config file plus overrides, never a bespoke
// main()).
//
// Rules, all enforced as hard failures (ConfigError):
//   * unknown keys are errors (with a nearest-key suggestion);
//   * values must parse as the key's declared type and sit in its range;
//   * `smoke.<key>` pins the value a key takes when smoke=1, so one preset
//     file carries both the full sweep and its CI smoke shape;
//   * the legacy environment variables MCC_SMOKE / MCC_NOCACHE remain as
//     deprecated aliases of smoke= / guidance_cache= that warn once per
//     process; an explicit config value always wins over the environment.
//
// Campaign grids: `sweep.<key> = v1, v2, ...` declares a sweep axis over
// any schema key (each element is one full value for the key; elements
// split on ';' when one is present, else on ','). `sweep.zip.<group>.<key>`
// axes in the same group advance together (equal lengths required) and the
// group counts as one axis of the cartesian product. `smoke.sweep.<key>`
// pins an axis's value list under smoke=1 exactly like `smoke.<key>` does
// for scalars. A config with sweep axes is a campaign: Experiment rejects
// it, api::Campaign expands it (axis declared first varies slowest).
//
// File syntax: one `key = value` per line, `#` starts a comment, blank
// lines ignored. Override syntax (CLI / Experiment): `key=value` tokens.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mcc::api {

/// Every configuration/registry failure surfaces as this type; mcc_run
/// maps it to exit code 2, tests assert on it.
struct ConfigError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class KeyType : uint8_t {
  Bool,
  Int,
  UInt64,
  Double,
  String,
  IntList,
  DoubleList,
  StringList,
};

const char* to_string(KeyType t);

struct KeySpec {
  KeyType type = KeyType::String;
  std::string def;   // default, in value syntax ("" = empty list for lists)
  std::string help;
  double min = -1e300;  // numeric range (applies per element for lists)
  double max = 1e300;
  const char* env_alias = nullptr;  // deprecated environment fallback
  bool env_inverted = false;        // truthy env means key=false (MCC_NOCACHE)
};

/// One resolved campaign sweep axis: a single swept key (label == keys[0])
/// or a zip group (label == the group name). Point j of the axis assigns
/// keys[i] = points[j][i] for every i.
struct SweepAxis {
  std::string label;
  std::vector<std::string> keys;
  std::vector<std::vector<std::string>> points;
};

class Configuration {
 public:
  /// Starts with every key at its default.
  Configuration() = default;

  /// The full key reference (name -> spec), ordered by name.
  static const std::map<std::string, KeySpec>& schema();

  /// True when `key` (with any smoke./sweep./sweep.zip.<g>. prefixes) names
  /// a schema key — the predicate mcc_run uses to tell overrides from file
  /// paths. Never throws.
  static bool is_valid_key_name(const std::string& key);

  /// Sets one key from its text form. Accepts `smoke.<key>` pins and
  /// `sweep.*` axis declarations. Throws ConfigError on unknown key, type
  /// mismatch or range violation (sweep elements validate per element).
  void set(const std::string& key, const std::string& value);

  /// Removes any explicit value (and smoke pin) for `key`, restoring its
  /// default — Campaign strips the execution-only keys (lease shape,
  /// listen address, journal paths) from point configs with this, so a
  /// point's config echo never depends on how the campaign was scheduled.
  void unset(const std::string& key);

  /// Parses `key = value` lines. `origin` names the source in errors.
  void load_text(const std::string& text, const std::string& origin);
  void load_file(const std::string& path);

  /// Applies `key=value` override tokens (CLI tail), left to right.
  void apply_overrides(const std::vector<std::string>& tokens);

  /// True when the key (or, with smoke active, its smoke.* pin) was set
  /// explicitly rather than defaulted.
  bool is_set(const std::string& key) const;

  // Typed getters over the RESOLVED view: the later of the explicit value
  // and (when smoke is on) its smoke.* pin, then the env alias (warning
  // once), then the default. Throws ConfigError on unknown key or
  // getter/type mismatch.
  bool get_bool(const std::string& key) const;
  int get_int(const std::string& key) const;
  uint64_t get_uint64(const std::string& key) const;
  double get_double(const std::string& key) const;
  std::string get_string(const std::string& key) const;
  std::vector<int> get_int_list(const std::string& key) const;
  std::vector<double> get_double_list(const std::string& key) const;
  std::vector<std::string> get_string_list(const std::string& key) const;

  /// True when smoke mode is active (smoke=1 or the MCC_SMOKE alias).
  bool smoke() const;

  /// True when the resolved view declares at least one sweep axis (a
  /// campaign configuration; Experiment rejects it, Campaign expands it).
  bool has_sweeps() const;

  /// The resolved sweep axes in declaration order (smoke pins applied, zip
  /// groups assembled and length-checked). Throws ConfigError on zip
  /// length mismatches or empty axes.
  std::vector<SweepAxis> sweep_axes() const;

  /// A copy with every sweep.* entry removed — the base a Campaign builds
  /// its per-point configurations from.
  Configuration strip_sweeps() const;

  /// Resolved (key, value-text) pairs of every explicitly-set base key in
  /// sorted order — the config echo embedded in RunReport JSON. Values are
  /// post-resolution: smoke pins substituted when smoke is on. Sweep axes
  /// are echoed after the base keys under their `sweep.*` names (so
  /// replaying an echoed campaign config reproduces the campaign).
  std::vector<std::pair<std::string, std::string>> echo() const;

  /// Process-wide count of deprecated-env-alias warnings (test hook).
  static int env_alias_warning_count();

 private:
  struct Entry {
    std::string value;
    int seq = 0;  // set() order; later writes beat earlier smoke pins
  };

  /// One active sweep axis member after smoke resolution: its canonical
  /// `sweep.[zip.<group>.]key` name, zip group (empty = own axis), base
  /// key, winning raw value text and declaration order.
  struct SweepMember {
    std::string name, zip, key, raw;
    int order = 0;
  };
  std::vector<SweepMember> resolved_sweeps() const;

  std::string resolved_raw(const std::string& key, const KeySpec& spec) const;

  // Explicit values by key; smoke pins stored under their "smoke." name.
  // The sequence number makes precedence last-writer-wins between a key
  // and its smoke pin: a preset's smoke.k pin (written after its k line)
  // beats the preset's k when smoke is on, and a later CLI override k=6
  // beats the pin again — so inline overrides always work as documented.
  std::map<std::string, Entry> values_;
  int next_seq_ = 0;
};

}  // namespace mcc::api
