// Built-in experiment drivers over the core routing stack: route_quality
// (E8 and its 3-D/dynamic/baseline generalizations), route_demo (the
// quickstart path), region_atlas (fault-pattern comparisons) and
// protocol_cost (E7). The wormhole drivers live in drivers_wormhole.cc.
//
// The rewired benches must stay byte-identical with their pre-redesign
// output, so the E8 code path reproduces the legacy bench loop exactly:
// same seed arithmetic, same draw order, same Table formatting calls
// (tests/test_api_differential.cc pins this).
#include <cmath>
#include <mutex>
#include <set>
#include <sstream>
#include <type_traits>

#include "api/experiment.h"
#include "baselines/fault_block.h"
#include "core/labeling.h"
#include "mesh/fault_injection.h"
#include "proto/stack2d.h"
#include "sim/wormhole/baseline_routing.h"
#include "util/ascii_viz.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc::api {

namespace {

// ---------------------------------------------------------------------------
// Small topology adapters so route_quality is written once for 2-D/3-D and
// once for the static/dynamic models.

struct Axes2 {
  using Mesh = mesh::Mesh2D;
  using Coord = mesh::Coord2;
  using Dir = mesh::Dir2;
  using Octant = mesh::Octant2;
  using StaticModel = core::MccModel2D;
  using DynamicModel = runtime::DynamicModel2D;
  using Timeline = runtime::FaultTimeline2D;
  using BlockField = baselines::BlockField2D;
  static constexpr size_t kMaxCand = 2;
};

struct Axes3 {
  using Mesh = mesh::Mesh3D;
  using Coord = mesh::Coord3;
  using Dir = mesh::Dir3;
  using Octant = mesh::Octant3;
  using StaticModel = core::MccModel3D;
  using DynamicModel = runtime::DynamicModel3D;
  using Timeline = runtime::FaultTimeline3D;
  using BlockField = baselines::BlockField3D;
  static constexpr size_t kMaxCand = 3;
};

mesh::Mesh2D square_mesh(Axes2, const Scenario& s) { return s.mesh2(); }
mesh::Mesh3D square_mesh(Axes3, const Scenario& s) { return s.mesh3(); }

mesh::FaultSet2D scenario_faults(const mesh::Mesh2D& m, const Scenario& s,
                                 util::Rng& rng,
                                 const std::vector<mesh::Coord2>& protect) {
  return s.make_faults2(m, rng, protect);
}
mesh::FaultSet3D scenario_faults(const mesh::Mesh3D& m, const Scenario& s,
                                 util::Rng& rng,
                                 const std::vector<mesh::Coord3>& protect) {
  return s.make_faults3(m, rng, protect);
}

std::optional<std::pair<mesh::Coord2, mesh::Coord2>> sample_pair(
    const mesh::Mesh2D& m, const core::LabelField2D& labels, util::Rng& rng,
    int min_distance) {
  return util::sample_pair2d(m, labels, rng, min_distance);
}
std::optional<std::pair<mesh::Coord3, mesh::Coord3>> sample_pair(
    const mesh::Mesh3D& m, const core::LabelField3D& labels, util::Rng& rng,
    int min_distance) {
  return util::sample_pair3d(m, labels, rng, min_distance);
}

baselines::BlockField2D make_block_field(const mesh::Mesh2D& m,
                                         const mesh::FaultSet2D& f,
                                         sim::wh::BlockFill fill) {
  return fill == sim::wh::BlockFill::BoundingBox
             ? baselines::bounding_box_fill(m, f)
             : baselines::safety_fill(m, f);
}
baselines::BlockField3D make_block_field(const mesh::Mesh3D& m,
                                         const mesh::FaultSet3D& f,
                                         sim::wh::BlockFill fill) {
  return fill == sim::wh::BlockFill::BoundingBox
             ? baselines::bounding_box_fill(m, f)
             : baselines::safety_fill(m, f);
}

core::RouterKind router_kind_for(const Scenario& s, const std::string& policy,
                                 int dims) {
  const PolicySpec& spec = s.policy_spec(policy);
  const auto kind = dims == 2 ? spec.router_kind2d : spec.router_kind3d;
  if (!kind)
    throw ConfigError("config: policy '" + policy +
                      "' has no core path router; route_quality serves it "
                      "through its baseline branch only");
  return *kind;
}

int component(mesh::Coord2 c, int axis) { return axis == 0 ? c.x : c.y; }
int component(mesh::Coord3 c, int axis) {
  return axis == 0 ? c.x : axis == 1 ? c.y : c.z;
}

template <class Coord>
Coord step_toward(Coord u, const Coord& d, int axis) {
  Coord n = u;
  if constexpr (std::is_same_v<Coord, mesh::Coord2>) {
    if (axis == 0) n.x += u.x < d.x ? 1 : -1;
    else n.y += u.y < d.y ? 1 : -1;
  } else {
    if (axis == 0) n.x += u.x < d.x ? 1 : -1;
    else if (axis == 1) n.y += u.y < d.y ? 1 : -1;
    else n.z += u.z < d.z ? 1 : -1;
  }
  return n;
}

/// Minimal-adaptive walk through a block field (per-hop feasibility via the
/// same monotone reachability E3/E4 compare with); used by the fault_block
/// rows of route_quality. Precondition: block_feasible(s, d).
template <class AxesT>
core::RouteStats block_walk(const typename AxesT::Mesh& m,
                            const typename AxesT::BlockField& field,
                            typename AxesT::Coord s, typename AxesT::Coord d,
                            core::RoutePolicy policy, uint64_t seed,
                            int& hops) {
  constexpr int kDims = std::is_same_v<AxesT, Axes2> ? 2 : 3;
  util::Rng rng(seed);
  core::RouteStats stats;
  auto u = s;
  int last_axis = -1;
  hops = 0;
  while (!(u == d)) {
    std::array<int, 3> axes{};
    size_t n = 0;
    for (int axis = 0; axis < kDims; ++axis) {
      if (component(u, axis) == component(d, axis)) continue;
      const auto next = step_toward(u, d, axis);
      if (baselines::block_feasible(m, field, next, d)) axes[n++] = axis;
    }
    if (n == 0) {
      hops = -1;  // cannot happen when block_feasible(s, d) held
      return stats;
    }
    if (n >= 2) ++stats.multi_choice_hops;
    stats.candidate_sum += static_cast<int>(n);
    // Same selection semantics as core::select_candidate, with axis
    // indices standing in for directions.
    size_t pick = 0;
    switch (policy) {
      case core::RoutePolicy::XFirst: pick = 0; break;
      case core::RoutePolicy::YFirst: pick = n - 1; break;
      case core::RoutePolicy::Random: pick = rng.pick(n); break;
      case core::RoutePolicy::Balanced: {
        int best = -1;
        for (size_t i = 0; i < n; ++i) {
          const int rem = std::abs(component(d, axes[i]) - component(u, axes[i]));
          if (rem > best) {
            best = rem;
            pick = i;
          }
        }
        break;
      }
      case core::RoutePolicy::Alternate:
        for (size_t i = 0; i < n; ++i)
          if (axes[i] != last_axis) {
            pick = i;
            break;
          }
        break;
    }
    last_axis = axes[pick];
    u = step_toward(u, d, axes[pick]);
    ++hops;
  }
  return stats;
}

/// Fault-oblivious dimension-order walk: delivered iff every node of the
/// deterministic path is alive.
template <class AxesT, class Faults>
bool dor_walk(const Faults& faults, typename AxesT::Coord s,
              typename AxesT::Coord d, int& hops) {
  constexpr int kDims = std::is_same_v<AxesT, Axes2> ? 2 : 3;
  auto u = s;
  hops = 0;
  while (!(u == d)) {
    int axis = 0;
    while (axis < kDims && component(u, axis) == component(d, axis)) ++axis;
    u = step_toward(u, d, axis);
    if (faults.is_faulty(u)) return false;
    ++hops;
  }
  return true;
}

// ---------------------------------------------------------------------------
// route_quality

/// One (fault-rate, policy) table cell, shared by the static and dynamic
/// model paths. ModelT is core::MccModel*D or runtime::DynamicModel*D —
/// both expose octant()/feasible()/route() with identical semantics.
template <class AxesT, class MakeModel>
void route_quality_cell(const Scenario& scn, const typename AxesT::Mesh& m,
                        const std::string& policy, double rate,
                        MakeModel&& make_model, util::Table& t) {
  util::RunningStats delivered, minimal, multi, cand;
  std::mutex mu;
  const bool is_block = policy == "fault_block";
  const bool is_dor = policy == "dor";
  const int dims = std::is_same_v<AxesT, Axes2> ? 2 : 3;
  const std::optional<core::RouterKind> kind =
      is_block || is_dor
          ? std::nullopt
          : std::optional<core::RouterKind>(
                router_kind_for(scn, policy, dims));

  util::parallel_for(
      static_cast<size_t>(scn.trials), [&](size_t trial) {
        util::Rng rng(scn.seed + static_cast<uint64_t>(rate * 1000) * 7 +
                      trial);
        Scenario cell = scn;
        cell.fault_rate = rate;
        const auto f = scenario_faults(m, cell, rng, {});
        const auto model = make_model(m, f, trial);
        const auto& oct = model->octant(typename AxesT::Octant{});
        const std::optional<typename AxesT::BlockField> field =
            is_block ? std::optional<typename AxesT::BlockField>(
                           make_block_field(m, model->faults(),
                                            scn.block_fill_kind))
                     : std::nullopt;
        long n = 0, del = 0, min_ok = 0;
        util::RunningStats mstat, cstat;
        for (int i = 0; i < scn.pairs; ++i) {
          const auto pr = sample_pair(m, oct.labels, rng, scn.min_distance);
          if (!pr) continue;
          const auto [s, d] = *pr;
          if (!model->feasible(s, d).feasible) continue;
          ++n;
          const uint64_t route_seed = trial * 1000 + static_cast<uint64_t>(i);
          if (is_block) {
            if (!baselines::block_feasible(m, *field, s, d)) continue;
            ++del;
            int hops = 0;
            const core::RouteStats st = block_walk<AxesT>(
                m, *field, s, d, scn.route_policy, route_seed, hops);
            if (hops > 0) {
              ++min_ok;  // the walk is minimal by construction
              mstat.add(double(st.multi_choice_hops) / hops);
              cstat.add(double(st.candidate_sum) / hops);
            }
          } else if (is_dor) {
            int hops = 0;
            if (!dor_walk<AxesT>(model->faults(), s, d, hops)) continue;
            ++del;
            if (hops > 0) {
              ++min_ok;
              mstat.add(0.0);  // a deterministic path has no choice hops
              cstat.add(1.0);
            }
          } else {
            const auto r =
                model->route(s, d, *kind, scn.route_policy, route_seed);
            del += r.delivered;
            if (r.delivered) {
              min_ok += r.hops() == manhattan(s, d);
              if (r.hops() > 0) {
                mstat.add(double(r.stats.multi_choice_hops) / r.hops());
                cstat.add(double(r.stats.candidate_sum) / r.hops());
              }
            }
          }
        }
        if (n == 0) return;
        std::lock_guard<std::mutex> lock(mu);
        delivered.add(double(del) / n);
        minimal.add(del ? double(min_ok) / del : 0.0);
        if (mstat.count()) multi.add(mstat.mean());
        if (cstat.count()) cand.add(cstat.mean());
      });

  const std::string router_cell =
      is_block ? (scn.block_fill_kind == sim::wh::BlockFill::BoundingBox
                      ? "fault-block (bbox)"
                      : "fault-block")
      : is_dor ? "dor"
               : core::to_string(router_kind_for(scn, policy, dims));
  t.add_row({util::Table::pct(rate, 0), router_cell,
             util::Table::pct(delivered.mean(), 1),
             util::Table::pct(minimal.mean(), 1),
             util::Table::pct(multi.mean(), 1),
             util::Table::fmt(cand.mean(), 2)});
}

template <class AxesT>
void run_route_quality(const Scenario& scn, RunReport& report) {
  const typename AxesT::Mesh m = square_mesh(AxesT{}, scn);
  const int dims = std::is_same_v<AxesT, Axes2> ? 2 : 3;

  std::ostringstream head;
  head << "# " << scn.name << ": routing quality, " << dims << "-D "
       << m.nx() << "x" << m.ny();
  if constexpr (std::is_same_v<AxesT, Axes3>) head << "x" << m.nz();
  head << "\n\n";
  report.text(head.str());

  util::Table& t =
      report.table("routing_quality",
                   {"fault rate", "router", "delivered", "minimal",
                    "multi-choice hops", "mean candidates/hop"});

  // Model factory: static MccModel or DynamicModel with the churn schedule
  // already absorbed (every event applied through the incremental hooks).
  if (scn.dynamic && scn.churn.size() != 1)
    throw ConfigError(
        "config: route_quality applies one churn rate per run; sweep churn "
        "with separate configs (or driver=wormhole_churn)");

  const auto make_model = [&](const typename AxesT::Mesh& mesh,
                              const auto& faults, size_t) {
    using Model = std::conditional_t<std::is_same_v<AxesT, Axes2>,
                                     core::MccModel2D, core::MccModel3D>;
    return std::make_unique<Model>(mesh, faults);
  };
  const auto make_dynamic = [&](const typename AxesT::Mesh& mesh,
                                const auto& faults, size_t trial) {
    auto dyn = std::make_unique<typename AxesT::DynamicModel>(mesh, faults);
    util::ChurnParams p;
    p.rate = scn.churn.front() / 1000.0;
    p.horizon = scn.churn_horizon != 0 ? scn.churn_horizon : 1000;
    p.repair_min = static_cast<uint64_t>(scn.repair_min);
    p.repair_max = static_cast<uint64_t>(scn.repair_max);
    // Per-trial schedule (trial mixed into the seed so Monte-Carlo
    // replicates draw independent churn), identical across policies for a
    // fair comparison at the same trial index.
    util::Rng crng(scn.seed2 ^ ((trial + 1) * 0x9E3779B97F4A7C15ULL));
    using Timeline = typename AxesT::Timeline;
    const auto timeline = Timeline::sample(mesh, faults, crng, p);
    for (const auto& e : timeline.events()) {
      if (e.repair)
        (void)dyn->repair(e.node);
      else
        (void)dyn->fail(e.node);
    }
    return dyn;
  };

  for (const double rate : scn.fault_rates) {
    for (const std::string& policy : scn.policy_list) {
      if (scn.dynamic)
        route_quality_cell<AxesT>(scn, m, policy, rate, make_dynamic, t);
      else
        route_quality_cell<AxesT>(scn, m, policy, rate, make_model, t);
    }
  }

  // Path diversity: distinct minimal paths found by the random policy.
  // Fixed supplementary diagnostic (rates 0% and 10%, distance >= 12,
  // 20 tries), exactly the legacy E8 second table.
  if (scn.diversity) {
    report.text("\n");
    util::Table& t2 = report.table(
        "path_diversity",
        {"fault rate", "distinct paths (20 tries)", "path length"});
    const core::RouterKind kind = router_kind_for(scn, "model", dims);
    for (const double rate : {0.0, 0.10}) {
      util::RunningStats distinct, len;
      std::mutex mu;
      util::parallel_for(
          static_cast<size_t>(scn.trials), [&](size_t trial) {
            util::Rng rng(scn.seed2 + static_cast<uint64_t>(rate * 1000) +
                          trial);
            Scenario cell = scn;
            cell.fault_rate = rate;
            const auto f = scenario_faults(m, cell, rng, {});
            // Same model kind as the main table (post-churn dynamic when
            // fault_model=dynamic), so both tables describe one network.
            const auto probe = [&](const auto& model) {
              const auto& oct = model->octant(typename AxesT::Octant{});
              const auto pr = sample_pair(m, oct.labels, rng, 12);
              if (!pr || !model->feasible(pr->first, pr->second).feasible)
                return;
              std::set<std::vector<int>> paths;
              int hops = 0;
              for (int i = 0; i < 20; ++i) {
                const auto r =
                    model->route(pr->first, pr->second, kind,
                                 core::RoutePolicy::Random, trial * 77 + i);
                if (!r.delivered) continue;
                hops = r.hops();
                std::vector<int> key;
                for (const auto c : r.path) {
                  int idx = component(c, 1) * m.nx() + component(c, 0);
                  if constexpr (std::is_same_v<AxesT, Axes3>)
                    idx += component(c, 2) * m.nx() * m.ny();
                  key.push_back(idx);
                }
                paths.insert(key);
              }
              std::lock_guard<std::mutex> lock(mu);
              if (!paths.empty()) {
                distinct.add(static_cast<double>(paths.size()));
                len.add(hops);
              }
            };
            if (scn.dynamic)
              probe(make_dynamic(m, f, trial));
            else
              probe(make_model(m, f, trial));
          });
      t2.add_row({util::Table::pct(rate, 0),
                  util::Table::mean_ci(distinct.mean(), distinct.ci95(), 1),
                  util::Table::fmt(len.mean(), 1)});
    }
  }
  report.text(
      "\nExpected shape: oracle and record routers deliver 100% minimal; "
      "labels-only loses messages to\nmulti-region traps; adaptivity "
      "(choice-rich hops) shrinks as faults densify.\n");
}

void route_quality_driver(const Scenario& scn, RunReport& report) {
  if (scn.dims == 2)
    run_route_quality<Axes2>(scn, report);
  else
    run_route_quality<Axes3>(scn, report);
}

// ---------------------------------------------------------------------------
// route_demo (quickstart / figure-5 walkthrough)

template <class AxesT>
void run_route_demo(const Scenario& scn, RunReport& report) {
  const typename AxesT::Mesh m = square_mesh(AxesT{}, scn);
  const int dims = std::is_same_v<AxesT, Axes2> ? 2 : 3;
  typename AxesT::Coord s{}, d{};
  if constexpr (std::is_same_v<AxesT, Axes2>) {
    d = {m.nx() - 1, m.ny() - 1};
  } else {
    d = {m.nx() - 1, m.ny() - 1, m.nz() - 1};
  }

  util::Rng rng(scn.seed);
  const auto faults = scenario_faults(m, scn, rng, {s, d});

  std::ostringstream os;
  os << "mesh ";
  if constexpr (std::is_same_v<AxesT, Axes2>)
    os << m.nx() << "x" << m.ny();
  else
    os << m.nx() << "x" << m.ny() << "x" << m.nz();
  os << ", " << faults.count() << " faulty nodes (" << scn.fault_pattern
     << ")\n";

  // Static or dynamic model behind one query surface — the point of the
  // demo is that the config picks the stack.
  std::unique_ptr<typename AxesT::StaticModel> stat;
  std::unique_ptr<typename AxesT::DynamicModel> dyn;
  if (scn.dynamic)
    dyn = std::make_unique<typename AxesT::DynamicModel>(m, faults);
  else
    stat = std::make_unique<typename AxesT::StaticModel>(m, faults);

  const auto& oct = scn.dynamic ? dyn->octant(typename AxesT::Octant{})
                                : stat->octant(typename AxesT::Octant{});
  os << "MCC fault regions: " << oct.mccs.regions().size()
     << " (healthy nodes absorbed: " << oct.labels.healthy_unsafe_count();
  if (dims == 3)
    os << "; useless " << oct.labels.useless_count() << ", can't-reach "
       << oct.labels.cant_reach_count();
  os << ")\n";

  const auto feas =
      scn.dynamic ? dyn->feasible(s, d) : stat->feasible(s, d);
  os << "minimal path s->d exists: " << (feas.feasible ? "yes" : "no")
     << "\n";
  report.metric("feasible", feas.feasible ? 1 : 0);
  if (!feas.feasible) {
    report.text(os.str());
    return;
  }

  const core::RouterKind kind = router_kind_for(scn, scn.policy, dims);
  const auto route = scn.dynamic
                         ? dyn->route(s, d, kind, scn.route_policy, scn.seed)
                         : stat->route(s, d, kind, scn.route_policy,
                                       scn.seed);
  os << "routed in " << route.hops() << " hops (distance " << manhattan(s, d)
     << ") via " << core::to_string(kind) << "/"
     << core::to_string(scn.route_policy) << "\npath:";
  for (const auto c : route.path) os << ' ' << c;
  os << '\n';
  report.metric("delivered", route.delivered ? 1 : 0);
  report.metric("hops", route.hops());
  if (!route.delivered) report.fail("feasible pair not delivered");
  report.text(os.str());
}

void route_demo_driver(const Scenario& scn, RunReport& report) {
  if (scn.dims == 2)
    run_route_demo<Axes2>(scn, report);
  else
    run_route_demo<Axes3>(scn, report);
}

// ---------------------------------------------------------------------------
// region_atlas (2-D fault-pattern comparison, the old fault_region_atlas)

void region_atlas_driver(const Scenario& scn, RunReport& report) {
  if (scn.dims != 2)
    throw ConfigError("config: driver region_atlas supports dims=2 only");
  const mesh::Mesh2D m = scn.mesh2();
  util::Rng rng(scn.fault_seed);
  const auto f = scenario_faults(m, scn, rng, {});

  const core::LabelField2D labels(m, f);
  const core::MccSet2D mccs(m, labels);
  const core::Boundary2D boundary(m, labels, mccs);
  const auto safety = baselines::safety_fill(m, f);
  const auto bbox = baselines::bounding_box_fill(m, f);

  std::ostringstream os;
  os << "== " << scn.name << "\n";
  if (scn.render) {
    util::VizOptions opts;
    opts.boundary = &boundary;
    os << util::render_mesh(m, labels, opts);
  } else {
    os << util::render_mesh(m, labels);
  }
  os << "faults=" << f.count()
     << "  MCC healthy-absorbed=" << labels.healthy_unsafe_count()
     << "  safety-blocks=" << safety.healthy_unsafe_count()
     << "  bounding-box=" << bbox.healthy_unsafe_count()
     << "  regions=" << mccs.regions().size()
     << "  boundary records=" << boundary.record_count() << "\n\n";
  report.text(os.str());

  util::Table& t = report.table(
      "absorption", {"faults", "mcc absorbed", "safety blocks",
                     "bounding box", "regions", "records"});
  t.add_row({std::to_string(f.count()),
             std::to_string(labels.healthy_unsafe_count()),
             std::to_string(safety.healthy_unsafe_count()),
             std::to_string(bbox.healthy_unsafe_count()),
             std::to_string(mccs.regions().size()),
             std::to_string(boundary.record_count())});
  report.metric("mcc_absorbed", labels.healthy_unsafe_count());
  report.metric("safety_absorbed", safety.healthy_unsafe_count());
  report.metric("bbox_absorbed", bbox.healthy_unsafe_count());
}

// ---------------------------------------------------------------------------
// protocol_cost (E7)

void protocol_cost_driver(const Scenario& scn, RunReport& report) {
  if (scn.dims != 2)
    throw ConfigError(
        "config: driver protocol_cost runs the 2-D stack (dims=2); its "
        "detail table includes the 3-D flood costs");
  if (scn.dynamic)
    throw ConfigError(
        "config: driver protocol_cost requires fault_model=static");

  report.text("# " + scn.name + ": distributed protocol cost (2-D stack)\n\n");

  util::Table& t = report.table(
      "protocol_cost",
      {"mesh", "fault rate", "label msgs", "label rounds", "ident msgs",
       "boundary msgs", "total payload (words)", "msgs/node", "identified",
       "discarded"});

  // The cost table sweeps square ks; with no explicit ks it covers the
  // single configured mesh (nx/ny), so a render-mode instance and the
  // table describe the same network.
  std::vector<mesh::Mesh2D> meshes;
  if (scn.ks_set)
    for (const int k : scn.ks) meshes.push_back(mesh::Mesh2D(k, k));
  else
    meshes.push_back(scn.mesh2());
  for (const mesh::Mesh2D& m : meshes) {
    const int k = m.nx();
    for (const double rate : scn.fault_rates) {
      util::RunningStats lab_m, lab_r, id_m, bd_m, payload, per_node, ident,
          disc;
      std::mutex mu;
      util::parallel_for(
          static_cast<size_t>(scn.trials), [&](size_t trial) {
            util::Rng rng(scn.seed + static_cast<uint64_t>(k) * 100 +
                          static_cast<uint64_t>(rate * 1000) * 17 + trial);
            Scenario cell = scn;
            cell.fault_rate = rate;
            const auto f = scenario_faults(m, cell, rng, {});
            proto::Stack2D stack(m, f);
            std::lock_guard<std::mutex> lock(mu);
            lab_m.add(static_cast<double>(stack.labeling_stats.messages));
            lab_r.add(static_cast<double>(stack.labeling_stats.rounds));
            id_m.add(static_cast<double>(stack.ident_stats.messages));
            bd_m.add(static_cast<double>(stack.boundary_stats.messages));
            payload.add(static_cast<double>(stack.total_payload_words()));
            per_node.add(static_cast<double>(stack.total_messages()) /
                         static_cast<double>(m.node_count()));
            ident.add(stack.ident.identified());
            disc.add(stack.ident.discarded());
          });
      t.add_row({std::to_string(m.nx()) + "x" + std::to_string(m.ny()),
                 util::Table::pct(rate, 0),
                 util::Table::fmt(lab_m.mean(), 0),
                 util::Table::fmt(lab_r.mean(), 1),
                 util::Table::fmt(id_m.mean(), 0),
                 util::Table::fmt(bd_m.mean(), 0),
                 util::Table::fmt(payload.mean(), 0),
                 util::Table::fmt(per_node.mean(), 2),
                 util::Table::fmt(ident.mean(), 1),
                 util::Table::fmt(disc.mean(), 1)});
    }
  }

  // Detection / routing message cost for individual queries (fixed shapes,
  // the legacy E7 second table, blank-line separated as the legacy bench
  // printed it).
  if (scn.detail) {
    report.text("\n");
    util::Table& t2 = report.table(
        "query_cost", {"mesh", "fault rate", "detect msgs (2D)",
                       "route msgs (2D)", "detect msgs (3D flood)"});
    for (const double rate : {0.05, 0.10}) {
      const int k = 24;
      const mesh::Mesh2D m2(k, k);
      const mesh::Mesh3D m3(10, 10, 10);
      util::RunningStats det2, rt2, det3;
      std::mutex mu;
      util::parallel_for(
          static_cast<size_t>(scn.trials), [&](size_t trial) {
            util::Rng rng(scn.seed2 + static_cast<uint64_t>(rate * 1000) +
                          trial);
            const auto f2 = mesh::inject_uniform(m2, rate, rng);
            proto::Stack2D stack(m2, f2);
            const core::LabelField2D labels(m2, f2);
            util::RunningStats d2, r2;
            for (int i = 0; i < 10; ++i) {
              const auto pr = util::sample_pair2d(m2, labels, rng);
              if (!pr) continue;
              const auto det = proto::run_detect2d(m2, stack.labeling,
                                                   pr->first, pr->second);
              d2.add(static_cast<double>(det.stats.messages));
              if (det.feasible()) {
                const auto rt = proto::run_route2d(
                    m2, stack.labeling, stack.boundary, pr->first,
                    pr->second, trial * 31 + static_cast<uint64_t>(i));
                if (rt.delivered)
                  r2.add(static_cast<double>(rt.stats.messages));
              }
            }
            const auto f3 = mesh::inject_uniform(m3, rate, rng);
            proto::LabelingProtocol3D lab3(m3, f3);
            lab3.run();
            const core::LabelField3D labels3(m3, f3);
            util::RunningStats d3;
            for (int i = 0; i < 5; ++i) {
              const auto pr = util::sample_pair3d(m3, labels3, rng);
              if (!pr) continue;
              const auto det =
                  proto::run_detect3d(m3, lab3, pr->first, pr->second);
              d3.add(static_cast<double>(det.stats.messages));
            }
            std::lock_guard<std::mutex> lock(mu);
            if (d2.count()) det2.add(d2.mean());
            if (r2.count()) rt2.add(r2.mean());
            if (d3.count()) det3.add(d3.mean());
          });
      t2.add_row({"24x24 / 10^3", util::Table::pct(rate, 0),
                  util::Table::fmt(det2.mean(), 1),
                  util::Table::fmt(rt2.mean(), 1),
                  util::Table::fmt(det3.mean(), 1)});
    }
  }

  // One rendered instance of the full stack (the old distributed_protocol
  // example): labelled mesh, per-phase costs, one detection + routed path.
  if (scn.render) {
    const mesh::Mesh2D m = scn.mesh2();
    util::Rng rng(scn.fault_seed);
    const auto faults = scenario_faults(m, scn, rng, {});
    proto::Stack2D stack(m, faults);
    const core::LabelField2D reference(m, faults);

    std::ostringstream os;
    os << "\nmesh " << m.nx() << "x" << m.ny() << ", " << faults.count()
       << " faults\n";
    os << util::render_mesh(m, reference);
    const auto phase = [&os](const char* pname, const sim::RunStats& st) {
      os << "  " << pname << ": " << st.rounds << " rounds, " << st.messages
         << " messages, " << st.payload_words << " payload words\n";
    };
    os << "protocol phases:\n";
    phase("labelling     ", stack.labeling_stats);
    phase("neighborhood  ", stack.exchange_stats);
    phase("identification", stack.ident_stats);
    phase("boundaries    ", stack.boundary_stats);
    os << "  corners found: " << stack.ident.corners().size()
       << ", regions identified: " << stack.ident.identified()
       << ", discarded: " << stack.ident.discarded()
       << ", records deposited: " << stack.boundary.record_count() << "\n\n";

    const mesh::Coord2 s{1, 1};
    const mesh::Coord2 d{m.nx() - 2, m.ny() - 2};
    const auto det = proto::run_detect2d(m, stack.labeling, s, d);
    os << "detection " << s << " -> " << d << ": +Y walker "
       << (det.y_walker_ok ? "ok" : "blocked") << ", +X walker "
       << (det.x_walker_ok ? "ok" : "blocked") << " (" << det.stats.messages
       << " messages)\n";
    if (det.feasible()) {
      const auto route = proto::run_route2d(m, stack.labeling, stack.boundary,
                                            s, d, scn.seed);
      os << "routing: " << (route.delivered ? "delivered" : "stuck")
         << " in " << route.hops() << " hops (distance " << manhattan(s, d)
         << ")\n";
      util::VizOptions opts;
      opts.boundary = nullptr;
      opts.path = route.path;
      opts.source = s;
      opts.destination = d;
      os << util::render_mesh(m, reference, opts);
    }
    report.text(os.str());
  }

  report.text(
      "\nExpected shape: labelling costs ~1 broadcast wave per node plus "
      "fill cascades; identification and\nboundary messages scale with "
      "fault-region perimeter, not mesh volume; routing costs ~path "
      "length.\n");
}

}  // namespace

void register_wormhole_drivers();  // drivers_wormhole.cc
void register_eval_drivers();      // drivers_eval.cc (E1-E6, E9)
void register_serve_drivers();     // drivers_serve.cc (E13)
void register_reliability_drivers();  // drivers_reliability.cc (E14)

void register_builtin_drivers() {
  drivers().add("route_quality", route_quality_driver,
                "delivery/minimality/adaptivity per fault rate and policy "
                "(E8; 2-D/3-D, static/dynamic, baselines)");
  drivers().add("route_demo", route_demo_driver,
                "route one corner-to-corner pair and show the MCC stack "
                "(quickstart)");
  drivers().add("region_atlas", region_atlas_driver,
                "render a fault pattern and compare MCC absorption against "
                "the block fills");
  drivers().add("protocol_cost", protocol_cost_driver,
                "distributed construction cost per protocol phase (E7)");
  register_wormhole_drivers();
  register_eval_drivers();
  register_serve_drivers();
  register_reliability_drivers();
}

}  // namespace mcc::api
