// Evaluation drivers for the paper's static experiment suite: region_fill
// (E1/E2), success_rate (E3/E4), region_geometry (E5), agreement (E6) and
// ablation (E9). These complete the bench rewire started in PR 4 — every
// experiment now runs through mcc_run from a configs/ preset.
//
// The rewired benches must stay byte-identical with their pre-redesign
// output, so each driver reproduces the legacy bench loop exactly: same
// seed arithmetic (the preset carries the legacy seed bases), same draw
// order, same Table formatting calls (tests/test_api_differential.cc pins
// the cells). Where a legacy bench fixed a secondary table's rates or
// shapes in code (E5b, E9b/c, E6's 3-D workloads), the driver keeps them
// fixed — they are part of the experiment's definition, like E7's query
// table.
#include <algorithm>
#include <mutex>
#include <sstream>

#include "api/experiment.h"
#include "baselines/fault_block.h"
#include "baselines/simple_routers.h"
#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/labeling.h"
#include "core/mcc_region.h"
#include "core/model.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "mesh/octant.h"
#include "util/parallel.h"
#include "util/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc::api {

namespace {

void require_static(const Scenario& scn, const char* driver) {
  if (scn.dynamic)
    throw ConfigError(std::string("config: driver ") + driver +
                      " evaluates the static model; set fault_model=static");
}

// ---------------------------------------------------------------------------
// region_fill (E1 in 2-D, E2 in 3-D): healthy nodes absorbed into fault
// regions, MCC labelling vs the rectangular block baselines.

void run_region_fill2d(const Scenario& scn, RunReport& report) {
  util::Table& table = report.table(
      "fill", {"mesh", "fault rate", "faults", "MCC healthy",
               "safety-block healthy", "bbox healthy", "MCC/safety ratio"});
  for (const int k : scn.ks) {
    const mesh::Mesh2D m(k, k);
    for (const double rate : scn.fault_rates) {
      util::RunningStats faults, mcc_fill, safety_fill_stat, bbox_fill;
      std::mutex mu;
      Scenario cell = scn;
      cell.fault_rate = rate;
      util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t t) {
        util::Rng rng(scn.seed + static_cast<uint64_t>(k) * 1000 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        const auto f = cell.make_faults2(m, rng);
        const core::LabelField2D labels(m, f);
        const auto safety = baselines::safety_fill(m, f);
        const auto bbox = baselines::bounding_box_fill(m, f);
        std::lock_guard<std::mutex> lock(mu);
        faults.add(f.count());
        mcc_fill.add(labels.healthy_unsafe_count());
        safety_fill_stat.add(safety.healthy_unsafe_count());
        bbox_fill.add(bbox.healthy_unsafe_count());
      });
      const double ratio = safety_fill_stat.mean() > 0
                               ? mcc_fill.mean() / safety_fill_stat.mean()
                               : 1.0;
      table.add_row(
          {std::to_string(k) + "x" + std::to_string(k),
           util::Table::pct(rate, 0), util::Table::fmt(faults.mean(), 1),
           util::Table::mean_ci(mcc_fill.mean(), mcc_fill.ci95(), 2),
           util::Table::mean_ci(safety_fill_stat.mean(),
                                safety_fill_stat.ci95(), 2),
           util::Table::mean_ci(bbox_fill.mean(), bbox_fill.ci95(), 2),
           util::Table::fmt(ratio, 3)});
    }
  }
}

void run_region_fill3d(const Scenario& scn, RunReport& report) {
  util::Table& table = report.table(
      "fill", {"mesh", "fault rate", "faults", "MCC healthy",
               "safety-block healthy", "bbox healthy", "MCC/safety ratio"});
  for (const int k : scn.ks) {
    const mesh::Mesh3D m(k, k, k);
    for (const double rate : scn.fault_rates) {
      util::RunningStats faults, mcc_fill, safety, bbox;
      std::mutex mu;
      Scenario cell = scn;
      cell.fault_rate = rate;
      util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t t) {
        util::Rng rng(scn.seed + static_cast<uint64_t>(k) * 1000 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        const auto f = cell.make_faults3(m, rng);
        const core::LabelField3D labels(m, f);
        const auto sf = baselines::safety_fill(m, f);
        const auto bb = baselines::bounding_box_fill(m, f);
        std::lock_guard<std::mutex> lock(mu);
        faults.add(f.count());
        mcc_fill.add(labels.healthy_unsafe_count());
        safety.add(sf.healthy_unsafe_count());
        bbox.add(bb.healthy_unsafe_count());
      });
      const double ratio =
          safety.mean() > 0 ? mcc_fill.mean() / safety.mean() : 1.0;
      table.add_row(
          {std::to_string(k) + "^3", util::Table::pct(rate, 0),
           util::Table::fmt(faults.mean(), 1),
           util::Table::mean_ci(mcc_fill.mean(), mcc_fill.ci95(), 2),
           util::Table::mean_ci(safety.mean(), safety.ci95(), 2),
           util::Table::mean_ci(bbox.mean(), bbox.ci95(), 2),
           util::Table::fmt(ratio, 3)});
    }
  }
}

void region_fill_driver(const Scenario& scn, RunReport& report) {
  require_static(scn, "region_fill");
  report.text("# " + scn.name + ": healthy nodes absorbed into fault "
              "regions (" + std::to_string(scn.dims) + "-D, " +
              scn.fault_pattern + " faults, " + std::to_string(scn.trials) +
              " seeds)\n\n");
  if (scn.dims == 2) {
    run_region_fill2d(scn, report);
    report.text(
        "\nExpected shape: MCC << safety blocks <= bounding boxes, gap "
        "widening with fault rate.\n");
  } else {
    run_region_fill3d(scn, report);
    report.text(
        "\nExpected shape: the 3-D labelling needs all THREE positive "
        "(negative) neighbors blocked,\nso MCC absorbs near-zero healthy "
        "nodes at realistic fault rates — far fewer than block models.\n");
  }
}

// ---------------------------------------------------------------------------
// success_rate (E3 in 2-D, E4 in 3-D): minimal-routing success of the MCC
// model vs the oracle, the block baselines, greedy and dimension-order.

void run_success2d(const Scenario& scn, RunReport& report) {
  const mesh::Mesh2D m = scn.mesh2();
  util::Table& table = report.table(
      "success", {"fault rate", "oracle", "MCC model", "safety blocks",
                  "bbox blocks", "greedy local", "dim-order"});
  for (const double rate : scn.fault_rates) {
    util::RunningStats oracle_s, mcc_s, safety_s, bbox_s, greedy_s, dor_s;
    std::mutex mu;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t t) {
      util::Rng rng(scn.seed + static_cast<uint64_t>(rate * 1000) * 131 + t);
      const auto f = cell.make_faults2(m, rng);
      const core::LabelField2D labels(m, f);
      const auto safety = baselines::safety_fill(m, f);
      const auto bbox = baselines::bounding_box_fill(m, f);

      int n = 0, n_oracle = 0, n_mcc = 0, n_safety = 0, n_bbox = 0,
          n_greedy = 0, n_dor = 0;
      for (int p = 0; p < scn.pairs; ++p) {
        const auto pair = util::sample_pair2d(m, labels, rng);
        if (!pair) continue;
        const auto [s, d] = *pair;
        ++n;
        const core::ReachField2D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        n_oracle += oracle.feasible(s);
        n_mcc += core::detect2d(m, labels, s, d).feasible();
        n_safety += baselines::block_feasible(m, safety, s, d);
        n_bbox += baselines::block_feasible(m, bbox, s, d);
        util::Rng grng(rng.fork());
        n_greedy += baselines::greedy_route(m, f, s, d, grng);
        n_dor += baselines::dimension_order_route(m, f, s, d);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      oracle_s.add(double(n_oracle) / n);
      mcc_s.add(double(n_mcc) / n);
      safety_s.add(double(n_safety) / n);
      bbox_s.add(double(n_bbox) / n);
      greedy_s.add(double(n_greedy) / n);
      dor_s.add(double(n_dor) / n);
    });
    table.add_row({util::Table::pct(rate, 0),
                   util::Table::pct(oracle_s.mean(), 1),
                   util::Table::pct(mcc_s.mean(), 1),
                   util::Table::pct(safety_s.mean(), 1),
                   util::Table::pct(bbox_s.mean(), 1),
                   util::Table::pct(greedy_s.mean(), 1),
                   util::Table::pct(dor_s.mean(), 1)});
  }
}

void run_success3d(const Scenario& scn, RunReport& report) {
  const mesh::Mesh3D m = scn.mesh3();
  util::Table& table = report.table(
      "success", {"fault rate", "oracle", "MCC model", "safety blocks",
                  "bbox blocks", "greedy local", "dim-order"});
  for (const double rate : scn.fault_rates) {
    util::RunningStats oracle_s, mcc_s, safety_s, bbox_s, greedy_s, dor_s;
    std::mutex mu;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t t) {
      util::Rng rng(scn.seed + static_cast<uint64_t>(rate * 1000) * 131 + t);
      const auto f = cell.make_faults3(m, rng);
      const core::LabelField3D labels(m, f);
      const auto safety = baselines::safety_fill(m, f);
      const auto bbox = baselines::bounding_box_fill(m, f);

      int n = 0, n_oracle = 0, n_mcc = 0, n_safety = 0, n_bbox = 0,
          n_greedy = 0, n_dor = 0;
      for (int p = 0; p < scn.pairs; ++p) {
        const auto pair = util::sample_pair3d(m, labels, rng);
        if (!pair) continue;
        const auto [s, d] = *pair;
        ++n;
        const core::ReachField3D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        n_oracle += oracle.feasible(s);
        n_mcc += core::detect3d(m, labels, s, d).feasible();
        n_safety += baselines::block_feasible(m, safety, s, d);
        n_bbox += baselines::block_feasible(m, bbox, s, d);
        util::Rng grng(rng.fork());
        n_greedy += baselines::greedy_route(m, f, s, d, grng);
        n_dor += baselines::dimension_order_route(m, f, s, d);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      oracle_s.add(double(n_oracle) / n);
      mcc_s.add(double(n_mcc) / n);
      safety_s.add(double(n_safety) / n);
      bbox_s.add(double(n_bbox) / n);
      greedy_s.add(double(n_greedy) / n);
      dor_s.add(double(n_dor) / n);
    });
    table.add_row({util::Table::pct(rate, 0),
                   util::Table::pct(oracle_s.mean(), 1),
                   util::Table::pct(mcc_s.mean(), 1),
                   util::Table::pct(safety_s.mean(), 1),
                   util::Table::pct(bbox_s.mean(), 1),
                   util::Table::pct(greedy_s.mean(), 1),
                   util::Table::pct(dor_s.mean(), 1)});
  }
}

void success_rate_driver(const Scenario& scn, RunReport& report) {
  require_static(scn, "success_rate");
  std::ostringstream head;
  head << "# " << scn.name << ": minimal-routing success rate, ";
  if (scn.dims == 2)
    head << "2-D " << scn.mesh2().nx() << "x" << scn.mesh2().ny();
  else
    head << "3-D " << scn.mesh3().nx() << "^3";
  head << " (" << scn.trials << " seeds x " << scn.pairs
       << " safe pairs, " << scn.fault_pattern << " faults)\n\n";
  report.text(head.str());
  if (scn.dims == 2) {
    run_success2d(scn, report);
    report.text(
        "\nExpected shape: MCC == oracle (the paper's guarantee); block "
        "models trail and collapse at high rates;\ngreedy and "
        "dimension-order routing degrade fastest.\n");
  } else {
    run_success3d(scn, report);
    report.text(
        "\nExpected shape: 3-D meshes route around faults far more easily "
        "than 2-D; MCC tracks the oracle;\nthe conservative block models "
        "lose feasible pairs as blocks inflate.\n");
  }
}

// ---------------------------------------------------------------------------
// region_geometry (E5): MCC shapes per fault rate plus the per-orientation
// fill asymmetry (part b keeps the legacy fixed rates 10%/20% and seeds
// from seed2 — it is a supplementary diagnostic, like E7's query table).

void region_geometry_driver(const Scenario& scn, RunReport& report) {
  require_static(scn, "region_geometry");
  if (scn.dims != 2)
    throw ConfigError("config: driver region_geometry supports dims=2 only");
  const mesh::Mesh2D m = scn.mesh2();
  const int k = m.nx();

  report.text("# " + scn.name + "a: 2-D MCC geometry, " + std::to_string(k) +
              "x" + std::to_string(k) + ", " + std::to_string(scn.trials) +
              " seeds\n\n");
  util::Table& table = report.table(
      "geometry", {"fault rate", "regions", "largest region",
                   "healthy/region", "width x height", "multi-fault %"});
  for (const double rate : scn.fault_rates) {
    util::RunningStats regions, largest, healthy_per, width, height, multi;
    std::mutex mu;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t t) {
      util::Rng rng(scn.seed + static_cast<uint64_t>(rate * 1000) * 37 + t);
      const auto f = cell.make_faults2(m, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D mccs(m, labels);
      size_t big = 0;
      int multi_fault = 0;
      util::RunningStats h, w, ht;
      for (const auto& r : mccs.regions()) {
        big = std::max(big, r.cells.size());
        h.add(r.healthy_cells);
        w.add(r.width());
        ht.add(r.height());
        multi_fault += r.faulty_cells > 1;
      }
      std::lock_guard<std::mutex> lock(mu);
      regions.add(static_cast<double>(mccs.regions().size()));
      largest.add(static_cast<double>(big));
      if (h.count()) {
        healthy_per.add(h.mean());
        width.add(w.mean());
        height.add(ht.mean());
        multi.add(double(multi_fault) /
                  static_cast<double>(mccs.regions().size()));
      }
    });
    table.add_row({util::Table::pct(rate, 0),
                   util::Table::mean_ci(regions.mean(), regions.ci95(), 1),
                   util::Table::fmt(largest.mean(), 1),
                   util::Table::fmt(healthy_per.mean(), 2),
                   util::Table::fmt(width.mean(), 2) + " x " +
                       util::Table::fmt(height.mean(), 2),
                   util::Table::pct(multi.mean(), 1)});
  }

  report.text("\n# " + scn.name + "b: per-orientation fill (same faults, "
              "four quadrant classes)\n\n");
  util::Table& table2 = report.table(
      "orientation", {"fault rate", "octant ++", "octant -+", "octant +-",
                      "octant --", "max/min ratio"});
  for (const double rate : {0.10, 0.20}) {
    util::RunningStats per_oct[4], ratio;
    std::mutex mu;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t t) {
      util::Rng rng(scn.seed2 + static_cast<uint64_t>(rate * 1000) * 37 + t);
      const auto f = cell.make_faults2(m, rng);
      double counts[4];
      for (int o = 0; o < 4; ++o) {
        const mesh::Octant2 oct{(o & 1) != 0, (o & 2) != 0};
        const auto flipped = materialize(f, m, oct);
        const core::LabelField2D labels(m, flipped);
        counts[o] = labels.healthy_unsafe_count();
      }
      std::lock_guard<std::mutex> lock(mu);
      double lo = counts[0], hi = counts[0];
      for (int o = 0; o < 4; ++o) {
        per_oct[o].add(counts[o]);
        lo = std::min(lo, counts[o]);
        hi = std::max(hi, counts[o]);
      }
      if (lo > 0) ratio.add(hi / lo);
    });
    table2.add_row(
        {util::Table::pct(rate, 0), util::Table::fmt(per_oct[0].mean(), 2),
         util::Table::fmt(per_oct[1].mean(), 2),
         util::Table::fmt(per_oct[2].mean(), 2),
         util::Table::fmt(per_oct[3].mean(), 2),
         util::Table::fmt(ratio.count() ? ratio.mean() : 1.0, 2)});
  }
  report.text(
      "\nExpected shape: fills are orientation-specific (a staircase "
      "ascending for one quadrant descends for the mirrored one), but "
      "symmetric in distribution.\n");
}

// ---------------------------------------------------------------------------
// agreement (E6): the model's feasibility conditions against the oracle.
// The 2-D table sweeps fault_rates on the configured mesh; the 3-D table
// keeps the legacy fixed 10^3 workloads (seeded from seed2).

void agreement_driver(const Scenario& scn, RunReport& report) {
  require_static(scn, "agreement");
  if (scn.dims != 2)
    throw ConfigError(
        "config: driver agreement runs the 2-D stack (dims=2); its second "
        "table covers the fixed 3-D workloads");
  report.text("# " + scn.name +
              ": feasibility-condition agreement with the oracle\n\n");

  const mesh::Mesh2D m = scn.mesh2();
  report.text("## 2-D (" + std::to_string(m.nx()) + "x" +
              std::to_string(m.ny()) + ", " + scn.fault_pattern + ")\n\n");
  util::Table& t = report.table(
      "agreement_2d",
      {"fault rate", "pairs", "oracle feasible", "detect==oracle",
       "thm1==oracle", "lemma1 sound", "lemma1 complete"});
  for (const double rate : scn.fault_rates) {
    std::mutex mu;
    long pairs = 0, feas = 0, det_ok = 0, thm_ok = 0, l1_sound = 0,
         l1_complete = 0, blocked = 0;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t trial) {
      util::Rng rng(scn.seed + static_cast<uint64_t>(rate * 1000) * 13 +
                    trial);
      const auto f = cell.make_faults2(m, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D mccs(m, labels);
      const core::Boundary2D boundary(m, labels, mccs);
      long p = 0, fe = 0, d_ok = 0, t_ok = 0, s_ok = 0, c_ok = 0, bl = 0;
      for (int i = 0; i < scn.pairs; ++i) {
        const auto pr = util::sample_pair2d(m, labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        ++p;
        const core::ReachField2D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        const bool truth = oracle.feasible(s);
        fe += truth;
        d_ok += core::detect2d(m, labels, s, d).feasible() == truth;
        t_ok += boundary.theorem1_feasible(s, d) == truth;
        const bool l1 = core::lemma1_blocked(mccs, s, d).blocked;
        if (l1) s_ok += !truth;  // soundness: lemma1-block implies blocked
        if (!truth) {
          ++bl;
          c_ok += l1;  // completeness: blocked implies lemma1-block?
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      pairs += p;
      feas += fe;
      det_ok += d_ok;
      thm_ok += t_ok;
      l1_sound += s_ok;
      l1_complete += c_ok;
      blocked += bl;
    });
    auto frac = [](long a, long b) {
      return b == 0 ? 1.0 : double(a) / double(b);
    };
    t.add_row({util::Table::pct(rate, 0), std::to_string(pairs),
               util::Table::pct(frac(feas, pairs), 1),
               util::Table::pct(frac(det_ok, pairs), 2),
               util::Table::pct(frac(thm_ok, pairs), 2),
               blocked == 0 ? "n/a"
                            : util::Table::pct(frac(l1_sound, l1_sound), 2),
               blocked == 0
                   ? "n/a"
                   : util::Table::pct(frac(l1_complete, blocked), 2)});
  }
  report.text("\n");

  report.text("## 3-D (10^3)\n\n");
  const mesh::Mesh3D m3(10, 10, 10);
  util::Table& t3 = report.table(
      "agreement_3d",
      {"workload", "pairs", "oracle feasible", "detect3d==oracle"});
  struct Work {
    const char* name;
    double rate;
    bool clustered;
  };
  for (const Work w : {Work{"uniform 5%", 0.05, false},
                       Work{"uniform 15%", 0.15, false},
                       Work{"uniform 25%", 0.25, false},
                       Work{"clustered 15%", 0.15, true}}) {
    std::mutex mu;
    long pairs = 0, feas = 0, agree = 0;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t trial) {
      util::Rng rng(scn.seed2 + static_cast<uint64_t>(w.rate * 1000) * 13 +
                    (w.clustered ? 7777 : 0) + trial);
      const auto f =
          w.clustered
              ? mesh::inject_clustered(
                    m3, static_cast<int>(w.rate * m3.node_count()), 4, rng)
              : mesh::inject_uniform(m3, w.rate, rng);
      const core::LabelField3D labels(m3, f);
      long p = 0, fe = 0, ag = 0;
      for (int i = 0; i < scn.pairs; ++i) {
        const auto pr = util::sample_pair3d(m3, labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        ++p;
        const core::ReachField3D oracle(m3, labels, d,
                                        core::NodeFilter::NonFaulty);
        const bool truth = oracle.feasible(s);
        fe += truth;
        ag += core::detect3d(m3, labels, s, d).feasible() == truth;
      }
      std::lock_guard<std::mutex> lock(mu);
      pairs += p;
      feas += fe;
      agree += ag;
    });
    t3.add_row({w.name, std::to_string(pairs),
                util::Table::pct(pairs ? double(feas) / pairs : 0, 1),
                util::Table::pct(pairs ? double(agree) / pairs : 1, 2)});
  }

  report.text(
      "\nExpected shape: 2-D detection is EXACT (100%) at every rate — "
      "Wang's theory holds. Single-region\nlemma-1 is 100% sound but "
      "misses a growing share of multi-region traps. The chain-form "
      "static test\nis sound but conservative in dense fields. The 3-D "
      "floods (Algorithm 6 as described) deviate from\nthe oracle in "
      "BOTH directions at high fault rates (finding F3 in "
      "EXPERIMENTS.md): the paper's\noperational 3-D check is "
      "approximate, unlike its exact 2-D counterpart.\n");
}

// ---------------------------------------------------------------------------
// ablation (E9): information / fill / connectivity ablations. Parts (b)
// and (c) keep the legacy fixed rate lists and are seeded from seed2 and
// fault_seed respectively (the preset carries the legacy bases).

void ablation_driver(const Scenario& scn, RunReport& report) {
  require_static(scn, "ablation");
  if (scn.dims != 2)
    throw ConfigError("config: driver ablation supports dims=2 only");
  const mesh::Mesh2D m = scn.mesh2();
  const int k = m.nx();
  report.text("# " + scn.name + ": ablations (2-D " + std::to_string(k) +
              "x" + std::to_string(k) + ")\n\n");

  // (a) information ablation on certified-feasible pairs.
  report.text("## (a) routing success on pairs the model certifies "
              "feasible\n\n");
  util::Table& t = report.table(
      "ablation_information", {"fault rate", "records router",
                               "labels-only router",
                               "greedy (fault info only)"});
  for (const double rate : scn.fault_rates) {
    util::RunningStats rec_s, lab_s, greedy_s;
    std::mutex mu;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t trial) {
      util::Rng rng(scn.seed + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = cell.make_faults2(m, rng);
      const core::MccModel2D model(m, f);
      const auto& oct = model.octant(mesh::Octant2{false, false});
      long n = 0, rec = 0, lab = 0, gr = 0;
      for (int i = 0; i < scn.pairs; ++i) {
        const auto pr = util::sample_pair2d(m, oct.labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        if (!model.feasible(s, d).feasible) continue;
        ++n;
        rec += model
                   .route(s, d, core::RouterKind::Records,
                          core::RoutePolicy::Random, trial * 97 + i)
                   .delivered;
        lab += model
                   .route(s, d, core::RouterKind::LabelsOnly,
                          core::RoutePolicy::Random, trial * 97 + i)
                   .delivered;
        util::Rng grng(trial * 131 + i);
        gr += baselines::greedy_route(m, f, s, d, grng);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      rec_s.add(double(rec) / n);
      lab_s.add(double(lab) / n);
      greedy_s.add(double(gr) / n);
    });
    t.add_row({util::Table::pct(rate, 0), util::Table::pct(rec_s.mean(), 1),
               util::Table::pct(lab_s.mean(), 1),
               util::Table::pct(greedy_s.mean(), 1)});
  }

  // (b) fill ablation: blocked pairs a fill-less check would wrongly pass.
  report.text("\n## (b) blocked pairs a naive fault-only check misses\n\n");
  util::Table& t2 = report.table(
      "ablation_fill", {"fault rate", "blocked pairs",
                        "no-fill wrongly feasible"});
  for (const double rate : {0.10, 0.20, 0.30}) {
    std::mutex mu;
    long blocked = 0, wrong = 0;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t trial) {
      util::Rng rng(scn.seed2 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = cell.make_faults2(m, rng);
      const core::LabelField2D labels(m, f);
      long bl = 0, wr = 0;
      for (int i = 0; i < scn.pairs; ++i) {
        const auto pr = util::sample_pair2d(m, labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        const core::ReachField2D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        if (oracle.feasible(s)) continue;
        ++bl;
        // A fill-less model sees only faulty nodes: count the blocked
        // pairs where the labelling (the fill) is what identifies the
        // blockage — a fault-free width-1 staircase along either
        // detection line would fool the naive check.
        const bool line_x_clear = [&] {
          for (int x = s.x; x <= d.x; ++x)
            if (labels.state({x, s.y}) == core::NodeState::Faulty)
              return false;
          return true;
        }();
        const bool line_y_clear = [&] {
          for (int y = s.y; y <= d.y; ++y)
            if (labels.state({s.x, y}) == core::NodeState::Faulty)
              return false;
          return true;
        }();
        wr += line_x_clear || line_y_clear;
      }
      std::lock_guard<std::mutex> lock(mu);
      blocked += bl;
      wrong += wr;
    });
    t2.add_row({util::Table::pct(rate, 0), std::to_string(blocked),
                blocked ? util::Table::pct(double(wrong) / blocked, 1)
                        : "n/a"});
  }

  // (c) connectivity ablation.
  report.text("\n## (c) region grouping: orthogonal vs eight-connected\n\n");
  util::Table& t3 = report.table(
      "ablation_connectivity", {"fault rate", "regions (ortho)",
                                "regions (eight)", "largest (ortho)",
                                "largest (eight)"});
  for (const double rate : {0.05, 0.15, 0.25}) {
    util::RunningStats ro, re, lo, le;
    std::mutex mu;
    Scenario cell = scn;
    cell.fault_rate = rate;
    util::parallel_for(static_cast<size_t>(scn.trials), [&](size_t trial) {
      util::Rng rng(scn.fault_seed + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = cell.make_faults2(m, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D ortho(m, labels, core::Connectivity::Ortho);
      const core::MccSet2D eight(m, labels, core::Connectivity::Eight);
      size_t biggest_o = 0, biggest_e = 0;
      for (const auto& r : ortho.regions())
        biggest_o = std::max(biggest_o, r.cells.size());
      for (const auto& r : eight.regions())
        biggest_e = std::max(biggest_e, r.cells.size());
      std::lock_guard<std::mutex> lock(mu);
      ro.add(static_cast<double>(ortho.regions().size()));
      re.add(static_cast<double>(eight.regions().size()));
      lo.add(static_cast<double>(biggest_o));
      le.add(static_cast<double>(biggest_e));
    });
    t3.add_row({util::Table::pct(rate, 0), util::Table::fmt(ro.mean(), 1),
                util::Table::fmt(re.mean(), 1), util::Table::fmt(lo.mean(), 1),
                util::Table::fmt(le.mean(), 1)});
  }
  report.text(
      "\nExpected shape: records are what guarantees delivery; the "
      "fill is what catches staircase traps;\neight-connectivity "
      "merges diagonal chains into fewer, larger regions.\n");
}

}  // namespace

void register_eval_drivers() {
  drivers().add("region_fill", region_fill_driver,
                "healthy nodes absorbed into fault regions vs the block "
                "baselines (E1/E2; 2-D/3-D, ks x fault_rates)");
  drivers().add("success_rate", success_rate_driver,
                "minimal-routing success vs oracle and baselines (E3/E4)");
  drivers().add("region_geometry", region_geometry_driver,
                "MCC region geometry and per-orientation fill (E5; 2-D)");
  drivers().add("agreement", agreement_driver,
                "feasibility-condition agreement with the oracle (E6)");
  drivers().add("ablation", ablation_driver,
                "information/fill/connectivity ablations (E9; 2-D)");
}

}  // namespace mcc::api
