// reliability (E14): Monte-Carlo reliability campaigns over the
// three-class FaultUniverse. Each sweep cell (mesh size x failure
// probability) draws `trials` independent universes from the configured
// fault process — a Bernoulli snapshot for fault_model=link, the end
// state of a sampled churn/transient schedule for transient/composite —
// projects each onto the node-only MCC model, and scores `pairs`
// source/destination pairs three ways:
//
//   reachable   the pair is connected in the TRUE topology (nodes passable
//               unless dead, edges passable unless the link is faulty) —
//               the physical upper bound;
//   feasible    the projected MCC model certifies a minimal path; a pair
//               whose endpoint was sacrificed by the projection counts as
//               infeasible (the projection's residual gap is measured
//               here, never hidden);
//   delivered   the certified route actually delivers.
//
// Counts are pooled across trials per cell and reported with Wilson 95%
// intervals (util::wilson_ci) — the binomial interval that stays inside
// [0, 1] near the interesting endpoints. Trials run under parallel_for
// into per-trial indexed slots folded serially, so the report is
// byte-identical for every --jobs value, and campaign sharding composes
// the same way (per-point seeds derive from sweep coordinates).
#include <cstdint>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "api/experiment.h"
#include "core/model.h"
#include "fault/process.h"
#include "fault/projection.h"
#include "fault/universe.h"
#include "obs/obs.h"
#include "util/parallel.h"
#include "util/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc::api {

namespace {

// Per-trial tallies, folded serially after the parallel loop.
struct TrialCounts {
  long pairs = 0;
  long reachable = 0;
  long feasible = 0;
  long delivered = 0;
  long gap = 0;  // reachable in the true topology, projected-infeasible
  long sacrificed = 0;
  long injected[3] = {0, 0, 0};   // by Component class
  long recovered[3] = {0, 0, 0};  // transient/churn recoveries applied
};

// Dimension glue so one driver body serves both stacks.
struct Glue2 {
  using Axes = fault::Axes2;
  using Mesh = mesh::Mesh2D;
  using Coord = mesh::Coord2;
  using Model = core::MccModel2D;
  static Mesh make_mesh(const Scenario& s, int k) { return s.mesh2(k); }
  static fault::FaultUniverse2D make_universe(const Scenario& s,
                                              const Mesh& m, util::Rng& rng) {
    return s.make_universe2(m, rng);
  }
  static std::pair<Coord, Coord> draw_pair(const Mesh& m, util::Rng& rng) {
    return util::random_strict_pair2d(m, rng);
  }
  static std::optional<core::RouterKind> kind(const PolicySpec& p) {
    return p.router_kind2d;
  }
  static std::string mesh_name(int k) {
    return std::to_string(k) + "x" + std::to_string(k);
  }
};

struct Glue3 {
  using Axes = fault::Axes3;
  using Mesh = mesh::Mesh3D;
  using Coord = mesh::Coord3;
  using Model = core::MccModel3D;
  static Mesh make_mesh(const Scenario& s, int k) { return s.mesh3(k); }
  static fault::FaultUniverse3D make_universe(const Scenario& s,
                                              const Mesh& m, util::Rng& rng) {
    return s.make_universe3(m, rng);
  }
  static std::pair<Coord, Coord> draw_pair(const Mesh& m, util::Rng& rng) {
    return util::random_strict_pair3d(m, rng);
  }
  static std::optional<core::RouterKind> kind(const PolicySpec& p) {
    return p.router_kind3d;
  }
  static std::string mesh_name(int k) { return std::to_string(k) + "^3"; }
};

fault::UniverseChurnParams churn_params(const Scenario& scn) {
  fault::UniverseChurnParams p;
  p.rate = (scn.churn.empty() ? 2.0 : scn.churn.front()) / 1000.0;
  p.horizon = scn.churn_horizon ? scn.churn_horizon : 4000;
  p.repair_min = static_cast<uint64_t>(scn.repair_min);
  p.repair_max = static_cast<uint64_t>(scn.repair_max);
  p.mtbf = scn.mtbf;
  p.mttr = scn.mttr;
  // The hard process strikes every class whose Bernoulli knob is engaged;
  // with both extra knobs at zero it degenerates to node-only churn.
  p.node_weight = 1;
  p.router_weight = scn.router_fault_rate > 0 ? 1 : 0;
  p.link_weight = scn.link_fault_rate > 0 ? 1 : 0;
  return p;
}

/// Connected components of the TRUE topology: a node participates unless
/// dead (node or router class down), an edge unless its link is faulty.
/// Component ids let every pair query answer in O(1).
template <class Axes>
std::vector<int> true_components(
    const fault::FaultUniverseT<Axes>& u) {
  const auto& mesh = u.mesh();
  const size_t n = mesh.node_count();
  std::vector<int> comp(n, -1);
  std::vector<size_t> stack;
  int next = 0;
  for (size_t start = 0; start < n; ++start) {
    if (comp[start] >= 0 || u.dead(mesh.coord(start))) continue;
    comp[start] = next;
    stack.assign(1, start);
    while (!stack.empty()) {
      const size_t i = stack.back();
      stack.pop_back();
      const auto c = mesh.coord(i);
      for (int q = 0; q < Axes::kDirs; ++q) {
        const auto d = static_cast<typename Axes::Dir>(q);
        const auto w = mesh::step(c, d);
        if (!mesh.contains(w) || u.link_faulty(c, d) || u.dead(w)) continue;
        const size_t wi = mesh.index(w);
        if (comp[wi] >= 0) continue;
        comp[wi] = next;
        stack.push_back(wi);
      }
    }
    ++next;
  }
  return comp;
}

/// Formats a pooled proportion with its Wilson 95% interval.
std::string wilson_cell(long successes, long n) {
  if (n <= 0) return "n/a";
  const util::WilsonCi ci = util::wilson_ci(
      static_cast<size_t>(successes), static_cast<size_t>(n));
  std::ostringstream os;
  os << util::Table::pct(double(successes) / double(n), 1) << " ["
     << util::Table::fmt(ci.lo * 100, 1) << ", "
     << util::Table::fmt(ci.hi * 100, 1) << "]";
  return os.str();
}

template <class Glue>
void run_reliability(const Scenario& scn, RunReport& report) {
  using Axes = typename Glue::Axes;
  const core::RouterKind kind = [&] {
    const auto k = Glue::kind(scn.policy_spec(scn.policy));
    if (!k)
      throw ConfigError("config: driver reliability routes through the core "
                        "MCC stack; set policy=oracle | model | labels_only");
    return *k;
  }();

  util::Table& table = report.table(
      "reliability",
      {"mesh", "fault rate", "pairs", "reachable [95% CI]",
       "route success [95% CI]", "delivered [95% CI]", "model gap",
       "sacrificed/trial"});
  TrialCounts total;
  for (const int k : scn.ks) {
    const typename Glue::Mesh m = Glue::make_mesh(scn, k);
    for (const double rate : scn.fault_rates) {
      Scenario cell = scn;
      cell.fault_rate = rate;
      std::vector<TrialCounts> slots(static_cast<size_t>(scn.trials));
      util::parallel_for(slots.size(), [&](size_t t) {
        util::Rng rng(scn.fault_seed + static_cast<uint64_t>(k) * 100003 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        TrialCounts& out = slots[t];

        auto u = Glue::make_universe(cell, m, rng);
        out.injected[0] += u.node_fault_count();
        out.injected[1] += u.router_fault_count();
        out.injected[2] += u.link_fault_count();
        if (scn.dynamic) {
          // transient/composite: sample the schedule and score the END
          // state — the reliability question is "what does the field look
          // like after `horizon` cycles of this process".
          const auto events = fault::sample_universe_churn<Axes>(
              m, rng, churn_params(cell), scn.hard_faults,
              scn.transient_faults);
          for (const auto& e : events) {
            if (!fault::apply_event(u, e)) continue;
            const int c = static_cast<int>(e.comp);
            if (e.repair)
              ++out.recovered[c];
            else
              ++out.injected[c];
          }
        }

        const auto proj = fault::project(u);
        out.sacrificed += proj.stats.sacrificed;
        const typename Glue::Model model(m, proj.faults);
        const std::vector<int> comp = true_components(u);

        for (int p = 0; p < scn.pairs; ++p) {
          // Bounded redraw: both endpoints must be physically alive.
          std::optional<std::pair<typename Glue::Coord,
                                  typename Glue::Coord>> pr;
          for (int tries = 0; tries < 64 && !pr; ++tries) {
            const auto cand = Glue::draw_pair(m, rng);
            if (manhattan(cand.first, cand.second) < scn.min_distance)
              continue;
            if (u.dead(cand.first) || u.dead(cand.second)) continue;
            pr = cand;
          }
          if (!pr) continue;
          const auto [s, d] = *pr;
          ++out.pairs;
          const bool reach =
              comp[m.index(s)] >= 0 && comp[m.index(s)] == comp[m.index(d)];
          out.reachable += reach;
          // A sacrificed endpoint is projected-faulty: the model refuses
          // the pair outright. That loss is exactly the projection's
          // residual gap, so it is scored as an infeasible pair.
          bool feas = false;
          if (!proj.faults.is_faulty(s) && !proj.faults.is_faulty(d) &&
              model.feasible(s, d).feasible) {
            feas = true;
            ++out.feasible;
            out.delivered += model
                                 .route(s, d, kind, scn.route_policy,
                                        rng.fork())
                                 .delivered;
          }
          out.gap += reach && !feas;
        }
      });

      TrialCounts cellc;
      for (const TrialCounts& s : slots) {
        cellc.pairs += s.pairs;
        cellc.reachable += s.reachable;
        cellc.feasible += s.feasible;
        cellc.delivered += s.delivered;
        cellc.gap += s.gap;
        cellc.sacrificed += s.sacrificed;
        for (int c = 0; c < 3; ++c) {
          cellc.injected[c] += s.injected[c];
          cellc.recovered[c] += s.recovered[c];
        }
      }
      table.add_row(
          {Glue::mesh_name(k), util::Table::pct(rate, 0),
           std::to_string(cellc.pairs),
           wilson_cell(cellc.reachable, cellc.pairs),
           wilson_cell(cellc.feasible, cellc.pairs),
           wilson_cell(cellc.delivered, cellc.pairs),
           cellc.pairs
               ? util::Table::pct(double(cellc.gap) / double(cellc.pairs), 2)
               : "n/a",
           util::Table::fmt(double(cellc.sacrificed) / scn.trials, 2)});

      total.pairs += cellc.pairs;
      total.reachable += cellc.reachable;
      total.feasible += cellc.feasible;
      total.delivered += cellc.delivered;
      total.gap += cellc.gap;
      total.sacrificed += cellc.sacrificed;
      for (int c = 0; c < 3; ++c) {
        total.injected[c] += cellc.injected[c];
        total.recovered[c] += cellc.recovered[c];
      }
    }
  }

  report.metric("reliability.pairs", static_cast<double>(total.pairs));
  report.metric("reliability.reachable",
                static_cast<double>(total.reachable));
  report.metric("reliability.route_success",
                static_cast<double>(total.feasible));
  report.metric("reliability.delivered",
                static_cast<double>(total.delivered));
  report.metric("reliability.model_gap", static_cast<double>(total.gap));
  report.metric("reliability.sacrificed",
                static_cast<double>(total.sacrificed));
  if (auto* mr = obs::metrics()) {
    const char* cls[3] = {"node", "router", "link"};
    for (int c = 0; c < 3; ++c) {
      if (total.injected[c])
        mr->add_counter(std::string("fault.injected.") + cls[c],
                        static_cast<uint64_t>(total.injected[c]));
      if (total.recovered[c])
        mr->add_counter(std::string("fault.recovered.") + cls[c],
                        static_cast<uint64_t>(total.recovered[c]));
    }
    if (total.sacrificed)
      mr->add_counter("fault.projection.sacrificed",
                      static_cast<uint64_t>(total.sacrificed));
  }
}

void reliability_driver(const Scenario& scn, RunReport& report) {
  if (!scn.universe)
    throw ConfigError(
        "config: driver reliability needs a three-class fault universe; "
        "set fault_model=link | transient | composite");
  std::ostringstream head;
  head << "# " << scn.name << ": Monte-Carlo reliability ("
       << scn.dims << "-D, fault_model=" << scn.fault_model << ", "
       << scn.fault_pattern << " faults, " << scn.trials << " trials x "
       << scn.pairs << " pairs)\n\n";
  report.text(head.str());
  if (scn.dims == 2)
    run_reliability<Glue2>(scn, report);
  else
    run_reliability<Glue3>(scn, report);
  report.text(
      "\nExpected shape: reachability decays gently with failure "
      "probability; the projected MCC model\ntracks it from below — the "
      "\"model gap\" column IS the conservative projection's measured "
      "cost\n(sacrificed endpoints plus over-blocked detours), widening "
      "with the link-fault share.\n");
}

}  // namespace

void register_reliability_drivers() {
  drivers().add("reliability", reliability_driver,
                "Monte-Carlo reachability/route-success/delivery curves "
                "with Wilson 95% CIs over the three-class fault universe "
                "(E14)",
                "fault_model=link | transient | composite; policy=oracle | "
                "model | labels_only");
}

}  // namespace mcc::api
