// serve_load (E13): the Guidance-as-a-service workload through the front
// door. One writer thread applies the churn timeline to the serve layer's
// RCU snapshot store while `readers` threads answer `queries` route/
// feasibility queries each against their current epoch snapshot.
//
// Report discipline (bench_trend gates this run): counts that depend only
// on the seeds — queries, events, epochs, the 2-D delta payload — are
// exact metrics/columns; anything wall-clock or interleaving dependent
// (QPS, latency percentiles, epoch lag, buffer growth) is either a
// timing-labelled column/metric (informational for the gate) or a note.
#include <algorithm>
#include <sstream>
#include <string>

#include "api/experiment.h"
#include "obs/obs.h"
#include "serve/load.h"
#include "util/table.h"

namespace mcc::api {

namespace {

serve::LoadConfig make_load_config(const Scenario& scn) {
  serve::LoadConfig cfg;
  cfg.readers = scn.readers;
  cfg.queries_per_reader = static_cast<uint64_t>(scn.queries);
  if (!serve::parse_query_mix(scn.query_mix, cfg.mix))
    throw ConfigError("config: query_mix must be feasible | route | mixed "
                      "(got '" + scn.query_mix + "')");
  cfg.target_qps = scn.target_qps;
  cfg.event_interval_us = static_cast<uint64_t>(scn.event_interval_us);
  cfg.seed = scn.seed;
  cfg.policy = scn.route_policy;
  const PolicySpec& p = scn.policy_spec(scn.policy);
  if (!p.router_kind2d.has_value() || !p.router_kind3d.has_value())
    throw ConfigError("config: serve_load answers queries with the core "
                      "router; use policy oracle | model | labels_only");
  cfg.kind2d = *p.router_kind2d;
  cfg.kind3d = *p.router_kind3d;
  return cfg;
}

util::ChurnParams churn_params(const Scenario& scn) {
  if (scn.churn.size() != 1)
    throw ConfigError(
        "config: serve_load runs one churn process; give a single churn "
        "value");
  util::ChurnParams p;
  p.rate = scn.churn.front() / 1000.0;
  p.horizon = scn.churn_horizon != 0 ? scn.churn_horizon : 2000;
  p.repair_min = static_cast<uint64_t>(scn.repair_min);
  p.repair_max = static_cast<uint64_t>(scn.repair_max);
  return p;
}

/// Human-facing latency histogram (text block: rendered, never in JSON).
std::string render_histogram(const serve::LatencyHist& h) {
  struct Bin {
    uint64_t lo, hi, count;
  };
  std::vector<Bin> bins;
  const auto& b = h.buckets();
  size_t i = 0;
  for (uint64_t lo = 0, hi = 1; i < b.size(); lo = hi, hi *= 2) {
    uint64_t count = 0;
    for (; i < b.size() && i < hi; ++i) count += b[i];
    bins.push_back({lo, hi, count});
  }
  while (!bins.empty() && bins.back().count == 0) bins.pop_back();
  uint64_t peak = 1;
  for (const Bin& bin : bins) peak = std::max(peak, bin.count);
  std::ostringstream os;
  os << "latency histogram (us, power-of-two bins):\n";
  for (const Bin& bin : bins) {
    const auto width = static_cast<size_t>(bin.count * 40 / peak);
    std::string label =
        "  [" + std::to_string(bin.lo) + "," + std::to_string(bin.hi) + ")";
    label.resize(std::max<size_t>(label.size() + 1, 16), ' ');
    os << label << std::string(width, '#') << " " << bin.count << "\n";
  }
  if (h.overflow() != 0)
    os << "  >= " << b.size() << ": " << h.overflow() << "\n";
  return os.str();
}

template <class Mesh, class Faults, class Timeline>
void run_serve_load(const Scenario& scn, RunReport& report, const Mesh& mesh,
                    const Faults& initial, const Timeline& timeline) {
  const serve::LoadConfig cfg = make_load_config(scn);
  const serve::LoadResult r = run_load(mesh, initial, timeline, cfg);

  std::ostringstream head;
  head << "\n## " << scn.name << ": guidance-as-a-service — 1 writer / "
       << r.readers.size() << " readers, epoch snapshots under churn ("
       << r.events_applied << " events applied, final epoch "
       << r.final_epoch << ")\n\n";
  report.text(head.str());

  util::Table& t = report.table(
      "serve_readers",
      {"reader", "queries", "p50 us", "p95 us", "p99 us", "max us"});
  for (size_t i = 0; i < r.readers.size(); ++i) {
    const serve::ReaderResult& me = r.readers[i];
    t.add_row({std::to_string(i), std::to_string(me.queries),
               std::to_string(me.latency.percentile(0.50)),
               std::to_string(me.latency.percentile(0.95)),
               std::to_string(me.latency.percentile(0.99)),
               std::to_string(me.latency.max())});
  }
  std::string hist = "\n";
  hist += render_histogram(r.latency);
  report.text(hist);

  // Deterministic counters: the bench_trend gate compares these exactly.
  report.metric("readers", static_cast<double>(r.readers.size()));
  report.metric("queries_total", static_cast<double>(r.queries_total));
  report.metric("events_total", static_cast<double>(r.events_total));
  report.metric("events_applied", static_cast<double>(r.events_applied));
  report.metric("final_epoch", static_cast<double>(r.final_epoch));
  report.metric("publishes", static_cast<double>(r.publishes));
  if (r.replica_checked) {
    report.metric("delta_payload_ints",
                  static_cast<double>(r.delta_payload_ints));
    report.metric("replica_records", static_cast<double>(r.replica_records));
  }

  // Wall-clock measurements: timing-labelled, informational for the gate.
  report.metric("qps_time", r.qps);
  report.metric("wall_ms", r.wall_seconds * 1000.0);
  report.metric("p50_us", static_cast<double>(r.latency.percentile(0.50)));
  report.metric("p95_us", static_cast<double>(r.latency.percentile(0.95)));
  report.metric("p99_us", static_cast<double>(r.latency.percentile(0.99)));
  report.metric("max_us", static_cast<double>(r.latency.max()));
  report.metric("mean_us", r.latency.mean());

  // Interleaving-dependent observability counters -> notes (reported,
  // serialized, never compared).
  uint64_t feasible_yes = 0, routed = 0, delivered = 0;
  for (const serve::ReaderResult& me : r.readers) {
    feasible_yes += me.feasible_yes;
    routed += me.routed;
    delivered += me.delivered;
  }
  report.note("max_reader_lag=" + std::to_string(r.max_reader_lag));
  report.note("snapshot_buffers=" + std::to_string(r.buffers));
  report.note("buffers_grown=" + std::to_string(r.buffers_grown));
  report.note("feasible_yes=" + std::to_string(feasible_yes));
  report.note("routed=" + std::to_string(routed));
  report.note("delivered=" + std::to_string(delivered));

  if (obs::MetricRegistry* reg = obs::metrics()) {
    // Seed-determined totals are counters (the gate compares exactly);
    // anything shaped by reader/writer interleaving or the wall clock —
    // lag, buffer-pool growth, QPS, latency — is a gauge or histogram.
    reg->add_counter("serve.queries", r.queries_total);
    reg->add_counter("serve.events_applied", r.events_applied);
    reg->add_counter("serve.publishes", r.publishes);
    reg->add_counter("serve.final_epoch", r.final_epoch);
    reg->add_gauge("serve.max_reader_lag",
                   static_cast<double>(r.max_reader_lag));
    reg->add_gauge("serve.snapshot_buffers", static_cast<double>(r.buffers));
    reg->add_gauge("serve.buffers_grown",
                   static_cast<double>(r.buffers_grown));
    reg->add_gauge("serve.qps", r.qps);
    for (const serve::ReaderResult& me : r.readers) {
      reg->observe("serve.query_us.p99",
                   static_cast<double>(me.latency.percentile(0.99)));
      reg->observe("serve.query_us.max",
                   static_cast<double>(me.latency.max()));
    }
  }

  if (r.replica_checked && !r.replica_consistent)
    report.fail("boundary_delta replica diverged from the authoritative "
                "boundary records");
  // Oracle/Model guidance delivers every feasible pair (labels_only may
  // legitimately wedge — see the router ablation).
  if (scn.policy != "labels_only" && routed != delivered)
    report.fail("a feasible routed query was not delivered");
}

void serve_load_driver(const Scenario& scn, RunReport& report) {
  if (!scn.dynamic)
    throw ConfigError(
        "config: serve_load serves snapshots of the dynamic runtime; set "
        "fault_model=dynamic");
  const util::ChurnParams p = churn_params(scn);
  if (scn.dims == 2) {
    const mesh::Mesh2D mesh = scn.mesh2();
    util::Rng rng(scn.seed + 0xE13);
    const mesh::FaultSet2D initial = scn.make_faults2(mesh, rng);
    const auto timeline =
        runtime::FaultTimeline2D::sample(mesh, initial, rng, p);
    run_serve_load(scn, report, mesh, initial, timeline);
  } else {
    const mesh::Mesh3D mesh = scn.mesh3();
    util::Rng rng(scn.seed + 0xE13);
    const mesh::FaultSet3D initial = scn.make_faults3(mesh, rng);
    const auto timeline =
        runtime::FaultTimeline3D::sample(mesh, initial, rng, p);
    run_serve_load(scn, report, mesh, initial, timeline);
  }
}

}  // namespace

void register_serve_drivers() {
  drivers().add("serve_load",
                serve_load_driver,
                "guidance-as-a-service: reader threads answering route/"
                "feasibility queries against RCU epoch snapshots under "
                "live churn (E13)");
}

}  // namespace mcc::api
