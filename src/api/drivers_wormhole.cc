// Wormhole and dynamic-runtime experiment drivers: wormhole_load (E11),
// wormhole_churn (E12 part B, 2-D and 3-D, any churn-capable policy) and
// event_cost (E12 parts A1/A2). The rewired benches E11/E12 must stay
// byte-identical with their pre-redesign output, so the sweep structure,
// seed arithmetic and Table formatting mirror the legacy bench mains
// (tests/test_api_differential.cc pins the cells).
#include <algorithm>
#include <chrono>
#include <sstream>
#include <type_traits>

#include "api/experiment.h"
#include "fault/process.h"
#include "fault/projection.h"
#include "fault/universe.h"
#include "mesh/fault_injection.h"
#include "obs/obs.h"
#include "proto/boundary_delta.h"
#include "runtime/timeline.h"
#include "sim/wormhole/baseline_routing.h"
#include "sim/wormhole/dynamic_routing.h"
#include "util/table.h"

namespace mcc::api {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string state_cell(const sim::wh::SimResult& r) {
  return std::string(r.violations   ? "VIOLATION"
                     : r.deadlocked ? "DEADLOCK"
                     : !r.drained   ? "backlogged"
                     : r.saturated  ? "saturated"
                                    : "stable");
}

// Per-run simulator totals for the metrics registry. Counters are
// deterministic across thread counts (serial-phase accounting in the
// tick); the pool spin/park totals are scheduling noise, hence gauges.
struct SimTotals {
  uint64_t delivered = 0, filtered = 0, wedged = 0, route_computes = 0;
  uint64_t arena_hwm = 0;  // max across load points
  uint64_t pool_spin = 0, pool_parks = 0;

  void fold(const sim::wh::SimResult& r) {
    delivered += r.delivered_packets;
    filtered += r.filtered;
    wedged += r.wedged_head_cycles;
    route_computes += r.route_computes;
    arena_hwm = std::max(arena_hwm, r.arena_high_water);
    pool_spin += r.pool_spin_iters;
    pool_parks += r.pool_parks;
  }

  /// Publishes into the installed registry (no-op when metrics are off)
  /// and notes the dark counters on the report. Notes only appear on
  /// metrics=1 runs so default-off reports stay byte-identical.
  void publish(RunReport& report) const {
    obs::MetricRegistry* reg = obs::metrics();
    if (reg == nullptr) return;
    reg->add_counter("wh.delivered_packets", delivered);
    reg->add_counter("wh.filtered", filtered);
    reg->add_counter("wh.wedged_head_cycles", wedged);
    reg->add_counter("wh.route_computes", route_computes);
    reg->set_counter("wh.arena_high_water", arena_hwm);
    reg->add_gauge("wh.pool_spin_iters", static_cast<double>(pool_spin));
    reg->add_gauge("wh.pool_parks", static_cast<double>(pool_parks));
    report.note("obs: wh.arena_high_water=" + std::to_string(arena_hwm));
    report.note("obs: wh.pool_spin_iters=" + std::to_string(pool_spin) +
                " wh.pool_parks=" + std::to_string(pool_parks) +
                " (scheduling-dependent)");
  }
};

// Universe churn parameters from the scenario knobs: the hard process
// strikes every class whose Bernoulli knob is engaged (all-zero extra
// knobs degenerate to node-only churn), the transient process reads
// mtbf/mttr directly.
fault::UniverseChurnParams universe_churn_params(const Scenario& scn,
                                                 double churn,
                                                 uint64_t horizon) {
  fault::UniverseChurnParams p;
  p.rate = churn / 1000.0;
  p.horizon = horizon;
  p.repair_min = static_cast<uint64_t>(scn.repair_min);
  p.repair_max = static_cast<uint64_t>(scn.repair_max);
  p.mtbf = scn.mtbf;
  p.mttr = scn.mttr;
  p.node_weight = 1;
  p.router_weight = scn.router_fault_rate > 0 ? 1 : 0;
  p.link_weight = scn.link_fault_rate > 0 ? 1 : 0;
  return p;
}

// ---------------------------------------------------------------------------
// wormhole_load (E11), universe branch (E14 fault_model=link): a static
// three-class snapshot with physically-severed links. Its table is a NEW
// surface (load_universe) — the node-only load_* tables stay pinned.

template <int Dims>
void run_wormhole_link_load(const Scenario& scn, RunReport& report) {
  using Mesh = std::conditional_t<Dims == 2, mesh::Mesh2D, mesh::Mesh3D>;
  const Mesh m = [&] {
    if constexpr (Dims == 2)
      return scn.mesh2();
    else
      return scn.mesh3();
  }();

  std::ostringstream head;
  head << "# " << scn.name << ": wormhole latency-throughput under "
       << "three-class faults (" << m.nx() << "x" << m.ny();
  if constexpr (Dims == 3) head << "x" << m.nz();
  head << " mesh, " << scn.wh.packet_size << "-flit packets, "
       << scn.wh.vcs_per_class << " VCs/class, depth " << scn.wh.buffer_depth
       << ")\n";
  report.text(head.str());

  util::Rng frng(scn.fault_seed);
  const auto universe = [&] {
    if constexpr (Dims == 2)
      return scn.make_universe2(m, frng);
    else
      return scn.make_universe3(m, frng);
  }();
  const auto proj = fault::project(universe);
  const PolicySpec& pol = scn.policy_spec(scn.policy);
  auto routing = [&] {
    if constexpr (Dims == 2) {
      if (!pol.wormhole2d)
        throw ConfigError("config: policy '" + scn.policy +
                          "' has no 2-D wormhole routing function");
      return pol.wormhole2d(scn, m, proj.faults);
    } else {
      if (!pol.wormhole3d)
        throw ConfigError("config: policy '" + scn.policy +
                          "' has no 3-D wormhole routing function");
      return pol.wormhole3d(scn, m, proj.faults);
    }
  }();

  std::ostringstream sec;
  sec << "\n## three-class universe (" << universe.node_fault_count()
      << " node + " << universe.router_fault_count() << " router + "
      << universe.link_fault_count() << " link faults; projection: "
      << proj.stats.covered_links << " covered, " << proj.stats.sacrificed
      << " sacrificed)\n\n";
  report.text(sec.str());

  util::Table& t = report.table(
      "load_universe",
      {"pattern", "offered (f/n/c)", "accepted (f/n/c)", "avg lat",
       "p99 lat", "packets", "filtered", "links cut", "state"});
  uint64_t delivered_total = 0;
  SimTotals totals;
  for (const std::string& pattern_name : scn.traffic) {
    const sim::wh::Pattern p = traffic_patterns().get(pattern_name).pattern;
    for (const double rate : scn.rates) {
      sim::wh::LoadPoint load = scn.load;
      load.rate = rate;
      const uint64_t seed = scn.seed + static_cast<uint64_t>(rate * 10000);
      sim::wh::LinkEnvResult r;
      if constexpr (Dims == 2)
        r = sim::wh::run_link_load_point2d(universe, proj.faults, *routing,
                                           p, scn.wh, scn.route_policy, load,
                                           seed, scn.hotspot_fraction,
                                           scn.hotspot_count);
      else
        r = sim::wh::run_link_load_point3d(universe, proj.faults, *routing,
                                           p, scn.wh, scn.route_policy, load,
                                           seed, scn.hotspot_fraction,
                                           scn.hotspot_count);
      t.add_row({to_string(p), util::Table::fmt(r.sim.offered_flits, 4),
                 util::Table::fmt(r.sim.accepted_flits, 4),
                 util::Table::fmt(r.sim.avg_latency, 1),
                 std::to_string(r.sim.p99_latency),
                 std::to_string(r.sim.delivered_packets),
                 std::to_string(r.sim.filtered),
                 std::to_string(r.link_faults), state_cell(r.sim)});
      delivered_total += r.sim.delivered_packets;
      totals.fold(r.sim);
      if (r.sim.violations != 0 || r.sim.deadlocked) {
        report.fail(r.sim.violations != 0 ? "ordering/credit violation"
                                          : "deadlock");
        return;
      }
    }
  }

  totals.publish(report);
  if (obs::MetricRegistry* reg = obs::metrics()) {
    reg->add_counter("fault.injected.node",
                     static_cast<uint64_t>(universe.node_fault_count()));
    reg->add_counter("fault.injected.router",
                     static_cast<uint64_t>(universe.router_fault_count()));
    reg->add_counter("fault.injected.link",
                     static_cast<uint64_t>(universe.link_fault_count()));
    reg->add_counter("fault.projection.sacrificed",
                     static_cast<uint64_t>(proj.stats.sacrificed));
  }
  report.metric("delivered_packets", static_cast<double>(delivered_total));
  report.metric("projection_sacrificed",
                static_cast<double>(proj.stats.sacrificed));
  report.text(
      "\nExpected shape: severed links bend flows around the cut without "
      "killing the endpoint routers;\nthe projected guidance avoids the "
      "sacrificed nodes, so the sim filters their traffic and the\n"
      "remaining flows drain deadlock-free. Compare against load_faults on "
      "the same preset to price\nthe projection's conservatism.\n");
}

template <int Dims>
void run_wormhole_load(const Scenario& scn, RunReport& report) {
  using Mesh = std::conditional_t<Dims == 2, mesh::Mesh2D, mesh::Mesh3D>;
  using Faults =
      std::conditional_t<Dims == 2, mesh::FaultSet2D, mesh::FaultSet3D>;
  const Mesh m = [&] {
    if constexpr (Dims == 2)
      return scn.mesh2();
    else
      return scn.mesh3();
  }();

  std::ostringstream head;
  head << "# " << scn.name << ": wormhole latency-throughput (" << m.nx()
       << "x" << m.ny();
  if constexpr (Dims == 3) head << "x" << m.nz();
  head << " mesh, " << scn.wh.packet_size << "-flit packets, "
       << scn.wh.vcs_per_class << " VCs/class, depth " << scn.wh.buffer_depth
       << ")\n";
  report.text(head.str());

  std::vector<std::string> envs = scn.fault_envs;
  if (envs.empty())
    envs = {scn.fault_pattern == "none" ? std::string("none")
                                        : std::string("faults")};

  const PolicySpec& pol = scn.policy_spec(scn.policy);
  uint64_t delivered_total = 0;
  SimTotals totals;

  for (const std::string& env : envs) {
    Faults f(m);
    if (env == "faults") {
      util::Rng frng(scn.fault_seed);
      if constexpr (Dims == 2)
        f = scn.make_faults2(m, frng);
      else
        f = scn.make_faults3(m, frng);
    }
    auto routing = [&] {
      if constexpr (Dims == 2) {
        if (!pol.wormhole2d)
          throw ConfigError("config: policy '" + scn.policy +
                            "' has no 2-D wormhole routing function");
        return pol.wormhole2d(scn, m, f);
      } else {
        if (!pol.wormhole3d)
          throw ConfigError("config: policy '" + scn.policy +
                            "' has no 3-D wormhole routing function");
        return pol.wormhole3d(scn, m, f);
      }
    }();

    std::ostringstream sec;
    sec << "\n## "
        << (env == "none" ? "fault-free ("
            : scn.fault_pattern == "clustered"
                ? "clustered MCC fault regions ("
                : scn.fault_pattern + " fault regions (")
        << f.count() << " dead nodes)\n\n";
    report.text(sec.str());

    const bool converge =
        scn.load.warmup_mode == sim::wh::WarmupMode::Converge;
    // The fixed-warmup table is a pinned differential surface; convergence
    // mode appends its methodology columns instead of reshaping it.
    std::vector<std::string> cols = {"pattern", "offered (f/n/c)",
                                     "accepted (f/n/c)", "avg lat",
                                     "p99 lat", "max lat", "packets",
                                     "filtered", "state"};
    if (converge) {
      cols.push_back("warmup");
      cols.push_back("+-acc 95%");
      cols.push_back("+-lat 95%");
    }
    util::Table& t = report.table("load_" + env, cols);
    for (const std::string& pattern_name : scn.traffic) {
      const sim::wh::Pattern p = traffic_patterns().get(pattern_name).pattern;
      for (const double rate : scn.rates) {
        sim::wh::LoadPoint load = scn.load;
        load.rate = rate;
        const uint64_t seed =
            scn.seed + static_cast<uint64_t>(rate * 10000);
        sim::wh::SimResult r;
        if constexpr (Dims == 2)
          r = sim::wh::run_load_point2d(m, f, *routing, p, scn.wh,
                                        scn.route_policy, load, seed,
                                        scn.hotspot_fraction,
                                        scn.hotspot_count);
        else
          r = sim::wh::run_load_point3d(m, f, *routing, p, scn.wh,
                                        scn.route_policy, load, seed,
                                        scn.hotspot_fraction,
                                        scn.hotspot_count);
        std::vector<std::string> row = {
            to_string(p), util::Table::fmt(r.offered_flits, 4),
            util::Table::fmt(r.accepted_flits, 4),
            util::Table::fmt(r.avg_latency, 1),
            std::to_string(r.p99_latency), std::to_string(r.max_latency),
            std::to_string(r.delivered_packets), std::to_string(r.filtered),
            state_cell(r)};
        if (converge) {
          row.push_back(std::to_string(r.warmup_cycles_used) +
                        (r.warmup_converged ? "" : "!"));
          row.push_back(util::Table::fmt(r.accepted_ci95, 4));
          row.push_back(util::Table::fmt(r.latency_ci95, 2));
        }
        t.add_row(std::move(row));
        delivered_total += r.delivered_packets;
        totals.fold(r);
        if (r.violations != 0 || r.deadlocked) {  // must never happen
          report.fail(r.violations != 0 ? "ordering/credit violation"
                                        : "deadlock");
          return;
        }
      }
    }
  }

  totals.publish(report);
  report.metric("delivered_packets", static_cast<double>(delivered_total));
  report.text(
      "\nExpected shape: latency flat near zero-load, rising toward the "
      "saturation knee; fault regions\nlower the knee (fewer links, detours "
      "concentrate load around MCC boundaries) and raise p99 first.\nEvery "
      "load point drains completely after injection stops — the VC-class "
      "scheme keeps the\nadaptive router deadlock-free even past "
      "saturation.\n");
  if (scn.load.warmup_mode == sim::wh::WarmupMode::Converge)
    report.text(
        "\nMethodology: warmup ended when per-period throughput and mean "
        "latency both moved less than\nthe convergence threshold between "
        "consecutive sample periods ('!' marks points that hit the\nwarmup "
        "cap unconverged); the +- columns are normal-approximation 95% "
        "confidence half-widths\nover the window's per-period samples.\n");
}

void wormhole_load_driver(const Scenario& scn, RunReport& report) {
  if (scn.dynamic)
    throw ConfigError(
        "config: wormhole_load runs a static fault environment; use "
        "driver=wormhole_churn for fault_model=dynamic");
  if (scn.universe) {
    if (scn.dims == 2)
      run_wormhole_link_load<2>(scn, report);
    else
      run_wormhole_link_load<3>(scn, report);
    return;
  }
  if (scn.dims == 2)
    run_wormhole_load<2>(scn, report);
  else
    run_wormhole_load<3>(scn, report);
}

// ---------------------------------------------------------------------------
// wormhole_churn (E12 part B; 2-D closes the ROADMAP churn item)

template <int Dims>
void run_wormhole_churn(const Scenario& scn, RunReport& report) {
  using Mesh = std::conditional_t<Dims == 2, mesh::Mesh2D, mesh::Mesh3D>;
  using Model = std::conditional_t<Dims == 2, runtime::DynamicModel2D,
                                   runtime::DynamicModel3D>;
  using Timeline = std::conditional_t<Dims == 2, runtime::FaultTimeline2D,
                                      runtime::FaultTimeline3D>;

  const PolicySpec& pol = scn.policy_spec(scn.policy);
  const sim::wh::Pattern pattern =
      traffic_patterns().get(scn.traffic.front()).pattern;

  const std::string routing_desc =
      scn.policy == "fault_block"
          ? "fault-block baseline, full refill per event"
          : std::string("DynamicMccRouting") + (Dims == 2 ? "2" : "3") +
                "D over the epoch-versioned cache";
  report.text("\n## " + scn.name + ": wormhole churn runs (" +
              scn.traffic.front() + " traffic, " + routing_desc + ")\n\n");

  util::Table& t = report.table(
      "churn", {"mesh", "churn/kcyc", "events (f+r)", "delivered", "dropped",
                "accepted (f/n/c)", "avg lat", "cache hit%", "state"});

  sim::wh::LoadPoint load = scn.load;
  load.rate = scn.rates.front();

  bool ok = true;
  uint64_t delivered_total = 0, dropped_total = 0;
  SimTotals totals;
  runtime::GuidanceCacheStats cache_totals;
  uint64_t fault_total = 0, repair_total = 0, dropped_flits_total = 0;
  for (const int k : scn.ks) {
    for (const double churn : scn.churn) {  // events per 1000 cycles
      const Mesh mesh = [&] {
        if constexpr (Dims == 2)
          return scn.mesh2(k);
        else
          return scn.mesh3(k);
      }();
      // Legacy integral-churn seed formula kept bit-for-bit (the E12-B
      // differential pin); the sub-integer part of a fractional churn
      // rate is mixed in separately (zero for integral rates) so sweep
      // points like 2 and 2.5 draw independent streams.
      const uint64_t churn_frac = static_cast<uint64_t>(churn * 1000) -
                                  static_cast<uint64_t>(churn) * 1000;
      util::Rng rng(scn.seed + static_cast<uint64_t>(k * 31 + churn) +
                    churn_frac * 0x9E3779B9ULL);
      Scenario cell = scn;
      cell.k = k;
      const auto initial = [&] {
        if constexpr (Dims == 2)
          return cell.make_faults2(mesh, rng);
        else
          return cell.make_faults3(mesh, rng);
      }();
      Model model(mesh, initial);
      auto routing = [&] {
        if constexpr (Dims == 2) {
          if (!pol.churn2d)
            throw ConfigError("config: policy '" + scn.policy +
                              "' cannot route under churn (2-D)");
          return pol.churn2d(scn, model);
        } else {
          if (!pol.churn3d)
            throw ConfigError("config: policy '" + scn.policy +
                              "' cannot route under churn (3-D)");
          return pol.churn3d(scn, model);
        }
      }();

      util::ChurnParams p;
      p.rate = churn / 1000.0;
      p.horizon = scn.churn_horizon != 0
                      ? scn.churn_horizon
                      : static_cast<uint64_t>(load.warmup + load.measure +
                                              load.drain / 4);
      p.repair_min = static_cast<uint64_t>(scn.repair_min);
      p.repair_max = static_cast<uint64_t>(scn.repair_max);
      auto timeline = Timeline::sample(mesh, initial, rng, p);

      sim::wh::ChurnResult r;
      const uint64_t run_seed = scn.seed2 + static_cast<uint64_t>(k);
      if constexpr (Dims == 2)
        r = sim::wh::run_churn_load_point2d(
            model, *routing, pattern, scn.wh, scn.route_policy, load,
            std::move(timeline), run_seed, scn.hotspot_fraction,
            scn.hotspot_count);
      else
        r = sim::wh::run_churn_load_point3d(
            model, *routing, pattern, scn.wh, scn.route_policy, load,
            std::move(timeline), run_seed, scn.hotspot_fraction,
            scn.hotspot_count);

      std::string mesh_cell = std::to_string(k);
      if (Dims == 2) {
        mesh_cell += "x";
        mesh_cell += std::to_string(k);
      } else {
        mesh_cell += "^3";
      }
      t.add_row({mesh_cell, util::Table::fmt(churn, 1),
                 std::to_string(r.fault_events) + "+" +
                     std::to_string(r.repair_events),
                 std::to_string(r.sim.delivered_packets),
                 std::to_string(r.dropped_packets),
                 util::Table::fmt(r.sim.accepted_flits, 4),
                 util::Table::fmt(r.sim.avg_latency, 1),
                 util::Table::pct(r.cache.hit_rate()),
                 std::string(r.sim.violations    ? "VIOLATION"
                             : r.sim.deadlocked  ? "DEADLOCK"
                             : !r.sim.drained    ? "backlogged"
                                                 : "ok")});
      delivered_total += r.sim.delivered_packets;
      dropped_total += r.dropped_packets;
      totals.fold(r.sim);
      cache_totals.hits += r.cache.hits;
      cache_totals.misses += r.cache.misses;
      cache_totals.evictions += r.cache.evictions;
      cache_totals.dedup_waits += r.cache.dedup_waits;
      fault_total += r.fault_events;
      repair_total += r.repair_events;
      dropped_flits_total += r.dropped_flits;
      // With drop_infeasible forced and repairs still firing through the
      // drain, a churn run must empty; a backlog that outlives the budget
      // is a wedge even if the stall detector never formally fired.
      if (r.sim.violations != 0 || r.sim.deadlocked || !r.sim.drained)
        ok = false;
    }
  }
  totals.publish(report);
  if (obs::MetricRegistry* reg = obs::metrics()) {
    reg->add_counter("wh.dropped_packets", dropped_total);
    reg->add_counter("wh.dropped_flits", dropped_flits_total);
    reg->add_counter("wh.fault_events", fault_total);
    reg->add_counter("wh.repair_events", repair_total);
    // Hit/miss/eviction totals are deterministic on non-evicting runs
    // (the determinism tests size the cache so nothing evicts);
    // dedup_waits counts latch waiters — concurrency-dependent, a gauge.
    reg->add_counter("cache.hits", cache_totals.hits);
    reg->add_counter("cache.misses", cache_totals.misses);
    reg->add_counter("cache.evictions", cache_totals.evictions);
    reg->add_gauge("cache.dedup_waits",
                   static_cast<double>(cache_totals.dedup_waits));
    reg->set_gauge("cache.hit_rate", cache_totals.hit_rate());
  }
  report.metric("delivered_packets", static_cast<double>(delivered_total));
  report.metric("dropped_packets", static_cast<double>(dropped_total));
  if (!ok) report.fail("churn run hit a violation, deadlock or backlog");
}

// wormhole_churn universe branch (E14 fault_model=transient/composite):
// the network rides a three-class event schedule — true node/router
// deaths, physical link severs/restores, and the projected guidance
// updated through the recompute-and-diff tracker. New table surface
// (churn_universe); the node-only churn table stays pinned.
template <int Dims>
void run_wormhole_universe_churn(const Scenario& scn, RunReport& report) {
  using Mesh = std::conditional_t<Dims == 2, mesh::Mesh2D, mesh::Mesh3D>;
  using Model = std::conditional_t<Dims == 2, runtime::DynamicModel2D,
                                   runtime::DynamicModel3D>;
  using Axes = std::conditional_t<Dims == 2, fault::Axes2, fault::Axes3>;

  const PolicySpec& pol = scn.policy_spec(scn.policy);
  const sim::wh::Pattern pattern =
      traffic_patterns().get(scn.traffic.front()).pattern;

  report.text("\n## " + scn.name + ": wormhole universe churn (" +
              scn.traffic.front() + " traffic, fault_model=" +
              scn.fault_model + ": " +
              (scn.hard_faults ? "hard arrival/repair" : "") +
              (scn.hard_faults && scn.transient_faults ? " + " : "") +
              (scn.transient_faults ? "transient MTBF/MTTR" : "") + ")\n\n");

  util::Table& t = report.table(
      "churn_universe",
      {"mesh", "churn/kcyc", "node ev (f+r)", "link ev (f+r)", "sacrificed",
       "delivered", "dropped", "accepted (f/n/c)", "avg lat", "cache hit%",
       "state"});

  sim::wh::LoadPoint load = scn.load;
  load.rate = scn.rates.front();

  bool ok = true;
  uint64_t delivered_total = 0, dropped_total = 0, dropped_flits_total = 0;
  uint64_t fault_total = 0, repair_total = 0;
  uint64_t link_fault_total = 0, link_repair_total = 0, sacrificed_total = 0;
  SimTotals totals;
  runtime::GuidanceCacheStats cache_totals;
  for (const int k : scn.ks) {
    for (const double churn : scn.churn) {  // events per 1000 cycles
      const Mesh mesh = [&] {
        if constexpr (Dims == 2)
          return scn.mesh2(k);
        else
          return scn.mesh3(k);
      }();
      const uint64_t churn_frac = static_cast<uint64_t>(churn * 1000) -
                                  static_cast<uint64_t>(churn) * 1000;
      util::Rng rng(scn.seed + static_cast<uint64_t>(k * 31 + churn) +
                    churn_frac * 0x9E3779B9ULL);
      Scenario cell = scn;
      cell.k = k;
      auto universe = [&] {
        if constexpr (Dims == 2)
          return cell.make_universe2(mesh, rng);
        else
          return cell.make_universe3(mesh, rng);
      }();
      const auto proj = fault::project(universe);
      Model model(mesh, proj.faults);
      auto routing = [&] {
        if constexpr (Dims == 2) {
          if (!pol.churn2d)
            throw ConfigError("config: policy '" + scn.policy +
                              "' cannot route under churn (2-D)");
          return pol.churn2d(scn, model);
        } else {
          if (!pol.churn3d)
            throw ConfigError("config: policy '" + scn.policy +
                              "' cannot route under churn (3-D)");
          return pol.churn3d(scn, model);
        }
      }();

      const uint64_t horizon =
          scn.churn_horizon != 0
              ? scn.churn_horizon
              : static_cast<uint64_t>(load.warmup + load.measure +
                                      load.drain / 4);
      auto events = fault::sample_universe_churn<Axes>(
          mesh, rng, universe_churn_params(cell, churn, horizon),
          scn.hard_faults, scn.transient_faults);

      sim::wh::UniverseChurnResult r;
      const uint64_t run_seed = scn.seed2 + static_cast<uint64_t>(k);
      if constexpr (Dims == 2)
        r = sim::wh::run_universe_churn_load_point2d(
            model, *routing, pattern, scn.wh, scn.route_policy, load,
            std::move(universe), std::move(events), run_seed,
            scn.hotspot_fraction, scn.hotspot_count);
      else
        r = sim::wh::run_universe_churn_load_point3d(
            model, *routing, pattern, scn.wh, scn.route_policy, load,
            std::move(universe), std::move(events), run_seed,
            scn.hotspot_fraction, scn.hotspot_count);

      std::string mesh_cell = std::to_string(k);
      if (Dims == 2) {
        mesh_cell += "x";
        mesh_cell += std::to_string(k);
      } else {
        mesh_cell += "^3";
      }
      t.add_row({mesh_cell, util::Table::fmt(churn, 1),
                 std::to_string(r.fault_events) + "+" +
                     std::to_string(r.repair_events),
                 std::to_string(r.link_fault_events) + "+" +
                     std::to_string(r.link_repair_events),
                 std::to_string(r.projection_sacrifices),
                 std::to_string(r.sim.delivered_packets),
                 std::to_string(r.dropped_packets),
                 util::Table::fmt(r.sim.accepted_flits, 4),
                 util::Table::fmt(r.sim.avg_latency, 1),
                 util::Table::pct(r.cache.hit_rate()),
                 std::string(r.sim.violations    ? "VIOLATION"
                             : r.sim.deadlocked  ? "DEADLOCK"
                             : !r.sim.drained    ? "backlogged"
                                                 : "ok")});
      delivered_total += r.sim.delivered_packets;
      dropped_total += r.dropped_packets;
      dropped_flits_total += r.dropped_flits;
      fault_total += r.fault_events;
      repair_total += r.repair_events;
      link_fault_total += r.link_fault_events;
      link_repair_total += r.link_repair_events;
      sacrificed_total += r.projection_sacrifices;
      totals.fold(r.sim);
      cache_totals.hits += r.cache.hits;
      cache_totals.misses += r.cache.misses;
      cache_totals.evictions += r.cache.evictions;
      cache_totals.dedup_waits += r.cache.dedup_waits;
      if (r.sim.violations != 0 || r.sim.deadlocked || !r.sim.drained)
        ok = false;
    }
  }
  totals.publish(report);
  if (obs::MetricRegistry* reg = obs::metrics()) {
    reg->add_counter("wh.dropped_packets", dropped_total);
    reg->add_counter("wh.dropped_flits", dropped_flits_total);
    reg->add_counter("wh.fault_events", fault_total);
    reg->add_counter("wh.repair_events", repair_total);
    reg->add_counter("wh.link_fault_events", link_fault_total);
    reg->add_counter("wh.link_repair_events", link_repair_total);
    reg->add_counter("fault.projection.sacrificed", sacrificed_total);
    reg->add_counter("cache.hits", cache_totals.hits);
    reg->add_counter("cache.misses", cache_totals.misses);
    reg->add_counter("cache.evictions", cache_totals.evictions);
    reg->add_gauge("cache.dedup_waits",
                   static_cast<double>(cache_totals.dedup_waits));
    reg->set_gauge("cache.hit_rate", cache_totals.hit_rate());
  }
  report.metric("delivered_packets", static_cast<double>(delivered_total));
  report.metric("dropped_packets", static_cast<double>(dropped_total));
  report.metric("link_fault_events", static_cast<double>(link_fault_total));
  report.metric("projection_sacrifices",
                static_cast<double>(sacrificed_total));
  if (!ok)
    report.fail("universe churn run hit a violation, deadlock or backlog");
}

void wormhole_churn_driver(const Scenario& scn, RunReport& report) {
  if (!scn.dynamic)
    throw ConfigError(
        "config: wormhole_churn requires fault_model=dynamic (use "
        "driver=wormhole_load for a static environment)");
  if (scn.traffic.size() != 1 || scn.rates.size() != 1)
    throw ConfigError(
        "config: wormhole_churn sweeps sizes x churn rates; give exactly "
        "one traffic pattern and one injection rate per run");
  if (scn.universe) {
    if (scn.dims == 2)
      run_wormhole_universe_churn<2>(scn, report);
    else
      run_wormhole_universe_churn<3>(scn, report);
    return;
  }
  if (scn.dims == 2)
    run_wormhole_churn<2>(scn, report);
  else
    run_wormhole_churn<3>(scn, report);
}

// ---------------------------------------------------------------------------
// event_cost (E12 parts A1/A2: incremental maintenance vs full rebuild)

void run_event_cost2d(const Scenario& scn, RunReport& report) {
  report.text(
      "\n## " + scn.name +
      ": per-event cost, 2-D (all 4 quadrant models maintained; rebuild = "
      "fresh MccModel2D, all octants forced)\n\n");
  util::Table& t = report.table(
      "event_cost_2d",
      {"mesh", "rate", "events", "fallback ev", "relabel/ev", "regions/ev",
       "walls/ev", "delta ints/ev", "incr ms/ev", "rebuild ms/ev",
       "speedup"});
  util::RunningStats speedups;
  for (const int k : scn.ks) {
    for (const double rate : scn.fault_rates) {
      const mesh::Mesh2D mesh(k, k);
      util::Rng rng(scn.seed + static_cast<uint64_t>(k * 977 + rate * 1000));
      Scenario cell = scn;
      cell.fault_rate = rate;
      const mesh::FaultSet2D initial = cell.make_faults2(mesh, rng);
      runtime::DynamicModel2D dyn(mesh, initial);

      util::ChurnParams p;
      p.rate = scn.churn.front() / 1000.0;
      p.horizon = scn.churn_horizon != 0 ? scn.churn_horizon : 1200;
      p.repair_min = static_cast<uint64_t>(scn.repair_min);
      p.repair_max = static_cast<uint64_t>(scn.repair_max);
      auto timeline =
          runtime::FaultTimeline2D::sample(mesh, initial, rng, p);

      size_t events = 0, ambiguous = 0, relabeled = 0, regions = 0,
             walls = 0, delta = 0;
      double incr_ms = 0, rebuild_ms = 0;
      const mesh::Octant2 canon{false, false};
      for (const auto& e : timeline.events()) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto rep = e.repair ? dyn.repair(e.node) : dyn.fail(e.node);
        incr_ms += ms_since(t0);
        if (rep.epoch == 0) continue;
        ++events;
        // Events absorbed via the full-relabel fallback (doubly-blocked
        // ambiguous regime, labeling.h) — zero at the paper's operating
        // fault rates.
        if (rep.any_label_fallback()) ++ambiguous;
        relabeled += rep.relabeled_total();
        for (const auto& od : rep.octants)
          regions += od.regions.removed.size() + od.regions.added.size();
        walls += rep.walls_rebuilt();
        delta += proto::make_boundary_delta(dyn.octant(canon).boundary,
                                            rep.octants[canon.id()].boundary)
                     .payload_ints();

        const auto t1 = std::chrono::steady_clock::now();
        const core::MccModel2D fresh(mesh, dyn.faults());
        for (const bool fx : {false, true})
          for (const bool fy : {false, true})
            (void)fresh.octant(mesh::Octant2{fx, fy});
        rebuild_ms += ms_since(t1);
      }
      if (events == 0) continue;
      const double n = static_cast<double>(events);
      speedups.add(rebuild_ms / std::max(incr_ms, 1e-9));
      t.add_row({std::to_string(k) + "x" + std::to_string(k),
                 util::Table::pct(rate), std::to_string(events),
                 std::to_string(ambiguous),
                 util::Table::fmt(static_cast<double>(relabeled) / n, 2),
                 util::Table::fmt(static_cast<double>(regions) / n, 2),
                 util::Table::fmt(static_cast<double>(walls) / n, 2),
                 util::Table::fmt(static_cast<double>(delta) / n, 1),
                 util::Table::fmt(incr_ms / n, 4),
                 util::Table::fmt(rebuild_ms / n, 4),
                 util::Table::fmt(rebuild_ms / std::max(incr_ms, 1e-9), 1) +
                     "x"});
    }
  }
  report.metric("mean_speedup", speedups.mean());
}

void run_event_cost3d(const Scenario& scn, RunReport& report) {
  report.text(
      "\n## " + scn.name +
      ": per-event cost, 3-D (all 8 octant models maintained; rebuild = "
      "fresh MccModel3D, all octants forced)\n\n");
  util::Table& t = report.table(
      "event_cost_3d", {"mesh", "rate", "events", "fallback ev",
                        "relabel/ev", "regions/ev", "incr ms/ev",
                        "rebuild ms/ev", "speedup"});
  util::RunningStats speedups;
  for (const int k : scn.ks) {
    for (const double rate : scn.fault_rates) {
      const mesh::Mesh3D mesh(k, k, k);
      util::Rng rng(scn.seed + static_cast<uint64_t>(k * 977 + rate * 1000));
      Scenario cell = scn;
      cell.fault_rate = rate;
      const mesh::FaultSet3D initial = cell.make_faults3(mesh, rng);
      runtime::DynamicModel3D dyn(mesh, initial);

      util::ChurnParams p;
      p.rate = scn.churn.front() / 1000.0;
      p.horizon = scn.churn_horizon != 0 ? scn.churn_horizon : 1000;
      p.repair_min = static_cast<uint64_t>(scn.repair_min);
      p.repair_max = static_cast<uint64_t>(scn.repair_max);
      auto timeline =
          runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

      size_t events = 0, ambiguous = 0, relabeled = 0, regions = 0;
      double incr_ms = 0, rebuild_ms = 0;
      for (const auto& e : timeline.events()) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto rep = e.repair ? dyn.repair(e.node) : dyn.fail(e.node);
        incr_ms += ms_since(t0);
        if (rep.epoch == 0) continue;
        ++events;
        if (rep.any_label_fallback()) ++ambiguous;
        relabeled += rep.relabeled_total();
        for (const auto& od : rep.octants)
          regions += od.regions.removed.size() + od.regions.added.size();

        const auto t1 = std::chrono::steady_clock::now();
        const core::MccModel3D fresh(mesh, dyn.faults());
        for (int id = 0; id < 8; ++id)
          (void)fresh.octant(
              mesh::Octant3{(id & 1) != 0, (id & 2) != 0, (id & 4) != 0});
        rebuild_ms += ms_since(t1);
      }
      if (events == 0) continue;
      const double n = static_cast<double>(events);
      speedups.add(rebuild_ms / std::max(incr_ms, 1e-9));
      t.add_row({std::to_string(k) + "^3", util::Table::pct(rate),
                 std::to_string(events), std::to_string(ambiguous),
                 util::Table::fmt(static_cast<double>(relabeled) / n, 2),
                 util::Table::fmt(static_cast<double>(regions) / n, 2),
                 util::Table::fmt(incr_ms / n, 4),
                 util::Table::fmt(rebuild_ms / n, 4),
                 util::Table::fmt(rebuild_ms / std::max(incr_ms, 1e-9), 1) +
                     "x"});
    }
  }
  report.metric("mean_speedup", speedups.mean());
}

void event_cost_driver(const Scenario& scn, RunReport& report) {
  if (!scn.dynamic)
    throw ConfigError(
        "config: event_cost measures the dynamic runtime; set "
        "fault_model=dynamic");
  if (scn.dims == 2)
    run_event_cost2d(scn, report);
  else
    run_event_cost3d(scn, report);
}

}  // namespace

void register_wormhole_drivers() {
  drivers().add("wormhole_load", wormhole_load_driver,
                "flit-level latency-throughput sweep (E11; 2-D/3-D, any "
                "policy, fault_envs sections)");
  drivers().add("wormhole_churn", wormhole_churn_driver,
                "wormhole under live churn over the dynamic runtime (E12 "
                "part B; 2-D/3-D, mcc or fault_block policies)");
  drivers().add("event_cost", event_cost_driver,
                "incremental MCC maintenance vs full rebuild per event "
                "(E12 parts A1/A2)");
}

}  // namespace mcc::api
