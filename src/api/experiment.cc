#include "api/experiment.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "fault/process.h"
#include "mesh/fault_injection.h"
#include "obs/obs.h"
#include "sim/wormhole/baseline_routing.h"
#include "sim/wormhole/dynamic_routing.h"

namespace mcc::api {

// Defined in drivers.cc (same library).
void register_builtin_drivers();

Registry<DriverFn>& drivers() {
  static Registry<DriverFn> r("driver");
  return r;
}
Registry<FaultModelSpec>& fault_models() {
  static Registry<FaultModelSpec> r("fault model");
  return r;
}
Registry<FaultPatternSpec>& fault_patterns() {
  static Registry<FaultPatternSpec> r("fault pattern");
  return r;
}
Registry<PolicySpec>& policies() {
  static Registry<PolicySpec> r("policy");
  return r;
}
Registry<TrafficSpec>& traffic_patterns() {
  static Registry<TrafficSpec> r("traffic pattern");
  return r;
}

namespace {

void register_builtin_axes() {
  // --- fault models --------------------------------------------------------
  fault_models().add("static", {false}, "immutable fault set",
                     "all drivers; node faults only");
  fault_models().add("dynamic", {true},
                     "runtime::DynamicModel with churn events",
                     "wormhole_churn, event_cost, serve_load; node faults "
                     "only");
  fault_models().add(
      "link", {false, true, true, false},
      "static three-class FaultUniverse (node + router + link)",
      "reliability, wormhole_load; needs a fault_pattern with a universe "
      "builder (none | uniform | uniform_links)");
  fault_models().add(
      "transient", {true, true, false, true},
      "universe churn: MTBF/MTTR flip-and-recover soft errors",
      "reliability, wormhole_churn; keys mtbf= mttr=; universe "
      "fault_pattern sets the initial state");
  fault_models().add(
      "composite", {true, true, true, true},
      "universe churn: hard Poisson arrival/repair + transient flips",
      "reliability, wormhole_churn; keys churn= mtbf= mttr= repair_min= "
      "repair_max=");

  // --- fault patterns ------------------------------------------------------
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario&, util::Rng&,
                  const std::vector<mesh::Coord2>&) {
      return mesh::FaultSet2D(m);
    };
    p.fill3d = [](const mesh::Mesh3D& m, const Scenario&, util::Rng&,
                  const std::vector<mesh::Coord3>&) {
      return mesh::FaultSet3D(m);
    };
    p.universe2d = [](const mesh::Mesh2D& m, const Scenario&, util::Rng&) {
      return fault::FaultUniverse2D(m);
    };
    p.universe3d = [](const mesh::Mesh3D& m, const Scenario&, util::Rng&) {
      return fault::FaultUniverse3D(m);
    };
    fault_patterns().add("none", std::move(p), "fault-free mesh",
                         "every fault_model; universe models start empty");
  }
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario& s, util::Rng& rng,
                  const std::vector<mesh::Coord2>& protect) {
      auto f = mesh::inject_uniform(m, s.fault_rate, rng, protect);
      if (s.clear_border) {
        for (int x = 0; x < m.nx(); ++x) {
          f.set_faulty({x, 0}, false);
          f.set_faulty({x, m.ny() - 1}, false);
        }
        for (int y = 0; y < m.ny(); ++y) {
          f.set_faulty({0, y}, false);
          f.set_faulty({m.nx() - 1, y}, false);
        }
      }
      return f;
    };
    p.fill3d = [](const mesh::Mesh3D& m, const Scenario& s, util::Rng& rng,
                  const std::vector<mesh::Coord3>& protect) {
      return mesh::inject_uniform(m, s.fault_rate, rng, protect);
    };
    p.universe2d = [](const mesh::Mesh2D& m, const Scenario& s,
                      util::Rng& rng) {
      return fault::make_bernoulli_universe<fault::Axes2>(
          m, s.fault_rate, s.router_fault_rate, s.link_fault_rate, rng);
    };
    p.universe3d = [](const mesh::Mesh3D& m, const Scenario& s,
                      util::Rng& rng) {
      return fault::make_bernoulli_universe<fault::Axes3>(
          m, s.fault_rate, s.router_fault_rate, s.link_fault_rate, rng);
    };
    fault_patterns().add("uniform", std::move(p),
                         "Bernoulli(fault_rate) node faults",
                         "every fault_model; universe models add "
                         "router_fault_rate= and link_fault_rate= classes");
  }
  {
    // Links only: the per-class rate falls back to fault_rate when
    // link_fault_rate is 0, so sweeping fault_rate yields pure link-failure
    // reliability curves with no config changes.
    FaultPatternSpec p;
    p.universe2d = [](const mesh::Mesh2D& m, const Scenario& s,
                      util::Rng& rng) {
      const double lp =
          s.link_fault_rate > 0 ? s.link_fault_rate : s.fault_rate;
      return fault::make_bernoulli_universe<fault::Axes2>(m, 0, 0, lp, rng);
    };
    p.universe3d = [](const mesh::Mesh3D& m, const Scenario& s,
                      util::Rng& rng) {
      const double lp =
          s.link_fault_rate > 0 ? s.link_fault_rate : s.fault_rate;
      return fault::make_bernoulli_universe<fault::Axes3>(m, 0, 0, lp, rng);
    };
    fault_patterns().add("uniform_links", std::move(p),
                         "Bernoulli link faults only (link_fault_rate, "
                         "falling back to fault_rate)",
                         "universe fault_models only (link | transient | "
                         "composite)");
  }
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario& s, util::Rng& rng,
                  const std::vector<mesh::Coord2>& protect) {
      return mesh::inject_clustered(m, s.fault_count, s.fault_clusters, rng,
                                    protect);
    };
    p.fill3d = [](const mesh::Mesh3D& m, const Scenario& s, util::Rng& rng,
                  const std::vector<mesh::Coord3>& protect) {
      return mesh::inject_clustered(m, s.fault_count, s.fault_clusters, rng,
                                    protect);
    };
    fault_patterns().add("clustered", std::move(p),
                         "fault_count faults in fault_clusters clusters",
                         "node-only fault_models (static | dynamic)");
  }
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario& s, util::Rng& rng,
                  const std::vector<mesh::Coord2>& protect) {
      return mesh::inject_exact(m, s.fault_count, rng, protect);
    };
    p.fill3d = [](const mesh::Mesh3D& m, const Scenario& s, util::Rng& rng,
                  const std::vector<mesh::Coord3>& protect) {
      return mesh::inject_exact(m, s.fault_count, rng, protect);
    };
    fault_patterns().add("exact", std::move(p),
                         "exactly fault_count uniform faults",
                         "node-only fault_models (static | dynamic)");
  }
  {
    FaultPatternSpec p;
    p.fill3d = [](const mesh::Mesh3D& m, const Scenario&, util::Rng&,
                  const std::vector<mesh::Coord3>&) {
      mesh::FaultSet3D f(m);
      for (const mesh::Coord3 c :
           {mesh::Coord3{5, 5, 6}, mesh::Coord3{6, 5, 5},
            mesh::Coord3{5, 6, 5}, mesh::Coord3{6, 7, 5},
            mesh::Coord3{7, 6, 5}, mesh::Coord3{5, 4, 7},
            mesh::Coord3{4, 5, 7}, mesh::Coord3{7, 8, 4}}) {
        if (!m.contains(c))
          throw ConfigError(
              "config: fault_pattern=figure5 needs a mesh of at least "
              "10x10x10");
        f.set_faulty(c);
      }
      return f;
    };
    fault_patterns().add("figure5", std::move(p),
                         "the paper's Figure-5 fault set (3-D, >= 10^3)",
                         "node-only fault_models; 3-D only");
  }
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario&, util::Rng&,
                  const std::vector<mesh::Coord2>&) {
      mesh::FaultSet2D f(m);
      for (const mesh::Coord2 c :
           {mesh::Coord2{3, 7}, mesh::Coord2{4, 6}, mesh::Coord2{5, 5},
            mesh::Coord2{6, 4}}) {
        if (!m.contains(c))
          throw ConfigError(
              "config: fault_pattern=staircase_down needs a mesh of at "
              "least 7x8");
        f.set_faulty(c);
      }
      return f;
    };
    fault_patterns().add("staircase_down", std::move(p),
                         "descending diagonal (worst case for ++)",
                         "node-only fault_models; 2-D only");
  }
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario&, util::Rng&,
                  const std::vector<mesh::Coord2>&) {
      mesh::FaultSet2D f(m);
      for (const mesh::Coord2 c :
           {mesh::Coord2{3, 3}, mesh::Coord2{4, 4}, mesh::Coord2{5, 5},
            mesh::Coord2{6, 6}}) {
        if (!m.contains(c))
          throw ConfigError(
              "config: fault_pattern=staircase_up needs a mesh of at least "
              "7x7");
        f.set_faulty(c);
      }
      return f;
    };
    fault_patterns().add("staircase_up", std::move(p),
                         "ascending diagonal (no fill toward ++)",
                         "node-only fault_models; 2-D only");
  }
  {
    FaultPatternSpec p;
    p.fill2d = [](const mesh::Mesh2D& m, const Scenario&, util::Rng&,
                  const std::vector<mesh::Coord2>&) {
      if (m.nx() < 8 || m.ny() < 7)
        throw ConfigError(
            "config: fault_pattern=lshape needs a mesh of at least 8x7");
      mesh::FaultSet2D f(m);
      mesh::add_wall_x(f, m, 3, 2, 6);
      mesh::add_wall_y(f, m, 3, 7, 2);
      return f;
    };
    fault_patterns().add("lshape", std::move(p),
                         "L-shaped wall with a concave pocket",
                         "node-only fault_models; 2-D only");
  }

  // --- guidance policies ---------------------------------------------------
  {
    PolicySpec p;
    p.router_kind2d = core::RouterKind::Oracle;
    p.router_kind3d = core::RouterKind::Oracle;
    p.wormhole2d = [](const Scenario& s, const mesh::Mesh2D& m,
                      const mesh::FaultSet2D& f) {
      return std::make_unique<sim::wh::MccRouting2D>(
          m, f, sim::wh::GuidanceMode::Oracle,
          std::optional<bool>{s.guidance_cache});
    };
    p.wormhole3d = [](const Scenario& s, const mesh::Mesh3D& m,
                      const mesh::FaultSet3D& f) {
      return std::make_unique<sim::wh::MccRouting3D>(
          m, f, sim::wh::GuidanceMode::Oracle,
          std::optional<bool>{s.guidance_cache});
    };
    p.churn2d = [](const Scenario&, runtime::DynamicModel2D& m) {
      return std::make_unique<sim::wh::DynamicMccRouting2D>(m);
    };
    p.churn3d = [](const Scenario&, runtime::DynamicModel3D& m) {
      return std::make_unique<sim::wh::DynamicMccRouting3D>(m);
    };
    policies().add("oracle", std::move(p),
                   "reachability-field guidance (gold standard)");
  }
  {
    PolicySpec p;
    p.router_kind2d = core::RouterKind::Records;
    p.router_kind3d = core::RouterKind::Flood;
    p.wormhole2d = [](const Scenario& s, const mesh::Mesh2D& m,
                      const mesh::FaultSet2D& f) {
      return std::make_unique<sim::wh::MccRouting2D>(
          m, f, sim::wh::GuidanceMode::Model,
          std::optional<bool>{s.guidance_cache});
    };
    p.wormhole3d = [](const Scenario& s, const mesh::Mesh3D& m,
                      const mesh::FaultSet3D& f) {
      return std::make_unique<sim::wh::MccRouting3D>(
          m, f, sim::wh::GuidanceMode::Model,
          std::optional<bool>{s.guidance_cache});
    };
    p.churn2d = [](const Scenario&, runtime::DynamicModel2D& m) {
      return std::make_unique<sim::wh::DynamicMccRouting2D>(m);
    };
    p.churn3d = [](const Scenario&, runtime::DynamicModel3D& m) {
      return std::make_unique<sim::wh::DynamicMccRouting3D>(m);
    };
    policies().add("model",
                   std::move(p),
                   "the MCC model's guidance (records in 2-D, floods in "
                   "3-D, exact safe-reach in the wormhole)");
  }
  {
    PolicySpec p;
    p.router_kind2d = core::RouterKind::LabelsOnly;
    p.router_kind3d = core::RouterKind::LabelsOnly;
    p.wormhole2d = [](const Scenario& s, const mesh::Mesh2D& m,
                      const mesh::FaultSet2D& f) {
      return std::make_unique<sim::wh::MccRouting2D>(
          m, f, sim::wh::GuidanceMode::LabelsOnly,
          std::optional<bool>{s.guidance_cache});
    };
    p.wormhole3d = [](const Scenario& s, const mesh::Mesh3D& m,
                      const mesh::FaultSet3D& f) {
      return std::make_unique<sim::wh::MccRouting3D>(
          m, f, sim::wh::GuidanceMode::LabelsOnly,
          std::optional<bool>{s.guidance_cache});
    };
    // No churn builders: a labels-only head can wedge, and inside a
    // wormhole under churn a wedged head blocks a VC forever.
    policies().add("labels_only", std::move(p),
                   "ablation: labels but no boundary information");
  }
  {
    PolicySpec p;
    p.wormhole2d = [](const Scenario& s, const mesh::Mesh2D& m,
                      const mesh::FaultSet2D& f) {
      return std::make_unique<sim::wh::FaultBlockRouting2D>(
          m, f, s.block_fill_kind);
    };
    p.wormhole3d = [](const Scenario& s, const mesh::Mesh3D& m,
                      const mesh::FaultSet3D& f) {
      return std::make_unique<sim::wh::FaultBlockRouting3D>(
          m, f, s.block_fill_kind);
    };
    p.churn2d = [](const Scenario& s, runtime::DynamicModel2D& m) {
      return std::make_unique<sim::wh::FaultBlockRouting2D>(
          m.mesh(), m.faults(), s.block_fill_kind);
    };
    p.churn3d = [](const Scenario& s, runtime::DynamicModel3D& m) {
      return std::make_unique<sim::wh::FaultBlockRouting3D>(
          m.mesh(), m.faults(), s.block_fill_kind);
    };
    policies().add("fault_block", std::move(p),
                   "rectangular fault-block baseline (block_fill= selects "
                   "safety or bbox fill)");
  }
  {
    PolicySpec p;
    p.wormhole2d = [](const Scenario&, const mesh::Mesh2D&,
                      const mesh::FaultSet2D& f)
        -> std::unique_ptr<sim::wh::RoutingFunction2D> {
      if (f.count() != 0)
        throw ConfigError(
            "config: policy 'dor' is fault-oblivious; wormhole runs "
            "require a fault-free mesh (fault_pattern=none)");
      return std::make_unique<sim::wh::DorRouting2D>();
    };
    p.wormhole3d = [](const Scenario&, const mesh::Mesh3D&,
                      const mesh::FaultSet3D& f)
        -> std::unique_ptr<sim::wh::RoutingFunction3D> {
      if (f.count() != 0)
        throw ConfigError(
            "config: policy 'dor' is fault-oblivious; wormhole runs "
            "require a fault-free mesh (fault_pattern=none)");
      return std::make_unique<sim::wh::DorRouting3D>();
    };
    // No churn builders: dor cannot survive node deaths.
    policies().add("dor",
                   std::move(p),
                   "fault-oblivious dimension-order baseline (fault-free "
                   "wormhole only; route_quality scores it at any rate)");
  }

  // --- traffic patterns ----------------------------------------------------
  traffic_patterns().add("uniform", {sim::wh::Pattern::Uniform},
                         "uniform random destinations");
  traffic_patterns().add("transpose", {sim::wh::Pattern::Transpose},
                         "axis-rotated destinations");
  traffic_patterns().add("bit_complement", {sim::wh::Pattern::BitComplement},
                         "mirror-image destinations");
  traffic_patterns().add("hotspot", {sim::wh::Pattern::Hotspot},
                         "hotspot_fraction of packets to hotspot_count "
                         "fixed nodes");
}

}  // namespace

void register_builtins() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_builtin_axes();
    register_builtin_drivers();
  });
}

// ---------------------------------------------------------------------------
// Scenario

mesh::Mesh2D Scenario::mesh2() const {
  return mesh::Mesh2D(nx > 0 ? nx : k, ny > 0 ? ny : k);
}
mesh::Mesh3D Scenario::mesh3() const {
  return mesh::Mesh3D(nx > 0 ? nx : k, ny > 0 ? ny : k, nz > 0 ? nz : k);
}
mesh::Mesh2D Scenario::mesh2(int edge) const {
  return mesh::Mesh2D(edge, edge);
}
mesh::Mesh3D Scenario::mesh3(int edge) const {
  return mesh::Mesh3D(edge, edge, edge);
}

mesh::FaultSet2D Scenario::make_faults2(
    const mesh::Mesh2D& m, util::Rng& rng,
    const std::vector<mesh::Coord2>& protect) const {
  const FaultPatternSpec& spec = fault_patterns().get(fault_pattern);
  if (!spec.fill2d)
    throw ConfigError("config: fault_pattern '" + fault_pattern +
                      "' is not available in 2-D");
  return spec.fill2d(m, *this, rng, protect);
}

mesh::FaultSet3D Scenario::make_faults3(
    const mesh::Mesh3D& m, util::Rng& rng,
    const std::vector<mesh::Coord3>& protect) const {
  const FaultPatternSpec& spec = fault_patterns().get(fault_pattern);
  if (!spec.fill3d)
    throw ConfigError("config: fault_pattern '" + fault_pattern +
                      "' is not available in 3-D");
  return spec.fill3d(m, *this, rng, protect);
}

fault::FaultUniverse2D Scenario::make_universe2(const mesh::Mesh2D& m,
                                                util::Rng& rng) const {
  const FaultPatternSpec& spec = fault_patterns().get(fault_pattern);
  if (!spec.universe2d)
    throw ConfigError("config: fault_pattern '" + fault_pattern +
                      "' has no universe builder (2-D)");
  return spec.universe2d(m, *this, rng);
}

fault::FaultUniverse3D Scenario::make_universe3(const mesh::Mesh3D& m,
                                                util::Rng& rng) const {
  const FaultPatternSpec& spec = fault_patterns().get(fault_pattern);
  if (!spec.universe3d)
    throw ConfigError("config: fault_pattern '" + fault_pattern +
                      "' has no universe builder (3-D)");
  return spec.universe3d(m, *this, rng);
}

const PolicySpec& Scenario::policy_spec(const std::string& n) const {
  return policies().get(n);
}

// ---------------------------------------------------------------------------
// Experiment

namespace {

core::RoutePolicy parse_route_policy(const std::string& v) {
  if (v == "xfirst") return core::RoutePolicy::XFirst;
  if (v == "yfirst") return core::RoutePolicy::YFirst;
  if (v == "random") return core::RoutePolicy::Random;
  if (v == "balanced") return core::RoutePolicy::Balanced;
  if (v == "alternate") return core::RoutePolicy::Alternate;
  throw ConfigError(
      "config: route_policy must be xfirst | yfirst | random | balanced | "
      "alternate, got '" +
      v + "'");
}

Scenario build_scenario(const Configuration& cfg) {
  Scenario s;
  s.cfg = &cfg;
  s.driver = cfg.get_string("driver");
  if (s.driver.empty())
    throw ConfigError("config: 'driver' must be set (see mcc_run --list)");
  (void)drivers().get(s.driver);  // unknown driver fails here

  s.name = cfg.get_string("name");
  if (s.name.empty()) s.name = s.driver;

  s.dims = cfg.get_int("dims");
  s.k = cfg.get_int("k");
  s.nx = cfg.get_int("nx");
  s.ny = cfg.get_int("ny");
  s.nz = cfg.get_int("nz");
  s.ks = cfg.get_int_list("ks");
  s.ks_set = !s.ks.empty();
  if (s.ks.empty()) s.ks = {s.k};

  s.seed = cfg.get_uint64("seed");
  s.seed2 = cfg.get_uint64("seed2");
  if (s.seed2 == 0) s.seed2 = s.seed ^ 0x9E3779B97F4A7C15ULL;
  s.fault_seed = cfg.get_uint64("fault_seed");
  if (s.fault_seed == 0) s.fault_seed = s.seed * 2654435761ULL + 17;

  s.smoke = cfg.smoke();
  s.guidance_cache = cfg.get_bool("guidance_cache");
  s.render = cfg.get_bool("render");
  s.detail = cfg.get_bool("detail");
  s.diversity = cfg.get_bool("diversity");

  s.metrics = cfg.get_bool("metrics");
  s.profile = cfg.get_bool("profile");
  s.trace_json = cfg.get_string("trace_json");
  s.flit_trace = cfg.get_string("flit_trace");

  s.fault_model = cfg.get_string("fault_model");
  const FaultModelSpec& fm = fault_models().get(s.fault_model);
  s.dynamic = fm.dynamic;
  s.universe = fm.universe;
  s.hard_faults = fm.hard;
  s.transient_faults = fm.transient;
  s.fault_pattern = cfg.get_string("fault_pattern");
  const FaultPatternSpec& fp = fault_patterns().get(s.fault_pattern);
  if (s.universe && !fp.universe2d && !fp.universe3d)
    throw ConfigError("config: fault_model '" + s.fault_model +
                      "' needs a fault_pattern with a universe builder "
                      "(none | uniform | uniform_links), got '" +
                      s.fault_pattern + "'");
  s.fault_rate = cfg.get_double("fault_rate");
  s.fault_rates = cfg.get_double_list("fault_rates");
  if (s.fault_rates.empty()) s.fault_rates = {s.fault_rate};
  s.link_fault_rate = cfg.get_double("link_fault_rate");
  s.router_fault_rate = cfg.get_double("router_fault_rate");
  s.mtbf = cfg.get_double("mtbf");
  s.mttr = cfg.get_double("mttr");
  s.fault_count = cfg.get_int("fault_count");
  s.fault_clusters = cfg.get_int("fault_clusters");
  s.clear_border = cfg.get_bool("clear_border");
  s.fault_envs = cfg.get_string_list("fault_envs");
  for (const std::string& env : s.fault_envs)
    if (env != "none" && env != "faults")
      throw ConfigError("config: fault_envs entries must be 'none' or "
                        "'faults', got '" +
                        env + "'");

  s.policy = cfg.get_string("policy");
  s.policy_list = cfg.get_string_list("policies");
  if (s.policy_list.empty()) s.policy_list = {s.policy};
  for (const std::string& p : s.policy_list) (void)policies().get(p);
  s.route_policy = parse_route_policy(cfg.get_string("route_policy"));
  s.block_fill = cfg.get_string("block_fill");
  if (s.block_fill == "safety") {
    s.block_fill_kind = sim::wh::BlockFill::Safety;
  } else if (s.block_fill == "bbox") {
    s.block_fill_kind = sim::wh::BlockFill::BoundingBox;
  } else {
    throw ConfigError("config: block_fill must be 'safety' or 'bbox', got '" +
                      s.block_fill + "'");
  }
  s.traffic = cfg.get_string_list("traffic");
  if (s.traffic.empty())
    throw ConfigError("config: 'traffic' must name at least one pattern");
  for (const std::string& t : s.traffic) (void)traffic_patterns().get(t);

  s.rates = cfg.get_double_list("rates");
  if (s.rates.empty())
    throw ConfigError("config: 'rates' must hold at least one rate");
  s.wh.vcs_per_class = cfg.get_int("vcs_per_class");
  s.wh.buffer_depth = cfg.get_int("buffer_depth");
  s.wh.packet_size = cfg.get_int("packet_size");
  s.wh.threads = cfg.get_int("threads");
  s.load.warmup = cfg.get_int("warmup");
  s.load.measure = cfg.get_int("measure");
  s.load.drain = cfg.get_int("drain");
  s.load.stall = cfg.get_int("stall");
  const std::string warmup_mode = cfg.get_string("warmup_mode");
  if (warmup_mode == "fixed") {
    s.load.warmup_mode = sim::wh::WarmupMode::Fixed;
  } else if (warmup_mode == "converge") {
    s.load.warmup_mode = sim::wh::WarmupMode::Converge;
  } else {
    throw ConfigError(
        "config: warmup_mode must be 'fixed' or 'converge', got '" +
        warmup_mode + "'");
  }
  s.load.sample_period = cfg.get_int("sample_period");
  s.load.convergence = cfg.get_double("convergence");
  s.hotspot_fraction = cfg.get_double("hotspot_fraction");
  s.hotspot_count = cfg.get_int("hotspot_count");

  s.churn = cfg.get_double_list("churn");
  if (s.churn.empty()) s.churn = {2.0};
  s.churn_horizon = cfg.get_uint64("churn_horizon");
  s.repair_min = cfg.get_int("repair_min");
  s.repair_max = cfg.get_int("repair_max");

  s.readers = cfg.get_int("readers");
  s.queries = cfg.get_int("queries");
  s.query_mix = cfg.get_string("query_mix");
  s.target_qps = cfg.get_double("target_qps");
  s.event_interval_us = cfg.get_int("event_interval_us");

  s.trials = cfg.get_int("trials");
  s.pairs = cfg.get_int("pairs");
  s.min_distance = cfg.get_int("min_distance");
  return s;
}

std::string fmt_ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string fmt_pct(uint64_t part_ns, uint64_t whole_ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                whole_ns != 0
                    ? 100.0 * static_cast<double>(part_ns) /
                          static_cast<double>(whole_ns)
                    : 0.0);
  return buf;
}

// The profile table. "calls" counts are deterministic across thread
// counts; the ms/% columns are wall-clock and carry timing tokens so
// bench_trend reports them informationally. Kernel times are lane-summed
// (CPU-time-like), so they can exceed the enclosing phase's wall time.
void append_profile(const obs::Profiler& prof, RunReport& report) {
  using obs::Phase;
  const uint64_t run_ns = prof.total_ns(Phase::Run);
  report.text("\n## profile\n\n");
  util::Table& t = report.table(
      "profile", {"phase", "under", "calls", "total ms", "% time"});
  const auto parent_row = [&](int parent) {
    for (int child = 0; child < obs::kPhaseCount; ++child) {
      const Phase p = static_cast<Phase>(child);
      const uint64_t calls = prof.edge_calls(parent, p);
      if (calls == 0) continue;
      const uint64_t ns = prof.edge_ns(parent, p);
      t.add_row({obs::phase_name(p),
                 parent == obs::kPhaseRoot
                     ? "-"
                     : obs::phase_name(static_cast<Phase>(parent)),
                 std::to_string(calls), fmt_ms(ns), fmt_pct(ns, run_ns)});
    }
  };
  parent_row(obs::kPhaseRoot);
  for (int parent = 0; parent < obs::kPhaseCount; ++parent)
    parent_row(parent);

  uint64_t tick_ns = 0;
  for (const Phase p : {Phase::TickWires, Phase::TickHeads, Phase::TickAlloc,
                        Phase::TickTraverse, Phase::TickCommit})
    tick_ns += prof.total_ns(p);
  const uint64_t denom = tick_ns != 0 ? tick_ns : run_ns;
  const char* denom_name = tick_ns != 0 ? "tick" : "run";
  std::vector<std::pair<uint64_t, Phase>> kernels;
  for (const Phase p :
       {Phase::KernelSafeReach, Phase::KernelFlood, Phase::KernelLabelFixpoint,
        Phase::KernelCacheBuild})
    if (prof.total_calls(p) != 0) kernels.emplace_back(prof.total_ns(p), p);
  std::sort(kernels.begin(), kernels.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (!kernels.empty()) {
    std::string line = "top kernels: ";
    for (size_t i = 0; i < kernels.size() && i < 2; ++i) {
      if (i != 0) line += ", ";
      line += std::string(obs::phase_name(kernels[i].second)) + " " +
              fmt_pct(kernels[i].first, denom) + "%";
    }
    line += std::string(" of ") + denom_name +
            " time (lane-summed, may exceed 100%)\n";
    report.text(std::move(line));
  }
}

}  // namespace

Json metrics_to_json(const obs::MetricRegistry& reg) {
  Json o = Json::object();
  o.set("schema", Json::string(kMetricsSchema));
  Json counters = Json::object();
  for (const auto& [k, v] : reg.counters()) counters.set(k, Json::number(v));
  o.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [k, v] : reg.gauges()) gauges.set(k, Json::number(v));
  o.set("gauges", std::move(gauges));
  Json hists = Json::object();
  for (const auto& [k, h] : reg.histograms()) {
    Json jh = Json::object();
    jh.set("count", Json::number(h.count));
    jh.set("sum", Json::number(h.sum));
    jh.set("min", Json::number(h.min));
    jh.set("max", Json::number(h.max));
    hists.set(k, std::move(jh));
  }
  o.set("histograms", std::move(hists));
  return o;
}

Experiment::Experiment(Configuration cfg) : cfg_(std::move(cfg)) {
  register_builtins();
  if (cfg_.has_sweeps())
    throw ConfigError(
        "config: sweep.* axes declare a campaign grid — run it through "
        "api::Campaign (mcc_run does so automatically); Experiment takes a "
        "single point");
  scenario_ = build_scenario(cfg_);
}

RunReport Experiment::run() {
  RunReport report(scenario_.name, scenario_.driver, scenario_.seed);
  report.set_config_echo(cfg_.echo());
  const DriverFn& driver = drivers().get(scenario_.driver);

  obs::RunObs ro;
  ro.metrics_on = scenario_.metrics;
  ro.profile_on = scenario_.profile;
  if (!scenario_.trace_json.empty())
    ro.trace = std::make_unique<obs::TraceSink>();
  if (!scenario_.flit_trace.empty())
    ro.flit = std::make_unique<obs::FlitTrace>();
  {
    obs::ScopedRunObs scoped(ro);
    obs::ProfScope prof(obs::Phase::Run);
    driver(scenario_, report);
  }
  if (scenario_.profile) append_profile(ro.prof, report);
  if (scenario_.metrics) report.set_obs(metrics_to_json(ro.registry));
  if (ro.trace && !ro.trace->write(scenario_.trace_json))
    throw ConfigError("config: cannot write '" + scenario_.trace_json + "'");
  if (ro.flit && !ro.flit->write(scenario_.flit_trace))
    throw ConfigError("config: cannot write '" + scenario_.flit_trace + "'");

  const std::string json_path = cfg_.get_string("report_json");
  if (!json_path.empty()) {
    const Json doc = report.to_json();
    // A schema violation here is an API bug, not a user error; surface it
    // loudly rather than writing an invalid file.
    const auto problems = validate_report_json(doc);
    if (!problems.empty())
      throw std::logic_error("RunReport JSON failed its own schema: " +
                             problems.front());
    std::ofstream f(json_path);
    if (!f) throw ConfigError("config: cannot write '" + json_path + "'");
    f << doc.dump_pretty();
  }

  const std::string bench_name = cfg_.get_string("bench_json");
  if (!bench_name.empty())
    RunReport::write_bench_json("BENCH_" + bench_name + ".json", bench_name,
                                {&report});
  return report;
}

}  // namespace mcc::api
