// The experiment façade: one front door over the static, dynamic, baseline
// and wormhole stacks.
//
//   api::Configuration cfg;
//   cfg.load_file("configs/e11_wormhole.cfg");
//   cfg.apply_overrides({"smoke=1"});
//   api::RunReport report = api::Experiment(std::move(cfg)).run();
//   report.render(std::cout);
//
// An Experiment resolves the config against the axis registries —
//   driver         route_quality | wormhole_load | wormhole_churn |
//                  event_cost | protocol_cost | region_atlas | route_demo |
//                  reliability | ...
//   fault_model    static | dynamic | link | transient | composite
//   fault_pattern  none | uniform | uniform_links | clustered | exact |
//                  figure5 | staircase_up | staircase_down | lshape
//   policy         oracle | model | labels_only | fault_block | dor
//   traffic        uniform | transpose | bit_complement | hotspot
// — owns seeds and smoke resolution, and returns the driver's RunReport.
// Unknown names and unsupported combinations are hard ConfigErrors; new
// scenario combinations within the registered axes need no new C++ at all,
// and a new axis value is one Registry::add() call (docs/api.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/registry.h"
#include "api/run_report.h"
#include "core/model.h"
#include "fault/universe.h"
#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "runtime/dynamic_model.h"
#include "sim/wormhole/baseline_routing.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/routing.h"
#include "util/rng.h"

namespace mcc::obs {
class MetricRegistry;
}

namespace mcc::api {

struct Scenario;

/// A driver fills the report from a resolved scenario. Throw ConfigError
/// for unsupported combinations; call report.fail() for runtime failures
/// (deadlock, violations) so mcc_run exits non-zero.
using DriverFn = std::function<void(const Scenario&, RunReport&)>;

/// Fault model axis: whether the scenario maintains a dynamic runtime,
/// and (E14) whether faults live in a three-class FaultUniverse rather
/// than the node-only FaultSet. Universe models pick their stochastic
/// processes with the lifetime flags: `hard` enables the Poisson
/// arrival/repair churn, `transient` the MTBF/MTTR flip-and-recover.
struct FaultModelSpec {
  bool dynamic = false;
  bool universe = false;
  bool hard = true;
  bool transient = false;
};

/// Fault injection axis. A pattern unsupported in some dimensionality
/// leaves that builder empty (using it is a ConfigError). The universe
/// builders serve the E14 fault models (link | transient | composite);
/// patterns without them are node-only.
struct FaultPatternSpec {
  std::function<mesh::FaultSet2D(const mesh::Mesh2D&, const Scenario&,
                                 util::Rng&,
                                 const std::vector<mesh::Coord2>&)>
      fill2d;
  std::function<mesh::FaultSet3D(const mesh::Mesh3D&, const Scenario&,
                                 util::Rng&,
                                 const std::vector<mesh::Coord3>&)>
      fill3d;
  std::function<fault::FaultUniverse2D(const mesh::Mesh2D&, const Scenario&,
                                       util::Rng&)>
      universe2d;
  std::function<fault::FaultUniverse3D(const mesh::Mesh3D&, const Scenario&,
                                       util::Rng&)>
      universe3d;
};

/// Guidance policy axis. Each stack that can serve the policy provides a
/// builder; an empty builder means the combination is a ConfigError.
struct PolicySpec {
  /// Core path router used by route_quality/route_demo (oracle, model,
  /// labels_only). Policies routed outside the MCC core (fault_block, dor)
  /// leave this empty and are handled by their own route_quality branch.
  std::optional<core::RouterKind> router_kind2d;
  std::optional<core::RouterKind> router_kind3d;

  /// Static wormhole routing functions.
  std::function<std::unique_ptr<sim::wh::RoutingFunction2D>(
      const Scenario&, const mesh::Mesh2D&, const mesh::FaultSet2D&)>
      wormhole2d;
  std::function<std::unique_ptr<sim::wh::RoutingFunction3D>(
      const Scenario&, const mesh::Mesh3D&, const mesh::FaultSet3D&)>
      wormhole3d;

  /// Churn wormhole routing functions over the dynamic runtime.
  std::function<std::unique_ptr<sim::wh::RoutingFunction2D>(
      const Scenario&, runtime::DynamicModel2D&)>
      churn2d;
  std::function<std::unique_ptr<sim::wh::RoutingFunction3D>(
      const Scenario&, runtime::DynamicModel3D&)>
      churn3d;
};

struct TrafficSpec {
  sim::wh::Pattern pattern;
};

// The global axis registries. register_builtins() populates them once
// (idempotent; Experiment calls it, tools and tests may too).
Registry<DriverFn>& drivers();
Registry<FaultModelSpec>& fault_models();
Registry<FaultPatternSpec>& fault_patterns();
Registry<PolicySpec>& policies();
Registry<TrafficSpec>& traffic_patterns();
void register_builtins();

/// Serializes a MetricRegistry snapshot as the mcc.metrics/1 "obs" block
/// (counters exact under bench_trend, gauges/histograms informational) —
/// shared by Experiment::run and the dist scheduler report.
Json metrics_to_json(const obs::MetricRegistry& registry);

/// The resolved, typed view of a Configuration that drivers consume.
struct Scenario {
  const Configuration* cfg = nullptr;

  std::string name, driver;
  int dims = 3;
  int k = 16, nx = 0, ny = 0, nz = 0;   // nx/ny/nz of 0 mean k
  std::vector<int> ks;                  // size sweep (>= 1 entry)
  bool ks_set = false;                  // ks came from the config
  uint64_t seed = 1, seed2 = 0, fault_seed = 0;
  bool smoke = false, guidance_cache = true;
  bool render = false, detail = false, diversity = false;

  // Observability (src/obs; docs/observability.md). All default off — an
  // uninstrumented run emits byte-identical reports to one built before
  // the obs layer existed.
  bool metrics = false;    // publish the mcc.metrics/1 "obs" block
  bool profile = false;    // hierarchical phase/kernel profile table
  std::string trace_json;  // Chrome trace-event JSON output path
  std::string flit_trace;  // flit-lifecycle NDJSON output path

  std::string fault_model, fault_pattern;
  bool dynamic = false;  // resolved fault_model
  // Resolved universe flags (E14 fault models; docs/faults.md).
  bool universe = false;
  bool hard_faults = true;
  bool transient_faults = false;
  double fault_rate = 0;
  std::vector<double> fault_rates;  // sweep (>= 1 entry)
  // Three-class rates: link/router Bernoulli probabilities (0 falls back
  // to node-only behavior) and the transient process's MTBF/MTTR.
  double link_fault_rate = 0, router_fault_rate = 0;
  double mtbf = 0, mttr = 200;
  int fault_count = 0, fault_clusters = 1;
  bool clear_border = false;
  std::vector<std::string> fault_envs;

  std::string policy;
  std::vector<std::string> policy_list;  // sweep (>= 1 entry)
  core::RoutePolicy route_policy = core::RoutePolicy::Random;
  std::string block_fill;  // safety | bbox (raw text)
  sim::wh::BlockFill block_fill_kind = sim::wh::BlockFill::Safety;
  std::vector<std::string> traffic;

  std::vector<double> rates;
  sim::wh::Config wh;
  sim::wh::LoadPoint load;  // rate filled per point by drivers
  double hotspot_fraction = 0.5;
  int hotspot_count = 2;

  std::vector<double> churn;  // strikes per 1000 cycles
  uint64_t churn_horizon = 0;
  int repair_min = 100, repair_max = 1000;

  // serve_load (Guidance-as-a-service harness).
  int readers = 4, queries = 2000;
  std::string query_mix = "mixed";
  double target_qps = 0;
  int event_interval_us = 0;

  int trials = 25, pairs = 25, min_distance = 4;

  // Mesh shapes (k or the explicit overrides).
  mesh::Mesh2D mesh2() const;
  mesh::Mesh3D mesh3() const;
  mesh::Mesh2D mesh2(int edge) const;  // sweep helper: square of `edge`
  mesh::Mesh3D mesh3(int edge) const;

  // Fault injection through the fault_pattern registry.
  mesh::FaultSet2D make_faults2(
      const mesh::Mesh2D& m, util::Rng& rng,
      const std::vector<mesh::Coord2>& protect = {}) const;
  mesh::FaultSet3D make_faults3(
      const mesh::Mesh3D& m, util::Rng& rng,
      const std::vector<mesh::Coord3>& protect = {}) const;

  // Three-class fault injection (E14 universe fault models); a pattern
  // without a universe builder is a ConfigError.
  fault::FaultUniverse2D make_universe2(const mesh::Mesh2D& m,
                                        util::Rng& rng) const;
  fault::FaultUniverse3D make_universe3(const mesh::Mesh3D& m,
                                        util::Rng& rng) const;

  /// The policy spec for `name` (checked at Scenario build time too).
  const PolicySpec& policy_spec(const std::string& name) const;
};

class Experiment {
 public:
  /// Resolves and validates the configuration (axis names, dims support).
  /// Throws ConfigError on any problem.
  explicit Experiment(Configuration cfg);

  const Scenario& scenario() const { return scenario_; }

  /// Runs the driver and returns its report (config echo and identity
  /// filled in). Honors report_json= by writing the JSON file after the
  /// run (validated against the schema first).
  RunReport run();

 private:
  Configuration cfg_;
  Scenario scenario_;
};

}  // namespace mcc::api
