#include "api/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace mcc::api {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = v;
  // Small non-negative integers round-trip exactly and read better as
  // integers ("4" not "4.0"); everything else keeps shortest-round-trip
  // double form.
  if (v >= 0 && v <= 9007199254740992.0 && std::floor(v) == v) {
    j.integral_ = true;
    j.u64_ = static_cast<uint64_t>(v);
  }
  return j;
}

Json Json::number(uint64_t v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = static_cast<double>(v);
  j.u64_ = v;
  j.integral_ = true;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

void Json::set(const std::string& key, Json v) {
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  std::string pad, close_pad;
  if (indent > 0) {
    pad.push_back('\n');
    pad.append(static_cast<size_t>(indent) * (static_cast<size_t>(depth) + 1),
               ' ');
    close_pad.push_back('\n');
    close_pad.append(static_cast<size_t>(indent) * static_cast<size_t>(depth),
                     ' ');
  }
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: {
      if (integral_) {
        char buf[24];
        const auto r = std::to_chars(buf, buf + sizeof buf, u64_);
        out.append(buf, r.ptr);
      } else if (std::isfinite(num_)) {
        char buf[48];
        const auto r = std::to_chars(buf, buf + sizeof buf, num_);
        out.append(buf, r.ptr);
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Type::String: escape_into(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        arr_[i].write(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        escape_into(out, obj_[i].first);
        out += ':';
        if (indent > 0) out += ' ';
        obj_[i].second.write(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)

namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty())
      error = why + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text.compare(pos, n, lit) != 0) return fail("invalid literal");
    pos += n;
    return true;
  }

  /// Reads 4 hex digits at pos into `v`.
  bool hex4(unsigned& v) {
    if (pos + 4 > text.size()) return fail("short \\u escape");
    v = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text[pos++];
      v <<= 4;
      if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"')
      return fail("expected string");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned v = 0;
            if (!hex4(v)) return false;
            // Surrogate pair -> one supplementary-plane codepoint.
            uint32_t cp = v;
            if (v >= 0xD800 && v <= 0xDBFF) {
              if (text.compare(pos, 2, "\\u") != 0)
                return fail("lone high surrogate");
              pos += 2;
              unsigned lo = 0;
              if (!hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("bad low surrogate");
              cp = 0x10000 + ((v - 0xD800) << 10) + (lo - 0xDC00);
            } else if (v >= 0xDC00 && v <= 0xDFFF) {
              return fail("lone low surrogate");
            }
            // UTF-8 encode.
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else if (cp < 0x10000) {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xF0 | (cp >> 18));
              out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Json::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Json::boolean(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json::string(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json item;
        if (!parse_value(item)) return false;
        out.push_back(std::move(item));
        skip_ws();
        if (pos >= text.size()) return fail("unterminated array");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos >= text.size() || text[pos] != ':')
          return fail("expected ':'");
        ++pos;
        Json value;
        if (!parse_value(value)) return false;
        out.set(key, std::move(value));
        skip_ws();
        if (pos >= text.size()) return fail("unterminated object");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number.
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool fractional = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      if (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')
        fractional = true;
      ++pos;
    }
    if (pos == start) return fail("unexpected character");
    const std::string tok = text.substr(start, pos - start);
    if (!fractional && tok[0] != '-') {
      uint64_t u = 0;
      const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
        out = Json::number(u);
        return true;
      }
    }
    double d = 0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc() || r.ptr != tok.data() + tok.size())
      return fail("malformed number '" + tok + "'");
    Json j = Json::number(d);
    out = std::move(j);
    return true;
  }
};

}  // namespace

Json Json::parse(const std::string& text, std::string& error) {
  Parser p{text, 0, std::string()};
  Json out;
  if (!p.parse_value(out)) {
    error = p.error;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    error = "trailing characters at offset " + std::to_string(p.pos);
    return Json();
  }
  error.clear();
  return out;
}

}  // namespace mcc::api
