// Minimal JSON value used by the experiment API: RunReport serialization,
// the mcc_run --validate schema check, and the round-trip tests. Objects
// preserve insertion order so emitted reports are stable byte-for-byte
// given the same inputs (the differential tests depend on it). This is not
// a general-purpose JSON library — it supports exactly what the report
// schema needs (\uXXXX escapes, surrogate pairs included, decode to
// UTF-8 on parse; no comments).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mcc::api {

class Json {
 public:
  enum class Type : uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  static Json boolean(bool b);
  static Json number(double v);
  static Json number(uint64_t v);
  static Json number(int v) { return number(static_cast<double>(v)); }
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  /// Exact when the value was built from / parsed as a non-negative
  /// integer (seeds are 64-bit; doubles only hold 53 bits).
  uint64_t as_uint64() const { return u64_; }
  bool is_integral() const { return integral_; }
  const std::string& as_string() const { return str_; }

  // Array access/building.
  const std::vector<Json>& items() const { return arr_; }
  void push_back(Json v) { arr_.push_back(std::move(v)); }

  // Object access/building (insertion-ordered; set replaces in place).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }
  void set(const std::string& key, Json v);
  /// nullptr when absent.
  const Json* find(const std::string& key) const;

  /// Serializes compactly (no whitespace) with sorted? No — insertion
  /// order, which the builders keep schema-stable.
  std::string dump() const;
  /// Pretty form for humans (2-space indent).
  std::string dump_pretty() const;

  /// Parses `text`; on failure returns null and sets `error` (position +
  /// reason). An empty error string signals success.
  static Json parse(const std::string& text, std::string& error);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  uint64_t u64_ = 0;       // exact value when integral_
  bool integral_ = false;  // emitted without decimal point
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace mcc::api
