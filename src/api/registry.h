// Name -> factory registries for the experiment axes (driver, guidance
// policy, traffic pattern, fault model, fault pattern). Duplicate names are
// rejected hard (a second registration of "model" would silently shadow
// the first otherwise); lookups of unknown names throw a ConfigError that
// lists what IS registered, so a typo in a config file reads like a help
// message.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "api/config.h"

namespace mcc::api {

template <class Value>
class Registry {
 public:
  explicit Registry(std::string axis) : axis_(std::move(axis)) {}

  /// `note` is a one-line supported-combinations hint (which drivers /
  /// policies / keys the entry works with) printed under the help line by
  /// mcc_run --list; empty means the entry works everywhere its axis does.
  void add(const std::string& name, Value value, std::string help = "",
           std::string note = "") {
    for (const auto& e : entries_)
      if (e.name == name)
        throw ConfigError("registry '" + axis_ + "': duplicate name '" +
                          name + "'");
    entries_.push_back(
        {name, std::move(value), std::move(help), std::move(note)});
  }

  bool contains(const std::string& name) const {
    for (const auto& e : entries_)
      if (e.name == name) return true;
    return false;
  }

  const Value& get(const std::string& name) const {
    for (const auto& e : entries_)
      if (e.name == name) return e.value;
    std::string known;
    for (const auto& e : entries_) {
      if (!known.empty()) known += " | ";
      known += e.name;
    }
    throw ConfigError("config: unknown " + axis_ + " '" + name +
                      "' (registered: " + known + ")");
  }

  struct Entry {
    std::string name;
    Value value;
    std::string help;
    std::string note;  // supported-combinations hint (may be empty)
  };
  const std::vector<Entry>& entries() const { return entries_; }
  const std::string& axis() const { return axis_; }

 private:
  std::string axis_;
  std::vector<Entry> entries_;
};

}  // namespace mcc::api
