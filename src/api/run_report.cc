#include "api/run_report.h"

#include <fstream>
#include <ostream>

#include "api/config.h"

namespace mcc::api {

void RunReport::text(std::string t) {
  Block b;
  b.text = std::move(t);
  blocks_.push_back(std::move(b));
}

util::Table& RunReport::table(std::string title,
                              std::vector<std::string> headers) {
  Block b;
  b.table_index = static_cast<int>(tables_.size());
  blocks_.push_back(b);
  tables_.push_back({std::move(title), util::Table(std::move(headers))});
  return tables_.back().table;
}

void RunReport::metric(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

void RunReport::note(std::string n) { notes_.push_back(std::move(n)); }

void RunReport::fail(std::string why) {
  failed_ = true;
  if (failure_.empty()) failure_ = std::move(why);
}

void RunReport::render(std::ostream& os) const {
  for (const Block& b : blocks_) {
    if (b.table_index >= 0)
      tables_[static_cast<size_t>(b.table_index)].table.render(os);
    else
      os << b.text;
  }
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kRunReportSchema));
  doc.set("name", Json::string(name_));
  doc.set("driver", Json::string(driver_));
  doc.set("seed", Json::number(seed_));

  Json cfg = Json::object();
  for (const auto& [k, v] : config_) cfg.set(k, Json::string(v));
  doc.set("config", std::move(cfg));

  Json tables = Json::array();
  for (const TableBlock& tb : tables_) {
    Json jt = Json::object();
    jt.set("title", Json::string(tb.title));
    Json headers = Json::array();
    for (const std::string& h : tb.table.headers())
      headers.push_back(Json::string(h));
    jt.set("headers", std::move(headers));
    Json rows = Json::array();
    for (const auto& row : tb.table.rows()) {
      Json jr = Json::array();
      for (const std::string& cell : row) jr.push_back(Json::string(cell));
      rows.push_back(std::move(jr));
    }
    jt.set("rows", std::move(rows));
    tables.push_back(std::move(jt));
  }
  doc.set("tables", std::move(tables));

  Json metrics = Json::object();
  for (const auto& [k, v] : metrics_) metrics.set(k, Json::number(v));
  doc.set("metrics", std::move(metrics));

  Json notes = Json::array();
  for (const std::string& n : notes_) notes.push_back(Json::string(n));
  doc.set("notes", std::move(notes));

  doc.set("failed", Json::boolean(failed_));
  if (failed_) doc.set("failure", Json::string(failure_));
  return doc;
}

void RunReport::write_bench_json(const std::string& path,
                                 const std::string& name,
                                 const std::vector<const RunReport*>& runs) {
  Json doc = Json::object();
  doc.set("schema", Json::string(kBenchSchema));
  doc.set("name", Json::string(name));
  Json arr = Json::array();
  for (const RunReport* r : runs) arr.push_back(r->to_json());
  doc.set("runs", std::move(arr));
  std::ofstream f(path);
  if (!f)
    throw ConfigError("report: cannot write '" + path + "'");
  f << doc.dump_pretty();
}

// ---------------------------------------------------------------------------
// Schema validation

namespace {

void require(std::vector<std::string>& problems, bool ok, const char* what) {
  if (!ok) problems.push_back(what);
}

void validate_one_report(const Json& doc, std::vector<std::string>& problems,
                         const std::string& where) {
  auto miss = [&](const char* key) {
    problems.push_back(where + ": missing key '" + key + "'");
  };
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    miss("schema");
    return;
  }
  if (schema->as_string() != kRunReportSchema) {
    problems.push_back(where + ": unexpected schema '" +
                       schema->as_string() + "'");
    return;
  }
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string()) miss("name");
  const Json* driver = doc.find("driver");
  if (driver == nullptr || !driver->is_string()) miss("driver");
  const Json* seed = doc.find("seed");
  if (seed == nullptr || !seed->is_number()) miss("seed");
  const Json* cfg = doc.find("config");
  if (cfg == nullptr || !cfg->is_object()) {
    miss("config");
  } else {
    for (const auto& [k, v] : cfg->members())
      require(problems, v.is_string(),
              "config values must be strings (resolved text form)");
  }
  const Json* tables = doc.find("tables");
  if (tables == nullptr || !tables->is_array()) {
    miss("tables");
  } else {
    for (const Json& t : tables->items()) {
      if (!t.is_object()) {
        problems.push_back(where + ": table entries must be objects");
        continue;
      }
      const Json* headers = t.find("headers");
      const Json* rows = t.find("rows");
      const Json* title = t.find("title");
      require(problems, title != nullptr && title->is_string(),
              "table.title must be a string");
      if (headers == nullptr || !headers->is_array() || rows == nullptr ||
          !rows->is_array()) {
        problems.push_back(where + ": table needs headers[] and rows[]");
        continue;
      }
      const size_t width = headers->items().size();
      for (const Json& row : rows->items()) {
        require(problems, row.is_array() && row.items().size() == width,
                "table row width must match headers");
        if (!row.is_array()) continue;
        for (const Json& cell : row.items())
          require(problems, cell.is_string(), "table cells must be strings");
      }
    }
  }
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    miss("metrics");
  } else {
    for (const auto& [k, v] : metrics->members())
      require(problems, v.is_number(), "metrics values must be numbers");
  }
  const Json* notes = doc.find("notes");
  if (notes == nullptr || !notes->is_array()) miss("notes");
  const Json* failed = doc.find("failed");
  if (failed == nullptr || !failed->is_bool()) miss("failed");
}

}  // namespace

std::vector<std::string> validate_report_json(const Json& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.push_back("document is not a JSON object");
    return problems;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    problems.push_back("missing string key 'schema'");
    return problems;
  }
  if (schema->as_string() == kBenchSchema) {
    const Json* name = doc.find("name");
    if (name == nullptr || !name->is_string())
      problems.push_back("bench: missing key 'name'");
    const Json* runs = doc.find("runs");
    if (runs == nullptr || !runs->is_array() || runs->items().empty()) {
      problems.push_back("bench: 'runs' must be a non-empty array");
      return problems;
    }
    int i = 0;
    for (const Json& run : runs->items()) {
      if (!run.is_object()) {
        problems.push_back("bench: run entries must be objects");
        continue;
      }
      validate_one_report(run, problems, "runs[" + std::to_string(i) + "]");
      ++i;
    }
    return problems;
  }
  validate_one_report(doc, problems, "report");
  return problems;
}

}  // namespace mcc::api
