#include "api/run_report.h"

#include <fstream>
#include <ostream>

#include "api/config.h"
#include "obs/obs.h"

namespace mcc::api {

namespace {

// Build provenance stamped into every report and bench envelope, so a
// trend-gate diff names the binary (git hash, compiler, flags) that
// produced each side. Comparators ignore it; the validator only requires
// it to be an object.
Json build_json() {
  const obs::BuildProvenance& bp = obs::build_provenance();
  Json b = Json::object();
  b.set("git", Json::string(bp.git_hash));
  b.set("compiler", Json::string(bp.compiler));
  b.set("flags", Json::string(bp.flags));
  b.set("build_type", Json::string(bp.build_type));
  b.set("hw_lanes", Json::number(static_cast<uint64_t>(bp.hw_lanes)));
  return b;
}

}  // namespace

void RunReport::text(std::string t) {
  Block b;
  b.text = std::move(t);
  blocks_.push_back(std::move(b));
}

util::Table& RunReport::table(std::string title,
                              std::vector<std::string> headers) {
  Block b;
  b.table_index = static_cast<int>(tables_.size());
  blocks_.push_back(b);
  tables_.push_back({std::move(title), util::Table(std::move(headers))});
  return tables_.back().table;
}

void RunReport::metric(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

void RunReport::note(std::string n) { notes_.push_back(std::move(n)); }

void RunReport::fail(std::string why) {
  failed_ = true;
  if (failure_.empty()) failure_ = std::move(why);
}

void RunReport::render(std::ostream& os) const {
  for (const Block& b : blocks_) {
    if (b.table_index >= 0)
      tables_[static_cast<size_t>(b.table_index)].table.render(os);
    else
      os << b.text;
  }
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kRunReportSchema));
  doc.set("name", Json::string(name_));
  doc.set("driver", Json::string(driver_));
  doc.set("seed", Json::number(seed_));
  doc.set("build", build_json());

  Json cfg = Json::object();
  for (const auto& [k, v] : config_) cfg.set(k, Json::string(v));
  doc.set("config", std::move(cfg));

  Json tables = Json::array();
  for (const TableBlock& tb : tables_) {
    Json jt = Json::object();
    jt.set("title", Json::string(tb.title));
    Json headers = Json::array();
    for (const std::string& h : tb.table.headers())
      headers.push_back(Json::string(h));
    jt.set("headers", std::move(headers));
    Json rows = Json::array();
    for (const auto& row : tb.table.rows()) {
      Json jr = Json::array();
      for (const std::string& cell : row) jr.push_back(Json::string(cell));
      rows.push_back(std::move(jr));
    }
    jt.set("rows", std::move(rows));
    tables.push_back(std::move(jt));
  }
  doc.set("tables", std::move(tables));

  Json metrics = Json::object();
  for (const auto& [k, v] : metrics_) metrics.set(k, Json::number(v));
  doc.set("metrics", std::move(metrics));

  Json notes = Json::array();
  for (const std::string& n : notes_) notes.push_back(Json::string(n));
  doc.set("notes", std::move(notes));

  if (obs_.is_object()) doc.set("obs", obs_);

  doc.set("failed", Json::boolean(failed_));
  if (failed_) doc.set("failure", Json::string(failure_));
  return doc;
}

void RunReport::write_bench_json(const std::string& path,
                                 const std::string& name,
                                 const std::vector<const RunReport*>& runs) {
  Json doc = Json::object();
  doc.set("schema", Json::string(kBenchSchema));
  doc.set("name", Json::string(name));
  doc.set("build", build_json());
  Json arr = Json::array();
  for (const RunReport* r : runs) arr.push_back(r->to_json());
  doc.set("runs", std::move(arr));
  std::ofstream f(path);
  if (!f)
    throw ConfigError("report: cannot write '" + path + "'");
  f << doc.dump_pretty();
}

// ---------------------------------------------------------------------------
// Schema validation

namespace {

void require(std::vector<std::string>& problems, bool ok, const char* what) {
  if (!ok) problems.push_back(what);
}

void validate_one_report(const Json& doc, std::vector<std::string>& problems,
                         const std::string& where) {
  auto miss = [&](const char* key) {
    problems.push_back(where + ": missing key '" + key + "'");
  };
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    miss("schema");
    return;
  }
  if (schema->as_string() != kRunReportSchema) {
    problems.push_back(where + ": unexpected schema '" +
                       schema->as_string() + "'");
    return;
  }
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string()) miss("name");
  const Json* driver = doc.find("driver");
  if (driver == nullptr || !driver->is_string()) miss("driver");
  const Json* seed = doc.find("seed");
  if (seed == nullptr || !seed->is_number()) miss("seed");
  const Json* cfg = doc.find("config");
  if (cfg == nullptr || !cfg->is_object()) {
    miss("config");
  } else {
    for (const auto& [k, v] : cfg->members())
      require(problems, v.is_string(),
              "config values must be strings (resolved text form)");
  }
  const Json* tables = doc.find("tables");
  if (tables == nullptr || !tables->is_array()) {
    miss("tables");
  } else {
    for (const Json& t : tables->items()) {
      if (!t.is_object()) {
        problems.push_back(where + ": table entries must be objects");
        continue;
      }
      const Json* headers = t.find("headers");
      const Json* rows = t.find("rows");
      const Json* title = t.find("title");
      require(problems, title != nullptr && title->is_string(),
              "table.title must be a string");
      if (headers == nullptr || !headers->is_array() || rows == nullptr ||
          !rows->is_array()) {
        problems.push_back(where + ": table needs headers[] and rows[]");
        continue;
      }
      const size_t width = headers->items().size();
      for (const Json& row : rows->items()) {
        require(problems, row.is_array() && row.items().size() == width,
                "table row width must match headers");
        if (!row.is_array()) continue;
        for (const Json& cell : row.items())
          require(problems, cell.is_string(), "table cells must be strings");
      }
    }
  }
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    miss("metrics");
  } else {
    for (const auto& [k, v] : metrics->members())
      require(problems, v.is_number(), "metrics values must be numbers");
  }
  const Json* notes = doc.find("notes");
  if (notes == nullptr || !notes->is_array()) miss("notes");
  const Json* failed = doc.find("failed");
  if (failed == nullptr || !failed->is_bool()) miss("failed");

  // Optional blocks: "build" (provenance, stamped unconditionally by new
  // binaries, absent from older documents) and "obs" (mcc.metrics/1,
  // present only when the run was launched with metrics=1).
  const Json* build = doc.find("build");
  if (build != nullptr && !build->is_object())
    problems.push_back(where + ": 'build' must be an object");
  const Json* obs = doc.find("obs");
  if (obs != nullptr) {
    if (!obs->is_object()) {
      problems.push_back(where + ": 'obs' must be an object");
      return;
    }
    const Json* oschema = obs->find("schema");
    if (oschema == nullptr || !oschema->is_string() ||
        oschema->as_string() != kMetricsSchema) {
      problems.push_back(where + ": obs.schema must be '" +
                         std::string(kMetricsSchema) + "'");
    }
    const Json* counters = obs->find("counters");
    if (counters == nullptr || !counters->is_object()) {
      problems.push_back(where + ": obs.counters must be an object");
    } else {
      for (const auto& [k, v] : counters->members()) {
        (void)k;
        require(problems, v.is_number() && v.is_integral(),
                "obs counters must be non-negative integers");
      }
    }
    const Json* gauges = obs->find("gauges");
    if (gauges == nullptr || !gauges->is_object()) {
      problems.push_back(where + ": obs.gauges must be an object");
    } else {
      for (const auto& [k, v] : gauges->members()) {
        (void)k;
        require(problems, v.is_number(), "obs gauges must be numbers");
      }
    }
    const Json* hists = obs->find("histograms");
    if (hists == nullptr || !hists->is_object()) {
      problems.push_back(where + ": obs.histograms must be an object");
    } else {
      for (const auto& [k, v] : hists->members()) {
        (void)k;
        if (!v.is_object()) {
          problems.push_back(where +
                             ": obs histogram entries must be objects");
          continue;
        }
        for (const char* field : {"count", "sum", "min", "max"}) {
          const Json* f = v.find(field);
          require(problems, f != nullptr && f->is_number(),
                  "obs histogram entries need numeric count/sum/min/max");
        }
      }
    }
  }
}

void validate_campaign(const Json& doc, std::vector<std::string>& problems) {
  const auto miss = [&](const char* key) {
    problems.push_back(std::string("campaign: missing key '") + key + "'");
  };
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string()) miss("name");
  const Json* seed = doc.find("seed");
  if (seed == nullptr || !seed->is_number()) miss("seed");
  const Json* cfg = doc.find("config");
  if (cfg == nullptr || !cfg->is_object()) {
    miss("config");
  } else {
    for (const auto& [k, v] : cfg->members()) {
      (void)k;
      require(problems, v.is_string(),
              "campaign: config values must be strings");
    }
  }
  const Json* axes = doc.find("axes");
  if (axes == nullptr || !axes->is_array()) {
    miss("axes");
  } else {
    for (const Json& axis : axes->items()) {
      if (!axis.is_object()) {
        problems.push_back("campaign: axes entries must be objects");
        continue;
      }
      const Json* label = axis.find("label");
      require(problems, label != nullptr && label->is_string(),
              "campaign: axis.label must be a string");
      const Json* keys = axis.find("keys");
      const Json* values = axis.find("values");
      if (keys == nullptr || !keys->is_array() || values == nullptr ||
          !values->is_array()) {
        problems.push_back("campaign: axis needs keys[] and values[]");
        continue;
      }
      for (const Json& row : values->items())
        require(problems,
                row.is_array() && row.items().size() == keys->items().size(),
                "campaign: axis value row width must match keys");
    }
  }
  const Json* count = doc.find("point_count");
  if (count == nullptr || !count->is_number()) {
    miss("point_count");
    return;
  }
  const uint64_t point_count = count->as_uint64();
  // point_count sizes allocations below and max_points= caps real
  // campaigns at 1e8 — anything bigger is a corrupt document, not a grid.
  if (point_count > 100000000) {
    problems.push_back("campaign: implausible point_count " +
                       std::to_string(point_count));
    return;
  }
  const Json* shard = doc.find("shard");
  const bool partial = shard != nullptr;
  if (partial)
    require(problems,
            shard->is_string() &&
                shard->as_string().find('/') != std::string::npos,
            "campaign: shard must be a string of the form i/N");
  const Json* failed = doc.find("failed");
  if (failed == nullptr || !failed->is_bool()) miss("failed");
  const Json* points = doc.find("points");
  if (points == nullptr || !points->is_array()) {
    miss("points");
    return;
  }
  // A sharded partial may legitimately hold fewer points than point_count
  // (even zero, when N exceeds the grid); a complete document holds every
  // index exactly once (a duplicate index means a point was silently
  // lost, even when the count happens to match).
  if (!partial && points->items().size() != point_count)
    problems.push_back("campaign: complete document must hold point_count "
                       "points");
  std::vector<bool> seen(point_count, false);
  int i = 0;
  for (const Json& pt : points->items()) {
    const std::string where = "points[" + std::to_string(i) + "]";
    if (!pt.is_object()) {
      problems.push_back("campaign: " + where + " must be an object");
      ++i;
      continue;
    }
    const Json* idx = pt.find("index");
    if (idx == nullptr || !idx->is_number()) {
      problems.push_back("campaign: " + where + " misses index");
    } else if (idx->as_uint64() >= point_count) {
      problems.push_back("campaign: " + where + " index out of range");
    } else if (seen[idx->as_uint64()]) {
      problems.push_back("campaign: " + where + " duplicates index " +
                         std::to_string(idx->as_uint64()));
    } else {
      seen[idx->as_uint64()] = true;
    }
    const Json* coords = pt.find("coords");
    if (coords == nullptr || !coords->is_object()) {
      problems.push_back("campaign: " + where + " misses coords{}");
    } else {
      for (const auto& [k, v] : coords->members()) {
        (void)k;
        require(problems, v.is_string(),
                "campaign: coords values must be strings");
      }
    }
    const Json* pseed = pt.find("seed");
    if (pseed == nullptr || !pseed->is_number())
      problems.push_back("campaign: " + where + " misses seed");
    const Json* pfailed = pt.find("failed");
    if (pfailed == nullptr || !pfailed->is_bool())
      problems.push_back("campaign: " + where + " misses failed");
    const Json* report = pt.find("report");
    if (report == nullptr || !report->is_object())
      problems.push_back("campaign: " + where + " misses report{}");
    else
      validate_one_report(*report, problems, where + ".report");
    ++i;
  }
}

}  // namespace

std::vector<std::string> validate_report_json(const Json& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.push_back("document is not a JSON object");
    return problems;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    problems.push_back("missing string key 'schema'");
    return problems;
  }
  if (schema->as_string() == kCampaignSchema) {
    validate_campaign(doc, problems);
    return problems;
  }
  if (schema->as_string() == kBenchSchema) {
    const Json* name = doc.find("name");
    if (name == nullptr || !name->is_string())
      problems.push_back("bench: missing key 'name'");
    const Json* runs = doc.find("runs");
    if (runs == nullptr || !runs->is_array() || runs->items().empty()) {
      problems.push_back("bench: 'runs' must be a non-empty array");
      return problems;
    }
    int i = 0;
    for (const Json& run : runs->items()) {
      if (!run.is_object()) {
        problems.push_back("bench: run entries must be objects");
        continue;
      }
      validate_one_report(run, problems, "runs[" + std::to_string(i) + "]");
      ++i;
    }
    return problems;
  }
  validate_one_report(doc, problems, "report");
  return problems;
}

}  // namespace mcc::api
