// RunReport: the single versioned result object every driver produces.
//
// A report is an ordered sequence of blocks — free text (headings,
// commentary; rendered verbatim so the rewired benches stay byte-identical
// with their pre-redesign output) and titled tables — plus flat scalar
// metrics. It serializes two ways:
//   * render(os)      — the human form (markdown headings + tables);
//   * to_json()       — schema "mcc.run_report/1": name, driver, seed,
//                       build provenance, config echo, tables
//                       (title/headers/rows), metrics, notes, an optional
//                       "obs" metrics block (mcc.metrics/1), failed.
// write_bench_json() wraps one or more reports in the "mcc.bench/1"
// envelope benches persist as BENCH_<name>.json, recording the perf
// trajectory machine-readably.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/json.h"
#include "util/table.h"

namespace mcc::api {

inline constexpr const char* kRunReportSchema = "mcc.run_report/1";
inline constexpr const char* kBenchSchema = "mcc.bench/1";
inline constexpr const char* kCampaignSchema = "mcc.campaign/1";
/// Schema tag of the "obs" block a metrics=1 run attaches to its report
/// (counters exact across thread counts, gauges/histograms informational).
inline constexpr const char* kMetricsSchema = "mcc.metrics/1";
/// Schema tag of the campaign progress-heartbeat NDJSON lines.
inline constexpr const char* kProgressSchema = "mcc.progress/1";
/// Schema tag of the streamed point-result journal's header line
/// (results_ndjson= / --resume); result lines are campaign point objects.
inline constexpr const char* kJournalSchema = "mcc.campaign.journal/1";
/// Schema tag of the coordinator/worker work-queue wire protocol
/// (docs/distributed.md).
inline constexpr const char* kDistSchema = "mcc.dist/1";

class RunReport {
 public:
  RunReport() = default;
  RunReport(std::string name, std::string driver, uint64_t seed)
      : name_(std::move(name)), driver_(std::move(driver)), seed_(seed) {}

  const std::string& name() const { return name_; }
  const std::string& driver() const { return driver_; }
  uint64_t seed() const { return seed_; }

  /// The resolved configuration echoed into the JSON (set by Experiment).
  void set_config_echo(std::vector<std::pair<std::string, std::string>> e) {
    config_ = std::move(e);
  }

  /// Appends free text, rendered verbatim (include your own newlines).
  void text(std::string t);

  /// Appends a titled table and returns it for row filling. `title` names
  /// the table in JSON; the human rendering shows only preceding text
  /// blocks, so add a heading with text() if one is wanted.
  util::Table& table(std::string title, std::vector<std::string> headers);

  /// Records a flat scalar metric (stable insertion order).
  void metric(const std::string& key, double value);

  /// Appends a short machine-readable note string.
  void note(std::string n);

  /// Attaches the mcc.metrics/1 "obs" block (built by Experiment from the
  /// run's MetricRegistry snapshot); serialized after notes when set.
  void set_obs(Json obs) { obs_ = std::move(obs); }

  /// Marks the run failed (deadlock/violation/...); mcc_run exits 1.
  void fail(std::string why);
  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }

  /// Tables in insertion order (differential tests read cells off these).
  /// Stored in a deque so the reference table() returns stays valid when
  /// later tables are added (drivers may build several side by side).
  struct TableBlock {
    std::string title;
    util::Table table;
  };
  const std::deque<TableBlock>& tables() const { return tables_; }

  void render(std::ostream& os) const;
  Json to_json() const;

  /// Writes {"schema":"mcc.bench/1","name":...,"runs":[...]} to `path`.
  static void write_bench_json(const std::string& path,
                               const std::string& name,
                               const std::vector<const RunReport*>& runs);

 private:
  struct Block {
    std::string text;    // used when table_index < 0
    int table_index = -1;
  };

  std::string name_;
  std::string driver_;
  uint64_t seed_ = 0;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Block> blocks_;
  std::deque<TableBlock> tables_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::string> notes_;
  Json obs_;  // mcc.metrics/1 block; Null when metrics are off
  bool failed_ = false;
  std::string failure_;
};

/// Structural schema check for a parsed report, bench or campaign JSON
/// document (mcc.run_report/1, mcc.bench/1, mcc.campaign/1 — complete or
/// sharded partial). Returns human-readable problems; empty means valid.
std::vector<std::string> validate_report_json(const Json& doc);

}  // namespace mcc::api
