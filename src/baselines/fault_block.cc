#include "baselines/fault_block.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace mcc::baselines {

using mesh::Coord2;
using mesh::Coord3;

namespace {

// Counts the distinct blocked dimensions around a healthy node.
template <class Mesh, class Coord>
int blocked_dims(const Mesh& mesh, const auto& unsafe, Coord c) {
  int dims = 0;
  int bit = 0;
  auto probe = [&](Coord n, int axis) {
    if (mesh.contains(n) && unsafe[mesh.index(n)]) bit |= 1 << axis;
  };
  if constexpr (requires { c.z; }) {
    probe({c.x + 1, c.y, c.z}, 0);
    probe({c.x - 1, c.y, c.z}, 0);
    probe({c.x, c.y + 1, c.z}, 1);
    probe({c.x, c.y - 1, c.z}, 1);
    probe({c.x, c.y, c.z + 1}, 2);
    probe({c.x, c.y, c.z - 1}, 2);
  } else {
    probe({c.x + 1, c.y}, 0);
    probe({c.x - 1, c.y}, 0);
    probe({c.x, c.y + 1}, 1);
    probe({c.x, c.y - 1}, 1);
  }
  for (int a = 0; a < 3; ++a)
    if (bit & (1 << a)) ++dims;
  return dims;
}

template <class Mesh, class Coord, class Grid>
int safety_fixpoint(const Mesh& mesh, Grid& unsafe) {
  int healthy_unsafe = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < mesh.node_count(); ++i) {
      if (unsafe[i]) continue;
      const Coord c = mesh.coord(i);
      if (blocked_dims(mesh, unsafe, c) >= 2) {
        unsafe[i] = 1;
        ++healthy_unsafe;
        changed = true;
      }
    }
  }
  return healthy_unsafe;
}

}  // namespace

BlockField2D safety_fill(const mesh::Mesh2D& mesh,
                         const mesh::FaultSet2D& faults) {
  util::Grid2<uint8_t> unsafe(mesh.nx(), mesh.ny(), uint8_t{0});
  for (int y = 0; y < mesh.ny(); ++y)
    for (int x = 0; x < mesh.nx(); ++x)
      if (faults.is_faulty({x, y})) unsafe.at(x, y) = 1;
  const int healthy = safety_fixpoint<mesh::Mesh2D, Coord2>(mesh, unsafe);
  return BlockField2D(std::move(unsafe), healthy);
}

BlockField3D safety_fill(const mesh::Mesh3D& mesh,
                         const mesh::FaultSet3D& faults) {
  util::Grid3<uint8_t> unsafe(mesh.nx(), mesh.ny(), mesh.nz(), uint8_t{0});
  for (int z = 0; z < mesh.nz(); ++z)
    for (int y = 0; y < mesh.ny(); ++y)
      for (int x = 0; x < mesh.nx(); ++x)
        if (faults.is_faulty({x, y, z})) unsafe.at(x, y, z) = 1;
  const int healthy = safety_fixpoint<mesh::Mesh3D, Coord3>(mesh, unsafe);
  return BlockField3D(std::move(unsafe), healthy);
}

namespace {

struct Box2 {
  int x0, x1, y0, y1;
  // Boxes merge when they overlap OR touch (adjacent faults of one
  // component start as touching unit boxes and must coalesce into the
  // component's bounding rectangle).
  bool intersects(const Box2& o) const {
    return x0 <= o.x1 + 1 && o.x0 <= x1 + 1 && y0 <= o.y1 + 1 &&
           o.y0 <= y1 + 1;
  }
  void merge(const Box2& o) {
    x0 = std::min(x0, o.x0);
    x1 = std::max(x1, o.x1);
    y0 = std::min(y0, o.y0);
    y1 = std::max(y1, o.y1);
  }
};

struct Box3 {
  int x0, x1, y0, y1, z0, z1;
  bool intersects(const Box3& o) const {
    return x0 <= o.x1 + 1 && o.x0 <= x1 + 1 && y0 <= o.y1 + 1 &&
           o.y0 <= y1 + 1 && z0 <= o.z1 + 1 && o.z0 <= z1 + 1;
  }
  void merge(const Box3& o) {
    x0 = std::min(x0, o.x0);
    x1 = std::max(x1, o.x1);
    y0 = std::min(y0, o.y0);
    y1 = std::max(y1, o.y1);
    z0 = std::min(z0, o.z0);
    z1 = std::max(z1, o.z1);
  }
};

template <class Box>
void coalesce(std::vector<Box>& boxes) {
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t i = 0; i < boxes.size() && !merged; ++i) {
      for (size_t j = i + 1; j < boxes.size() && !merged; ++j) {
        if (boxes[i].intersects(boxes[j])) {
          boxes[i].merge(boxes[j]);
          boxes.erase(boxes.begin() + static_cast<long>(j));
          merged = true;
        }
      }
    }
  }
}

}  // namespace

BlockField2D bounding_box_fill(const mesh::Mesh2D& mesh,
                               const mesh::FaultSet2D& faults) {
  std::vector<Box2> boxes;
  for (const Coord2 c : faults.faulty_nodes())
    boxes.push_back({c.x, c.x, c.y, c.y});
  coalesce(boxes);

  util::Grid2<uint8_t> unsafe(mesh.nx(), mesh.ny(), uint8_t{0});
  int healthy = 0;
  for (const Box2& b : boxes)
    for (int y = b.y0; y <= b.y1; ++y)
      for (int x = b.x0; x <= b.x1; ++x) {
        if (!unsafe.at(x, y)) {
          unsafe.at(x, y) = 1;
          if (!faults.is_faulty({x, y})) ++healthy;
        }
      }
  return BlockField2D(std::move(unsafe), healthy);
}

BlockField3D bounding_box_fill(const mesh::Mesh3D& mesh,
                               const mesh::FaultSet3D& faults) {
  std::vector<Box3> boxes;
  for (const Coord3 c : faults.faulty_nodes())
    boxes.push_back({c.x, c.x, c.y, c.y, c.z, c.z});
  coalesce(boxes);

  util::Grid3<uint8_t> unsafe(mesh.nx(), mesh.ny(), mesh.nz(), uint8_t{0});
  int healthy = 0;
  for (const Box3& b : boxes)
    for (int z = b.z0; z <= b.z1; ++z)
      for (int y = b.y0; y <= b.y1; ++y)
        for (int x = b.x0; x <= b.x1; ++x) {
          if (!unsafe.at(x, y, z)) {
            unsafe.at(x, y, z) = 1;
            if (!faults.is_faulty({x, y, z})) ++healthy;
          }
        }
  return BlockField3D(std::move(unsafe), healthy);
}

bool block_feasible(const mesh::Mesh2D& mesh, const BlockField2D& blocks,
                    Coord2 s, Coord2 d) {
  (void)mesh;
  const int sx = std::min(s.x, d.x), dx = std::max(s.x, d.x);
  const int sy = std::min(s.y, d.y), dy = std::max(s.y, d.y);
  const Coord2 lo{sx, sy};
  util::Grid2<uint8_t> reach(dx - sx + 1, dy - sy + 1, uint8_t{0});
  // Canonicalize by flipping: walk from the low corner toward the high one
  // in the (sign-adjusted) monotone DAG. Using physical coordinates with
  // per-axis step signs keeps this flip-free.
  const int step_x = s.x <= d.x ? 1 : -1;
  const int step_y = s.y <= d.y ? 1 : -1;
  (void)lo;
  auto idx = [&](Coord2 c) {
    return std::pair{std::abs(c.x - s.x), std::abs(c.y - s.y)};
  };
  if (blocks.unsafe(s) || blocks.unsafe(d)) return false;
  std::deque<Coord2> work{s};
  reach.at(0, 0) = 1;
  while (!work.empty()) {
    const Coord2 c = work.front();
    work.pop_front();
    if (c == d) return true;
    const Coord2 nexts[2] = {{c.x + step_x, c.y}, {c.x, c.y + step_y}};
    for (const Coord2 n : nexts) {
      if (std::abs(n.x - s.x) > std::abs(d.x - s.x) ||
          std::abs(n.y - s.y) > std::abs(d.y - s.y))
        continue;
      const auto [ix, iy] = idx(n);
      if (reach.at(ix, iy) || blocks.unsafe(n)) continue;
      reach.at(ix, iy) = 1;
      work.push_back(n);
    }
  }
  return false;
}

bool block_feasible(const mesh::Mesh3D& mesh, const BlockField3D& blocks,
                    Coord3 s, Coord3 d) {
  (void)mesh;
  util::Grid3<uint8_t> reach(std::abs(d.x - s.x) + 1, std::abs(d.y - s.y) + 1,
                             std::abs(d.z - s.z) + 1, uint8_t{0});
  const int step_x = s.x <= d.x ? 1 : -1;
  const int step_y = s.y <= d.y ? 1 : -1;
  const int step_z = s.z <= d.z ? 1 : -1;
  if (blocks.unsafe(s) || blocks.unsafe(d)) return false;
  std::deque<Coord3> work{s};
  reach.at(0, 0, 0) = 1;
  while (!work.empty()) {
    const Coord3 c = work.front();
    work.pop_front();
    if (c == d) return true;
    const Coord3 nexts[3] = {{c.x + step_x, c.y, c.z},
                             {c.x, c.y + step_y, c.z},
                             {c.x, c.y, c.z + step_z}};
    for (const Coord3 n : nexts) {
      if (std::abs(n.x - s.x) > std::abs(d.x - s.x) ||
          std::abs(n.y - s.y) > std::abs(d.y - s.y) ||
          std::abs(n.z - s.z) > std::abs(d.z - s.z))
        continue;
      const int ix = std::abs(n.x - s.x), iy = std::abs(n.y - s.y),
                iz = std::abs(n.z - s.z);
      if (reach.at(ix, iy, iz) || blocks.unsafe(n)) continue;
      reach.at(ix, iy, iz) = 1;
      work.push_back(n);
    }
  }
  return false;
}

}  // namespace mcc::baselines
