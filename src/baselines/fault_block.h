// Rectangular fault-block baselines — the "best existing known result" the
// paper compares against (its refs [2] Boppana–Chalasani, [8] Wu's extended
// safety levels, [9] Wu's 3-D routing).
//
// Two classic fills are provided:
//
//   * safety-rule fill: a healthy node with faulty-or-disabled neighbors in
//     two or more DIFFERENT dimensions becomes disabled; iterate to a
//     fixpoint. In 2-D the resulting regions are orthogonally convex
//     (rectangle-like); this is the standard fault-block construction used
//     by adaptive fault-tolerant routers.
//   * bounding-box fill: every connected faulty component is dilated to its
//     full bounding rectangle/cuboid, merging overlapping boxes until
//     disjoint. This is the most conservative (largest) classic model.
//
// Both mark strictly more healthy nodes unsafe than the MCC model
// (property-tested), which is the paper's headline comparison.
#pragma once

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::baselines {

/// Disabled-node field produced by a block fill.
class BlockField2D {
 public:
  /// `unsafe` marks faulty and disabled nodes.
  BlockField2D(util::Grid2<uint8_t> unsafe, int healthy_unsafe)
      : unsafe_(std::move(unsafe)), healthy_unsafe_(healthy_unsafe) {}

  bool unsafe(mesh::Coord2 c) const { return unsafe_.at(c.x, c.y) != 0; }
  int healthy_unsafe_count() const { return healthy_unsafe_; }

 private:
  util::Grid2<uint8_t> unsafe_;
  int healthy_unsafe_;
};

class BlockField3D {
 public:
  BlockField3D(util::Grid3<uint8_t> unsafe, int healthy_unsafe)
      : unsafe_(std::move(unsafe)), healthy_unsafe_(healthy_unsafe) {}

  bool unsafe(mesh::Coord3 c) const { return unsafe_.at(c.x, c.y, c.z) != 0; }
  int healthy_unsafe_count() const { return healthy_unsafe_; }

 private:
  util::Grid3<uint8_t> unsafe_;
  int healthy_unsafe_;
};

/// Safety-rule fill (two different dimensions blocked => disabled).
BlockField2D safety_fill(const mesh::Mesh2D& mesh,
                         const mesh::FaultSet2D& faults);
BlockField3D safety_fill(const mesh::Mesh3D& mesh,
                         const mesh::FaultSet3D& faults);

/// Bounding-box fill (components dilated to disjoint rectangles/cuboids).
BlockField2D bounding_box_fill(const mesh::Mesh2D& mesh,
                               const mesh::FaultSet2D& faults);
BlockField3D bounding_box_fill(const mesh::Mesh3D& mesh,
                               const mesh::FaultSet3D& faults);

/// Minimal-path existence through non-unsafe nodes of a block field
/// (monotone DAG reachability; endpoints must be inside the s-d box).
/// This is the fair success-rate comparator for the models (E3/E4).
bool block_feasible(const mesh::Mesh2D& mesh, const BlockField2D& blocks,
                    mesh::Coord2 s, mesh::Coord2 d);
bool block_feasible(const mesh::Mesh3D& mesh, const BlockField3D& blocks,
                    mesh::Coord3 s, mesh::Coord3 d);

}  // namespace mcc::baselines
