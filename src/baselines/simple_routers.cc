#include "baselines/simple_routers.h"

#include <array>
#include <cstdlib>

namespace mcc::baselines {

using mesh::Coord2;
using mesh::Coord3;

bool dimension_order_route(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults, Coord2 s,
                           Coord2 d) {
  (void)mesh;
  Coord2 u = s;
  if (faults.is_faulty(u)) return false;
  while (!(u == d)) {
    if (u.x != d.x)
      u.x += u.x < d.x ? 1 : -1;
    else
      u.y += u.y < d.y ? 1 : -1;
    if (faults.is_faulty(u)) return false;
  }
  return true;
}

bool dimension_order_route(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults, Coord3 s,
                           Coord3 d) {
  (void)mesh;
  Coord3 u = s;
  if (faults.is_faulty(u)) return false;
  while (!(u == d)) {
    if (u.x != d.x)
      u.x += u.x < d.x ? 1 : -1;
    else if (u.y != d.y)
      u.y += u.y < d.y ? 1 : -1;
    else
      u.z += u.z < d.z ? 1 : -1;
    if (faults.is_faulty(u)) return false;
  }
  return true;
}

bool greedy_route(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults,
                  Coord2 s, Coord2 d, util::Rng& rng) {
  (void)mesh;
  Coord2 u = s;
  if (faults.is_faulty(u)) return false;
  const int budget = manhattan(s, d);
  for (int hop = 0; hop < budget; ++hop) {
    std::array<Coord2, 2> open{};
    size_t n = 0;
    if (u.x != d.x) {
      const Coord2 nx{u.x + (u.x < d.x ? 1 : -1), u.y};
      if (!faults.is_faulty(nx)) open[n++] = nx;
    }
    if (u.y != d.y) {
      const Coord2 ny{u.x, u.y + (u.y < d.y ? 1 : -1)};
      if (!faults.is_faulty(ny)) open[n++] = ny;
    }
    if (n == 0) return false;
    u = open[rng.pick(n)];
  }
  return u == d;
}

bool greedy_route(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults,
                  Coord3 s, Coord3 d, util::Rng& rng) {
  (void)mesh;
  Coord3 u = s;
  if (faults.is_faulty(u)) return false;
  const int budget = manhattan(s, d);
  for (int hop = 0; hop < budget; ++hop) {
    std::array<Coord3, 3> open{};
    size_t n = 0;
    if (u.x != d.x) {
      const Coord3 nx{u.x + (u.x < d.x ? 1 : -1), u.y, u.z};
      if (!faults.is_faulty(nx)) open[n++] = nx;
    }
    if (u.y != d.y) {
      const Coord3 ny{u.x, u.y + (u.y < d.y ? 1 : -1), u.z};
      if (!faults.is_faulty(ny)) open[n++] = ny;
    }
    if (u.z != d.z) {
      const Coord3 nz{u.x, u.y, u.z + (u.z < d.z ? 1 : -1)};
      if (!faults.is_faulty(nz)) open[n++] = nz;
    }
    if (n == 0) return false;
    u = open[rng.pick(n)];
  }
  return u == d;
}

}  // namespace mcc::baselines
