// Naive routing baselines for the success-rate experiments (E3/E4).
//
//   * dimension-order (e-cube) routing: corrects X, then Y (then Z); has no
//     fault information and fails on the first blocked hop of its unique
//     path;
//   * local greedy: at each hop picks any preferred direction whose
//     neighbor is non-faulty (1-hop knowledge only, no labels); succeeds
//     only when luck keeps it out of dead ends.
//
// Both keep paths minimal (they never take backward hops), so "failure"
// means a delivered-minimal route was not found — the same criterion the
// model routers are scored by.
#pragma once

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "util/rng.h"

namespace mcc::baselines {

/// Returns true when the message reached d along the dimension-order path.
bool dimension_order_route(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults, mesh::Coord2 s,
                           mesh::Coord2 d);
bool dimension_order_route(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults, mesh::Coord3 s,
                           mesh::Coord3 d);

/// Greedy minimal routing with only neighbor-fault knowledge. `rng` breaks
/// ties among open preferred directions.
bool greedy_route(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults,
                  mesh::Coord2 s, mesh::Coord2 d, util::Rng& rng);
bool greedy_route(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults,
                  mesh::Coord3 s, mesh::Coord3 d, util::Rng& rng);

}  // namespace mcc::baselines
