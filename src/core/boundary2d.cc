#include "core/boundary2d.h"

#include <algorithm>

namespace mcc::core {

using mesh::Coord2;
using mesh::Dir2;

namespace {

// Relative turns. left(South)=East, right(South)=West, etc.
Dir2 left_of(Dir2 d) {
  switch (d) {
    case Dir2::PosX: return Dir2::PosY;  // heading East, left = North
    case Dir2::NegX: return Dir2::NegY;  // heading West, left = South
    case Dir2::PosY: return Dir2::NegX;  // heading North, left = West
    case Dir2::NegY: return Dir2::PosX;  // heading South, left = East
  }
  return d;
}
Dir2 right_of(Dir2 d) { return opposite(left_of(d)); }

}  // namespace

Boundary2D::Boundary2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                       const MccSet2D& mccs)
    : mesh_(mesh),
      labels_(labels),
      mccs_(mccs),
      records_(mesh.nx(), mesh.ny()) {
  y_walls_.reserve(mccs.regions().size());
  x_walls_.reserve(mccs.regions().size());
  for (const MccRegion2D& r : mccs.regions()) {
    y_walls_.push_back(build_wall(Dir2::PosX, r));
    x_walls_.push_back(build_wall(Dir2::PosY, r));
  }

  // Deposit records. The final chain is used for every node of the wall
  // (merged regions lie below/west of the earlier segments, so the extra
  // members never filter a legal move there; see header).
  for (size_t i = 0; i < mccs.regions().size(); ++i) {
    deposit_wall_records(static_cast<int>(i), Dir2::PosX, y_walls_[i]);
    deposit_wall_records(static_cast<int>(i), Dir2::PosY, x_walls_[i]);
  }
}

size_t Boundary2D::deposit_wall_records(int owner, Dir2 guard,
                                        const Wall2D& w) {
  if (!w.exists) return 0;
  const auto chain = std::make_shared<const std::vector<int>>(w.chain);
  size_t added = 0;
  for (const Coord2 c : w.path) {
    auto& recs = records_.at(c.x, c.y);
    if (recs.empty()) ++nodes_with_records_;
    recs.push_back({owner, guard, chain});
    ++record_count_;
    ++added;
  }
  return added;
}

size_t Boundary2D::remove_wall_records(int owner, Dir2 guard,
                                       const Wall2D& w) {
  // A deflecting walk may revisit nodes, so records of one wall are
  // removed by owner+guard match (unique per wall), not one-per-visit.
  size_t removed = 0;
  for (const Coord2 c : w.path) {
    auto& recs = records_.at(c.x, c.y);
    if (recs.empty()) continue;
    const size_t before = recs.size();
    recs.erase(std::remove_if(recs.begin(), recs.end(),
                              [&](const Record2D& r) {
                                return r.owner == owner && r.guard == guard;
                              }),
               recs.end());
    const size_t erased = before - recs.size();
    removed += erased;
    record_count_ -= erased;
    if (erased && recs.empty()) --nodes_with_records_;
  }
  return removed;
}

BoundaryUpdate Boundary2D::update(const std::vector<Coord2>& changed,
                                  const RegionUpdate& regions) {
  BoundaryUpdate up;
  y_walls_.resize(mccs_.regions().size());
  x_walls_.resize(mccs_.regions().size());
  const size_t n = y_walls_.size();

  // Rebuild triggers, evaluated against the PRE-update wall state:
  // dirty regions (removed or added), label changes within one step of a
  // wall's path, and walls that probed a dirty region.
  std::vector<uint8_t> dirty_region(n, 0);
  for (const int id : regions.removed)
    if (id < static_cast<int>(n)) dirty_region[id] = 1;
  for (const int id : regions.added) dirty_region[id] = 1;

  // redo[i] bit 0: Y wall, bit 1: X wall.
  std::vector<uint8_t> redo(n, 0);
  for (const int id : regions.removed) redo[id] = 3;
  for (const int id : regions.added) redo[id] = 3;
  for (const Coord2 c : changed)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        const Coord2 nb{c.x + dx, c.y + dy};
        if (!mesh_.contains(nb)) continue;
        for (const Record2D& rec : records_.at(nb.x, nb.y))
          redo[rec.owner] |= rec.guard == Dir2::PosX ? 1 : 2;
      }
  for (size_t i = 0; i < n; ++i) {
    for (int pass = 0; pass < 2; ++pass) {
      if (redo[i] & (1 << pass)) continue;
      const Wall2D& w = pass == 0 ? y_walls_[i] : x_walls_[i];
      for (const int id : w.chain)
        if (id < static_cast<int>(n) && dirty_region[id]) redo[i] |= 1 << pass;
      for (const int id : w.touched)
        if (id < static_cast<int>(n) && dirty_region[id]) redo[i] |= 1 << pass;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!redo[i]) continue;
    const bool alive = mccs_.live(static_cast<int>(i));
    for (int pass = 0; pass < 2; ++pass) {
      if (!(redo[i] & (1 << pass))) continue;
      const Dir2 guard = pass == 0 ? Dir2::PosX : Dir2::PosY;
      Wall2D& slot = pass == 0 ? y_walls_[i] : x_walls_[i];
      up.records_removed +=
          remove_wall_records(static_cast<int>(i), guard, slot);
      if (alive) {
        slot = build_wall(guard, mccs_.region(static_cast<int>(i)));
        up.records_added +=
            deposit_wall_records(static_cast<int>(i), guard, slot);
      } else {
        slot = Wall2D{};
      }
      up.walls.push_back({static_cast<int>(i), guard, !alive});
    }
  }
  return up;
}

// Walks one wall. For Y walls (guard +X): start at the corner heading
// South (-Y), resume direction South, obstacle kept on the LEFT while
// deflecting, exit the deflection when, heading South, the east neighbor is
// free again. X walls are the exact mirror (resume West, obstacle on the
// RIGHT, exit when heading West with the north neighbor free).
Wall2D Boundary2D::build_wall(Dir2 guard, const MccRegion2D& region) {
  Wall2D w;
  w.chain.push_back(region.id);
  const Coord2 corner = region.corner();
  if (!mesh_.contains(corner)) return w;  // region hugs the mesh edge

  const bool y_wall = guard == Dir2::PosX;
  const Dir2 resume = y_wall ? Dir2::NegY : Dir2::NegX;
  // Side of the obstacle during deflection, relative to heading.
  auto wall_side = [&](Dir2 h) { return y_wall ? left_of(h) : right_of(h); };

  auto merge = [&](Coord2 c) {
    const int id = mccs_.region_at(c);
    if (id < 0) return;
    if (std::find(w.touched.begin(), w.touched.end(), id) == w.touched.end())
      w.touched.push_back(id);
    if (std::find(w.chain.begin(), w.chain.end(), id) != w.chain.end())
      return;
    // Downstream filter: a region joins the chain only when it can feed the
    // owner's forbidden region — it blocked a DESCENDING (resp. westward)
    // line, so it must start below (resp. left of) the owner. Probes made
    // while a deflection wanders around large complexes can touch regions
    // on the wrong side; those are not downstream and must not widen the
    // forbidden union (they over-block Theorem 1 and over-exclude routes).
    const MccRegion2D& cand = mccs_.region(id);
    if (y_wall ? cand.y0 >= region.y0 : cand.x0 >= region.x0) return;
    w.chain.push_back(id);
  };
  auto free_cell = [&](Coord2 c) {
    return mesh_.contains(c) && labels_.safe(c);
  };

  w.exists = true;
  // Start one step before the corner, on the node orthogonally adjacent to
  // the region's bottom-left cell. That node is provably safe (it would
  // otherwise belong to the region itself), while the corner may be
  // swallowed by a diagonally-touching MCC — the paper leaves this case
  // unspecified; starting here lets the ordinary deflect-and-merge walk
  // wrap such a blocker so its merged chain still guards QY/QX (see
  // tests/test_boundary2d.cc: CornerSwallowedByDiagonalRegion).
  Coord2 pos = y_wall ? Coord2{corner.x, corner.y + 1}
                      : Coord2{corner.x + 1, corner.y};
  w.path.push_back(pos);

  bool following = false;
  Dir2 heading = resume;
  // (node, heading) states seen while following; the walk is deterministic,
  // so a revisit means the follower is circling a sealed pocket — the
  // obstacle ring encloses every remaining approach, and the wall is done.
  std::vector<uint8_t> seen(mesh_.node_count() * 4, 0);
  const size_t cap = mesh_.node_count() * 8;
  for (size_t steps = 0; steps < cap; ++steps) {
    if (!following) {
      const Coord2 next = step(pos, resume);
      if (!mesh_.contains(next)) return w;  // reached the mesh edge: done
      if (free_cell(next)) {
        pos = next;
        w.path.push_back(pos);
        continue;
      }
      merge(next);
      following = true;
      heading = y_wall ? Dir2::NegX : Dir2::NegY;  // paper's first turn
      continue;
    }

    // Deflection: hug the obstacle with a hand-on-wall walk. A region joins
    // the merge chain exactly when it blocks the wall's RESUME direction —
    // in plain mode (the descending line hit it, the paper's merge
    // condition) or via a resume-direction probe while following (the
    // cascaded line hit it at the current deflection column/row). Regions
    // merely brushed sideways while rounding are NOT merged: their
    // forbidden regions are not downstream of this wall, and merging them
    // over-extends the union and strands record-guided routers (see
    // tests/test_router.cc sweeps for both failure modes).
    const Dir2 try_order[4] = {wall_side(heading), heading,
                               y_wall ? right_of(heading) : left_of(heading),
                               opposite(heading)};
    bool moved = false;
    for (const Dir2 dir : try_order) {
      const Coord2 next = step(pos, dir);
      if (!mesh_.contains(next)) {
        // Mesh edge acts as a wall for the follower; if the wall direction
        // itself leaves the mesh we are done (nothing can pass outside).
        if (dir == resume) return w;
        continue;
      }
      if (!free_cell(next)) {
        if (dir == resume) merge(next);
        continue;
      }
      pos = next;
      heading = dir;
      w.path.push_back(pos);
      moved = true;
      break;
    }
    if (!moved) return w;  // boxed in: wall ends here
    uint8_t& state =
        seen[mesh_.index(pos) * 4 + static_cast<size_t>(heading)];
    if (state) return w;  // sealed pocket: done
    state = 1;

    // Leave the deflection once we are heading in the resume direction and
    // the obstacle side is free again (we passed the blocking region's
    // corner and joined its wall line).
    if (heading == resume) {
      const Coord2 side = step(pos, wall_side(heading));
      if (free_cell(side)) following = false;
    }
  }
  w.complete = false;  // step cap hit (pathological configuration)
  return w;
}

bool Boundary2D::theorem1_feasible(Coord2 s, Coord2 d) const {
  for (const MccRegion2D& r : mccs_.regions()) {
    if (r.in_critical_y(d)) {
      for (const int b : y_walls_[r.id].chain)
        if (mccs_.region(b).in_forbidden_y(s)) return false;
    }
    if (r.in_critical_x(d)) {
      for (const int b : x_walls_[r.id].chain)
        if (mccs_.region(b).in_forbidden_x(s)) return false;
    }
  }
  return true;
}

}  // namespace mcc::core
