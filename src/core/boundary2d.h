// Boundary construction in 2-D meshes (Algorithm 2 step 3, Figure 3).
//
// Each MCC M owns two walls emanating from its initialization corner
// c = (x0-1, b(x0)-1):
//
//   * the Y boundary descends along x = x0-1 and guards +X moves into the
//     forbidden region QY(M);
//   * the X boundary runs west along y = b(x0)-1 and guards +Y moves into
//     QX(M).
//
// When a wall hits another MCC B it deflects around B's rim (west/north rim
// for Y walls, south/east rim for X walls), *merges* B's forbidden region
// into its own (QY(c) := QY(c) ∪ QY(v), paper §3) and continues along B's
// own wall toward the mesh edge. Every node the wall visits stores a
// record (owner M, merged chain); the record-guided router excludes a
// preferred direction exactly when the destination lies in the owner's
// critical region and the step would enter any chained forbidden region.
//
// The chain test is also the *exact* static feasibility condition
// (Theorem 1): the single-region Lemma 1 test is sound for blocking but
// misses multi-region traps — that gap is precisely why the paper rewrites
// Wang's condition in boundary form. bench_e6_agreement quantifies this.
#pragma once

#include <memory>
#include <vector>

#include "core/labeling.h"
#include "core/mcc_region.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::core {

/// One boundary record stored at a node.
struct Record2D {
  int owner = -1;          // region whose critical region gates the rule
  mesh::Dir2 guard = mesh::Dir2::PosX;  // direction this record filters
  std::shared_ptr<const std::vector<int>> chain;  // merged region ids
};

/// The polyline and merge chain of one wall.
struct Wall2D {
  std::vector<mesh::Coord2> path;
  std::vector<int> chain;   // always contains the owner
  // Every region the walk probed in its resume direction, merged or not.
  // The walk's outcome depends only on the owner's geometry, the labels
  // within one step of `path`, and these regions — which is exactly the
  // dependency set the incremental `update` uses to decide rebuilds.
  std::vector<int> touched;
  bool exists = false;      // false when the corner leaves the mesh
  bool complete = true;     // false when the walk hit its step cap
};

/// What one incremental `update` did to the wall/record stores (consumed
/// by the runtime's event reports and the proto record-delta codec).
struct BoundaryUpdate {
  struct WallChange {
    int region = -1;
    mesh::Dir2 guard = mesh::Dir2::PosX;  // PosX = Y wall, PosY = X wall
    bool removed = false;                 // owner died; no replacement wall
  };
  std::vector<WallChange> walls;
  size_t records_removed = 0;
  size_t records_added = 0;
};

class Boundary2D {
 public:
  Boundary2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
             const MccSet2D& mccs);

  const Wall2D& y_wall(int region) const { return y_walls_[region]; }
  const Wall2D& x_wall(int region) const { return x_walls_[region]; }

  /// Incrementally re-derives walls and records after an event changed the
  /// labels at `changed` and re-partitioned the regions per `regions`. The
  /// referenced LabelField2D/MccSet2D must already be updated in place. A
  /// wall is rebuilt iff its owner changed, a changed cell lies within one
  /// step of its path, or a region it probed was removed/added — the full
  /// dependency set of the walk, so untouched walls are provably
  /// identical. tests/test_runtime.cc proves record equivalence with a
  /// fresh Boundary2D across randomized churn.
  BoundaryUpdate update(const std::vector<mesh::Coord2>& changed,
                        const RegionUpdate& regions);

  /// Records deposited at a node (empty for most nodes).
  const std::vector<Record2D>& records_at(mesh::Coord2 c) const {
    return records_.at(c.x, c.y);
  }

  /// Total number of (node, record) pairs — the storage cost of the
  /// limited-global-information model, reported by bench_e7.
  size_t record_count() const { return record_count_; }
  /// Number of nodes holding at least one record.
  size_t nodes_with_records() const { return nodes_with_records_; }

  /// Exact static feasibility (Theorem 1 in chain form): true iff no MCC
  /// blocks the pair. Requires s <= d componentwise, both safe.
  bool theorem1_feasible(mesh::Coord2 s, mesh::Coord2 d) const;

 private:
  Wall2D build_wall(mesh::Dir2 guard, const MccRegion2D& region);
  size_t remove_wall_records(int owner, mesh::Dir2 guard, const Wall2D& w);
  size_t deposit_wall_records(int owner, mesh::Dir2 guard, const Wall2D& w);

  const mesh::Mesh2D& mesh_;
  const LabelField2D& labels_;
  const MccSet2D& mccs_;
  std::vector<Wall2D> y_walls_;
  std::vector<Wall2D> x_walls_;
  util::Grid2<std::vector<Record2D>> records_;
  size_t record_count_ = 0;
  size_t nodes_with_records_ = 0;
};

}  // namespace mcc::core
