#include "core/feasibility2d.h"

#include <deque>

#include "core/reachability.h"

namespace mcc::core {

using mesh::Coord2;

Lemma1Result lemma1_blocked(const MccSet2D& mccs, Coord2 s, Coord2 d) {
  for (const MccRegion2D& r : mccs.regions()) {
    if (r.in_forbidden_x(s) && r.in_critical_x(d))
      return {true, r.id, 'X'};
    if (r.in_forbidden_y(s) && r.in_critical_y(d))
      return {true, r.id, 'Y'};
  }
  return {};
}

namespace {

// Shared walker flood. Confined to the rectangle [s.x..d.x] x [s.y..d.y].
// `primary` is the hugged direction (the walker's purpose); `deflect` is
// taken only at nodes where the primary step is blocked by an unsafe node
// ("make a turn ... and then turn back as soon as possible", Algorithm 3).
// Success: reaching the far line of the primary axis.
bool walk(const mesh::Mesh2D& mesh, const LabelField2D& labels, Coord2 s,
          Coord2 d, mesh::Dir2 primary, mesh::Dir2 deflect) {
  (void)mesh;
  auto in_rect = [&](Coord2 c) {
    return c.x >= s.x && c.x <= d.x && c.y >= s.y && c.y <= d.y;
  };
  auto done = [&](Coord2 c) {
    return primary == mesh::Dir2::PosY ? c.y == d.y : c.x == d.x;
  };

  util::Grid2<uint8_t> seen(d.x - s.x + 1, d.y - s.y + 1, uint8_t{0});
  auto mark = [&](Coord2 c) -> uint8_t& {
    return seen.at(c.x - s.x, c.y - s.y);
  };

  if (labels.unsafe(s)) return false;
  std::deque<Coord2> work{s};
  mark(s) = 1;
  while (!work.empty()) {
    const Coord2 c = work.front();
    work.pop_front();
    if (done(c)) return true;

    const Coord2 p = step(c, primary);
    bool primary_blocked_by_unsafe = false;
    if (in_rect(p)) {
      if (labels.unsafe(p)) {
        primary_blocked_by_unsafe = true;
      } else if (!mark(p)) {
        mark(p) = 1;
        work.push_back(p);
      }
    }
    if (primary_blocked_by_unsafe) {
      const Coord2 q = step(c, deflect);
      if (in_rect(q) && !labels.unsafe(q) && !mark(q)) {
        mark(q) = 1;
        work.push_back(q);
      }
    }
  }
  return false;
}

/// Straight-line minimal path through non-faulty nodes; used for degenerate
/// pairs where unsafe-but-healthy nodes are legitimately traversable.
bool line_clear(const LabelField2D& labels, Coord2 s, Coord2 d) {
  if (s.x == d.x) {
    for (int y = s.y; y <= d.y; ++y)
      if (labels.state({s.x, y}) == NodeState::Faulty) return false;
    return true;
  }
  for (int x = s.x; x <= d.x; ++x)
    if (labels.state({x, s.y}) == NodeState::Faulty) return false;
  return true;
}

}  // namespace

DetectResult2D detect2d(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                        Coord2 s, Coord2 d) {
  DetectResult2D r;
  r.y_walker_ok = walk(mesh, labels, s, d, mesh::Dir2::PosY, mesh::Dir2::PosX);
  r.x_walker_ok = walk(mesh, labels, s, d, mesh::Dir2::PosX, mesh::Dir2::PosY);
  return r;
}

FeasibilityResult mcc_feasible2d(const mesh::Mesh2D& mesh,
                                 const LabelField2D& labels, Coord2 s,
                                 Coord2 d) {
  if (s == d) {
    return {labels.state(d) != NodeState::Faulty,
            FeasibilityBasis::TrivialSame};
  }
  if (labels.state(s) == NodeState::Faulty ||
      labels.state(d) == NodeState::Faulty) {
    return {false, FeasibilityBasis::DeadEndpoint};
  }
  if (s.x == d.x || s.y == d.y) {
    return {line_clear(labels, s, d), FeasibilityBasis::DegenerateLine};
  }
  if (labels.unsafe(s) || labels.unsafe(d)) {
    // The model assumes safe endpoints; answer with the exact oracle so the
    // library stays correct and report the fallback basis.
    const ReachField2D oracle(mesh, labels, d, NodeFilter::NonFaulty);
    return {oracle.feasible(s), FeasibilityBasis::OracleFallback};
  }
  return {detect2d(mesh, labels, s, d).feasible(),
          FeasibilityBasis::ModelDetect};
}

}  // namespace mcc::core
