// Minimal-path feasibility in 2-D meshes under the MCC model.
//
// Three equivalent formulations are provided (their agreement — with each
// other and with the reachability oracle — is the empirical verification of
// Wang's theorem as rewritten by the paper's Lemma 1 / Theorem 1):
//
//   * lemma1_blocked    — the static single-region test: some MCC holds s
//                         in a forbidden region and d in the matching
//                         critical region. SOUND for blocking (a witness
//                         really blocks) but incomplete: multi-region traps
//                         need the merged boundary chains of Theorem 1
//                         (core/boundary2d.h) — which is exactly why the
//                         paper rewrites Wang's condition in boundary form.
//   * detect2d          — Algorithm 3 phase 1: two detection walkers swept
//                         from s (one hugging +Y and deflecting +X around
//                         MCCs, one mirrored) that must reach the
//                         destination row/column inside the s-d rectangle.
//   * mcc_feasible2d    — the full, public decision procedure: canonical
//                         strict pairs use the walkers; degenerate pairs
//                         reduce to a straight-line check; unsafe-but-alive
//                         endpoints fall back to the reachability oracle
//                         (the model's assumptions do not cover them;
//                         DESIGN.md §3).
//
// All functions operate in the canonical quadrant: callers flip axes first
// (mesh::Octant2) so that s <= d componentwise.
#pragma once

#include "core/labeling.h"
#include "core/mcc_region.h"
#include "mesh/mesh.h"

namespace mcc::core {

/// Result of the static Lemma 1 test. `blocking_region` is the id of a
/// witness MCC when blocked.
struct Lemma1Result {
  bool blocked = false;
  int blocking_region = -1;
  char axis = '-';  // 'X' or 'Y' case of Lemma 1
};

Lemma1Result lemma1_blocked(const MccSet2D& mccs, mesh::Coord2 s,
                            mesh::Coord2 d);

/// Algorithm 3 phase 1. Requires s <= d componentwise and both strict
/// offsets positive for meaningful results (callers enforce).
struct DetectResult2D {
  bool y_walker_ok = false;  // reached row d.y inside the rectangle
  bool x_walker_ok = false;  // reached column d.x inside the rectangle
  bool feasible() const { return y_walker_ok && x_walker_ok; }
};

DetectResult2D detect2d(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                        mesh::Coord2 s, mesh::Coord2 d);

/// How the public decision was reached (reported by benches; lets
/// experiments separate model answers from fallback answers).
enum class FeasibilityBasis : uint8_t {
  TrivialSame,      // s == d
  DeadEndpoint,     // s or d faulty
  DegenerateLine,   // some offset is zero: straight-line / slice check
  ModelDetect,      // the paper's detection machinery
  OracleFallback,   // endpoint unsafe-but-alive: model inapplicable
};

struct FeasibilityResult {
  bool feasible = false;
  FeasibilityBasis basis = FeasibilityBasis::ModelDetect;
};

FeasibilityResult mcc_feasible2d(const mesh::Mesh2D& mesh,
                                 const LabelField2D& labels, mesh::Coord2 s,
                                 mesh::Coord2 d);

}  // namespace mcc::core
