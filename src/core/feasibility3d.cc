#include "core/feasibility3d.h"

#include <array>
#include <deque>

#include "core/reachability.h"
#include "mesh/slice.h"
#include "util/grid.h"

namespace mcc::core {

using mesh::Coord3;

namespace {

// One surface flood. `primaries` are the two spreading directions; `deflect`
// is permitted at a node only when at least one primary step is blocked by
// an unsafe node inside the box ("make a +X turn until it can go back",
// Algorithm 6). `done` tests the success plane.
bool flood(const LabelField3D& labels, Coord3 s, Coord3 d,
           std::array<mesh::Dir3, 2> primaries, mesh::Dir3 deflect,
           auto&& done) {
  auto in_box = [&](Coord3 c) {
    return c.x >= s.x && c.x <= d.x && c.y >= s.y && c.y <= d.y &&
           c.z >= s.z && c.z <= d.z;
  };

  util::Grid3<uint8_t> seen(d.x - s.x + 1, d.y - s.y + 1, d.z - s.z + 1,
                            uint8_t{0});
  auto mark = [&](Coord3 c) -> uint8_t& {
    return seen.at(c.x - s.x, c.y - s.y, c.z - s.z);
  };

  if (labels.unsafe(s)) return false;
  std::deque<Coord3> work{s};
  mark(s) = 1;
  while (!work.empty()) {
    const Coord3 c = work.front();
    work.pop_front();
    if (done(c)) return true;

    bool blocked = false;
    for (const mesh::Dir3 dir : primaries) {
      const Coord3 p = step(c, dir);
      if (!in_box(p)) {
        // The RMP face caps this primary: the message may deflect, exactly
        // as it would around an MCC (otherwise detection is blind on
        // shallow boxes; see tests/test_feasibility3d.cc).
        blocked = true;
        continue;
      }
      if (labels.unsafe(p)) {
        blocked = true;
      } else if (!mark(p)) {
        mark(p) = 1;
        work.push_back(p);
      }
    }
    if (blocked) {
      const Coord3 q = step(c, deflect);
      if (in_box(q) && !labels.unsafe(q) && !mark(q)) {
        mark(q) = 1;
        work.push_back(q);
      }
    }
  }
  return false;
}

bool line_clear3(const LabelField3D& labels, Coord3 s, Coord3 d) {
  Coord3 c = s;
  while (!(c == d)) {
    if (labels.state(c) == NodeState::Faulty) return false;
    if (c.x < d.x)
      ++c.x;
    else if (c.y < d.y)
      ++c.y;
    else
      ++c.z;
  }
  return labels.state(d) != NodeState::Faulty;
}

}  // namespace

DetectResult3D detect3d(const mesh::Mesh3D& mesh, const LabelField3D& labels,
                        Coord3 s, Coord3 d) {
  (void)mesh;
  DetectResult3D r;
  r.x_surface_ok =
      flood(labels, s, d, {mesh::Dir3::PosY, mesh::Dir3::PosZ},
            mesh::Dir3::PosX, [&](Coord3 c) { return c.y == d.y; });
  r.y_surface_ok =
      flood(labels, s, d, {mesh::Dir3::PosX, mesh::Dir3::PosZ},
            mesh::Dir3::PosY, [&](Coord3 c) { return c.z == d.z; });
  r.z_surface_ok =
      flood(labels, s, d, {mesh::Dir3::PosX, mesh::Dir3::PosY},
            mesh::Dir3::PosZ, [&](Coord3 c) { return c.x == d.x; });
  return r;
}

FeasibilityResult mcc_feasible3d(const mesh::Mesh3D& mesh,
                                 const mesh::FaultSet3D& faults,
                                 const LabelField3D& labels, Coord3 s,
                                 Coord3 d) {
  if (s == d) {
    return {labels.state(d) != NodeState::Faulty,
            FeasibilityBasis::TrivialSame};
  }
  if (labels.state(s) == NodeState::Faulty ||
      labels.state(d) == NodeState::Faulty) {
    return {false, FeasibilityBasis::DeadEndpoint};
  }

  const int degenerate = (s.x == d.x ? 1 : 0) + (s.y == d.y ? 1 : 0) +
                         (s.z == d.z ? 1 : 0);
  if (degenerate == 2) {
    return {line_clear3(labels, s, d), FeasibilityBasis::DegenerateLine};
  }
  if (degenerate == 1) {
    // Routing is confined to one plane: solve the exact 2-D model there.
    mesh::Plane plane;
    int level;
    if (s.z == d.z) {
      plane = mesh::Plane::XY;
      level = s.z;
    } else if (s.y == d.y) {
      plane = mesh::Plane::XZ;
      level = s.y;
    } else {
      plane = mesh::Plane::YZ;
      level = s.x;
    }
    const mesh::Mesh2D m2 = mesh::slice_mesh(mesh, plane);
    const mesh::FaultSet2D f2 = mesh::slice_faults(mesh, faults, plane, level);
    const LabelField2D l2(m2, f2);
    FeasibilityResult sub = mcc_feasible2d(m2, l2, mesh::slice_coord(plane, s),
                                           mesh::slice_coord(plane, d));
    // Report the slice reduction rather than the inner basis: callers only
    // need to know the 3-D machinery was bypassed.
    sub.basis = FeasibilityBasis::DegenerateLine;
    return sub;
  }

  if (labels.unsafe(s) || labels.unsafe(d)) {
    const ReachField3D oracle(mesh, labels, d, NodeFilter::NonFaulty);
    return {oracle.feasible(s), FeasibilityBasis::OracleFallback};
  }
  return {detect3d(mesh, labels, s, d).feasible(),
          FeasibilityBasis::ModelDetect};
}

}  // namespace mcc::core
