// Minimal-path feasibility in 3-D meshes — Theorem 2 / Algorithm 6 phase 1.
//
// Three detection floods sweep the lower surfaces of the Region of Minimal
// Paths (the s-d box) exactly as the paper prescribes, with its cyclic
// success pairing:
//
//   (-X)-surface flood: spreads +Y/+Z, deflects +X where blocked, and must
//                       reach the plane y = yd;
//   (-Y)-surface flood: spreads +X/+Z, deflects +Y, must reach z = zd;
//   (-Z)-surface flood: spreads +X/+Y, deflects +Z, must reach x = xd.
//
// A minimal path exists under the model iff all three succeed. Degenerate
// pairs reduce to the 2-D model on the corresponding plane slice, doubly
// degenerate pairs to a straight-line check (DESIGN.md §3).
#pragma once

#include "core/feasibility2d.h"
#include "core/labeling.h"
#include "mesh/fault_set.h"
#include "mesh/mesh.h"

namespace mcc::core {

struct DetectResult3D {
  bool x_surface_ok = false;  // reached plane y = d.y
  bool y_surface_ok = false;  // reached plane z = d.z
  bool z_surface_ok = false;  // reached plane x = d.x
  bool feasible() const {
    return x_surface_ok && y_surface_ok && z_surface_ok;
  }
};

/// Requires s <= d componentwise; meaningful when all offsets are strict.
DetectResult3D detect3d(const mesh::Mesh3D& mesh, const LabelField3D& labels,
                        mesh::Coord3 s, mesh::Coord3 d);

/// Full decision procedure for the canonical octant. Needs the raw fault
/// set in addition to the labels because degenerate pairs re-label the
/// 2-D slice they are confined to.
FeasibilityResult mcc_feasible3d(const mesh::Mesh3D& mesh,
                                 const mesh::FaultSet3D& faults,
                                 const LabelField3D& labels, mesh::Coord3 s,
                                 mesh::Coord3 d);

}  // namespace mcc::core
