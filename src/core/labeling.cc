#include "core/labeling.h"

#include <deque>
#include <unordered_set>
#include <utility>

#include "obs/profiler.h"

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::Safe: return "safe";
    case NodeState::Faulty: return "faulty";
    case NodeState::Useless: return "useless";
    case NodeState::CantReach: return "cant-reach";
  }
  return "?";
}

namespace {

// Worklist fixpoint shared by both dimensions and by the incremental hooks.
// The two label kinds propagate independently (useless looks only at
// useless/faulty, can't-reach only at can't-reach/faulty); they interact
// solely through claiming a node, which is why doubly-blocked cells make
// the outcome schedule-dependent and are guarded against (see header).
//
// `blocked_pos(c)` must return true iff every in-mesh positive neighbor of
// safe node c is faulty-or-useless; `blocked_neg` the mirror. Out-of-mesh
// neighbors do not block (walls are not faults).
//
// `work` seeds the pass: the constructors enqueue every node in row-major
// order, the incremental hooks only the cells an event can cascade from.
// When `claimed` is non-null every cell this pass relabels is appended
// (such cells were Safe when claimed).

template <class MeshT, class CoordT, class Grid, class ForEachNb>
void fixpoint(const MeshT& mesh, Grid& g, ForEachNb&& for_each_nb,
              auto&& blocked_pos, auto&& blocked_neg, int& useless,
              int& cant_reach, std::deque<CoordT>& work,
              std::vector<CoordT>* claimed = nullptr) {
  while (!work.empty()) {
    const CoordT c = work.front();
    work.pop_front();
    auto& st = g[mesh.index(c)];
    if (st != NodeState::Safe) continue;
    NodeState next = NodeState::Safe;
    if (blocked_pos(c)) {
      next = NodeState::Useless;
      ++useless;
    } else if (blocked_neg(c)) {
      next = NodeState::CantReach;
      ++cant_reach;
    }
    if (next == NodeState::Safe) continue;
    st = next;
    if (claimed) claimed->push_back(c);
    // Only neighbors can be newly affected.
    for_each_nb(c, [&](CoordT nb) { work.push_back(nb); });
  }
}

// The blocking rules of Algorithm 1 / Algorithm 4 over the current grid.
// Centralizing them keeps the constructors, the dynamic hooks and the
// ambiguity guard on one definition.

struct Rules2D {
  const mesh::Mesh2D& mesh;
  const util::Grid2<NodeState>& g;

  bool blocks_pos(Coord2 c) const {
    if (!mesh.contains(c)) return false;
    const NodeState s = g.at(c.x, c.y);
    return s == NodeState::Faulty || s == NodeState::Useless;
  }
  bool blocks_neg(Coord2 c) const {
    if (!mesh.contains(c)) return false;
    const NodeState s = g.at(c.x, c.y);
    return s == NodeState::Faulty || s == NodeState::CantReach;
  }
  bool blocked_pos(Coord2 c) const {
    const Coord2 px{c.x + 1, c.y}, py{c.x, c.y + 1};
    // A direction that leaves the mesh cannot force a detour by itself:
    // the wall is not a fault. Both in-mesh positive neighbors must block.
    if (!mesh.contains(px) || !mesh.contains(py)) return false;
    return blocks_pos(px) && blocks_pos(py);
  }
  bool blocked_neg(Coord2 c) const {
    const Coord2 mx{c.x - 1, c.y}, my{c.x, c.y - 1};
    if (!mesh.contains(mx) || !mesh.contains(my)) return false;
    return blocks_neg(mx) && blocks_neg(my);
  }
};

struct Rules3D {
  const mesh::Mesh3D& mesh;
  const util::Grid3<NodeState>& g;

  bool blocks_pos(Coord3 c) const {
    const NodeState s = g.at(c.x, c.y, c.z);
    return s == NodeState::Faulty || s == NodeState::Useless;
  }
  bool blocks_neg(Coord3 c) const {
    const NodeState s = g.at(c.x, c.y, c.z);
    return s == NodeState::Faulty || s == NodeState::CantReach;
  }
  bool blocked_pos(Coord3 c) const {
    const Coord3 px{c.x + 1, c.y, c.z}, py{c.x, c.y + 1, c.z},
        pz{c.x, c.y, c.z + 1};
    if (!mesh.contains(px) || !mesh.contains(py) || !mesh.contains(pz))
      return false;
    return blocks_pos(px) && blocks_pos(py) && blocks_pos(pz);
  }
  bool blocked_neg(Coord3 c) const {
    const Coord3 mx{c.x - 1, c.y, c.z}, my{c.x, c.y - 1, c.z},
        mz{c.x, c.y, c.z - 1};
    if (!mesh.contains(mx) || !mesh.contains(my) || !mesh.contains(mz))
      return false;
    return blocks_neg(mx) && blocks_neg(my) && blocks_neg(mz);
  }
};

template <class Rules, class CoordT>
bool doubly_blocked(const Rules& rules, CoordT c) {
  return rules.g[rules.mesh.index(c)] != NodeState::Faulty &&
         rules.blocked_pos(c) && rules.blocked_neg(c);
}

// Orthogonally-connected unsafe component containing `c` — the support
// closure of every label a repair at `c` can invalidate (see header).
template <class MeshT, class CoordT, class Grid>
std::vector<CoordT> unsafe_component(const MeshT& mesh, const Grid& g,
                                     CoordT c) {
  std::vector<CoordT> comp;
  std::vector<uint8_t> seen(mesh.node_count(), 0);
  std::deque<CoordT> work{c};
  seen[mesh.index(c)] = 1;
  while (!work.empty()) {
    const CoordT u = work.front();
    work.pop_front();
    comp.push_back(u);
    mesh.for_each_neighbor(u, [&](CoordT nb, auto) {
      if (seen[mesh.index(nb)]) return;
      if (g[mesh.index(nb)] == NodeState::Safe) return;
      seen[mesh.index(nb)] = 1;
      work.push_back(nb);
    });
  }
  return comp;
}

}  // namespace

// ---------------------------------------------------------------------------
// 2-D

namespace {

void fixpoint2d(const mesh::Mesh2D& mesh, util::Grid2<NodeState>& g,
                std::deque<Coord2>& work, int& useless, int& cant_reach,
                std::vector<Coord2>* claimed = nullptr) {
  const Rules2D rules{mesh, g};
  auto for_each_nb = [&](Coord2 c, auto&& fn) {
    mesh.for_each_neighbor(c, [&](Coord2 nb, mesh::Dir2) { fn(nb); });
  };
  fixpoint<mesh::Mesh2D, Coord2>(
      mesh, g, for_each_nb,
      [&](Coord2 c) { return rules.blocked_pos(c); },
      [&](Coord2 c) { return rules.blocked_neg(c); }, useless, cant_reach,
      work, claimed);
}

}  // namespace

LabelField2D::LabelField2D(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults)
    : grid_(mesh.nx(), mesh.ny(), NodeState::Safe),
      both_(mesh.nx(), mesh.ny(), uint8_t{0}) {
  obs::ProfScope prof(obs::Phase::KernelLabelFixpoint);
  for (int y = 0; y < mesh.ny(); ++y)
    for (int x = 0; x < mesh.nx(); ++x)
      if (faults.is_faulty({x, y})) grid_.at(x, y) = NodeState::Faulty;

  std::deque<Coord2> work;
  for (size_t i = 0; i < mesh.node_count(); ++i) work.push_back(mesh.coord(i));
  fixpoint2d(mesh, grid_, work, useless_, cant_reach_);
  healthy_unsafe_ = useless_ + cant_reach_;

  const Rules2D rules{mesh, grid_};
  for (size_t i = 0; i < mesh.node_count(); ++i)
    if (doubly_blocked(rules, mesh.coord(i))) {
      both_[i] = 1;
      ++ambiguous_;
    }
}

namespace {

// Shared tail of the incremental hooks: re-evaluate the doubly-blocked
// flags wherever the event could have changed them, and on any ambiguity
// (pre-existing or new) redo the event as a constructor-equivalent full
// relabel so the result is bit-identical to a fresh build by definition.
// `revert` maps the already-applied grid mutations back to the pre-event
// state; `changed` is rewritten with the full diff when the fallback runs.

template <class Field, class MeshT, class CoordT, class FaultsT, class Rules>
bool finish_event(Field& self, const MeshT& mesh, auto& grid, auto& both,
                  int& ambiguous,
                  const std::vector<std::pair<CoordT, NodeState>>& revert,
                  std::vector<CoordT>& changed, bool had_ambiguity) {
  const Rules rules{mesh, grid};
  auto refresh = [&](CoordT c) {
    const uint8_t now = doubly_blocked(rules, c) ? 1 : 0;
    uint8_t& flag = both[mesh.index(c)];
    if (now != flag) {
      ambiguous += now ? 1 : -1;
      flag = now;
    }
  };
  for (const CoordT c : changed) {
    refresh(c);
    mesh.for_each_neighbor(c, [&](CoordT nb, auto) { refresh(nb); });
  }
  if (!had_ambiguity && ambiguous == 0) return false;

  // Fallback: reconstruct the pre-event grid, rebuild from the fault flags
  // with the constructor (row-major schedule), and report the exact diff.
  auto pre = grid;
  for (const auto& [c, old] : revert) pre[mesh.index(c)] = old;
  FaultsT faults(mesh);
  for (size_t i = 0; i < mesh.node_count(); ++i)
    if (grid[i] == NodeState::Faulty) faults.set_faulty(mesh.coord(i));
  const Field fresh(mesh, faults);
  changed.clear();
  for (size_t i = 0; i < mesh.node_count(); ++i)
    if (fresh.grid()[i] != pre[i]) changed.push_back(mesh.coord(i));
  self = fresh;
  return true;
}

}  // namespace

std::vector<Coord2> LabelField2D::apply_fault(const mesh::Mesh2D& mesh,
                                              Coord2 c) {
  std::vector<Coord2> changed;
  NodeState& st = grid_.at(c.x, c.y);
  if (st == NodeState::Faulty) return changed;
  const bool had_ambiguity = ambiguous_ != 0;
  const NodeState old = st;
  if (st == NodeState::Useless) --useless_;
  if (st == NodeState::CantReach) --cant_reach_;
  st = NodeState::Faulty;
  changed.push_back(c);

  if (!had_ambiguity) {
    std::deque<Coord2> work;
    mesh.for_each_neighbor(c,
                           [&](Coord2 nb, mesh::Dir2) { work.push_back(nb); });
    fixpoint2d(mesh, grid_, work, useless_, cant_reach_, &changed);
  }
  std::vector<std::pair<Coord2, NodeState>> revert{{c, old}};
  for (size_t i = 1; i < changed.size(); ++i)
    revert.emplace_back(changed[i], NodeState::Safe);
  fell_back_ = finish_event<LabelField2D, mesh::Mesh2D, Coord2, mesh::FaultSet2D, Rules2D>(
      *this, mesh, grid_, both_, ambiguous_, revert, changed, had_ambiguity);
  healthy_unsafe_ = useless_ + cant_reach_;
  return changed;
}

std::vector<Coord2> LabelField2D::apply_repair(const mesh::Mesh2D& mesh,
                                               Coord2 c) {
  std::vector<Coord2> changed;
  if (grid_.at(c.x, c.y) != NodeState::Faulty) return changed;
  const bool had_ambiguity = ambiguous_ != 0;

  std::vector<std::pair<Coord2, NodeState>> revert;
  std::vector<Coord2> claimed;
  if (!had_ambiguity) {
    const std::vector<Coord2> comp =
        unsafe_component<mesh::Mesh2D, Coord2>(mesh, grid_, c);
    std::deque<Coord2> work;
    for (const Coord2 u : comp) {
      NodeState& st = grid_[mesh.index(u)];
      if (u == c) {
        revert.emplace_back(u, NodeState::Faulty);
        st = NodeState::Safe;
      } else if (st == NodeState::Useless) {
        revert.emplace_back(u, st);
        --useless_;
        st = NodeState::Safe;
      } else if (st == NodeState::CantReach) {
        revert.emplace_back(u, st);
        --cant_reach_;
        st = NodeState::Safe;
      }
      // Still-faulty members keep their label but their safe-reset
      // neighbors re-enter the pass, so every support chain is re-derived.
      if (st == NodeState::Safe) work.push_back(u);
    }
    fixpoint2d(mesh, grid_, work, useless_, cant_reach_, &claimed);
    // Reverted cells changed unless re-claimed identically; claims outside
    // the reverted set were Safe before and always changed.
    std::unordered_set<size_t> reset;
    for (const auto& [u, old] : revert) {
      reset.insert(mesh.index(u));
      if (grid_[mesh.index(u)] != old) changed.push_back(u);
    }
    for (const Coord2 u : claimed)
      if (!reset.count(mesh.index(u))) {
        changed.push_back(u);
        revert.emplace_back(u, NodeState::Safe);
      }
  } else {
    NodeState& st = grid_.at(c.x, c.y);
    revert.emplace_back(c, st);
    st = NodeState::Safe;
    changed.push_back(c);
  }
  fell_back_ = finish_event<LabelField2D, mesh::Mesh2D, Coord2, mesh::FaultSet2D, Rules2D>(
      *this, mesh, grid_, both_, ambiguous_, revert, changed, had_ambiguity);
  healthy_unsafe_ = useless_ + cant_reach_;
  return changed;
}

// ---------------------------------------------------------------------------
// 3-D

namespace {

void fixpoint3d(const mesh::Mesh3D& mesh, util::Grid3<NodeState>& g,
                std::deque<Coord3>& work, int& useless, int& cant_reach,
                std::vector<Coord3>* claimed = nullptr) {
  const Rules3D rules{mesh, g};
  auto for_each_nb = [&](Coord3 c, auto&& fn) {
    mesh.for_each_neighbor(c, [&](Coord3 nb, mesh::Dir3) { fn(nb); });
  };
  fixpoint<mesh::Mesh3D, Coord3>(
      mesh, g, for_each_nb,
      [&](Coord3 c) { return rules.blocked_pos(c); },
      [&](Coord3 c) { return rules.blocked_neg(c); }, useless, cant_reach,
      work, claimed);
}

}  // namespace

LabelField3D::LabelField3D(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults)
    : grid_(mesh.nx(), mesh.ny(), mesh.nz(), NodeState::Safe),
      both_(mesh.nx(), mesh.ny(), mesh.nz(), uint8_t{0}) {
  obs::ProfScope prof(obs::Phase::KernelLabelFixpoint);
  for (int z = 0; z < mesh.nz(); ++z)
    for (int y = 0; y < mesh.ny(); ++y)
      for (int x = 0; x < mesh.nx(); ++x)
        if (faults.is_faulty({x, y, z})) grid_.at(x, y, z) = NodeState::Faulty;

  std::deque<Coord3> work;
  for (size_t i = 0; i < mesh.node_count(); ++i) work.push_back(mesh.coord(i));
  fixpoint3d(mesh, grid_, work, useless_, cant_reach_);
  healthy_unsafe_ = useless_ + cant_reach_;

  const Rules3D rules{mesh, grid_};
  for (size_t i = 0; i < mesh.node_count(); ++i)
    if (doubly_blocked(rules, mesh.coord(i))) {
      both_[i] = 1;
      ++ambiguous_;
    }
}

std::vector<Coord3> LabelField3D::apply_fault(const mesh::Mesh3D& mesh,
                                              Coord3 c) {
  std::vector<Coord3> changed;
  NodeState& st = grid_.at(c.x, c.y, c.z);
  if (st == NodeState::Faulty) return changed;
  const bool had_ambiguity = ambiguous_ != 0;
  const NodeState old = st;
  if (st == NodeState::Useless) --useless_;
  if (st == NodeState::CantReach) --cant_reach_;
  st = NodeState::Faulty;
  changed.push_back(c);

  if (!had_ambiguity) {
    std::deque<Coord3> work;
    mesh.for_each_neighbor(c,
                           [&](Coord3 nb, mesh::Dir3) { work.push_back(nb); });
    fixpoint3d(mesh, grid_, work, useless_, cant_reach_, &changed);
  }
  std::vector<std::pair<Coord3, NodeState>> revert{{c, old}};
  for (size_t i = 1; i < changed.size(); ++i)
    revert.emplace_back(changed[i], NodeState::Safe);
  fell_back_ = finish_event<LabelField3D, mesh::Mesh3D, Coord3, mesh::FaultSet3D, Rules3D>(
      *this, mesh, grid_, both_, ambiguous_, revert, changed, had_ambiguity);
  healthy_unsafe_ = useless_ + cant_reach_;
  return changed;
}

std::vector<Coord3> LabelField3D::apply_repair(const mesh::Mesh3D& mesh,
                                               Coord3 c) {
  std::vector<Coord3> changed;
  if (grid_.at(c.x, c.y, c.z) != NodeState::Faulty) return changed;
  const bool had_ambiguity = ambiguous_ != 0;

  std::vector<std::pair<Coord3, NodeState>> revert;
  std::vector<Coord3> claimed;
  if (!had_ambiguity) {
    const std::vector<Coord3> comp =
        unsafe_component<mesh::Mesh3D, Coord3>(mesh, grid_, c);
    std::deque<Coord3> work;
    for (const Coord3 u : comp) {
      NodeState& st = grid_[mesh.index(u)];
      if (u == c) {
        revert.emplace_back(u, NodeState::Faulty);
        st = NodeState::Safe;
      } else if (st == NodeState::Useless) {
        revert.emplace_back(u, st);
        --useless_;
        st = NodeState::Safe;
      } else if (st == NodeState::CantReach) {
        revert.emplace_back(u, st);
        --cant_reach_;
        st = NodeState::Safe;
      }
      if (st == NodeState::Safe) work.push_back(u);
    }
    fixpoint3d(mesh, grid_, work, useless_, cant_reach_, &claimed);
    std::unordered_set<size_t> reset;
    for (const auto& [u, old] : revert) {
      reset.insert(mesh.index(u));
      if (grid_[mesh.index(u)] != old) changed.push_back(u);
    }
    for (const Coord3 u : claimed)
      if (!reset.count(mesh.index(u))) {
        changed.push_back(u);
        revert.emplace_back(u, NodeState::Safe);
      }
  } else {
    NodeState& st = grid_.at(c.x, c.y, c.z);
    revert.emplace_back(c, st);
    st = NodeState::Safe;
    changed.push_back(c);
  }
  fell_back_ = finish_event<LabelField3D, mesh::Mesh3D, Coord3, mesh::FaultSet3D, Rules3D>(
      *this, mesh, grid_, both_, ambiguous_, revert, changed, had_ambiguity);
  healthy_unsafe_ = useless_ + cant_reach_;
  return changed;
}

}  // namespace mcc::core
