#include "core/labeling.h"

#include <deque>

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::Safe: return "safe";
    case NodeState::Faulty: return "faulty";
    case NodeState::Useless: return "useless";
    case NodeState::CantReach: return "cant-reach";
  }
  return "?";
}

namespace {

// Worklist fixpoint shared by both dimensions. The two label kinds never
// interact (useless looks only at useless/faulty, can't-reach only at
// can't-reach/faulty), so one pass with a combined worklist is exact.
//
// `blocked_pos(c)` must return true iff every in-mesh positive neighbor of
// safe node c is faulty-or-useless; `blocked_neg` the mirror. Out-of-mesh
// neighbors do not block (walls are not faults).

template <class MeshT, class CoordT, class Grid, class ForEachNb>
void fixpoint(const MeshT& mesh, Grid& g, ForEachNb&& for_each_nb,
              auto&& blocked_pos, auto&& blocked_neg, int& useless,
              int& cant_reach) {
  std::deque<CoordT> work;
  const size_t n = mesh.node_count();
  for (size_t i = 0; i < n; ++i) work.push_back(mesh.coord(i));

  while (!work.empty()) {
    const CoordT c = work.front();
    work.pop_front();
    auto& st = g[mesh.index(c)];
    if (st != NodeState::Safe) continue;
    NodeState next = NodeState::Safe;
    if (blocked_pos(c)) {
      next = NodeState::Useless;
      ++useless;
    } else if (blocked_neg(c)) {
      next = NodeState::CantReach;
      ++cant_reach;
    }
    if (next == NodeState::Safe) continue;
    st = next;
    // Only neighbors can be newly affected.
    for_each_nb(c, [&](CoordT nb) { work.push_back(nb); });
  }
}

}  // namespace

LabelField2D::LabelField2D(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults)
    : grid_(mesh.nx(), mesh.ny(), NodeState::Safe) {
  for (int y = 0; y < mesh.ny(); ++y)
    for (int x = 0; x < mesh.nx(); ++x)
      if (faults.is_faulty({x, y})) grid_.at(x, y) = NodeState::Faulty;

  auto is = [&](Coord2 c, NodeState s) {
    return mesh.contains(c) && grid_.at(c.x, c.y) == s;
  };
  auto blocks_pos = [&](Coord2 c) {
    return !mesh.contains(c) ? false
                             : grid_.at(c.x, c.y) == NodeState::Faulty ||
                                   grid_.at(c.x, c.y) == NodeState::Useless;
  };
  auto blocks_neg = [&](Coord2 c) {
    return !mesh.contains(c) ? false
                             : grid_.at(c.x, c.y) == NodeState::Faulty ||
                                   grid_.at(c.x, c.y) == NodeState::CantReach;
  };
  (void)is;

  auto blocked_pos = [&](Coord2 c) {
    const Coord2 px{c.x + 1, c.y}, py{c.x, c.y + 1};
    // A direction that leaves the mesh cannot force a detour by itself:
    // the wall is not a fault. Both in-mesh positive neighbors must block.
    if (!mesh.contains(px) || !mesh.contains(py)) return false;
    return blocks_pos(px) && blocks_pos(py);
  };
  auto blocked_neg = [&](Coord2 c) {
    const Coord2 mx{c.x - 1, c.y}, my{c.x, c.y - 1};
    if (!mesh.contains(mx) || !mesh.contains(my)) return false;
    return blocks_neg(mx) && blocks_neg(my);
  };
  auto for_each_nb = [&](Coord2 c, auto&& fn) {
    mesh.for_each_neighbor(c, [&](Coord2 nb, mesh::Dir2) { fn(nb); });
  };

  fixpoint<mesh::Mesh2D, Coord2>(mesh, grid_, for_each_nb, blocked_pos,
                                 blocked_neg, useless_, cant_reach_);
  healthy_unsafe_ = useless_ + cant_reach_;
}

LabelField3D::LabelField3D(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults)
    : grid_(mesh.nx(), mesh.ny(), mesh.nz(), NodeState::Safe) {
  for (int z = 0; z < mesh.nz(); ++z)
    for (int y = 0; y < mesh.ny(); ++y)
      for (int x = 0; x < mesh.nx(); ++x)
        if (faults.is_faulty({x, y, z})) grid_.at(x, y, z) = NodeState::Faulty;

  auto blocks_pos = [&](Coord3 c) {
    return grid_.at(c.x, c.y, c.z) == NodeState::Faulty ||
           grid_.at(c.x, c.y, c.z) == NodeState::Useless;
  };
  auto blocks_neg = [&](Coord3 c) {
    return grid_.at(c.x, c.y, c.z) == NodeState::Faulty ||
           grid_.at(c.x, c.y, c.z) == NodeState::CantReach;
  };

  auto blocked_pos = [&](Coord3 c) {
    const Coord3 px{c.x + 1, c.y, c.z}, py{c.x, c.y + 1, c.z},
        pz{c.x, c.y, c.z + 1};
    if (!mesh.contains(px) || !mesh.contains(py) || !mesh.contains(pz))
      return false;
    return blocks_pos(px) && blocks_pos(py) && blocks_pos(pz);
  };
  auto blocked_neg = [&](Coord3 c) {
    const Coord3 mx{c.x - 1, c.y, c.z}, my{c.x, c.y - 1, c.z},
        mz{c.x, c.y, c.z - 1};
    if (!mesh.contains(mx) || !mesh.contains(my) || !mesh.contains(mz))
      return false;
    return blocks_neg(mx) && blocks_neg(my) && blocks_neg(mz);
  };
  auto for_each_nb = [&](Coord3 c, auto&& fn) {
    mesh.for_each_neighbor(c, [&](Coord3 nb, mesh::Dir3) { fn(nb); });
  };

  fixpoint<mesh::Mesh3D, Coord3>(mesh, grid_, for_each_nb, blocked_pos,
                                 blocked_neg, useless_, cant_reach_);
  healthy_unsafe_ = useless_ + cant_reach_;
}

}  // namespace mcc::core
