// Node labelling — the paper's Algorithm 1 (2-D) and Algorithm 4 (3-D).
//
// For the canonical routing octant (source at origin, destination toward
// +X/+Y/+Z), a healthy node is
//   * useless      if ALL its positive-direction neighbors are faulty or
//                  useless (2-D: +X and +Y; 3-D: +X, +Y and +Z) — once a
//                  minimal routing enters it, the next move must go backward;
//   * can't-reach  if ALL its negative-direction neighbors are faulty or
//                  can't-reach — entering it requires a backward move.
// Labelling iterates to a fixpoint (the centralized equivalent of the
// paper's neighbor-message relabelling; proto/labeling_proto.* is the real
// distributed version and must produce identical labels).
//
// Mesh walls do NOT count as faulty (see DESIGN.md §2/§8): a border node
// keeps its safe label even though a direction is missing.
#pragma once

#include <cstdint>

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::core {

enum class NodeState : uint8_t {
  Safe = 0,
  Faulty = 1,
  Useless = 2,
  CantReach = 3,
};

/// True for faulty, useless and can't-reach nodes (the paper's "unsafe").
inline bool is_unsafe(NodeState s) { return s != NodeState::Safe; }

const char* to_string(NodeState s);

/// Per-node labels for one orientation class of a 2-D mesh.
class LabelField2D {
 public:
  /// Runs Algorithm 1 to fixpoint for the canonical (+X,+Y) quadrant.
  LabelField2D(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults);

  NodeState state(mesh::Coord2 c) const { return grid_.at(c.x, c.y); }
  bool unsafe(mesh::Coord2 c) const { return is_unsafe(state(c)); }
  bool safe(mesh::Coord2 c) const { return !unsafe(c); }

  /// Number of healthy nodes absorbed into fault regions (useless +
  /// can't-reach). This is the paper's headline "non-faulty nodes included
  /// in MCCs" metric.
  int healthy_unsafe_count() const { return healthy_unsafe_; }
  int useless_count() const { return useless_; }
  int cant_reach_count() const { return cant_reach_; }

  const util::Grid2<NodeState>& grid() const { return grid_; }

 private:
  util::Grid2<NodeState> grid_;
  int healthy_unsafe_ = 0;
  int useless_ = 0;
  int cant_reach_ = 0;
};

/// Per-node labels for one orientation class of a 3-D mesh (Algorithm 4).
class LabelField3D {
 public:
  LabelField3D(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults);

  NodeState state(mesh::Coord3 c) const { return grid_.at(c.x, c.y, c.z); }
  bool unsafe(mesh::Coord3 c) const { return is_unsafe(state(c)); }
  bool safe(mesh::Coord3 c) const { return !unsafe(c); }

  int healthy_unsafe_count() const { return healthy_unsafe_; }
  int useless_count() const { return useless_; }
  int cant_reach_count() const { return cant_reach_; }

  const util::Grid3<NodeState>& grid() const { return grid_; }

 private:
  util::Grid3<NodeState> grid_;
  int healthy_unsafe_ = 0;
  int useless_ = 0;
  int cant_reach_ = 0;
};

}  // namespace mcc::core
