// Node labelling — the paper's Algorithm 1 (2-D) and Algorithm 4 (3-D).
//
// For the canonical routing octant (source at origin, destination toward
// +X/+Y/+Z), a healthy node is
//   * useless      if ALL its positive-direction neighbors are faulty or
//                  useless (2-D: +X and +Y; 3-D: +X, +Y and +Z) — once a
//                  minimal routing enters it, the next move must go backward;
//   * can't-reach  if ALL its negative-direction neighbors are faulty or
//                  can't-reach — entering it requires a backward move.
// Labelling iterates to a fixpoint (the centralized equivalent of the
// paper's neighbor-message relabelling; proto/labeling_proto.* is the real
// distributed version and must produce identical labels).
//
// Mesh walls do NOT count as faulty (see DESIGN.md §2/§8): a border node
// keeps its safe label even though a direction is missing.
//
// Dynamic faults: apply_fault / apply_repair relabel incrementally. A new
// fault only strengthens the blocking predicates, so a worklist seeded at
// the struck node's neighbors reaches exactly the cascade (Safe -> unsafe
// transitions are monotone). A repair can only weaken them, and every
// unsafe label's support chain stays inside the orthogonally-connected
// unsafe component of the repaired node, so resetting that component to
// Safe and re-running the same fixpoint from those seeds is exact. Both
// hooks return the cells whose label changed; tests/test_runtime.cc proves
// the result bit-identical to a fresh rebuild across randomized churn.
//
// One caveat makes the hooks guard themselves: when a healthy node is
// simultaneously useless-forced AND can't-reach-forced (every positive
// neighbor faulty-or-useless and every negative neighbor faulty-or-
// can't-reach — only possible in dense fault pockets), the kind it is
// claimed with depends on the worklist schedule, so a seeded pass could
// disagree with the constructor's row-major pass. The fields therefore
// track the count of such doubly-blocked cells; whenever an event touches
// or leaves a configuration containing any, the hook falls back to a full
// constructor-equivalent relabel, which is bit-identical to a fresh build
// by definition. At the paper's operating fault rates the count is zero
// and the fallback never triggers (bench_e12 reports how often it does).
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::core {

enum class NodeState : uint8_t {
  Safe = 0,
  Faulty = 1,
  Useless = 2,
  CantReach = 3,
};

/// True for faulty, useless and can't-reach nodes (the paper's "unsafe").
inline bool is_unsafe(NodeState s) { return s != NodeState::Safe; }

const char* to_string(NodeState s);

/// Per-node labels for one orientation class of a 2-D mesh.
class LabelField2D {
 public:
  /// Runs Algorithm 1 to fixpoint for the canonical (+X,+Y) quadrant.
  LabelField2D(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults);

  NodeState state(mesh::Coord2 c) const { return grid_.at(c.x, c.y); }
  bool unsafe(mesh::Coord2 c) const { return is_unsafe(state(c)); }
  bool safe(mesh::Coord2 c) const { return !unsafe(c); }

  /// Incremental relabel after node c fails (no-op when already faulty).
  /// Returns every cell whose label changed, the struck node included;
  /// ordering is unspecified (the ambiguity fallback reports a scan-order
  /// diff, the incremental pass its cascade order).
  std::vector<mesh::Coord2> apply_fault(const mesh::Mesh2D& mesh,
                                        mesh::Coord2 c);
  /// Incremental relabel after node c is repaired (no-op unless faulty).
  std::vector<mesh::Coord2> apply_repair(const mesh::Mesh2D& mesh,
                                         mesh::Coord2 c);

  /// Number of healthy nodes absorbed into fault regions (useless +
  /// can't-reach). This is the paper's headline "non-faulty nodes included
  /// in MCCs" metric.
  int healthy_unsafe_count() const { return healthy_unsafe_; }
  int useless_count() const { return useless_; }
  int cant_reach_count() const { return cant_reach_; }

  const util::Grid2<NodeState>& grid() const { return grid_; }

  /// Healthy cells currently forced by BOTH label systems (see header).
  /// Non-zero means incremental events fall back to full relabels.
  int ambiguous_count() const { return ambiguous_; }

  /// True when the most recent apply_fault/apply_repair took the full-
  /// relabel fallback (the event started in or produced an ambiguous
  /// configuration). bench_e12 reports the frequency.
  bool last_event_fell_back() const { return fell_back_; }

 private:
  util::Grid2<NodeState> grid_;
  util::Grid2<uint8_t> both_;  // doubly-blocked flags backing ambiguous_
  int healthy_unsafe_ = 0;
  int useless_ = 0;
  int cant_reach_ = 0;
  int ambiguous_ = 0;
  bool fell_back_ = false;
};

/// Per-node labels for one orientation class of a 3-D mesh (Algorithm 4).
class LabelField3D {
 public:
  LabelField3D(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults);

  NodeState state(mesh::Coord3 c) const { return grid_.at(c.x, c.y, c.z); }
  bool unsafe(mesh::Coord3 c) const { return is_unsafe(state(c)); }
  bool safe(mesh::Coord3 c) const { return !unsafe(c); }

  std::vector<mesh::Coord3> apply_fault(const mesh::Mesh3D& mesh,
                                        mesh::Coord3 c);
  std::vector<mesh::Coord3> apply_repair(const mesh::Mesh3D& mesh,
                                         mesh::Coord3 c);

  int healthy_unsafe_count() const { return healthy_unsafe_; }
  int useless_count() const { return useless_; }
  int cant_reach_count() const { return cant_reach_; }

  const util::Grid3<NodeState>& grid() const { return grid_; }

  int ambiguous_count() const { return ambiguous_; }

  bool last_event_fell_back() const { return fell_back_; }

 private:
  util::Grid3<NodeState> grid_;
  util::Grid3<uint8_t> both_;
  int healthy_unsafe_ = 0;
  int useless_ = 0;
  int cant_reach_ = 0;
  int ambiguous_ = 0;
  bool fell_back_ = false;
};

}  // namespace mcc::core
