#include "core/mcc_region.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_set>

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;

namespace {

// One component flood + contour derivation, shared by the constructor scan
// and the incremental update (both must produce byte-identical regions for
// the same seed and labels).
MccRegion2D extract2d(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                      util::Grid2<int32_t>& comp, Coord2 seed, int id,
                      Connectivity conn) {
  MccRegion2D r;
  r.id = id;
  r.x0 = r.x1 = seed.x;
  r.y0 = r.y1 = seed.y;

  std::deque<Coord2> work{seed};
  comp.at(seed.x, seed.y) = id;
  while (!work.empty()) {
    const Coord2 c = work.front();
    work.pop_front();
    r.cells.push_back(c);
    if (labels.state(c) == NodeState::Faulty)
      ++r.faulty_cells;
    else
      ++r.healthy_cells;
    r.x0 = std::min(r.x0, c.x);
    r.x1 = std::max(r.x1, c.x);
    r.y0 = std::min(r.y0, c.y);
    r.y1 = std::max(r.y1, c.y);
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        if (conn == Connectivity::Ortho && dx != 0 && dy != 0) continue;
        const Coord2 nb{c.x + dx, c.y + dy};
        if (!mesh.contains(nb)) continue;
        if (labels.unsafe(nb) && comp.at(nb.x, nb.y) == -1) {
          comp.at(nb.x, nb.y) = id;
          work.push_back(nb);
        }
      }
  }

  const int w = r.width(), h = r.height();
  r.bot.assign(w, std::numeric_limits<int>::max());
  r.top.assign(w, std::numeric_limits<int>::min());
  r.left.assign(h, std::numeric_limits<int>::max());
  r.right.assign(h, std::numeric_limits<int>::min());
  util::Grid2<uint8_t> mask(w, h, uint8_t{0});
  for (const Coord2 c : r.cells) {
    const int cx = c.x - r.x0, cy = c.y - r.y0;
    mask.at(cx, cy) = 1;
    r.bot[cx] = std::min(r.bot[cx], c.y);
    r.top[cx] = std::max(r.top[cx], c.y);
    r.left[cy] = std::min(r.left[cy], c.x);
    r.right[cy] = std::max(r.right[cy], c.x);
  }

  // Staircase invariants (see header). Columns/rows of a component are
  // never empty because components are built over their bounding box by
  // connectivity, but we still guard against gaps defensively.
  for (int cx = 0; cx < w; ++cx) {
    for (int cy = r.bot[cx] - r.y0; cy <= r.top[cx] - r.y0; ++cy)
      if (!mask.at(cx, cy)) r.column_spans_contiguous = false;
    if (cx > 0 && (r.bot[cx] < r.bot[cx - 1] || r.top[cx] < r.top[cx - 1]))
      r.monotone_ascending = false;
  }
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = r.left[cy] - r.x0; cx <= r.right[cy] - r.x0; ++cx)
      if (!mask.at(cx, cy)) r.row_spans_contiguous = false;
    if (cy > 0 && (r.left[cy] < r.left[cy - 1] || r.right[cy] < r.right[cy - 1]))
      r.monotone_ascending = false;
  }
  return r;
}

MccRegion3D extract3d(const mesh::Mesh3D& mesh, const LabelField3D& labels,
                      util::Grid3<int32_t>& comp, Coord3 seed, int id) {
  MccRegion3D r;
  r.id = id;
  r.x0 = r.x1 = seed.x;
  r.y0 = r.y1 = seed.y;
  r.z0 = r.z1 = seed.z;

  std::deque<Coord3> work{seed};
  comp.at(seed.x, seed.y, seed.z) = id;
  while (!work.empty()) {
    const Coord3 c = work.front();
    work.pop_front();
    r.cells.push_back(c);
    if (labels.state(c) == NodeState::Faulty)
      ++r.faulty_cells;
    else
      ++r.healthy_cells;
    r.x0 = std::min(r.x0, c.x);
    r.x1 = std::max(r.x1, c.x);
    r.y0 = std::min(r.y0, c.y);
    r.y1 = std::max(r.y1, c.y);
    r.z0 = std::min(r.z0, c.z);
    r.z1 = std::max(r.z1, c.z);
    // 18-adjacency (faces + edges, no corners): the paper's Figure 5
    // groups diagonally-touching cells of one plane section into the
    // same MCC ((6,7,5) with (5,6,5)), yet keeps the corner-touching
    // fault (7,8,4) separate.
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int changed = (dx != 0) + (dy != 0) + (dz != 0);
          if (changed == 0 || changed == 3) continue;
          const Coord3 nb{c.x + dx, c.y + dy, c.z + dz};
          if (!mesh.contains(nb)) continue;
          if (labels.unsafe(nb) && comp.at(nb.x, nb.y, nb.z) == -1) {
            comp.at(nb.x, nb.y, nb.z) = id;
            work.push_back(nb);
          }
        }
  }

  const int w = r.x1 - r.x0 + 1;
  const int h = r.y1 - r.y0 + 1;
  const int dpt = r.z1 - r.z0 + 1;
  const std::pair<int16_t, int16_t> empty{1, 0};
  r.z_span = util::Grid2<std::pair<int16_t, int16_t>>(w, h, empty);
  r.y_span = util::Grid2<std::pair<int16_t, int16_t>>(w, dpt, empty);
  r.x_span = util::Grid2<std::pair<int16_t, int16_t>>(h, dpt, empty);
  auto widen = [](std::pair<int16_t, int16_t>& s, int v) {
    if (s.first > s.second) {
      s = {static_cast<int16_t>(v), static_cast<int16_t>(v)};
    } else {
      s.first = std::min<int16_t>(s.first, static_cast<int16_t>(v));
      s.second = std::max<int16_t>(s.second, static_cast<int16_t>(v));
    }
  };
  for (const Coord3 c : r.cells) {
    widen(r.z_span.at(c.x - r.x0, c.y - r.y0), c.z);
    widen(r.y_span.at(c.x - r.x0, c.z - r.z0), c.y);
    widen(r.x_span.at(c.y - r.y0, c.z - r.z0), c.x);
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// 2-D

MccSet2D::MccSet2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                   Connectivity conn)
    : comp_(mesh.nx(), mesh.ny(), int32_t{-1}), conn_(conn) {
  for (int ys = 0; ys < mesh.ny(); ++ys)
    for (int xs = 0; xs < mesh.nx(); ++xs) {
      const Coord2 seed{xs, ys};
      if (!labels.unsafe(seed) || comp_.at(xs, ys) != -1) continue;
      regions_.push_back(extract2d(mesh, labels, comp_, seed,
                                   static_cast<int>(regions_.size()), conn_));
    }
}

int MccSet2D::alloc_id() {
  if (!free_ids_.empty()) {
    const int id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  regions_.emplace_back();
  return static_cast<int>(regions_.size()) - 1;
}

RegionUpdate MccSet2D::update(const mesh::Mesh2D& mesh,
                              const LabelField2D& labels,
                              const std::vector<Coord2>& changed) {
  RegionUpdate rep;
  if (changed.empty()) return rep;

  // 1. Every region holding a changed cell dies (split/shrink), and every
  //    region adjacent to a cell that BECAME unsafe dies too (it merges
  //    with the new cell). Two live regions are never conn-adjacent, so no
  //    other region's cell set can be affected.
  std::unordered_set<int> dead;
  auto note = [&](Coord2 c) {
    const int id = comp_.at(c.x, c.y);
    if (id >= 0) dead.insert(id);
  };
  for (const Coord2 c : changed) {
    note(c);
    if (!labels.unsafe(c)) continue;
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        if (conn_ == Connectivity::Ortho && dx != 0 && dy != 0) continue;
        const Coord2 nb{c.x + dx, c.y + dy};
        if (mesh.contains(nb)) note(nb);
      }
  }

  // 2. Clear the dead regions; their cells plus the changed cells are the
  //    only possible seeds of re-extraction.
  std::vector<Coord2> domain(changed);
  for (const int id : dead) {
    for (const Coord2 c : regions_[id].cells) {
      comp_.at(c.x, c.y) = -1;
      domain.push_back(c);
    }
    regions_[id] = MccRegion2D{};
    rep.removed.push_back(id);
  }
  std::sort(rep.removed.begin(), rep.removed.end());

  // 3. Deterministic re-extraction in row-major seed order. Freed ids are
  //    recycled only by LATER events so one event never reports the same
  //    id as removed and added.
  std::sort(domain.begin(), domain.end(), [&](Coord2 a, Coord2 b) {
    return mesh.index(a) < mesh.index(b);
  });
  for (const Coord2 seed : domain) {
    if (!labels.unsafe(seed) || comp_.at(seed.x, seed.y) != -1) continue;
    const int id = alloc_id();
    regions_[id] = extract2d(mesh, labels, comp_, seed, id, conn_);
    rep.added.push_back(id);
  }
  for (const int id : rep.removed) free_ids_.push_back(id);
  std::sort(free_ids_.begin(), free_ids_.end(), std::greater<int>());
  return rep;
}

// ---------------------------------------------------------------------------
// 3-D

MccSet3D::MccSet3D(const mesh::Mesh3D& mesh, const LabelField3D& labels)
    : comp_(mesh.nx(), mesh.ny(), mesh.nz(), int32_t{-1}) {
  for (int zs = 0; zs < mesh.nz(); ++zs)
    for (int ys = 0; ys < mesh.ny(); ++ys)
      for (int xs = 0; xs < mesh.nx(); ++xs) {
        const Coord3 seed{xs, ys, zs};
        if (!labels.unsafe(seed) || comp_.at(xs, ys, zs) != -1) continue;
        regions_.push_back(extract3d(mesh, labels, comp_, seed,
                                     static_cast<int>(regions_.size())));
      }
}

int MccSet3D::alloc_id() {
  if (!free_ids_.empty()) {
    const int id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  regions_.emplace_back();
  return static_cast<int>(regions_.size()) - 1;
}

RegionUpdate MccSet3D::update(const mesh::Mesh3D& mesh,
                              const LabelField3D& labels,
                              const std::vector<Coord3>& changed) {
  RegionUpdate rep;
  if (changed.empty()) return rep;

  std::unordered_set<int> dead;
  auto note = [&](Coord3 c) {
    const int id = comp_.at(c.x, c.y, c.z);
    if (id >= 0) dead.insert(id);
  };
  for (const Coord3 c : changed) {
    note(c);
    if (!labels.unsafe(c)) continue;
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int moved = (dx != 0) + (dy != 0) + (dz != 0);
          if (moved == 0 || moved == 3) continue;
          const Coord3 nb{c.x + dx, c.y + dy, c.z + dz};
          if (mesh.contains(nb)) note(nb);
        }
  }

  std::vector<Coord3> domain(changed);
  for (const int id : dead) {
    for (const Coord3 c : regions_[id].cells) {
      comp_.at(c.x, c.y, c.z) = -1;
      domain.push_back(c);
    }
    regions_[id] = MccRegion3D{};
    rep.removed.push_back(id);
  }
  std::sort(rep.removed.begin(), rep.removed.end());

  std::sort(domain.begin(), domain.end(), [&](Coord3 a, Coord3 b) {
    return mesh.index(a) < mesh.index(b);
  });
  for (const Coord3 seed : domain) {
    if (!labels.unsafe(seed) || comp_.at(seed.x, seed.y, seed.z) != -1)
      continue;
    const int id = alloc_id();
    regions_[id] = extract3d(mesh, labels, comp_, seed, id);
    rep.added.push_back(id);
  }
  for (const int id : rep.removed) free_ids_.push_back(id);
  std::sort(free_ids_.begin(), free_ids_.end(), std::greater<int>());
  return rep;
}

}  // namespace mcc::core
