// MCC extraction and region geometry.
//
// After labelling, the orthogonally-connected components of unsafe nodes are
// the paper's Minimal Connected Components. In 2-D each component is a
// rectilinear monotone ("ascending staircase") polyomino for the canonical
// quadrant; this file materializes the per-column/per-row contours and the
// four derived regions:
//
//   QY  (forbidden, guards +X): below the staircase within its column range
//   Q'Y (critical):             above the staircase within its column range
//   QX  (forbidden, guards +Y): west of the staircase within its row range
//   Q'X (critical):             east of the staircase within its row range
//
// The initialization corner c = (x0-1, b(x0)-1) is the SW "nose" from which
// both boundary lines emanate (paper §3). In 3-D, sections need not be
// convex and may contain holes, so only axis shadow contours are exposed
// (used for statistics and the record-based router; ground truth in 3-D is
// the detection flood / reachability field).
#pragma once

#include <optional>
#include <vector>

#include "core/labeling.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::core {

/// One 2-D MCC with its staircase contours.
struct MccRegion2D {
  int id = -1;
  std::vector<mesh::Coord2> cells;
  int faulty_cells = 0;
  int healthy_cells = 0;

  // Bounding box.
  int x0 = 0, x1 = -1, y0 = 0, y1 = -1;

  // Per-column [x0..x1] bottom/top rows, per-row [y0..y1] left/right columns.
  std::vector<int> bot, top, left, right;

  // Staircase invariants observed during construction (property-tested to
  // always hold after labelling; kept as data so violations are detectable).
  bool column_spans_contiguous = true;
  bool row_spans_contiguous = true;
  bool monotone_ascending = true;

  int width() const { return x1 - x0 + 1; }
  int height() const { return y1 - y0 + 1; }

  int bottom_at(int x) const { return bot[x - x0]; }
  int top_at(int x) const { return top[x - x0]; }
  int left_at(int y) const { return left[y - y0]; }
  int right_at(int y) const { return right[y - y0]; }

  /// Region predicates (canonical quadrant).
  bool in_forbidden_y(mesh::Coord2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y < bottom_at(p.x) && p.y >= 0;
  }
  bool in_critical_y(mesh::Coord2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y > top_at(p.x);
  }
  bool in_forbidden_x(mesh::Coord2 p) const {
    return p.y >= y0 && p.y <= y1 && p.x < left_at(p.y) && p.x >= 0;
  }
  bool in_critical_x(mesh::Coord2 p) const {
    return p.y >= y0 && p.y <= y1 && p.x > right_at(p.y);
  }

  /// Initialization corner (may fall outside the mesh when the region
  /// touches the south or west wall; boundary construction then skips the
  /// corresponding wall — the forbidden region cannot be entered).
  mesh::Coord2 corner() const { return {x0 - 1, bot.front() - 1}; }
};

/// Region grouping convention. Orthogonal components are Wang's
/// rectilinear polyominoes (the 2-D core theory). Eight-connectivity also
/// glues diagonally-touching cells — the grouping the paper's contour-walk
/// identification produces (its 3-D Figure 5 uses the same convention);
/// the distributed protocols validate against it.
enum class Connectivity : uint8_t { Ortho, Eight };

/// Merge/split report of one incremental `update` call (the dynamic
/// runtime's region hook). A region whose cell set changed in any way is
/// reported as removed and re-added under a fresh id; ids of untouched
/// regions are stable across events. A merge therefore shows up as N
/// removed + 1 added, a split as 1 removed + N added.
struct RegionUpdate {
  std::vector<int> removed;
  std::vector<int> added;

  bool empty() const { return removed.empty() && added.empty(); }
};

/// All MCCs of one labelled 2-D mesh plus the cell->region index.
///
/// After construction the set can be maintained incrementally: `update`
/// re-derives exactly the components that gained or lost cells, keeping
/// every other region's id, geometry and contours untouched (dead ids
/// become tombstone entries whose predicates are all-false; freed ids are
/// recycled by later events). A fresh MccSet2D over the same labels yields
/// the same partition up to the id bijection — tests/test_runtime.cc
/// proves it across randomized churn.
class MccSet2D {
 public:
  MccSet2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
           Connectivity conn = Connectivity::Ortho);

  const std::vector<MccRegion2D>& regions() const { return regions_; }

  /// Region id at c, or -1 for safe nodes.
  int region_at(mesh::Coord2 c) const { return comp_.at(c.x, c.y); }

  const MccRegion2D& region(int id) const { return regions_[id]; }

  /// True when `id` names a live region (tombstones and out-of-range fail).
  bool live(int id) const {
    return id >= 0 && id < static_cast<int>(regions_.size()) &&
           regions_[id].id == id;
  }

  /// Incrementally re-partitions after the cells in `changed` flipped
  /// their safe/unsafe label. `labels` must already be updated.
  RegionUpdate update(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                      const std::vector<mesh::Coord2>& changed);

 private:
  int alloc_id();

  util::Grid2<int32_t> comp_;
  std::vector<MccRegion2D> regions_;
  Connectivity conn_ = Connectivity::Ortho;
  std::vector<int> free_ids_;  // tombstone slots available for reuse
};

/// One 3-D MCC. Shadow contours give, for each axis-aligned line through
/// the bounding box, the min/max coordinate of the region on that line
/// (or an empty marker when the line misses the region).
struct MccRegion3D {
  int id = -1;
  std::vector<mesh::Coord3> cells;
  int faulty_cells = 0;
  int healthy_cells = 0;

  int x0 = 0, x1 = -1, y0 = 0, y1 = -1, z0 = 0, z1 = -1;

  // Shadow maps sized (extent of the two orthogonal axes); value.first = min
  // coordinate, value.second = max, or {1,0} (empty) when the line misses.
  util::Grid2<std::pair<int16_t, int16_t>> z_span;  // indexed (x-x0, y-y0)
  util::Grid2<std::pair<int16_t, int16_t>> y_span;  // indexed (x-x0, z-z0)
  util::Grid2<std::pair<int16_t, int16_t>> x_span;  // indexed (y-y0, z-z0)

  bool line_hits_z(int x, int y) const {
    if (x < x0 || x > x1 || y < y0 || y > y1) return false;
    const auto s = z_span.at(x - x0, y - y0);
    return s.first <= s.second;
  }
  bool line_hits_y(int x, int z) const {
    if (x < x0 || x > x1 || z < z0 || z > z1) return false;
    const auto s = y_span.at(x - x0, z - z0);
    return s.first <= s.second;
  }
  bool line_hits_x(int y, int z) const {
    if (y < y0 || y > y1 || z < z0 || z > z1) return false;
    const auto s = x_span.at(y - y0, z - z0);
    return s.first <= s.second;
  }

  /// Forbidden/critical shadow predicates (pragmatic 3-D analogue of the
  /// 2-D regions; see DESIGN.md §2).
  bool in_forbidden_z(mesh::Coord3 p) const {
    return line_hits_z(p.x, p.y) &&
           p.z < z_span.at(p.x - x0, p.y - y0).first;
  }
  bool in_critical_z(mesh::Coord3 p) const {
    return line_hits_z(p.x, p.y) &&
           p.z > z_span.at(p.x - x0, p.y - y0).second;
  }
  bool in_forbidden_y(mesh::Coord3 p) const {
    return line_hits_y(p.x, p.z) &&
           p.y < y_span.at(p.x - x0, p.z - z0).first;
  }
  bool in_critical_y(mesh::Coord3 p) const {
    return line_hits_y(p.x, p.z) &&
           p.y > y_span.at(p.x - x0, p.z - z0).second;
  }
  bool in_forbidden_x(mesh::Coord3 p) const {
    return line_hits_x(p.y, p.z) &&
           p.x < x_span.at(p.y - y0, p.z - z0).first;
  }
  bool in_critical_x(mesh::Coord3 p) const {
    return line_hits_x(p.y, p.z) &&
           p.x > x_span.at(p.y - y0, p.z - z0).second;
  }
};

class MccSet3D {
 public:
  MccSet3D(const mesh::Mesh3D& mesh, const LabelField3D& labels);

  const std::vector<MccRegion3D>& regions() const { return regions_; }
  int region_at(mesh::Coord3 c) const { return comp_.at(c.x, c.y, c.z); }
  const MccRegion3D& region(int id) const { return regions_[id]; }

  bool live(int id) const {
    return id >= 0 && id < static_cast<int>(regions_.size()) &&
           regions_[id].id == id;
  }

  /// 3-D analogue of MccSet2D::update (18-adjacency, shadow spans).
  RegionUpdate update(const mesh::Mesh3D& mesh, const LabelField3D& labels,
                      const std::vector<mesh::Coord3>& changed);

 private:
  int alloc_id();

  util::Grid3<int32_t> comp_;
  std::vector<MccRegion3D> regions_;
  std::vector<int> free_ids_;
};

}  // namespace mcc::core
