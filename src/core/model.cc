#include "core/model.h"

#include "mesh/slice.h"

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;

const char* to_string(RouterKind k) {
  switch (k) {
    case RouterKind::Oracle: return "oracle";
    case RouterKind::Records: return "records";
    case RouterKind::Flood: return "flood";
    case RouterKind::LabelsOnly: return "labels-only";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// 2-D

MccModel2D::MccModel2D(const mesh::Mesh2D& mesh, mesh::FaultSet2D faults)
    : mesh_(mesh), faults_(std::move(faults)) {}

const OctantModel2D& MccModel2D::octant(mesh::Octant2 o) const {
  auto& slot = octants_[o.id()];
  if (!slot) {
    slot = std::make_unique<OctantModel2D>(mesh_,
                                           materialize(faults_, mesh_, o));
  }
  return *slot;
}

FeasibilityResult MccModel2D::feasible(Coord2 s, Coord2 d) const {
  const mesh::Octant2 o = mesh::Octant2::from_pair(s, d);
  return feasible_in_octant(mesh_, octant(o), o, s, d);
}

FeasibilityResult feasible_in_octant(const mesh::Mesh2D& mesh,
                                     const OctantModel2D& m, mesh::Octant2 o,
                                     Coord2 s, Coord2 d) {
  return mcc_feasible2d(mesh, m.labels, o.transform(s, mesh),
                        o.transform(d, mesh));
}

RouteResult2D MccModel2D::route(Coord2 s, Coord2 d, RouterKind kind,
                                RoutePolicy policy, uint64_t seed) const {
  const mesh::Octant2 o = mesh::Octant2::from_pair(s, d);
  return route_in_octant(mesh_, octant(o), o, s, d, kind, policy, seed);
}

RouteResult2D route_in_octant(const mesh::Mesh2D& mesh_,
                              const OctantModel2D& m, mesh::Octant2 o,
                              Coord2 s, Coord2 d, RouterKind kind,
                              RoutePolicy policy, uint64_t seed) {
  const Coord2 cs = o.transform(s, mesh_);
  const Coord2 cd = o.transform(d, mesh_);

  const FeasibilityResult feas = mcc_feasible2d(mesh_, m.labels, cs, cd);
  RouteResult2D res;
  if (!feas.feasible) {
    res.path.push_back(s);
    res.failure = "infeasible";
    return res;
  }
  if (cs == cd) {
    res.delivered = true;
    res.path.push_back(s);
    return res;
  }
  if (cs.x == cd.x || cs.y == cd.y) {
    // Degenerate pair: the unique minimal path is the straight line, which
    // legitimately passes through unsafe-but-healthy nodes.
    res.delivered = true;
    Coord2 u = cs;
    res.path.push_back(o.untransform(u, mesh_));
    while (!(u == cd)) {
      if (u.x < cd.x)
        ++u.x;
      else
        ++u.y;
      res.path.push_back(o.untransform(u, mesh_));
    }
    return res;
  }

  util::Rng rng(seed);
  std::unique_ptr<Guidance2D> guidance;
  if (feas.basis == FeasibilityBasis::OracleFallback) {
    // Endpoint unsafe-but-alive: route over all non-faulty nodes.
    guidance = std::make_unique<OracleGuidance2D>(mesh_, m.labels, cd,
                                                  NodeFilter::NonFaulty);
  } else {
    switch (kind) {
      case RouterKind::Oracle:
      case RouterKind::Flood:  // 2-D flood == walker == oracle field
        guidance = std::make_unique<OracleGuidance2D>(mesh_, m.labels, cd);
        break;
      case RouterKind::Records:
        guidance = std::make_unique<RecordGuidance2D>(m.labels, m.mccs,
                                                      m.boundary, cd);
        break;
      case RouterKind::LabelsOnly:
        guidance = std::make_unique<LabelsOnlyGuidance2D>(m.labels, cd);
        break;
    }
  }

  res = route2d(mesh_, cs, cd, *guidance, policy, rng);
  for (Coord2& c : res.path) c = o.untransform(c, mesh_);
  return res;
}

// ---------------------------------------------------------------------------
// 3-D

MccModel3D::MccModel3D(const mesh::Mesh3D& mesh, mesh::FaultSet3D faults)
    : mesh_(mesh), faults_(std::move(faults)) {}

const OctantModel3D& MccModel3D::octant(mesh::Octant3 o) const {
  auto& slot = octants_[o.id()];
  if (!slot) {
    slot = std::make_unique<OctantModel3D>(mesh_,
                                           materialize(faults_, mesh_, o));
  }
  return *slot;
}

FeasibilityResult MccModel3D::feasible(Coord3 s, Coord3 d) const {
  const mesh::Octant3 o = mesh::Octant3::from_pair(s, d);
  return feasible_in_octant(mesh_, octant(o), o, s, d);
}

FeasibilityResult feasible_in_octant(const mesh::Mesh3D& mesh,
                                     const OctantModel3D& m, mesh::Octant3 o,
                                     Coord3 s, Coord3 d) {
  return mcc_feasible3d(mesh, m.faults, m.labels, o.transform(s, mesh),
                        o.transform(d, mesh));
}

RouteResult3D MccModel3D::route(Coord3 s, Coord3 d, RouterKind kind,
                                RoutePolicy policy, uint64_t seed) const {
  const mesh::Octant3 o = mesh::Octant3::from_pair(s, d);
  return route_in_octant(mesh_, octant(o), o, s, d, kind, policy, seed);
}

RouteResult3D route_in_octant(const mesh::Mesh3D& mesh_,
                              const OctantModel3D& m, mesh::Octant3 o,
                              Coord3 s, Coord3 d, RouterKind kind,
                              RoutePolicy policy, uint64_t seed) {
  const Coord3 cs = o.transform(s, mesh_);
  const Coord3 cd = o.transform(d, mesh_);

  const FeasibilityResult feas =
      mcc_feasible3d(mesh_, m.faults, m.labels, cs, cd);
  RouteResult3D res;
  if (!feas.feasible) {
    res.path.push_back(s);
    res.failure = "infeasible";
    return res;
  }
  if (cs == cd) {
    res.delivered = true;
    res.path.push_back(s);
    return res;
  }

  const int degenerate = (cs.x == cd.x ? 1 : 0) + (cs.y == cd.y ? 1 : 0) +
                         (cs.z == cd.z ? 1 : 0);
  if (degenerate == 2) {
    res.delivered = true;
    Coord3 u = cs;
    res.path.push_back(o.untransform(u, mesh_));
    while (!(u == cd)) {
      if (u.x < cd.x)
        ++u.x;
      else if (u.y < cd.y)
        ++u.y;
      else
        ++u.z;
      res.path.push_back(o.untransform(u, mesh_));
    }
    return res;
  }
  if (degenerate == 1) {
    // Confined to one plane: delegate to the exact 2-D model of the slice.
    mesh::Plane plane;
    int level;
    if (cs.z == cd.z) {
      plane = mesh::Plane::XY;
      level = cs.z;
    } else if (cs.y == cd.y) {
      plane = mesh::Plane::XZ;
      level = cs.y;
    } else {
      plane = mesh::Plane::YZ;
      level = cs.x;
    }
    const mesh::Mesh2D m2 = mesh::slice_mesh(mesh_, plane);
    MccModel2D slice_model(m2, mesh::slice_faults(mesh_, m.faults, plane,
                                                  level));
    const RouteResult2D sub =
        slice_model.route(mesh::slice_coord(plane, cs),
                          mesh::slice_coord(plane, cd), kind, policy, seed);
    res.delivered = sub.delivered;
    res.failure = sub.failure;
    res.stats = sub.stats;
    for (const Coord2 c : sub.path)
      res.path.push_back(o.untransform(mesh::unslice(plane, c, level), mesh_));
    return res;
  }

  util::Rng rng(seed);
  std::unique_ptr<Guidance3D> guidance;
  if (feas.basis == FeasibilityBasis::OracleFallback) {
    guidance = std::make_unique<OracleGuidance3D>(mesh_, m.labels, cd,
                                                  NodeFilter::NonFaulty);
  } else {
    switch (kind) {
      case RouterKind::Oracle:
      case RouterKind::Records:  // 3-D records == per-hop floods (see
                                 // DESIGN.md §8 on Algorithm 5 fidelity)
        guidance = std::make_unique<OracleGuidance3D>(mesh_, m.labels, cd);
        break;
      case RouterKind::Flood:
        guidance = std::make_unique<FloodGuidance3D>(mesh_, m.labels, cd);
        break;
      case RouterKind::LabelsOnly:
        guidance = std::make_unique<LabelsOnlyGuidance3D>(m.labels, cd);
        break;
    }
  }

  res = route3d(mesh_, cs, cd, *guidance, policy, rng);
  for (Coord3& c : res.path) c = o.untransform(c, mesh_);
  return res;
}

}  // namespace mcc::core
