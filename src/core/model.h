// Public facade of the MCC routing library.
//
// MccModel2D / MccModel3D own a mesh plus its fault set and serve
// feasibility queries and routed paths for ARBITRARY source/destination
// pairs: the pair's orientation class picks one of the 4 (2-D) or 8 (3-D)
// canonical octant models, which are materialized lazily (axis-flipped
// fault set, labels, MCCs, boundary records) and cached.
//
// Quickstart:
//   mesh::Mesh2D mesh(16, 16);
//   mesh::FaultSet2D faults(mesh); faults.set_faulty({5, 5});
//   core::MccModel2D model(mesh, faults);
//   if (model.feasible({0,0}, {10,10}).feasible) {
//     auto route = model.route({0,0}, {10,10}, core::RouterKind::Records,
//                              core::RoutePolicy::Random, /*seed=*/1);
//   }
#pragma once

#include <array>
#include <memory>

#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/mcc_region.h"
#include "core/router.h"
#include "mesh/octant.h"

namespace mcc::core {

enum class RouterKind : uint8_t {
  Oracle,      // reachability-field guidance (gold standard)
  Records,     // the paper's boundary-record rule (2-D)
  Flood,       // per-hop detection floods (3-D; in 2-D uses walkers)
  LabelsOnly,  // ablation: labels but no boundary information
};

const char* to_string(RouterKind k);

/// Everything the canonical algorithms need for one orientation class.
struct OctantModel2D {
  mesh::FaultSet2D faults;
  LabelField2D labels;
  MccSet2D mccs;
  Boundary2D boundary;

  OctantModel2D(const mesh::Mesh2D& mesh, mesh::FaultSet2D f)
      : faults(std::move(f)),
        labels(mesh, faults),
        mccs(mesh, labels),
        boundary(mesh, labels, mccs) {}
};

/// Feasibility/routing against one prepared orientation-class model, in
/// PHYSICAL coordinates (the octant describes how s/d map into the
/// canonical frame the model was built for). Shared by MccModel2D/3D and
/// the dynamic runtime (runtime::DynamicModel2D/3D), so the static and
/// incrementally-maintained stacks route byte-identically.
FeasibilityResult feasible_in_octant(const mesh::Mesh2D& mesh,
                                     const OctantModel2D& m, mesh::Octant2 o,
                                     mesh::Coord2 s, mesh::Coord2 d);
RouteResult2D route_in_octant(const mesh::Mesh2D& mesh,
                              const OctantModel2D& m, mesh::Octant2 o,
                              mesh::Coord2 s, mesh::Coord2 d, RouterKind kind,
                              RoutePolicy policy, uint64_t seed);

class MccModel2D {
 public:
  MccModel2D(const mesh::Mesh2D& mesh, mesh::FaultSet2D faults);

  const mesh::Mesh2D& mesh() const { return mesh_; }
  const mesh::FaultSet2D& faults() const { return faults_; }

  /// Lazily-built canonical model of one orientation class.
  const OctantModel2D& octant(mesh::Octant2 o) const;

  /// Minimal-path feasibility under the MCC model.
  FeasibilityResult feasible(mesh::Coord2 s, mesh::Coord2 d) const;

  /// Routes a message; returns the path in physical coordinates. The
  /// returned path is minimal whenever `delivered`.
  RouteResult2D route(mesh::Coord2 s, mesh::Coord2 d, RouterKind kind,
                      RoutePolicy policy, uint64_t seed) const;

 private:
  mesh::Mesh2D mesh_;
  mesh::FaultSet2D faults_;
  mutable std::array<std::unique_ptr<OctantModel2D>, 4> octants_;
};

struct OctantModel3D {
  mesh::FaultSet3D faults;
  LabelField3D labels;
  MccSet3D mccs;

  OctantModel3D(const mesh::Mesh3D& mesh, mesh::FaultSet3D f)
      : faults(std::move(f)), labels(mesh, faults), mccs(mesh, labels) {}
};

FeasibilityResult feasible_in_octant(const mesh::Mesh3D& mesh,
                                     const OctantModel3D& m, mesh::Octant3 o,
                                     mesh::Coord3 s, mesh::Coord3 d);
RouteResult3D route_in_octant(const mesh::Mesh3D& mesh,
                              const OctantModel3D& m, mesh::Octant3 o,
                              mesh::Coord3 s, mesh::Coord3 d, RouterKind kind,
                              RoutePolicy policy, uint64_t seed);

class MccModel3D {
 public:
  MccModel3D(const mesh::Mesh3D& mesh, mesh::FaultSet3D faults);

  const mesh::Mesh3D& mesh() const { return mesh_; }
  const mesh::FaultSet3D& faults() const { return faults_; }

  const OctantModel3D& octant(mesh::Octant3 o) const;

  FeasibilityResult feasible(mesh::Coord3 s, mesh::Coord3 d) const;

  RouteResult3D route(mesh::Coord3 s, mesh::Coord3 d, RouterKind kind,
                      RoutePolicy policy, uint64_t seed) const;

 private:
  mesh::Mesh3D mesh_;
  mesh::FaultSet3D faults_;
  mutable std::array<std::unique_ptr<OctantModel3D>, 8> octants_;
};

}  // namespace mcc::core
