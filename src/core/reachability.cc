#include "core/reachability.h"

#include "obs/profiler.h"

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;

namespace {

bool usable2(const LabelField2D& labels, Coord2 c, NodeFilter f) {
  const NodeState s = labels.state(c);
  if (f == NodeFilter::NonFaulty) return s != NodeState::Faulty;
  return s == NodeState::Safe;
}

bool usable3(const LabelField3D& labels, Coord3 c, NodeFilter f) {
  const NodeState s = labels.state(c);
  if (f == NodeFilter::NonFaulty) return s != NodeState::Faulty;
  return s == NodeState::Safe;
}

}  // namespace

ReachField2D::ReachField2D(const mesh::Mesh2D& mesh,
                           const LabelField2D& labels, Coord2 d,
                           NodeFilter filter)
    : d_(d), grid_(d.x + 1, d.y + 1, uint8_t{0}) {
  obs::ProfScope prof(obs::Phase::KernelFlood);
  (void)mesh;
  // The destination is reachable from itself as long as it is alive — the
  // model's labels never forbid *ending* at a healthy node.
  if (labels.state(d) == NodeState::Faulty) return;
  grid_.at(d.x, d.y) = 1;
  for (int y = d.y; y >= 0; --y) {
    for (int x = d.x; x >= 0; --x) {
      if (x == d.x && y == d.y) continue;
      if (!usable2(labels, {x, y}, filter)) continue;
      const bool via_x = x + 1 <= d.x && grid_.at(x + 1, y);
      const bool via_y = y + 1 <= d.y && grid_.at(x, y + 1);
      grid_.at(x, y) = via_x || via_y;
    }
  }
}

ReachField3D::ReachField3D(const mesh::Mesh3D& mesh,
                           const LabelField3D& labels, Coord3 d,
                           NodeFilter filter)
    : d_(d), grid_(d.x + 1, d.y + 1, d.z + 1, uint8_t{0}) {
  obs::ProfScope prof(obs::Phase::KernelFlood);
  (void)mesh;
  if (labels.state(d) == NodeState::Faulty) return;
  grid_.at(d.x, d.y, d.z) = 1;
  for (int z = d.z; z >= 0; --z) {
    for (int y = d.y; y >= 0; --y) {
      for (int x = d.x; x >= 0; --x) {
        if (x == d.x && y == d.y && z == d.z) continue;
        if (!usable3(labels, {x, y, z}, filter)) continue;
        const bool via_x = x + 1 <= d.x && grid_.at(x + 1, y, z);
        const bool via_y = y + 1 <= d.y && grid_.at(x, y + 1, z);
        const bool via_z = z + 1 <= d.z && grid_.at(x, y, z + 1);
        grid_.at(x, y, z) = via_x || via_y || via_z;
      }
    }
  }
}

}  // namespace mcc::core
