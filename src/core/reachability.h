// Monotone-DAG reachability fields — the library's ground-truth oracle.
//
// For a fixed destination d in the canonical octant, `feasible[u]` answers:
// does a minimal (monotone, +X/+Y(/+Z) only) path exist from u to d whose
// every node satisfies a caller-chosen usability predicate? Computed as a
// backward dynamic program over the monotone DAG in one O(N) sweep.
//
// Two standard predicates matter:
//   * non-faulty  — the true oracle ("a minimal path exists at all");
//   * safe-only   — what the MCC model permits (avoids useless/can't-reach).
// DESIGN.md §3 records the proof that the two coincide whenever s and d are
// both safe; tests/test_reachability.cc checks it empirically.
#pragma once

#include <functional>

#include "core/labeling.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::core {

/// Which nodes a path may use.
enum class NodeFilter {
  NonFaulty,  // every non-faulty node is usable
  SafeOnly,   // only safe-labelled nodes are usable
};

/// Backward reachability toward a fixed destination in a 2-D mesh.
/// Intermediate nodes AND the endpoints must pass the filter, except that
/// `d` itself is usable whenever it is non-faulty (reaching an unsafe but
/// healthy destination is legitimate; see DESIGN.md §3).
class ReachField2D {
 public:
  ReachField2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
               mesh::Coord2 d, NodeFilter filter);

  /// True iff a monotone path u -> d through usable nodes exists
  /// (u must lie in the rectangle spanned by the origin and d).
  bool feasible(mesh::Coord2 u) const {
    if (u.x > d_.x || u.y > d_.y || u.x < 0 || u.y < 0) return false;
    return grid_.at(u.x, u.y) != 0;
  }

  mesh::Coord2 destination() const { return d_; }

 private:
  mesh::Coord2 d_;
  util::Grid2<uint8_t> grid_;  // sized (d.x+1) x (d.y+1)
};

/// Backward reachability toward a fixed destination in a 3-D mesh.
class ReachField3D {
 public:
  ReachField3D(const mesh::Mesh3D& mesh, const LabelField3D& labels,
               mesh::Coord3 d, NodeFilter filter);

  bool feasible(mesh::Coord3 u) const {
    if (u.x > d_.x || u.y > d_.y || u.z > d_.z || u.x < 0 || u.y < 0 ||
        u.z < 0)
      return false;
    return grid_.at(u.x, u.y, u.z) != 0;
  }

  mesh::Coord3 destination() const { return d_; }

 private:
  mesh::Coord3 d_;
  util::Grid3<uint8_t> grid_;  // sized (d.x+1) x (d.y+1) x (d.z+1)
};

}  // namespace mcc::core
