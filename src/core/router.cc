#include "core/router.h"

#include <algorithm>

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::XFirst: return "x-first";
    case RoutePolicy::YFirst: return "y-first";
    case RoutePolicy::Random: return "random";
    case RoutePolicy::Balanced: return "balanced";
    case RoutePolicy::Alternate: return "alternate";
  }
  return "?";
}

bool RecordGuidance2D::exclude(Coord2 u, Dir2 dir, Coord2 next) const {
  // Rule 1: never step onto an unsafe node (the destination itself is
  // exempt — ending on a healthy node is always legitimate).
  if (labels_.unsafe(next) && !(next == d_)) return true;
  // Rule 2 (Algorithm 3 step 2b): a record at u filters `dir` when the
  // destination sits in the owner's critical region and the step enters a
  // chained forbidden region.
  for (const Record2D& rec : boundary_.records_at(u)) {
    if (rec.guard != dir) continue;
    const MccRegion2D& owner = mccs_.region(rec.owner);
    const bool critical = rec.guard == Dir2::PosX ? owner.in_critical_y(d_)
                                                  : owner.in_critical_x(d_);
    if (!critical) continue;
    for (const int b : *rec.chain) {
      const MccRegion2D& fr = mccs_.region(b);
      const bool forbidden = rec.guard == Dir2::PosX
                                 ? fr.in_forbidden_y(next)
                                 : fr.in_forbidden_x(next);
      if (forbidden) return true;
    }
  }
  return false;
}

bool FloodGuidance3D::exclude(Coord3, Dir3, Coord3 next) const {
  if (next == d_) return labels_.state(next) == NodeState::Faulty;
  if (labels_.unsafe(next)) return true;
  return !detect3d(mesh_, labels_, next, d_).feasible();
}

namespace {

// Shared routing loop. `Dirs` lists the preferred directions; `axis_gap`
// returns the remaining offset along a direction's axis.
template <class Coord, class Dir, class Guidance, size_t N>
RouteResultT<Coord> route_impl(Coord s, Coord d,
                               const std::array<Dir, N>& preferred,
                               const Guidance& guidance, RoutePolicy policy,
                               util::Rng& rng, int distance,
                               auto&& remaining_along) {
  RouteResultT<Coord> res;
  res.path.push_back(s);
  Coord u = s;
  int last_axis = -1;

  for (int hop = 0; hop < distance; ++hop) {
    Dir candidates[N];
    size_t n = 0;
    for (const Dir dir : preferred) {
      if (remaining_along(u, dir) <= 0) continue;
      const Coord next = step(u, dir);
      if (guidance.exclude(u, dir, next)) continue;
      candidates[n++] = dir;
    }
    if (n == 0) {
      res.failure = "no admissible direction";
      return res;
    }
    res.stats.candidate_sum += static_cast<int>(n);
    if (n >= 2) ++res.stats.multi_choice_hops;

    Dir chosen = candidates[0];
    switch (policy) {
      case RoutePolicy::XFirst:
        break;  // candidates are in axis order already
      case RoutePolicy::YFirst:
        chosen = candidates[n - 1];
        break;
      case RoutePolicy::Random:
        chosen = candidates[rng.pick(n)];
        break;
      case RoutePolicy::Balanced: {
        int best = -1;
        for (size_t i = 0; i < n; ++i) {
          const int rem = remaining_along(u, candidates[i]);
          if (rem > best) {
            best = rem;
            chosen = candidates[i];
          }
        }
        break;
      }
      case RoutePolicy::Alternate: {
        chosen = candidates[0];
        for (size_t i = 0; i < n; ++i) {
          if (axis_of(candidates[i]) != last_axis) {
            chosen = candidates[i];
            break;
          }
        }
        break;
      }
    }
    last_axis = axis_of(chosen);
    u = step(u, chosen);
    res.path.push_back(u);
  }

  res.delivered = u == d;
  if (!res.delivered && res.failure.empty())
    res.failure = "ran out of budget off-destination";
  return res;
}

}  // namespace

RouteResult2D route2d(const mesh::Mesh2D& mesh, Coord2 s, Coord2 d,
                      const Guidance2D& guidance, RoutePolicy policy,
                      util::Rng& rng) {
  (void)mesh;
  auto remaining = [&](Coord2 u, Dir2 dir) {
    return dir == Dir2::PosX ? d.x - u.x : d.y - u.y;
  };
  return route_impl<Coord2, Dir2>(s, d, mesh::kPosDir2, guidance, policy, rng,
                                  manhattan(s, d), remaining);
}

RouteResult3D route3d(const mesh::Mesh3D& mesh, Coord3 s, Coord3 d,
                      const Guidance3D& guidance, RoutePolicy policy,
                      util::Rng& rng) {
  (void)mesh;
  auto remaining = [&](Coord3 u, Dir3 dir) {
    switch (dir) {
      case Dir3::PosX: return d.x - u.x;
      case Dir3::PosY: return d.y - u.y;
      default: return d.z - u.z;
    }
  };
  return route_impl<Coord3, Dir3>(s, d, mesh::kPosDir3, guidance, policy, rng,
                                  manhattan(s, d), remaining);
}

}  // namespace mcc::core
