#include "core/router.h"

#include <algorithm>

#include "core/feasibility2d.h"
#include "obs/profiler.h"
#include "util/grid.h"

namespace mcc::core {

using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::XFirst: return "x-first";
    case RoutePolicy::YFirst: return "y-first";
    case RoutePolicy::Random: return "random";
    case RoutePolicy::Balanced: return "balanced";
    case RoutePolicy::Alternate: return "alternate";
  }
  return "?";
}

bool RecordGuidance2D::exclude(Coord2 u, Dir2 dir, Coord2 next) const {
  // Rule 1: never step onto an unsafe node (the destination itself is
  // exempt — ending on a healthy node is always legitimate).
  if (labels_.unsafe(next) && !(next == d_)) return true;
  // Rule 2 (Algorithm 3 step 2b): a record at u filters `dir` when the
  // destination sits in the owner's critical region and the step enters a
  // chained forbidden region.
  for (const Record2D& rec : boundary_.records_at(u)) {
    if (rec.guard != dir) continue;
    const MccRegion2D& owner = mccs_.region(rec.owner);
    const bool critical = rec.guard == Dir2::PosX ? owner.in_critical_y(d_)
                                                  : owner.in_critical_x(d_);
    if (!critical) continue;
    for (const int b : *rec.chain) {
      const MccRegion2D& fr = mccs_.region(b);
      const bool forbidden = rec.guard == Dir2::PosX
                                 ? fr.in_forbidden_y(next)
                                 : fr.in_forbidden_x(next);
      if (forbidden) return true;
    }
  }
  return false;
}

bool safe_reach_box2(const LabelField2D& labels, Coord2 u, Coord2 d) {
  obs::ProfScope prof(obs::Phase::KernelSafeReach);
  const int nx = d.x - u.x + 1, ny = d.y - u.y + 1;
  util::Grid2<uint8_t> ok(nx, ny, uint8_t{0});
  for (int y = ny - 1; y >= 0; --y)
    for (int x = nx - 1; x >= 0; --x) {
      const Coord2 c{u.x + x, u.y + y};
      const bool at_d = c == d;
      if (at_d ? labels.state(c) == NodeState::Faulty : !labels.safe(c))
        continue;
      const bool reach = at_d || (x + 1 < nx && ok.at(x + 1, y)) ||
                         (y + 1 < ny && ok.at(x, y + 1));
      if (reach) ok.at(x, y) = 1;
    }
  return ok.at(0, 0) != 0;
}

bool safe_reach_box3(const LabelField3D& labels, Coord3 u, Coord3 d) {
  obs::ProfScope prof(obs::Phase::KernelSafeReach);
  const int nx = d.x - u.x + 1, ny = d.y - u.y + 1, nz = d.z - u.z + 1;
  util::Grid3<uint8_t> ok(nx, ny, nz, uint8_t{0});
  for (int z = nz - 1; z >= 0; --z)
    for (int y = ny - 1; y >= 0; --y)
      for (int x = nx - 1; x >= 0; --x) {
        const Coord3 c{u.x + x, u.y + y, u.z + z};
        const bool at_d = c == d;
        if (at_d ? labels.state(c) == NodeState::Faulty : !labels.safe(c))
          continue;
        const bool reach = at_d || (x + 1 < nx && ok.at(x + 1, y, z)) ||
                           (y + 1 < ny && ok.at(x, y + 1, z)) ||
                           (z + 1 < nz && ok.at(x, y, z + 1));
        if (reach) ok.at(x, y, z) = 1;
      }
  return ok.at(0, 0, 0) != 0;
}

bool DetectGuidance2D::exclude(Coord2, Dir2, Coord2 next) const {
  if (next == d_) return labels_.state(next) == NodeState::Faulty;
  if (labels_.unsafe(next)) return true;
  if (next.x == d_.x || next.y == d_.y)
    return !safe_reach_box2(labels_, next, d_);
  return !detect2d(mesh_, labels_, next, d_).feasible();
}

bool FloodGuidance3D::exclude(Coord3, Dir3, Coord3 next) const {
  if (next == d_) return labels_.state(next) == NodeState::Faulty;
  if (labels_.unsafe(next)) return true;
  if (next.x == d_.x || next.y == d_.y || next.z == d_.z)
    return !safe_reach_box3(labels_, next, d_);
  return !detect3d(mesh_, labels_, next, d_).feasible();
}

namespace {

// Shared enumeration for admissible2d/admissible3d: preferred directions
// with remaining offset that survive guidance, in axis order.
template <class Coord, class Dir, class Guidance, size_t N>
size_t admissible_impl(Coord u, const std::array<Dir, N>& preferred,
                       const Guidance& guidance, std::array<Dir, N>& out,
                       auto&& remaining_along) {
  size_t n = 0;
  for (const Dir dir : preferred) {
    if (remaining_along(u, dir) <= 0) continue;
    const Coord next = step(u, dir);
    if (guidance.exclude(u, dir, next)) continue;
    out[n++] = dir;
  }
  return n;
}

// Shared routing loop on top of the adapter surface (admissible_impl +
// select_candidate), so route2d/route3d and the wormhole simulator make
// identical per-hop decisions.
template <class Coord, class Dir, class Guidance, size_t N>
RouteResultT<Coord> route_impl(Coord s, Coord d,
                               const std::array<Dir, N>& preferred,
                               const Guidance& guidance, RoutePolicy policy,
                               util::Rng& rng, int distance,
                               auto&& remaining_along) {
  RouteResultT<Coord> res;
  res.path.push_back(s);
  Coord u = s;
  int last_axis = -1;

  for (int hop = 0; hop < distance; ++hop) {
    std::array<Dir, N> candidates;
    const size_t n =
        admissible_impl(u, preferred, guidance, candidates, remaining_along);
    if (n == 0) {
      res.failure = "no admissible direction";
      return res;
    }
    res.stats.candidate_sum += static_cast<int>(n);
    if (n >= 2) ++res.stats.multi_choice_hops;

    const Dir chosen = candidates[select_candidate(
        candidates, n, policy, last_axis, rng,
        [&](Dir dir) { return remaining_along(u, dir); })];
    last_axis = axis_of(chosen);
    u = step(u, chosen);
    res.path.push_back(u);
  }

  res.delivered = u == d;
  if (!res.delivered && res.failure.empty())
    res.failure = "ran out of budget off-destination";
  return res;
}

}  // namespace

size_t admissible2d(Coord2 u, Coord2 d, const Guidance2D& g,
                    std::array<Dir2, 2>& out) {
  return admissible_impl(u, mesh::kPosDir2, g, out, [&](Coord2 c, Dir2 dir) {
    return dir == Dir2::PosX ? d.x - c.x : d.y - c.y;
  });
}

size_t admissible3d(Coord3 u, Coord3 d, const Guidance3D& g,
                    std::array<Dir3, 3>& out) {
  return admissible_impl(u, mesh::kPosDir3, g, out, [&](Coord3 c, Dir3 dir) {
    switch (dir) {
      case Dir3::PosX: return d.x - c.x;
      case Dir3::PosY: return d.y - c.y;
      default: return d.z - c.z;
    }
  });
}

RouteResult2D route2d(const mesh::Mesh2D& mesh, Coord2 s, Coord2 d,
                      const Guidance2D& guidance, RoutePolicy policy,
                      util::Rng& rng) {
  (void)mesh;
  auto remaining = [&](Coord2 u, Dir2 dir) {
    return dir == Dir2::PosX ? d.x - u.x : d.y - u.y;
  };
  return route_impl<Coord2, Dir2>(s, d, mesh::kPosDir2, guidance, policy, rng,
                                  manhattan(s, d), remaining);
}

RouteResult3D route3d(const mesh::Mesh3D& mesh, Coord3 s, Coord3 d,
                      const Guidance3D& guidance, RoutePolicy policy,
                      util::Rng& rng) {
  (void)mesh;
  auto remaining = [&](Coord3 u, Dir3 dir) {
    switch (dir) {
      case Dir3::PosX: return d.x - u.x;
      case Dir3::PosY: return d.y - u.y;
      default: return d.z - u.z;
    }
  };
  return route_impl<Coord3, Dir3>(s, d, mesh::kPosDir3, guidance, policy, rng,
                                  manhattan(s, d), remaining);
}

}  // namespace mcc::core
