// Adaptive minimal routing (Algorithm 3 step 2 / Algorithm 6 step 2).
//
// At every node the router considers the preferred (positive) directions
// with remaining offset, drops the ones its *guidance* excludes, and picks
// any survivor according to a selection policy. The paper's guarantee —
// a minimal path is delivered whenever the feasibility check passes — holds
// for ANY policy, which the property tests exercise.
//
// Guidance variants (DESIGN.md §3, layer L4):
//   * OracleGuidance  — excludes a step iff no safe minimal completion
//                       exists from the next node (gold standard; O(1) per
//                       step via a precomputed reachability field);
//   * RecordGuidance  — the paper's rule: excludes a step iff the next node
//                       is unsafe, or a boundary record at the current node
//                       places the destination in the owner's critical
//                       region and the next node in a chained forbidden
//                       region (2-D). CAVEAT (found by the differential
//                       suite): on dense interlocked fault patterns the
//                       merged chains over-approximate, so this rule is
//                       sound (a delivered path is always minimal and
//                       fault-free) but can occasionally exclude every
//                       direction on a feasible pair — tests/
//                       test_differential.cc quantifies the gap;
//   * DetectGuidance  — 2-D: excludes a step iff the next node is unsafe or
//                       the remaining pair fails detection from there (the
//                       per-hop form of Algorithm 3's check; degenerate
//                       remainders use the exact safe-reach reduction).
//                       Carries the full delivery guarantee;
//   * FloodGuidance   — 3-D: excludes a step iff the next node is unsafe or
//                       the three detection floods fail from there (the
//                       per-hop form of Algorithm 6's check; degenerate
//                       remainders use the exact safe-reach reduction, as
//                       raw floods are meaningful only for strict offsets).
//
// All routers operate in the canonical octant (callers flip axes first).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/boundary2d.h"
#include "core/feasibility3d.h"
#include "core/labeling.h"
#include "core/reachability.h"
#include "mesh/mesh.h"
#include "util/rng.h"

namespace mcc::core {

enum class RoutePolicy : uint8_t {
  XFirst,    // deterministic: lowest axis first
  YFirst,    // deterministic: highest axis first
  Random,    // uniform among surviving candidates
  Balanced,  // axis with the largest remaining offset (ties: lowest axis)
  Alternate, // avoid the axis used by the previous hop when possible
};

inline constexpr RoutePolicy kAllPolicies[] = {
    RoutePolicy::XFirst, RoutePolicy::YFirst, RoutePolicy::Random,
    RoutePolicy::Balanced, RoutePolicy::Alternate};

const char* to_string(RoutePolicy p);

struct RouteStats {
  // Number of hops where >=2 candidate directions survived (adaptivity).
  int multi_choice_hops = 0;
  // Total surviving candidates summed over hops (for mean adaptivity).
  int candidate_sum = 0;
};

template <class Coord>
struct RouteResultT {
  bool delivered = false;
  std::vector<Coord> path;  // includes s and, when delivered, d
  RouteStats stats;
  std::string failure;  // non-empty when stuck

  int hops() const { return static_cast<int>(path.size()) - 1; }
};

using RouteResult2D = RouteResultT<mesh::Coord2>;
using RouteResult3D = RouteResultT<mesh::Coord3>;

// ---------------------------------------------------------------------------
// 2-D

class Guidance2D {
 public:
  virtual ~Guidance2D() = default;
  /// True when stepping from u to next must be avoided.
  virtual bool exclude(mesh::Coord2 u, mesh::Dir2 dir,
                       mesh::Coord2 next) const = 0;
};

/// v1: reachability-field guidance. The filter defaults to the model's
/// safe-only view; NonFaulty serves pairs with unsafe-but-alive endpoints.
class OracleGuidance2D : public Guidance2D {
 public:
  OracleGuidance2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                   mesh::Coord2 d, NodeFilter filter = NodeFilter::SafeOnly)
      : field_(mesh, labels, d, filter) {}
  bool exclude(mesh::Coord2, mesh::Dir2, mesh::Coord2 next) const override {
    return !field_.feasible(next);
  }

 private:
  ReachField2D field_;
};

/// v2: the paper's boundary-record rule.
class RecordGuidance2D : public Guidance2D {
 public:
  RecordGuidance2D(const LabelField2D& labels, const MccSet2D& mccs,
                   const Boundary2D& boundary, mesh::Coord2 d)
      : labels_(labels), mccs_(mccs), boundary_(boundary), d_(d) {}

  bool exclude(mesh::Coord2 u, mesh::Dir2 dir,
               mesh::Coord2 next) const override;

 private:
  const LabelField2D& labels_;
  const MccSet2D& mccs_;
  const Boundary2D& boundary_;
  mesh::Coord2 d_;
};

/// Per-hop detection (Algorithm 3 phase 1 applied from every next-hop):
/// exact for safe pairs, so it carries the delivery guarantee even where
/// the record chains over-approximate.
class DetectGuidance2D : public Guidance2D {
 public:
  DetectGuidance2D(const mesh::Mesh2D& mesh, const LabelField2D& labels,
                   mesh::Coord2 d)
      : mesh_(mesh), labels_(labels), d_(d) {}
  bool exclude(mesh::Coord2, mesh::Dir2, mesh::Coord2 next) const override;

 private:
  const mesh::Mesh2D& mesh_;
  const LabelField2D& labels_;
  mesh::Coord2 d_;
};

/// Ablation baseline: avoids unsafe neighbors but consults no records.
class LabelsOnlyGuidance2D : public Guidance2D {
 public:
  LabelsOnlyGuidance2D(const LabelField2D& labels, mesh::Coord2 d)
      : labels_(labels), d_(d) {}
  bool exclude(mesh::Coord2, mesh::Dir2,
               mesh::Coord2 next) const override {
    return labels_.unsafe(next) && !(next == d_);
  }

 private:
  const LabelField2D& labels_;
  mesh::Coord2 d_;
};

RouteResult2D route2d(const mesh::Mesh2D& mesh, mesh::Coord2 s,
                      mesh::Coord2 d, const Guidance2D& guidance,
                      RoutePolicy policy, util::Rng& rng);

// ---------------------------------------------------------------------------
// Adapter surface for per-hop engines (the flit-level wormhole simulator in
// sim/wormhole/ and route2d/route3d themselves): candidate enumeration and
// policy selection are exposed so external routers make exactly the same
// decisions as the reference path router.

class Guidance3D;

/// Exact safe-only monotone reachability within the box spanned by u and d
/// (requires u <= d componentwise; d itself is usable when merely
/// non-faulty). This is the reduced feasibility check the per-hop guidances
/// fall back to when the remaining pair is degenerate — the raw detection
/// walkers/floods are meaningful only for strict offsets.
bool safe_reach_box2(const LabelField2D& labels, mesh::Coord2 u,
                     mesh::Coord2 d);
bool safe_reach_box3(const LabelField3D& labels, mesh::Coord3 u,
                     mesh::Coord3 d);

/// Enumerates the preferred directions at u that still have remaining offset
/// toward d and survive `guidance`, in canonical axis order. Returns the
/// count written to `out`. Operates in the canonical quadrant (u <= d).
size_t admissible2d(mesh::Coord2 u, mesh::Coord2 d, const Guidance2D& g,
                    std::array<mesh::Dir2, 2>& out);
size_t admissible3d(mesh::Coord3 u, mesh::Coord3 d, const Guidance3D& g,
                    std::array<mesh::Dir3, 3>& out);

/// Applies a selection policy to a non-empty, axis-ordered candidate list
/// and returns the index of the chosen direction. `last_axis` is the axis of
/// the previous hop (-1 at the source); `remaining` maps a direction to its
/// remaining offset (used by Balanced). Random draws exactly one pick from
/// `rng`.
template <class Dir, size_t N, class RemainingFn>
size_t select_candidate(const std::array<Dir, N>& c, size_t n,
                        RoutePolicy policy, int last_axis, util::Rng& rng,
                        RemainingFn&& remaining) {
  switch (policy) {
    case RoutePolicy::XFirst:
      return 0;
    case RoutePolicy::YFirst:
      return n - 1;
    case RoutePolicy::Random:
      return rng.pick(n);
    case RoutePolicy::Balanced: {
      size_t chosen = 0;
      int best = -1;
      for (size_t i = 0; i < n; ++i) {
        const int rem = remaining(c[i]);
        if (rem > best) {
          best = rem;
          chosen = i;
        }
      }
      return chosen;
    }
    case RoutePolicy::Alternate: {
      for (size_t i = 0; i < n; ++i) {
        if (axis_of(c[i]) != last_axis) return i;
      }
      return 0;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// 3-D

class Guidance3D {
 public:
  virtual ~Guidance3D() = default;
  virtual bool exclude(mesh::Coord3 u, mesh::Dir3 dir,
                       mesh::Coord3 next) const = 0;
};

class OracleGuidance3D : public Guidance3D {
 public:
  OracleGuidance3D(const mesh::Mesh3D& mesh, const LabelField3D& labels,
                   mesh::Coord3 d, NodeFilter filter = NodeFilter::SafeOnly)
      : field_(mesh, labels, d, filter) {}
  bool exclude(mesh::Coord3, mesh::Dir3, mesh::Coord3 next) const override {
    return !field_.feasible(next);
  }

 private:
  ReachField3D field_;
};

/// Per-hop detection floods (Algorithm 6 applied from every next-hop).
class FloodGuidance3D : public Guidance3D {
 public:
  FloodGuidance3D(const mesh::Mesh3D& mesh, const LabelField3D& labels,
                  mesh::Coord3 d)
      : mesh_(mesh), labels_(labels), d_(d) {}
  bool exclude(mesh::Coord3, mesh::Dir3, mesh::Coord3 next) const override;

 private:
  const mesh::Mesh3D& mesh_;
  const LabelField3D& labels_;
  mesh::Coord3 d_;
};

class LabelsOnlyGuidance3D : public Guidance3D {
 public:
  LabelsOnlyGuidance3D(const LabelField3D& labels, mesh::Coord3 d)
      : labels_(labels), d_(d) {}
  bool exclude(mesh::Coord3, mesh::Dir3,
               mesh::Coord3 next) const override {
    return labels_.unsafe(next) && !(next == d_);
  }

 private:
  const LabelField3D& labels_;
  mesh::Coord3 d_;
};

RouteResult3D route3d(const mesh::Mesh3D& mesh, mesh::Coord3 s,
                      mesh::Coord3 d, const Guidance3D& guidance,
                      RoutePolicy policy, util::Rng& rng);

}  // namespace mcc::core
