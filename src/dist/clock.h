// Millisecond clock seam for the work-queue scheduler. The coordinator
// runs on SteadyClock; the lease-expiry tests drive a FakeClock so expiry
// is exercised without sleeping.
#pragma once

#include <chrono>
#include <cstdint>

namespace mcc::dist {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t now_ms() = 0;
};

class SteadyClock final : public Clock {
 public:
  int64_t now_ms() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_ms = 0) : now_(start_ms) {}
  int64_t now_ms() override { return now_; }
  void advance(int64_t delta_ms) { now_ += delta_ms; }

 private:
  int64_t now_;
};

}  // namespace mcc::dist
