#include "dist/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "api/experiment.h"  // metrics_to_json
#include "dist/protocol.h"
#include "dist/worker.h"
#include "obs/metrics.h"

namespace mcc::dist {

using api::Campaign;
using api::Json;

Coordinator::Coordinator(const Campaign& campaign,
                         std::vector<Campaign::PointResult> done,
                         CoordinatorOptions opts)
    : campaign_(campaign),
      opts_(std::move(opts)),
      clock_(opts_.clock != nullptr ? opts_.clock : &steady_),
      addr_(parse_address(opts_.listen)),
      sched_(campaign.points().size(),
             static_cast<size_t>(opts_.lease_batch), opts_.lease_ms) {
  for (auto& r : done) {
    sched_.mark_done(r.index);
    results_[r.index] = std::move(r);
  }
  listen_fd_ = listen_on(addr_);
}

Coordinator::~Coordinator() {
  for (auto& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (addr_.unix_domain) ::unlink(addr_.path.c_str());
  for (size_t i = 0; i < pids_.size(); ++i) {
    if (reaped_[i]) continue;
    ::kill(pids_[i], SIGKILL);
    int status = 0;
    ::waitpid(pids_[i], &status, 0);
    reaped_[i] = true;
  }
}

void Coordinator::spawn_workers() {
  for (int w = 1; w <= opts_.local_workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("dist: fork failed");
    if (pid == 0) {
      // Worker process: drop the coordinator's fds and join through the
      // front door like any remote worker would — the protocol is the
      // only channel, so local mode exercises the same path CI gates.
      ::close(listen_fd_);
      for (auto& c : conns_)
        if (c.fd >= 0) ::close(c.fd);
      WorkerOptions wo;
      wo.name = "local-" + std::to_string(w);
      wo.heartbeat_ms = opts_.heartbeat_ms;
      int rc = 1;
      try {
        rc = run_worker(addr_.str(), wo);
      } catch (...) {
        rc = 1;
      }
      ::_exit(rc);
    }
    pids_.push_back(pid);
    reaped_.push_back(false);
  }
}

void Coordinator::reap_workers(bool block) {
  for (size_t i = 0; i < pids_.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    const pid_t rc = ::waitpid(pids_[i], &status, block ? 0 : WNOHANG);
    // SIGKILL-tolerated by design: a dead worker's lease requeues and the
    // campaign still completes, so any exit status is acceptable here.
    if (rc == pids_[i]) reaped_[i] = true;
  }
}

bool Coordinator::all_workers_reaped() const {
  for (bool r : reaped_)
    if (!r) return false;
  return true;
}

void Coordinator::drop_conn(Conn& c) {
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  if (!c.name.empty()) sched_.drop_worker(c.name);
}

void Coordinator::announce_done() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (addr_.unix_domain) ::unlink(addr_.path.c_str());
  }
  const std::string done_line = proto::done().dump();
  for (auto& c : conns_) {
    if (c.fd < 0) continue;
    send_line(c.fd, done_line);  // best effort; close either way
    ::close(c.fd);
    c.fd = -1;
  }
  conns_.clear();
}

void Coordinator::accept_result(const Campaign::PointResult& r) {
  results_[r.index] = r;
  if (journal_ != nullptr) {
    journal_->append(campaign_.point_json(r));
    ++journal_appends_;
    if (opts_.abort_after >= 0 && journal_appends_ >= opts_.abort_after)
      throw std::runtime_error(
          "dist: aborting after " + std::to_string(journal_appends_) +
          " journal appends (test hook; resume with --resume)");
  }
  if (opts_.progress != nullptr)
    *opts_.progress << "# dist point " << r.index << " ("
                    << results_.size() << "/" << campaign_.points().size()
                    << ")" << (r.failed ? " FAILED" : "") << std::endl;
}

bool Coordinator::handle_line(Conn& c, const std::string& line) {
  const int64_t now = clock_->now_ms();
  Json m;
  try {
    m = proto::parse(line);
  } catch (const std::exception&) {
    drop_conn(c);
    return false;
  }
  const std::string type = proto::type_of(m);
  if (type == "hello") {
    const Json* worker = m.find("worker");
    if (worker == nullptr || !worker->is_string() ||
        worker->as_string().empty()) {
      drop_conn(c);
      return false;
    }
    c.name = worker->as_string();
    if (!send_line(c.fd, proto::welcome(campaign_.journal_header(),
                                        opts_.heartbeat_ms)
                             .dump())) {
      drop_conn(c);
      return false;
    }
    return true;
  }
  if (c.name.empty()) {  // everything else requires a hello first
    drop_conn(c);
    return false;
  }
  if (type == "lease") {
    std::string reply;
    if (sched_.done()) {
      reply = proto::done().dump();
    } else {
      const std::vector<size_t> batch = sched_.lease(c.name, now);
      reply = batch.empty() ? proto::wait(100).dump()
                            : proto::grant(batch).dump();
    }
    if (!send_line(c.fd, reply)) {
      drop_conn(c);
      return false;
    }
    return true;
  }
  if (type == "result") {
    const Json* pt = m.find("point");
    Campaign::PointResult r;
    try {
      if (pt == nullptr) throw std::runtime_error("result without point");
      r = campaign_.point_from_json(*pt);
    } catch (const std::exception&) {
      drop_conn(c);
      return false;
    }
    ++c.results_seen;
    if (sched_.complete(c.name, r.index, now)) accept_result(r);
    if (opts_.chaos_kill_worker > 0 && !chaos_fired_ &&
        c.name == "local-" + std::to_string(opts_.chaos_kill_worker) &&
        c.results_seen == 1) {
      // Chaos hook: SIGKILL the worker on its first processed result and
      // drop the connection WITHOUT draining buffered lines — the rest of
      // its lease (and anything it managed to stream after this line) is
      // lost, so the reissue path runs deterministically.
      chaos_fired_ = true;
      const size_t w = static_cast<size_t>(opts_.chaos_kill_worker - 1);
      if (w < pids_.size() && !reaped_[w]) {
        ::kill(pids_[w], SIGKILL);
        int status = 0;
        ::waitpid(pids_[w], &status, 0);
        reaped_[w] = true;
      }
      drop_conn(c);
      return false;
    }
    return true;
  }
  if (type == "heartbeat") {
    sched_.heartbeat(c.name, now);
    return true;
  }
  drop_conn(c);  // unknown message type
  return false;
}

bool Coordinator::read_conn(Conn& c) {
  char tmp[4096];
  const ssize_t n = ::read(c.fd, tmp, sizeof(tmp));
  if (n <= 0) {
    drop_conn(c);
    return false;
  }
  c.buf.feed(tmp, static_cast<size_t>(n));
  std::string line;
  while (c.fd >= 0 && c.buf.next(line))
    if (!handle_line(c, line)) return false;
  return true;
}

std::vector<Campaign::PointResult> Coordinator::run() {
  ::signal(SIGPIPE, SIG_IGN);
  if (!opts_.journal_path.empty())
    journal_ = std::make_unique<api::JournalWriter>(
        opts_.journal_path, campaign_.journal_header(), !opts_.resume);
  if (!sched_.done()) spawn_workers();

  bool announced = false;
  while (true) {
    if (sched_.done()) {
      if (!announced) {
        announce_done();
        announced = true;
      }
      break;
    }
    std::vector<pollfd> fds;
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& c : conns_)
      fds.push_back({c.fd, POLLIN, 0});
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    size_t fi = 0;
    if (listen_fd_ >= 0) {
      if ((fds[fi].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = accept_on(listen_fd_);
          if (fd < 0) break;
          Conn c;
          c.fd = fd;
          conns_.push_back(std::move(c));
          break;  // one accept per wakeup keeps the fds vector in sync
        }
      }
      ++fi;
    }
    for (size_t i = 0; i < conns_.size() && fi < fds.size(); ++i, ++fi) {
      if (fds[fi].revents == 0) continue;
      if (conns_[i].fd != fds[fi].fd) continue;  // replaced by an accept
      read_conn(conns_[i]);
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());

    sched_.expire(clock_->now_ms());
    reap_workers(false);
    if (opts_.local_workers > 0 && all_workers_reaped() && !sched_.done())
      throw std::runtime_error(
          "dist: every local worker exited before the campaign "
          "completed (" +
          std::to_string(sched_.remaining()) + " points left)");
  }

  reap_workers(true);
  if (opts_.chaos_kill_worker > 0 && sched_.counters().reissued == 0)
    throw std::runtime_error(
        "dist: chaos run completed without reissuing any points — the "
        "kill hook did not exercise the requeue path");
  if (results_.size() != campaign_.points().size())
    throw std::logic_error("dist: scheduler finished with " +
                           std::to_string(results_.size()) + " of " +
                           std::to_string(campaign_.points().size()) +
                           " results");

  std::vector<Campaign::PointResult> out;
  out.reserve(results_.size());
  for (auto& [idx, r] : results_) out.push_back(std::move(r));
  return out;
}

api::RunReport Coordinator::report() const {
  const Json header = campaign_.journal_header();
  api::RunReport r(campaign_.name(), "dist_scheduler",
                   header.find("seed")->as_uint64());
  std::vector<std::pair<std::string, std::string>> echo;
  for (const auto& [k, v] : header.find("config")->members())
    echo.emplace_back(k, v.as_string());
  r.set_config_echo(std::move(echo));
  r.text("# dist scheduler\n");
  r.metric("points", static_cast<double>(campaign_.points().size()));
  r.metric("local_workers", static_cast<double>(opts_.local_workers));
  const SchedulerCounters& c = sched_.counters();
  obs::MetricRegistry reg;
  reg.set_counter("dist.points_dispatched", c.dispatched);
  reg.set_counter("dist.points_completed", c.completed);
  reg.set_counter("dist.points_reissued", c.reissued);
  reg.set_counter("dist.duplicate_results", c.duplicates);
  reg.set_gauge("dist.worker_lag_ms", sched_.worker_lag_ms());
  r.set_obs(api::metrics_to_json(reg));
  return r;
}

}  // namespace mcc::dist
