// Coordinator: owns the expanded point list of one api::Campaign and
// serves it to workers over the mcc.dist/1 line protocol (unix-domain or
// TCP socket). Workers register (hello/welcome), lease batches of point
// indices with deadlines, stream one result line per finished point and
// heartbeat between points; an expired or dropped lease requeues its
// points (at-least-once dispatch, first-result-wins dedup — point seeds
// derive from coordinates, so a reissued point is bit-identical).
//
// Every accepted result is appended to the NDJSON journal when
// journal_path is set, flushed per line, so a killed coordinator loses at
// most its torn tail; --resume rebuilds the done-set from the journal and
// this class dispatches only the missing points (pass them as `done`).
// The final result vector folds through the existing campaign merge path,
// byte-identical to a serial Campaign::run.
//
// The listening socket binds in the constructor, so address() is valid
// (ephemeral TCP ports resolved) before run() — tests start a worker
// thread against it first.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/campaign.h"
#include "api/run_report.h"
#include "dist/clock.h"
#include "dist/net.h"
#include "dist/scheduler.h"

namespace mcc::dist {

struct CoordinatorOptions {
  std::string listen;         // "unix:<path>" | "tcp:<host>:<port>"
  int lease_batch = 4;        // points per lease
  int64_t lease_ms = 30000;   // lease deadline; must exceed a point's runtime
  int64_t heartbeat_ms = 1000;  // worker pacing, advertised in the welcome
  std::string journal_path;   // NDJSON result journal ("" = none)
  bool resume = false;        // journal already holds the header + done lines
  int local_workers = 0;      // convenience mode: fork N local workers
  // Test hooks (the CTest chaos/resume fixtures): SIGKILL local worker W
  // when its first result is processed / die after N journal appends.
  int chaos_kill_worker = 0;
  long abort_after = -1;
  std::ostream* progress = nullptr;  // one line per accepted point
  Clock* clock = nullptr;            // default: steady wall clock
};

class Coordinator {
 public:
  /// Expands nothing itself — `campaign` is already validated. `done`
  /// pre-fills resumed points (Campaign::load_journal output); they are
  /// never dispatched. Binds and listens; throws on address problems.
  Coordinator(const api::Campaign& campaign,
              std::vector<api::Campaign::PointResult> done,
              CoordinatorOptions opts);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The resolved listen address workers connect to.
  std::string address() const { return addr_.str(); }

  /// Serves until every point has a result; returns all results (resumed
  /// + newly completed) sorted by point index. Throws std::runtime_error
  /// when completion becomes impossible (every local worker exited) or a
  /// test hook fires.
  std::vector<api::Campaign::PointResult> run();

  const SchedulerCounters& counters() const { return sched_.counters(); }

  /// The scheduler's own mcc.run_report/1 document (driver
  /// "dist_scheduler"): the dist.points_* counters and the
  /// dist.worker_lag_ms gauge in its obs block. Counters are exact under
  /// bench_trend; the campaign document itself stays byte-identical to a
  /// serial run, so the scheduler's observability lives here.
  api::RunReport report() const;

 private:
  struct Conn {
    int fd = -1;
    std::string name;  // empty until hello
    LineBuffer buf;
    uint64_t results_seen = 0;
  };

  void spawn_workers();
  void reap_workers(bool block);
  bool all_workers_reaped() const;
  void drop_conn(Conn& c);
  void announce_done();
  bool read_conn(Conn& c);
  bool handle_line(Conn& c, const std::string& line);
  void accept_result(const api::Campaign::PointResult& r);

  const api::Campaign& campaign_;
  CoordinatorOptions opts_;
  SteadyClock steady_;
  Clock* clock_;
  Address addr_;
  int listen_fd_ = -1;
  Scheduler sched_;
  std::map<size_t, api::Campaign::PointResult> results_;
  std::vector<Conn> conns_;
  std::vector<pid_t> pids_;     // local workers, 1-based worker W = pids_[W-1]
  std::vector<bool> reaped_;
  std::unique_ptr<api::JournalWriter> journal_;
  long journal_appends_ = 0;
  bool chaos_fired_ = false;
};

}  // namespace mcc::dist
