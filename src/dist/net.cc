#include "dist/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "api/config.h"

namespace mcc::dist {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("dist: " + what + ": " +
                           std::strerror(errno));
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path))
    throw api::ConfigError("dist: unix socket path too long (" +
                           std::to_string(path.size()) + " bytes, limit " +
                           std::to_string(sizeof(sa.sun_path) - 1) + "): " +
                           path);
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in tcp_sockaddr(const Address& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(addr.port));
  const std::string host =
      addr.host == "localhost" ? std::string("127.0.0.1") : addr.host;
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1)
    throw api::ConfigError(
        "dist: tcp host must be a numeric IPv4 address or localhost, got " +
        addr.host);
  return sa;
}

}  // namespace

std::string Address::str() const {
  if (unix_domain) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Address parse_address(const std::string& text) {
  Address a;
  if (text.rfind("unix:", 0) == 0) {
    a.unix_domain = true;
    a.path = text.substr(5);
    if (a.path.empty())
      throw api::ConfigError("dist: unix address needs a path: " + text);
    return a;
  }
  if (text.rfind("tcp:", 0) == 0) {
    a.unix_domain = false;
    const std::string rest = text.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size())
      throw api::ConfigError(
          "dist: tcp address must be tcp:<host>:<port>, got " + text);
    a.host = rest.substr(0, colon);
    try {
      a.port = std::stoi(rest.substr(colon + 1));
    } catch (const std::exception&) {
      a.port = -1;
    }
    if (a.port < 0 || a.port > 65535)
      throw api::ConfigError("dist: bad tcp port in " + text);
    return a;
  }
  throw api::ConfigError(
      "dist: address must be unix:<path> or tcp:<host>:<port>, got " +
      text);
}

int listen_on(Address& addr) {
  const int fd =
      socket(addr.unix_domain ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  if (addr.unix_domain) {
    ::unlink(addr.path.c_str());
    sockaddr_un sa = unix_sockaddr(addr.path);
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      sys_fail("bind " + addr.str());
    }
  } else {
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = tcp_sockaddr(addr);
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      sys_fail("bind " + addr.str());
    }
    if (addr.port == 0) {
      socklen_t len = sizeof(sa);
      if (getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
        ::close(fd);
        sys_fail("getsockname");
      }
      addr.port = ntohs(sa.sin_port);
    }
  }
  if (listen(fd, 64) != 0) {
    ::close(fd);
    sys_fail("listen " + addr.str());
  }
  return fd;
}

int connect_to(const Address& addr, int timeout_ms) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd =
        socket(addr.unix_domain ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    int rc;
    if (addr.unix_domain) {
      sockaddr_un sa = unix_sockaddr(addr.path);
      rc = connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    } else {
      sockaddr_in sa = tcp_sockaddr(addr);
      rc = connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    }
    if (rc == 0) return fd;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up)
      throw std::runtime_error("dist: could not connect to " + addr.str() +
                               " within " + std::to_string(timeout_ms) +
                               " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int accept_on(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = write(fd, out.data() + off, out.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool LineBuffer::next(std::string& line) {
  const size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buf_, 0, nl);
  buf_.erase(0, nl + 1);
  return true;
}

}  // namespace mcc::dist
