// Line-oriented socket plumbing for the mcc.dist/1 protocol: address
// parsing ("unix:<path>" | "tcp:<host>:<port>"), listen/connect/accept,
// full-line writes and a reassembly buffer for reads. Unix-domain sockets
// are the default transport (one machine, no ports to pick); TCP covers
// workers on other hosts. IPv4 only, and the host must be a numeric
// address or "localhost" — this is a lab harness, not a resolver.
#pragma once

#include <cstddef>
#include <string>

namespace mcc::dist {

struct Address {
  bool unix_domain = true;
  std::string path;  // unix form
  std::string host;  // tcp form
  int port = 0;      // 0 asks the kernel for an ephemeral port
  /// Canonical text form ("unix:<path>" / "tcp:<host>:<port>") — after
  /// listen_on() filled in an ephemeral port, this is the address workers
  /// connect to.
  std::string str() const;
};

/// Parses "unix:<path>" or "tcp:<host>:<port>". Throws api::ConfigError
/// on any other shape (it arrives from the listen= config key / --work
/// operand).
Address parse_address(const std::string& text);

/// Binds and listens. Unlinks a stale unix socket path first; fills in
/// `addr.port` when an ephemeral TCP port was requested. Throws
/// std::runtime_error on socket errors. Returns the listening fd.
int listen_on(Address& addr);

/// Connects, retrying every 20 ms until `timeout_ms` elapses (covers the
/// worker racing the coordinator's bind). Throws std::runtime_error on
/// timeout. Returns the connected fd.
int connect_to(const Address& addr, int timeout_ms);

/// Accepts one connection; returns -1 when nothing is pending.
int accept_on(int listen_fd);

/// Writes `line` plus '\n', handling partial writes. Returns false when
/// the peer is gone (EPIPE/ECONNRESET) — callers treat that as EOF.
bool send_line(int fd, const std::string& line);

/// Reassembles '\n'-delimited lines from arbitrary read chunks. The tail
/// after the final newline stays buffered (the torn line a dying peer
/// was mid-write on is simply never surfaced).
class LineBuffer {
 public:
  void feed(const char* data, size_t n) { buf_.append(data, n); }
  /// Extracts the next complete line (without the newline) into `line`.
  bool next(std::string& line);
  void clear() { buf_.clear(); }

 private:
  std::string buf_;
};

}  // namespace mcc::dist
