// The mcc.dist/1 wire protocol: one JSON object per line, every message
// tagged {"schema":"mcc.dist/1","type":...}. Six message types
// (docs/distributed.md has the full exchange):
//
//   worker -> coordinator            coordinator -> worker
//   ---------------------            ---------------------
//   hello {worker}                   welcome {campaign, heartbeat_ms}
//   lease {}                         grant {points:[i,...]}
//   result {point}                   wait {ms}
//   heartbeat {}                     done {}
//
// The welcome's "campaign" object is the mcc.campaign.journal/1 header —
// name, base seed, filtered config echo, point_count — which is exactly
// enough for the worker to rebuild the Campaign bit-identically (the
// config echo replays; Campaign::check_journal_header proves the rebuild
// matches before any point runs). The result's "point" object is
// Campaign::point_json, the same record the journal and the campaign
// document carry — every transport ships identical point bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/json.h"
#include "api/run_report.h"  // kDistSchema

namespace mcc::dist::proto {

inline api::Json msg(const char* type) {
  api::Json m = api::Json::object();
  m.set("schema", api::Json::string(api::kDistSchema));
  m.set("type", api::Json::string(type));
  return m;
}

inline api::Json hello(const std::string& worker) {
  api::Json m = msg("hello");
  m.set("worker", api::Json::string(worker));
  return m;
}

inline api::Json welcome(api::Json campaign_header, int64_t heartbeat_ms) {
  api::Json m = msg("welcome");
  m.set("campaign", std::move(campaign_header));
  m.set("heartbeat_ms",
        api::Json::number(static_cast<uint64_t>(heartbeat_ms)));
  return m;
}

inline api::Json lease() { return msg("lease"); }

inline api::Json grant(const std::vector<size_t>& points) {
  api::Json m = msg("grant");
  api::Json arr = api::Json::array();
  for (size_t i : points)
    arr.push_back(api::Json::number(static_cast<uint64_t>(i)));
  m.set("points", std::move(arr));
  return m;
}

inline api::Json wait(int64_t ms) {
  api::Json m = msg("wait");
  m.set("ms", api::Json::number(static_cast<uint64_t>(ms)));
  return m;
}

inline api::Json done() { return msg("done"); }

inline api::Json result(api::Json point) {
  api::Json m = msg("result");
  m.set("point", std::move(point));
  return m;
}

inline api::Json heartbeat() { return msg("heartbeat"); }

/// Parses one protocol line; throws std::runtime_error naming the problem
/// when it is not an mcc.dist/1 message (both sides drop the peer on it).
inline api::Json parse(const std::string& line) {
  std::string err;
  api::Json m = api::Json::parse(line, err);
  if (!err.empty())
    throw std::runtime_error("dist: unparsable protocol line: " + err);
  const api::Json* schema = m.find("schema");
  if (!m.is_object() || schema == nullptr || !schema->is_string() ||
      schema->as_string() != api::kDistSchema)
    throw std::runtime_error(
        "dist: protocol line is not an mcc.dist/1 message");
  const api::Json* type = m.find("type");
  if (type == nullptr || !type->is_string())
    throw std::runtime_error("dist: protocol message has no type");
  return m;
}

/// The message's type tag (call after parse()).
inline std::string type_of(const api::Json& m) {
  return m.find("type")->as_string();
}

}  // namespace mcc::dist::proto
