#include "dist/scheduler.h"

#include <algorithm>

namespace mcc::dist {

Scheduler::Scheduler(size_t point_count, size_t lease_batch,
                     int64_t lease_ms)
    : point_count_(point_count),
      lease_batch_(lease_batch == 0 ? 1 : lease_batch),
      lease_ms_(lease_ms),
      done_(point_count, false) {
  for (size_t i = 0; i < point_count; ++i) pending_.push_back(i);
}

void Scheduler::mark_done(size_t index) {
  if (index >= point_count_ || done_[index]) return;
  done_[index] = true;
  ++done_count_;
}

void Scheduler::touch(const std::string& worker, int64_t now_ms) {
  auto it = last_seen_.find(worker);
  if (it != last_seen_.end()) {
    const double lag = static_cast<double>(now_ms - it->second);
    if (lag > max_lag_ms_) max_lag_ms_ = lag;
    it->second = now_ms;
  } else {
    last_seen_[worker] = now_ms;
  }
}

std::vector<size_t> Scheduler::lease(const std::string& worker,
                                     int64_t now_ms) {
  touch(worker, now_ms);
  std::vector<size_t> batch;
  while (batch.size() < lease_batch_ && !pending_.empty()) {
    const size_t idx = pending_.front();
    pending_.pop_front();
    if (done_[idx] || out_.count(idx)) continue;  // stale queue entry
    out_[idx] = worker;
    batch.push_back(idx);
  }
  if (!batch.empty()) {
    deadline_[worker] = now_ms + lease_ms_;
    counters_.dispatched += batch.size();
  }
  return batch;
}

bool Scheduler::complete(const std::string& worker, size_t index,
                         int64_t now_ms) {
  touch(worker, now_ms);
  deadline_[worker] = now_ms + lease_ms_;
  if (index >= point_count_ || done_[index]) {
    ++counters_.duplicates;
    return false;
  }
  done_[index] = true;
  ++done_count_;
  ++counters_.completed;
  out_.erase(index);
  return true;
}

void Scheduler::heartbeat(const std::string& worker, int64_t now_ms) {
  touch(worker, now_ms);
  deadline_[worker] = now_ms + lease_ms_;
}

size_t Scheduler::requeue_worker(const std::string& worker) {
  std::vector<size_t> lost;
  for (const auto& [idx, holder] : out_)
    if (holder == worker) lost.push_back(idx);
  // Front of the deque, ascending: the oldest work goes back out first,
  // and two requeues of the same set land in the same order.
  std::sort(lost.begin(), lost.end());
  for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
    out_.erase(*it);
    pending_.push_front(*it);
  }
  counters_.reissued += lost.size();
  deadline_.erase(worker);
  return lost.size();
}

size_t Scheduler::expire(int64_t now_ms) {
  std::vector<std::string> late;
  for (const auto& [worker, dl] : deadline_)
    if (dl < now_ms) late.push_back(worker);
  size_t n = 0;
  for (const auto& worker : late) n += requeue_worker(worker);
  return n;
}

size_t Scheduler::drop_worker(const std::string& worker) {
  return requeue_worker(worker);
}

int64_t Scheduler::next_deadline_ms() const {
  int64_t best = -1;
  for (const auto& [worker, dl] : deadline_) {
    bool holds = false;
    for (const auto& [idx, holder] : out_)
      if (holder == worker) {
        holds = true;
        break;
      }
    if (holds && (best < 0 || dl < best)) best = dl;
  }
  return best;
}

}  // namespace mcc::dist
