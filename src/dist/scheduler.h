// The pure work-queue state machine behind the campaign coordinator: a
// pending deque of point indices, per-worker leases with deadlines, and
// the at-least-once dispatch counters. No I/O, no clock of its own —
// every mutator takes `now_ms`, so the lease-expiry tests drive it with a
// FakeClock and the coordinator with SteadyClock.
//
// Dispatch contract (docs/distributed.md):
//   * lease() hands out up to `lease_batch` pending indices and arms the
//     worker's deadline at now + lease_ms. Results and heartbeats from
//     the worker re-arm it.
//   * expire()/drop_worker() requeue a lost worker's outstanding points
//     at the FRONT of the pending deque (they are the oldest work) and
//     count them as reissued. At-least-once: a slow-but-alive worker may
//     still deliver a reissued point later; complete() keeps the FIRST
//     result and counts the rest as duplicates. Point seeds derive from
//     coordinates, so any two executions of a point are bit-identical
//     and first-wins keeps the merged document deterministic.
//   * mark_done() pre-fills resumed points (--resume) so only the
//     missing indices dispatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mcc::dist {

/// The deterministic scheduler counters (dist.points_* in the scheduler
/// report; bench_trend compares them exactly). dispatched counts every
/// point handed out including reissues, so dispatched == completed +
/// reissued holds on every clean run.
struct SchedulerCounters {
  uint64_t dispatched = 0;
  uint64_t completed = 0;
  uint64_t reissued = 0;
  uint64_t duplicates = 0;
};

class Scheduler {
 public:
  Scheduler(size_t point_count, size_t lease_batch, int64_t lease_ms);

  /// Marks a point already completed (resume pre-fill); it will never be
  /// dispatched and does not count toward the counters.
  void mark_done(size_t index);

  /// Leases up to lease_batch pending indices to `worker` and arms its
  /// deadline. Empty result: nothing pending right now (done, or every
  /// remaining point is out on another lease).
  std::vector<size_t> lease(const std::string& worker, int64_t now_ms);

  /// Accepts a result. Returns true when this is the first result for
  /// the point (caller keeps it); false counts a duplicate (caller drops
  /// it — the first-streamed copy is bit-identical anyway).
  bool complete(const std::string& worker, size_t index, int64_t now_ms);

  /// Re-arms `worker`'s lease deadline.
  void heartbeat(const std::string& worker, int64_t now_ms);

  /// Requeues every point whose worker's deadline has passed. Returns
  /// the number of points reissued.
  size_t expire(int64_t now_ms);

  /// Requeues `worker`'s outstanding points (connection dropped).
  /// Returns the number of points reissued.
  size_t drop_worker(const std::string& worker);

  bool done() const { return done_count_ == point_count_; }
  size_t remaining() const { return point_count_ - done_count_; }
  /// Earliest armed lease deadline, or -1 when nothing is outstanding
  /// (the coordinator's poll timeout).
  int64_t next_deadline_ms() const;

  const SchedulerCounters& counters() const { return counters_; }
  /// Largest observed gap between consecutive messages from one worker —
  /// the dist.worker_lag_ms gauge (wall-clock; informational).
  double worker_lag_ms() const { return max_lag_ms_; }

 private:
  void touch(const std::string& worker, int64_t now_ms);
  size_t requeue_worker(const std::string& worker);

  size_t point_count_;
  size_t lease_batch_;
  int64_t lease_ms_;
  std::deque<size_t> pending_;          // not yet dispatched (front = oldest)
  std::map<size_t, std::string> out_;   // outstanding index -> holder
  std::map<std::string, int64_t> deadline_;  // worker -> lease deadline
  std::map<std::string, int64_t> last_seen_;
  std::vector<bool> done_;
  size_t done_count_ = 0;
  SchedulerCounters counters_;
  double max_lag_ms_ = 0;
};

}  // namespace mcc::dist
