#include "dist/worker.h"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "api/campaign.h"
#include "api/config.h"
#include "dist/clock.h"
#include "dist/net.h"
#include "dist/protocol.h"

namespace mcc::dist {

namespace {

using api::Campaign;
using api::Configuration;
using api::Json;

/// Blocks until one protocol line arrives; nullopt on EOF/error.
std::optional<Json> read_msg(int fd, LineBuffer& buf) {
  std::string line;
  for (;;) {
    if (buf.next(line)) return proto::parse(line);
    char tmp[4096];
    const ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n <= 0) return std::nullopt;
    buf.feed(tmp, static_cast<size_t>(n));
  }
}

/// After a failed write: the coordinator may have sent "done" before
/// closing (campaign complete while this worker was mid-point). Drain
/// whatever is readable without blocking and report whether a done was
/// among it — that turns the race into a clean exit.
bool drained_done(int fd, LineBuffer& buf) {
  char tmp[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), MSG_DONTWAIT);
    if (n <= 0) break;
    buf.feed(tmp, static_cast<size_t>(n));
  }
  std::string line;
  while (buf.next(line)) {
    try {
      if (proto::type_of(proto::parse(line)) == "done") return true;
    } catch (const std::exception&) {
      return false;
    }
  }
  return false;
}

/// Rebuilds the campaign from the welcome's journal header and proves the
/// rebuild reproduces it (name, seed, config echo, point count) before
/// anything runs. Throws api::ConfigError when the header does not
/// replay — a version-skewed worker must refuse work, not compute
/// differently.
Campaign rebuild_campaign(const Json& header) {
  const Json* cfg_obj =
      header.is_object() ? header.find("config") : nullptr;
  if (cfg_obj == nullptr || !cfg_obj->is_object())
    throw api::ConfigError("dist: welcome carries no campaign config");
  Configuration cfg;
  for (const auto& [k, v] : cfg_obj->members()) cfg.set(k, v.as_string());
  Campaign campaign(std::move(cfg));
  campaign.check_journal_header(header);
  return campaign;
}

}  // namespace

int run_worker(const std::string& address, const WorkerOptions& opts) {
  ::signal(SIGPIPE, SIG_IGN);
  const Address addr = parse_address(address);
  const int fd = connect_to(addr, opts.connect_timeout_ms);
  LineBuffer buf;
  SteadyClock clock;

  const auto fail = [&](const std::string& why) {
    if (opts.log != nullptr)
      *opts.log << "dist worker " << opts.name << ": " << why << "\n";
    ::close(fd);
    return 1;
  };

  if (!send_line(fd, proto::hello(opts.name).dump()))
    return fail("coordinator connection closed during hello");
  std::optional<Json> welcome;
  try {
    welcome = read_msg(fd, buf);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (!welcome || proto::type_of(*welcome) != "welcome")
    return fail("no welcome from coordinator");

  Campaign campaign = [&] {
    const Json* header = welcome->find("campaign");
    if (header == nullptr)
      throw api::ConfigError("dist: welcome carries no campaign header");
    return rebuild_campaign(*header);
  }();
  int64_t heartbeat_ms = opts.heartbeat_ms;
  if (const Json* hb = welcome->find("heartbeat_ms");
      hb != nullptr && hb->is_number())
    heartbeat_ms = static_cast<int64_t>(hb->as_uint64());

  int64_t last_send = clock.now_ms();
  const auto send = [&](const std::string& line) {
    if (!send_line(fd, line)) return false;
    last_send = clock.now_ms();
    return true;
  };

  for (;;) {
    if (!send(proto::lease().dump())) {
      if (drained_done(fd, buf)) break;
      return fail("coordinator connection closed");
    }
    std::optional<Json> m;
    try {
      m = read_msg(fd, buf);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    if (!m) return fail("coordinator connection closed");
    const std::string type = proto::type_of(*m);
    if (type == "done") break;
    if (type == "wait") {
      int64_t ms = 100;
      if (const Json* w = m->find("ms"); w != nullptr && w->is_number())
        ms = static_cast<int64_t>(w->as_uint64());
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      continue;
    }
    if (type != "grant") return fail("unexpected " + type + " message");
    const Json* points = m->find("points");
    if (points == nullptr || !points->is_array())
      return fail("grant without points");
    bool lost = false;
    for (const Json& p : points->items()) {
      const size_t idx = static_cast<size_t>(p.as_uint64());
      if (clock.now_ms() - last_send >= heartbeat_ms)
        if (!send(proto::heartbeat().dump())) {
          lost = true;
          break;
        }
      const Campaign::PointResult r = campaign.run_point(idx);
      if (opts.log != nullptr)
        *opts.log << "dist worker " << opts.name << ": point " << idx
                  << (r.failed ? " FAILED" : " done") << "\n";
      if (!send(proto::result(campaign.point_json(r)).dump())) {
        lost = true;
        break;
      }
    }
    if (lost) {
      if (drained_done(fd, buf)) break;
      return fail("coordinator connection closed mid-lease");
    }
  }
  ::close(fd);
  return 0;
}

}  // namespace mcc::dist
