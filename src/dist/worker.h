// Worker side of the mcc.dist/1 protocol: connect, register, rebuild the
// campaign from the welcome's journal header (config-echo replay — proven
// bit-identical against the header before any point runs), then lease /
// compute / stream results until the coordinator says done.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mcc::dist {

struct WorkerOptions {
  std::string name = "worker";   // registered in the hello
  int64_t heartbeat_ms = 1000;   // overridden by the welcome
  int connect_timeout_ms = 10000;  // covers racing the coordinator's bind
  std::ostream* log = nullptr;   // optional per-point progress lines
};

/// Runs one worker against the coordinator at `address`
/// ("unix:<path>" | "tcp:<host>:<port>"). Returns 0 on a clean shutdown
/// (the coordinator sent done), 1 when the coordinator disappeared or the
/// welcome did not reproduce the campaign. Throws api::ConfigError on a
/// malformed address and std::runtime_error when the initial connect
/// times out.
int run_worker(const std::string& address, const WorkerOptions& opts = {});

}  // namespace mcc::dist
