// Anchor TU for mcc_fault. The fault layer is header-only templates over
// the 2-D/3-D axes; this file pins the common instantiations so template
// bugs surface when the library builds, not first in a consumer.
#include "fault/process.h"
#include "fault/projection.h"
#include "fault/universe.h"

namespace mcc::fault {

template class FaultUniverseT<Axes2>;
template class FaultUniverseT<Axes3>;
template class ProjectionTrackerT<Axes2>;
template class ProjectionTrackerT<Axes3>;

template ProjectionT<Axes2> project(const FaultUniverseT<Axes2>&);
template ProjectionT<Axes3> project(const FaultUniverseT<Axes3>&);

template FaultUniverseT<Axes2> make_bernoulli_universe<Axes2>(
    const Axes2::Mesh&, double, double, double, util::Rng&);
template FaultUniverseT<Axes3> make_bernoulli_universe<Axes3>(
    const Axes3::Mesh&, double, double, double, util::Rng&);

template std::vector<UniverseEventT<Axes2>> sample_universe_churn<Axes2>(
    const Axes2::Mesh&, util::Rng&, const UniverseChurnParams&, bool, bool);
template std::vector<UniverseEventT<Axes3>> sample_universe_churn<Axes3>(
    const Axes3::Mesh&, util::Rng&, const UniverseChurnParams&, bool, bool);

template bool apply_event<Axes2>(FaultUniverseT<Axes2>&,
                                 const UniverseEventT<Axes2>&);
template bool apply_event<Axes3>(FaultUniverseT<Axes3>&,
                                 const UniverseEventT<Axes3>&);

}  // namespace mcc::fault
