// Stochastic fault processes over a FaultUniverse (E14).
//
// Three pluggable processes, all deterministic given the Rng:
//
//   Bernoulli snapshot   every component of every class flips a coin once
//                        (make_bernoulli_universe) — the static `link`
//                        fault model and the per-trial initial state of
//                        the Monte-Carlo reliability driver;
//   hard Poisson churn   exponential inter-arrival strikes at `rate` per
//                        cycle, split across classes by the weight knobs,
//                        each strike repaired after a bounded uniform
//                        delay — util::sample_churn generalized from the
//                        node class to all three;
//   transient flip-and-recover  soft errors à la Dang et al.: strikes hit
//                        routers and links (compute-node crashes stay in
//                        the hard process) at 1/MTBF per component, each
//                        recovering after an exponential MTTR delay
//                        (clamped to >= 1 cycle).
//
// The samplers mirror util::sample_churn's structure exactly — exponential
// inter-arrival via -log1p(-u)/rate, a 64-try availability-respecting
// target pick, stable_sort by cycle — so their distributional properties
// are covered by the same direct tests (tests/test_util.cc,
// tests/test_fault.cc).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "fault/universe.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::fault {

/// One schedule entry. For Component::Link, (node, dir) is the canonical
/// link id; for the other classes `dir` is meaningless.
template <class Axes>
struct UniverseEventT {
  uint64_t cycle = 0;
  Component comp = Component::Node;
  typename Axes::Coord node{};
  typename Axes::Dir dir{};
  bool repair = false;
};

using UniverseEvent2 = UniverseEventT<Axes2>;
using UniverseEvent3 = UniverseEventT<Axes3>;

struct UniverseChurnParams {
  // Hard process: total strikes per cycle across all classes, split
  // proportionally by the weights (all-zero weights mean all-node, the
  // node-only sample_churn shape).
  double rate = 0.002;
  double node_weight = 1.0;
  double router_weight = 0.0;
  double link_weight = 0.0;
  uint64_t horizon = 4000;
  uint64_t repair_min = 100;
  uint64_t repair_max = 800;  // 0 = hard faults are permanent
  // Transient process: mean cycles between strikes per component (0 = use
  // `rate` as the total strike rate), mean recovery delay in cycles.
  double mtbf = 0;
  double mttr = 200;
  int max_events = 1 << 20;
};

/// Draws one Bernoulli universe snapshot: nodes, then routers, then links,
/// each class in canonical (index) order — the draw order is part of the
/// seeded contract.
template <class Axes>
FaultUniverseT<Axes> make_bernoulli_universe(const typename Axes::Mesh& mesh,
                                             double node_p, double router_p,
                                             double link_p, util::Rng& rng) {
  FaultUniverseT<Axes> u(mesh);
  if (node_p > 0)
    for (size_t i = 0; i < mesh.node_count(); ++i)
      if (rng.chance(node_p)) u.set_node(mesh.coord(i));
  if (router_p > 0)
    for (size_t i = 0; i < mesh.node_count(); ++i)
      if (rng.chance(router_p)) u.set_router(mesh.coord(i));
  if (link_p > 0)
    for (const LinkIdT<Axes>& l : FaultUniverseT<Axes>::all_links(mesh))
      if (rng.chance(link_p)) u.set_link(l.node, l.dir);
  return u;
}

namespace detail {

/// Component address space for the churn samplers: nodes are
/// [0, N), routers [N, 2N), links [2N, 2N + L) indexed into `links`.
template <class Axes>
struct ComponentSpace {
  const typename Axes::Mesh& mesh;
  std::vector<LinkIdT<Axes>> links;
  explicit ComponentSpace(const typename Axes::Mesh& m)
      : mesh(m), links(FaultUniverseT<Axes>::all_links(m)) {}
  size_t nodes() const { return mesh.node_count(); }
  size_t total() const { return 2 * mesh.node_count() + links.size(); }

  UniverseEventT<Axes> event(size_t id, uint64_t cycle, bool repair) const {
    UniverseEventT<Axes> e;
    e.cycle = cycle;
    e.repair = repair;
    if (id < nodes()) {
      e.comp = Component::Node;
      e.node = mesh.coord(id);
    } else if (id < 2 * nodes()) {
      e.comp = Component::Router;
      e.node = mesh.coord(id - nodes());
    } else {
      e.comp = Component::Link;
      e.node = links[id - 2 * nodes()].node;
      e.dir = links[id - 2 * nodes()].dir;
    }
    return e;
  }
};

/// Shared strike loop (the sample_churn skeleton): exponential
/// inter-arrival at `total_rate`, `pick_target` draws a component id (or
/// nothing), `repair_delay` draws the recovery delay (0 = permanent).
template <class Axes, class PickTarget, class RepairDelay>
std::vector<UniverseEventT<Axes>> strike_loop(
    const ComponentSpace<Axes>& space, util::Rng& rng, double total_rate,
    uint64_t horizon, int max_events, std::vector<uint64_t>& up_at,
    PickTarget&& pick_target, RepairDelay&& repair_delay) {
  std::vector<UniverseEventT<Axes>> events;
  if (total_rate <= 0) return events;
  double t = 0;
  while (static_cast<int>(events.size()) + 2 <= max_events) {
    t += -std::log1p(-rng.uniform()) / total_rate;
    const uint64_t cycle = static_cast<uint64_t>(t) + 1;
    if (cycle > horizon) break;
    std::optional<size_t> target;
    for (int tries = 0; tries < 64 && !target; ++tries) {
      const std::optional<size_t> id = pick_target();
      if (id && up_at[*id] <= cycle) target = id;
    }
    if (!target) continue;
    events.push_back(space.event(*target, cycle, false));
    const uint64_t delay = repair_delay();
    if (delay > 0) {
      events.push_back(space.event(*target, cycle + delay, true));
      up_at[*target] = cycle + delay + 1;
    } else {
      up_at[*target] = ~uint64_t{0};
    }
  }
  // Chronological, like util::sample_churn; stable so a fault keeps its
  // sampling position ahead of any same-cycle repair of another part.
  std::stable_sort(events.begin(), events.end(),
                   [](const UniverseEventT<Axes>& a,
                      const UniverseEventT<Axes>& b) {
                     return a.cycle < b.cycle;
                   });
  return events;
}

}  // namespace detail

/// Hard Poisson arrival/repair churn over the weighted classes.
template <class Axes>
std::vector<UniverseEventT<Axes>> sample_hard_churn(
    const typename Axes::Mesh& mesh, util::Rng& rng,
    const UniverseChurnParams& p) {
  detail::ComponentSpace<Axes> space(mesh);
  double wn = p.node_weight, wr = p.router_weight, wl = p.link_weight;
  if (wn + wr + wl <= 0) wn = 1;  // default to the node-only shape
  const double wsum = wn + wr + wl;
  std::vector<uint64_t> up_at(space.total(), 0);
  const bool repairs = p.repair_max > 0;
  const uint64_t lo = std::min(p.repair_min, p.repair_max);
  const uint64_t hi = std::max(p.repair_min, p.repair_max);
  return detail::strike_loop<Axes>(
      space, rng, p.rate, p.horizon, p.max_events, up_at,
      [&]() -> std::optional<size_t> {
        // Class by weight, then uniform within the class.
        const double u = rng.uniform() * wsum;
        if (u < wn) return rng.pick(space.nodes());
        if (u < wn + wr) return space.nodes() + rng.pick(space.nodes());
        if (space.links.empty()) return std::nullopt;
        return 2 * space.nodes() + rng.pick(space.links.size());
      },
      [&]() -> uint64_t {
        return repairs ? lo + rng.pick(hi - lo + 1) : 0;
      });
}

/// Transient flip-and-recover: strikes hit routers and links uniformly at
/// 1/MTBF per component (mtbf == 0 falls back to `rate` as the total);
/// recovery is exponential with mean MTTR, clamped to >= 1 cycle.
template <class Axes>
std::vector<UniverseEventT<Axes>> sample_transient(
    const typename Axes::Mesh& mesh, util::Rng& rng,
    const UniverseChurnParams& p) {
  detail::ComponentSpace<Axes> space(mesh);
  const size_t soft = space.nodes() + space.links.size();  // routers + links
  const double total_rate =
      p.mtbf > 0 ? static_cast<double>(soft) / p.mtbf : p.rate;
  std::vector<uint64_t> up_at(space.total(), 0);
  const double mttr = std::max(p.mttr, 1.0);
  return detail::strike_loop<Axes>(
      space, rng, total_rate, p.horizon, p.max_events, up_at,
      [&]() -> std::optional<size_t> {
        if (soft == 0) return std::nullopt;
        // k in [0, N) is a router, k in [N, soft) a link; in both cases the
        // component-space id (routers at [N, 2N), links at [2N, 2N+L)) is
        // nodes() + k.
        return space.nodes() + rng.pick(soft);
      },
      [&]() -> uint64_t {
        const double d = -std::log1p(-rng.uniform()) * mttr;
        return 1 + static_cast<uint64_t>(d);
      });
}

/// The composite schedule: hard churn and transient flips drawn from the
/// same Rng (hard first), stably merged by cycle so ties keep hard events
/// ahead of transient ones.
template <class Axes>
std::vector<UniverseEventT<Axes>> sample_universe_churn(
    const typename Axes::Mesh& mesh, util::Rng& rng,
    const UniverseChurnParams& p, bool hard, bool transient) {
  std::vector<UniverseEventT<Axes>> events;
  if (hard) events = sample_hard_churn<Axes>(mesh, rng, p);
  if (transient) {
    auto soft = sample_transient<Axes>(mesh, rng, p);
    events.insert(events.end(), soft.begin(), soft.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const UniverseEventT<Axes>& a,
                      const UniverseEventT<Axes>& b) {
                     return a.cycle < b.cycle;
                   });
  return events;
}

/// Applies one event; returns false when it was a no-op (the component was
/// already in the event's target state — e.g. a strike on an
/// initially-faulty component).
template <class Axes>
bool apply_event(FaultUniverseT<Axes>& u, const UniverseEventT<Axes>& e) {
  const bool v = !e.repair;
  switch (e.comp) {
    case Component::Node:
      if (u.node_faulty(e.node) == v) return false;
      u.set_node(e.node, v);
      return true;
    case Component::Router:
      if (u.router_faulty(e.node) == v) return false;
      u.set_router(e.node, v);
      return true;
    case Component::Link:
      if (u.link_faulty(e.node, e.dir) == v) return false;
      u.set_link(e.node, e.dir, v);
      return true;
  }
  return false;
}

}  // namespace mcc::fault
