// Conservative projection of a FaultUniverse onto the node-only FaultSet
// the MCC construction consumes.
//
// The projection rule (docs/faults.md states it with the soundness
// argument; the residual gap is measured by the reliability driver, never
// hidden):
//
//   1. A node fault or a router-internal fault projects to a node fault at
//      the same coordinate — exact: a node that cannot compute or cannot
//      switch is a dead node in the paper's sense.
//   2. Each faulty link is processed in canonical order (ascending lower
//      endpoint index, then direction). If either endpoint is already in
//      the projected set, the link is covered at no extra cost; otherwise
//      its canonical lower endpoint is sacrificed — marked faulty even
//      though the physical node is alive. This is the paper's own §1
//      observation ("a link fault is expressible by disabling an adjacent
//      node") made systematic, and it is sound: every projected-feasible
//      minimal path avoids sacrificed nodes and therefore every dead link.
//   3. A node whose incident links are all faulty is isolated either way;
//      the greedy cover simply reaches it through whichever of its links
//      comes first in canonical order.
//
// The cost of conservatism is the sacrificed set: physically-live nodes
// the projected model refuses to source, sink or route through.
// ProjectionStats counts them so every consumer can report the gap.
//
// ProjectionTrackerT maintains the projected view across universe
// mutations by recompute-and-diff: projection is O(mesh) and events are
// rare relative to simulated cycles, and the diff (emitted in ascending
// node-index order) is what the incremental DynamicModel and the wormhole
// network consume as fail/repair deltas. Recompute-and-diff also makes
// repair correctness trivial — a repaired link un-sacrifices its endpoint
// only when no other assigned link still needs it, which the fresh greedy
// pass gets right by construction.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "fault/universe.h"

namespace mcc::fault {

struct ProjectionStats {
  int node_faults = 0;    // dead nodes (node ∪ router class) — exact
  int link_faults = 0;    // faulty links in the universe
  int covered_links = 0;  // link faults already covered by a dead endpoint
  int sacrificed = 0;     // live nodes conservatively marked faulty
};

template <class Axes>
struct ProjectionT {
  typename Axes::FaultSet faults;
  ProjectionStats stats;
};

template <class Axes>
ProjectionT<Axes> project(const FaultUniverseT<Axes>& u) {
  const typename Axes::Mesh& mesh = u.mesh();
  ProjectionT<Axes> out{typename Axes::FaultSet(mesh), {}};
  for (size_t i = 0; i < mesh.node_count(); ++i) {
    const typename Axes::Coord c = mesh.coord(i);
    if (u.dead(c)) {
      out.faults.set_faulty(c);
      ++out.stats.node_faults;
    }
  }
  out.stats.link_faults = u.link_fault_count();
  for (const LinkIdT<Axes>& l : u.faulty_links()) {
    const typename Axes::Coord w = mesh::step(l.node, l.dir);
    if (out.faults.is_faulty(l.node) || out.faults.is_faulty(w)) {
      ++out.stats.covered_links;
    } else {
      out.faults.set_faulty(l.node);
      ++out.stats.sacrificed;
    }
  }
  return out;
}

template <class Axes>
class ProjectionTrackerT {
 public:
  using Coord = typename Axes::Coord;

  explicit ProjectionTrackerT(const FaultUniverseT<Axes>& u) : universe_(u) {
    auto p = project(universe_);
    projected_ = std::make_unique<typename Axes::FaultSet>(std::move(p.faults));
    stats_ = p.stats;
  }

  /// Recomputes the projection after the universe mutated and returns the
  /// node-fault delta (ascending node-index order) relative to the last
  /// refresh. Callers apply `fail` then `repair` to their node-fault
  /// consumers (DynamicModel, routing baselines).
  struct Delta {
    std::vector<Coord> fail;
    std::vector<Coord> repair;
  };
  Delta refresh() {
    auto p = project(universe_);
    Delta d;
    const typename Axes::Mesh& mesh = universe_.mesh();
    for (size_t i = 0; i < mesh.node_count(); ++i) {
      const Coord c = mesh.coord(i);
      const bool was = projected_->is_faulty(c);
      const bool now = p.faults.is_faulty(c);
      if (!was && now) d.fail.push_back(c);
      if (was && !now) d.repair.push_back(c);
    }
    *projected_ = std::move(p.faults);
    stats_ = p.stats;
    return d;
  }

  const typename Axes::FaultSet& projected() const { return *projected_; }
  const ProjectionStats& stats() const { return stats_; }

 private:
  const FaultUniverseT<Axes>& universe_;
  // unique_ptr because FaultSet has no default construction without a mesh.
  std::unique_ptr<typename Axes::FaultSet> projected_;
  ProjectionStats stats_;
};

using ProjectionTracker2D = ProjectionTrackerT<Axes2>;
using ProjectionTracker3D = ProjectionTrackerT<Axes3>;

}  // namespace mcc::fault
