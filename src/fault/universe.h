// FaultUniverse — the three-component-class generalization of the mesh
// layer's node-only FaultSet (E14).
//
// The paper's model is fail-stop nodes; the related work (Dang et al.'s
// soft+hard 3D-NoC faults, Safaei & ValadBeigi's probabilistic n-D mesh
// reliability) motivates two more component classes and a lifetime axis:
//
//   node            the compute node is down (the paper's fault class);
//   router-internal the router datapath is broken — the node cannot switch
//                   traffic, which makes it indistinguishable from a node
//                   fault at the network level, but it fails under its own
//                   stochastic process and is accounted separately;
//   link            one bidirectional mesh channel is down while both of
//                   its endpoint routers keep working.
//
// Lifetimes (hard vs transient) are a property of the fault *process*
// (process.h), not of this state container: a FaultUniverse is simply the
// set of components down right now, however they got there.
//
// Link identity: every link is stored canonically as (lower endpoint,
// positive direction) — the link between u and u+x̂ is (u, PosX) — but
// queried symmetrically: link_faulty(u, PosX) and link_faulty(u+x̂, NegX)
// answer about the same physical channel. Internally both endpoints carry
// the incident-direction bit, so the symmetric query is O(1).
//
// The core MCC construction consumes node faults only; projection.h maps
// a universe onto a conservative FaultSet and measures the residual gap.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/coord.h"
#include "mesh/fault_set.h"
#include "mesh/mesh.h"

namespace mcc::fault {

enum class Component : uint8_t { Node = 0, Router = 1, Link = 2 };

inline const char* to_string(Component c) {
  switch (c) {
    case Component::Node: return "node";
    case Component::Router: return "router";
    case Component::Link: return "link";
  }
  return "?";
}

struct Axes2 {
  using Mesh = mesh::Mesh2D;
  using Coord = mesh::Coord2;
  using Dir = mesh::Dir2;
  using FaultSet = mesh::FaultSet2D;
  static constexpr int kDirs = 4;
};

struct Axes3 {
  using Mesh = mesh::Mesh3D;
  using Coord = mesh::Coord3;
  using Dir = mesh::Dir3;
  using FaultSet = mesh::FaultSet3D;
  static constexpr int kDirs = 6;
};

/// A link in canonical form: `node` is the lower endpoint, `dir` one of
/// the positive directions (even Dir values).
template <class Axes>
struct LinkIdT {
  typename Axes::Coord node{};
  typename Axes::Dir dir{};
};

template <class Axes>
class FaultUniverseT {
 public:
  using Mesh = typename Axes::Mesh;
  using Coord = typename Axes::Coord;
  using Dir = typename Axes::Dir;
  static constexpr int kDirs = Axes::kDirs;

  explicit FaultUniverseT(const Mesh& mesh)
      : mesh_(mesh),
        node_(mesh.node_count(), 0),
        router_(mesh.node_count(), 0),
        link_(mesh.node_count(), 0) {}

  const Mesh& mesh() const { return mesh_; }

  bool node_faulty(Coord c) const { return node_[mesh_.index(c)] != 0; }
  bool router_faulty(Coord c) const { return router_[mesh_.index(c)] != 0; }

  /// Symmetric link query; a wall (no neighbor in `d`) is never faulty.
  bool link_faulty(Coord c, Dir d) const {
    return (link_[mesh_.index(c)] >> static_cast<int>(d)) & 1;
  }

  /// True when the node cannot participate in the network at all: its own
  /// class or its router is down. (A link fault leaves the node dead on
  /// one port only — it is NOT dead.)
  bool dead(Coord c) const {
    const size_t i = mesh_.index(c);
    return node_[i] != 0 || router_[i] != 0;
  }

  void set_node(Coord c, bool v = true) {
    uint8_t& cell = node_[mesh_.index(c)];
    if (cell == static_cast<uint8_t>(v)) return;
    cell = static_cast<uint8_t>(v);
    node_count_ += v ? 1 : -1;
  }

  void set_router(Coord c, bool v = true) {
    uint8_t& cell = router_[mesh_.index(c)];
    if (cell == static_cast<uint8_t>(v)) return;
    cell = static_cast<uint8_t>(v);
    router_count_ += v ? 1 : -1;
  }

  /// Marks the physical channel (c, d) faulty/healthy; both endpoint views
  /// flip together. A wall direction is a no-op.
  void set_link(Coord c, Dir d, bool v = true) {
    const Coord w = mesh::step(c, d);
    if (!mesh_.contains(w)) return;
    const size_t ci = mesh_.index(c);
    const uint8_t bit = static_cast<uint8_t>(1u << static_cast<int>(d));
    const bool was = (link_[ci] & bit) != 0;
    if (was == v) return;
    const size_t wi = mesh_.index(w);
    const uint8_t wbit =
        static_cast<uint8_t>(1u << static_cast<int>(opposite(d)));
    if (v) {
      link_[ci] |= bit;
      link_[wi] |= wbit;
      ++link_count_;
    } else {
      link_[ci] &= static_cast<uint8_t>(~bit);
      link_[wi] &= static_cast<uint8_t>(~wbit);
      --link_count_;
    }
  }

  int node_fault_count() const { return node_count_; }
  int router_fault_count() const { return router_count_; }
  int link_fault_count() const { return link_count_; }
  int total_fault_count() const {
    return node_count_ + router_count_ + link_count_;
  }

  std::vector<Coord> faulty_nodes() const { return collect(node_); }
  std::vector<Coord> faulty_routers() const { return collect(router_); }

  /// Canonical order: ascending node index, then ascending positive
  /// direction — the iteration order every deterministic consumer
  /// (projection, Bernoulli samplers, the wormhole env setup) relies on.
  std::vector<LinkIdT<Axes>> faulty_links() const {
    std::vector<LinkIdT<Axes>> out;
    out.reserve(static_cast<size_t>(link_count_));
    for (size_t i = 0; i < link_.size(); ++i) {
      if (link_[i] == 0) continue;
      const Coord c = mesh_.coord(i);
      for (int q = 0; q < kDirs; q += 2)  // positive directions only
        if ((link_[i] >> q) & 1)
          out.push_back({c, static_cast<Dir>(q)});
    }
    return out;
  }

  /// All physical links of the mesh, canonical order (the component space
  /// the stochastic processes sample from).
  static std::vector<LinkIdT<Axes>> all_links(const Mesh& mesh) {
    std::vector<LinkIdT<Axes>> out;
    for (size_t i = 0; i < mesh.node_count(); ++i) {
      const Coord c = mesh.coord(i);
      for (int q = 0; q < kDirs; q += 2) {
        const Dir d = static_cast<Dir>(q);
        if (mesh.contains(mesh::step(c, d))) out.push_back({c, d});
      }
    }
    return out;
  }

 private:
  std::vector<Coord> collect(const std::vector<uint8_t>& v) const {
    std::vector<Coord> out;
    for (size_t i = 0; i < v.size(); ++i)
      if (v[i]) out.push_back(mesh_.coord(i));
    return out;
  }

  Mesh mesh_;
  std::vector<uint8_t> node_;
  std::vector<uint8_t> router_;
  std::vector<uint8_t> link_;  // incident-direction bitmask, both endpoints
  int node_count_ = 0;
  int router_count_ = 0;
  int link_count_ = 0;
};

using FaultUniverse2D = FaultUniverseT<Axes2>;
using FaultUniverse3D = FaultUniverseT<Axes3>;
using LinkId2 = LinkIdT<Axes2>;
using LinkId3 = LinkIdT<Axes3>;

}  // namespace mcc::fault
