// Coordinates and direction sets for 2-D and 3-D meshes.
//
// Directions follow the paper's naming: ±X, ±Y (±Z). Positive directions are
// the "preferred" directions for the canonical routing octant (s at the
// origin, d with non-negative offsets).
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <string>

namespace mcc::mesh {

struct Coord2 {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord2&, const Coord2&) = default;
  friend Coord2 operator+(Coord2 a, Coord2 b) { return {a.x + b.x, a.y + b.y}; }
};

struct Coord3 {
  int x = 0;
  int y = 0;
  int z = 0;

  friend bool operator==(const Coord3&, const Coord3&) = default;
  friend Coord3 operator+(Coord3 a, Coord3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
};

inline int manhattan(Coord2 a, Coord2 b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}
inline int manhattan(Coord3 a, Coord3 b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z);
}

/// 2-D directions in the order {+X, -X, +Y, -Y}.
enum class Dir2 : uint8_t { PosX = 0, NegX = 1, PosY = 2, NegY = 3 };

/// 3-D directions in the order {+X, -X, +Y, -Y, +Z, -Z}.
enum class Dir3 : uint8_t {
  PosX = 0,
  NegX = 1,
  PosY = 2,
  NegY = 3,
  PosZ = 4,
  NegZ = 5
};

inline constexpr std::array<Dir2, 4> kAllDir2 = {Dir2::PosX, Dir2::NegX,
                                                 Dir2::PosY, Dir2::NegY};
inline constexpr std::array<Dir3, 6> kAllDir3 = {Dir3::PosX, Dir3::NegX,
                                                 Dir3::PosY, Dir3::NegY,
                                                 Dir3::PosZ, Dir3::NegZ};

/// Preferred (positive) directions for the canonical octant.
inline constexpr std::array<Dir2, 2> kPosDir2 = {Dir2::PosX, Dir2::PosY};
inline constexpr std::array<Dir3, 3> kPosDir3 = {Dir3::PosX, Dir3::PosY,
                                                 Dir3::PosZ};

inline Coord2 step(Coord2 c, Dir2 d) {
  switch (d) {
    case Dir2::PosX: return {c.x + 1, c.y};
    case Dir2::NegX: return {c.x - 1, c.y};
    case Dir2::PosY: return {c.x, c.y + 1};
    case Dir2::NegY: return {c.x, c.y - 1};
  }
  return c;
}

inline Coord3 step(Coord3 c, Dir3 d) {
  switch (d) {
    case Dir3::PosX: return {c.x + 1, c.y, c.z};
    case Dir3::NegX: return {c.x - 1, c.y, c.z};
    case Dir3::PosY: return {c.x, c.y + 1, c.z};
    case Dir3::NegY: return {c.x, c.y - 1, c.z};
    case Dir3::PosZ: return {c.x, c.y, c.z + 1};
    case Dir3::NegZ: return {c.x, c.y, c.z - 1};
  }
  return c;
}

inline Dir2 opposite(Dir2 d) {
  switch (d) {
    case Dir2::PosX: return Dir2::NegX;
    case Dir2::NegX: return Dir2::PosX;
    case Dir2::PosY: return Dir2::NegY;
    case Dir2::NegY: return Dir2::PosY;
  }
  return d;
}

inline Dir3 opposite(Dir3 d) {
  switch (d) {
    case Dir3::PosX: return Dir3::NegX;
    case Dir3::NegX: return Dir3::PosX;
    case Dir3::PosY: return Dir3::NegY;
    case Dir3::NegY: return Dir3::PosY;
    case Dir3::PosZ: return Dir3::NegZ;
    case Dir3::NegZ: return Dir3::PosZ;
  }
  return d;
}

/// Dimension index (0=X, 1=Y, 2=Z) of a direction.
inline int axis_of(Dir2 d) { return static_cast<int>(d) / 2; }
inline int axis_of(Dir3 d) { return static_cast<int>(d) / 2; }

inline std::string to_string(Dir2 d) {
  static constexpr const char* names[] = {"+X", "-X", "+Y", "-Y"};
  return names[static_cast<int>(d)];
}
inline std::string to_string(Dir3 d) {
  static constexpr const char* names[] = {"+X", "-X", "+Y", "-Y", "+Z", "-Z"};
  return names[static_cast<int>(d)];
}

inline std::ostream& operator<<(std::ostream& os, Coord2 c) {
  return os << '(' << c.x << ',' << c.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, Coord3 c) {
  return os << '(' << c.x << ',' << c.y << ',' << c.z << ')';
}

}  // namespace mcc::mesh

template <>
struct std::hash<mcc::mesh::Coord2> {
  size_t operator()(const mcc::mesh::Coord2& c) const {
    return std::hash<int64_t>{}((static_cast<int64_t>(c.x) << 32) ^
                                static_cast<uint32_t>(c.y));
  }
};

template <>
struct std::hash<mcc::mesh::Coord3> {
  size_t operator()(const mcc::mesh::Coord3& c) const {
    int64_t k = c.x;
    k = k * 1000003 + c.y;
    k = k * 1000003 + c.z;
    return std::hash<int64_t>{}(k);
  }
};
