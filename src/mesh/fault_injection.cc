#include "mesh/fault_injection.h"

#include <algorithm>
#include <unordered_set>

namespace mcc::mesh {

namespace {

template <class Coord>
bool is_protected(const std::vector<Coord>& prot, Coord c) {
  return std::find(prot.begin(), prot.end(), c) != prot.end();
}

}  // namespace

FaultSet2D inject_uniform(const Mesh2D& mesh, double rate, util::Rng& rng,
                          const std::vector<Coord2>& protected_nodes) {
  FaultSet2D f(mesh);
  for (int y = 0; y < mesh.ny(); ++y)
    for (int x = 0; x < mesh.nx(); ++x) {
      const Coord2 c{x, y};
      if (rng.chance(rate) && !is_protected(protected_nodes, c))
        f.set_faulty(c);
    }
  return f;
}

FaultSet3D inject_uniform(const Mesh3D& mesh, double rate, util::Rng& rng,
                          const std::vector<Coord3>& protected_nodes) {
  FaultSet3D f(mesh);
  for (int z = 0; z < mesh.nz(); ++z)
    for (int y = 0; y < mesh.ny(); ++y)
      for (int x = 0; x < mesh.nx(); ++x) {
        const Coord3 c{x, y, z};
        if (rng.chance(rate) && !is_protected(protected_nodes, c))
          f.set_faulty(c);
      }
  return f;
}

FaultSet2D inject_exact(const Mesh2D& mesh, int count, util::Rng& rng,
                        const std::vector<Coord2>& protected_nodes) {
  FaultSet2D f(mesh);
  const int max_faults =
      static_cast<int>(mesh.node_count()) - static_cast<int>(protected_nodes.size());
  count = std::min(count, max_faults);
  while (f.count() < count) {
    const Coord2 c = mesh.coord(rng.pick(mesh.node_count()));
    if (!f.is_faulty(c) && !is_protected(protected_nodes, c)) f.set_faulty(c);
  }
  return f;
}

FaultSet3D inject_exact(const Mesh3D& mesh, int count, util::Rng& rng,
                        const std::vector<Coord3>& protected_nodes) {
  FaultSet3D f(mesh);
  const int max_faults =
      static_cast<int>(mesh.node_count()) - static_cast<int>(protected_nodes.size());
  count = std::min(count, max_faults);
  while (f.count() < count) {
    const Coord3 c = mesh.coord(rng.pick(mesh.node_count()));
    if (!f.is_faulty(c) && !is_protected(protected_nodes, c)) f.set_faulty(c);
  }
  return f;
}

FaultSet2D inject_clustered(const Mesh2D& mesh, int count, int clusters,
                            util::Rng& rng,
                            const std::vector<Coord2>& protected_nodes) {
  FaultSet2D f(mesh);
  std::vector<Coord2> frontier;
  clusters = std::max(clusters, 1);
  for (int i = 0; i < clusters && f.count() < count; ++i) {
    const Coord2 seed = mesh.coord(rng.pick(mesh.node_count()));
    if (!f.is_faulty(seed) && !is_protected(protected_nodes, seed)) {
      f.set_faulty(seed);
      frontier.push_back(seed);
    }
  }
  int stall = 0;
  while (f.count() < count && !frontier.empty() && stall < 10000) {
    const size_t i = rng.pick(frontier.size());
    const Coord2 base = frontier[i];
    const Dir2 d = kAllDir2[rng.pick(4)];
    const Coord2 n = step(base, d);
    if (mesh.contains(n) && !f.is_faulty(n) &&
        !is_protected(protected_nodes, n)) {
      f.set_faulty(n);
      frontier.push_back(n);
      stall = 0;
    } else {
      ++stall;
    }
  }
  return f;
}

FaultSet3D inject_clustered(const Mesh3D& mesh, int count, int clusters,
                            util::Rng& rng,
                            const std::vector<Coord3>& protected_nodes) {
  FaultSet3D f(mesh);
  std::vector<Coord3> frontier;
  clusters = std::max(clusters, 1);
  for (int i = 0; i < clusters && f.count() < count; ++i) {
    const Coord3 seed = mesh.coord(rng.pick(mesh.node_count()));
    if (!f.is_faulty(seed) && !is_protected(protected_nodes, seed)) {
      f.set_faulty(seed);
      frontier.push_back(seed);
    }
  }
  int stall = 0;
  while (f.count() < count && !frontier.empty() && stall < 10000) {
    const size_t i = rng.pick(frontier.size());
    const Coord3 base = frontier[i];
    const Dir3 d = kAllDir3[rng.pick(6)];
    const Coord3 n = step(base, d);
    if (mesh.contains(n) && !f.is_faulty(n) &&
        !is_protected(protected_nodes, n)) {
      f.set_faulty(n);
      frontier.push_back(n);
      stall = 0;
    } else {
      ++stall;
    }
  }
  return f;
}

void add_wall_x(FaultSet2D& f, const Mesh2D& mesh, int x0, int y0, int y1) {
  for (int y = y0; y <= y1; ++y)
    if (mesh.contains({x0, y})) f.set_faulty({x0, y});
}

void add_wall_y(FaultSet2D& f, const Mesh2D& mesh, int x0, int x1, int y0) {
  for (int x = x0; x <= x1; ++x)
    if (mesh.contains({x, y0})) f.set_faulty({x, y0});
}

void add_plate_z(FaultSet3D& f, const Mesh3D& mesh, int x0, int x1, int y0,
                 int y1, int z0) {
  for (int y = y0; y <= y1; ++y)
    for (int x = x0; x <= x1; ++x)
      if (mesh.contains({x, y, z0})) f.set_faulty({x, y, z0});
}

void add_plate_x(FaultSet3D& f, const Mesh3D& mesh, int x0, int y0, int y1,
                 int z0, int z1) {
  for (int z = z0; z <= z1; ++z)
    for (int y = y0; y <= y1; ++y)
      if (mesh.contains({x0, y, z})) f.set_faulty({x0, y, z});
}

void add_plate_y(FaultSet3D& f, const Mesh3D& mesh, int y0, int x0, int x1,
                 int z0, int z1) {
  for (int z = z0; z <= z1; ++z)
    for (int x = x0; x <= x1; ++x)
      if (mesh.contains({x, y0, z})) f.set_faulty({x, y0, z});
}

}  // namespace mcc::mesh
