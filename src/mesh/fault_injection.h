// Workload generators: synthetic fault patterns.
//
// The paper's (unavailable) simulation study injects uniformly random node
// faults; we add clustered faults and structured adversarial patterns
// (walls, plates, shells) that exercise the model's corner cases — these are
// the substitution for the tech report's withheld workloads (DESIGN.md §8).
#pragma once

#include <vector>

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "util/rng.h"

namespace mcc::mesh {

/// Marks each node faulty independently with probability `rate`, never
/// touching `protected_nodes` (typically the source/destination corners).
FaultSet2D inject_uniform(const Mesh2D& mesh, double rate, util::Rng& rng,
                          const std::vector<Coord2>& protected_nodes = {});
FaultSet3D inject_uniform(const Mesh3D& mesh, double rate, util::Rng& rng,
                          const std::vector<Coord3>& protected_nodes = {});

/// Draws exactly `count` distinct faulty nodes uniformly at random.
FaultSet2D inject_exact(const Mesh2D& mesh, int count, util::Rng& rng,
                        const std::vector<Coord2>& protected_nodes = {});
FaultSet3D inject_exact(const Mesh3D& mesh, int count, util::Rng& rng,
                        const std::vector<Coord3>& protected_nodes = {});

/// Clustered faults: `clusters` seeds grown by random-neighbor accretion
/// until `count` total faults. Models spatially correlated failures
/// (damaged region of the machine) rather than independent node deaths.
FaultSet2D inject_clustered(const Mesh2D& mesh, int count, int clusters,
                            util::Rng& rng,
                            const std::vector<Coord2>& protected_nodes = {});
FaultSet3D inject_clustered(const Mesh3D& mesh, int count, int clusters,
                            util::Rng& rng,
                            const std::vector<Coord3>& protected_nodes = {});

/// Structured patterns for adversarial tests.
/// Vertical wall segment x = x0, y in [y0, y1].
void add_wall_x(FaultSet2D& f, const Mesh2D& mesh, int x0, int y0, int y1);
/// Horizontal wall segment y = y0, x in [x0, x1].
void add_wall_y(FaultSet2D& f, const Mesh2D& mesh, int x0, int x1, int y0);
/// Axis-aligned solid plate z = z0, x in [x0,x1], y in [y0,y1].
void add_plate_z(FaultSet3D& f, const Mesh3D& mesh, int x0, int x1, int y0,
                 int y1, int z0);
void add_plate_x(FaultSet3D& f, const Mesh3D& mesh, int x0, int y0, int y1,
                 int z0, int z1);
void add_plate_y(FaultSet3D& f, const Mesh3D& mesh, int y0, int x0, int x1,
                 int z0, int z1);

}  // namespace mcc::mesh
