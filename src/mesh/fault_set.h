// Fault state of a mesh: which nodes are dead.
//
// Link faults are expressible by disabling an adjacent node (the paper treats
// link faults exactly this way, §1), so the MCC core consumes node faults
// only. The three-class generalization (node / router-internal / link with
// hard and transient lifetimes) lives in src/fault: fault::FaultUniverse
// holds the richer state and fault::project() applies the paper's §1 rule
// systematically, mapping a universe onto this FaultSet and measuring the
// sacrificed-node gap (docs/faults.md).
#pragma once

#include <vector>

#include "mesh/coord.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::mesh {

class FaultSet2D {
 public:
  explicit FaultSet2D(const Mesh2D& mesh)
      : grid_(mesh.nx(), mesh.ny(), uint8_t{0}) {}

  bool is_faulty(Coord2 c) const { return grid_.at(c.x, c.y) != 0; }

  void set_faulty(Coord2 c, bool v = true) {
    uint8_t& cell = grid_.at(c.x, c.y);
    if (cell == static_cast<uint8_t>(v)) return;
    cell = static_cast<uint8_t>(v);
    count_ += v ? 1 : -1;
  }

  int count() const { return count_; }

  std::vector<Coord2> faulty_nodes() const {
    std::vector<Coord2> out;
    out.reserve(static_cast<size_t>(count_));
    for (int y = 0; y < grid_.ny(); ++y)
      for (int x = 0; x < grid_.nx(); ++x)
        if (grid_.at(x, y)) out.push_back({x, y});
    return out;
  }

 private:
  util::Grid2<uint8_t> grid_;
  int count_ = 0;
};

class FaultSet3D {
 public:
  explicit FaultSet3D(const Mesh3D& mesh)
      : grid_(mesh.nx(), mesh.ny(), mesh.nz(), uint8_t{0}) {}

  bool is_faulty(Coord3 c) const { return grid_.at(c.x, c.y, c.z) != 0; }

  void set_faulty(Coord3 c, bool v = true) {
    uint8_t& cell = grid_.at(c.x, c.y, c.z);
    if (cell == static_cast<uint8_t>(v)) return;
    cell = static_cast<uint8_t>(v);
    count_ += v ? 1 : -1;
  }

  int count() const { return count_; }

  std::vector<Coord3> faulty_nodes() const {
    std::vector<Coord3> out;
    out.reserve(static_cast<size_t>(count_));
    for (int z = 0; z < grid_.nz(); ++z)
      for (int y = 0; y < grid_.ny(); ++y)
        for (int x = 0; x < grid_.nx(); ++x)
          if (grid_.at(x, y, z)) out.push_back({x, y, z});
    return out;
  }

 private:
  util::Grid3<uint8_t> grid_;
  int count_ = 0;
};

}  // namespace mcc::mesh
