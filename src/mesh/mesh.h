// Mesh topologies. A mesh is a pure shape object: dimensions, bounds checks
// and index mapping. Fault state lives in mesh::FaultSet, labels in
// core::LabelField*.
#pragma once

#include <cassert>
#include <cstddef>

#include "mesh/coord.h"

namespace mcc::mesh {

/// k1 x k2 2-D mesh. Interior nodes have degree 4.
class Mesh2D {
 public:
  Mesh2D(int nx, int ny) : nx_(nx), ny_(ny) {
    assert(nx > 0 && ny > 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  size_t node_count() const { return static_cast<size_t>(nx_) * ny_; }

  bool contains(Coord2 c) const {
    return c.x >= 0 && c.x < nx_ && c.y >= 0 && c.y < ny_;
  }

  size_t index(Coord2 c) const {
    assert(contains(c));
    return static_cast<size_t>(c.y) * nx_ + c.x;
  }

  Coord2 coord(size_t i) const {
    return {static_cast<int>(i % nx_), static_cast<int>(i / nx_)};
  }

  /// Calls fn(neighbor, dir) for each in-mesh neighbor of c.
  template <class Fn>
  void for_each_neighbor(Coord2 c, Fn&& fn) const {
    for (Dir2 d : kAllDir2) {
      const Coord2 n = step(c, d);
      if (contains(n)) fn(n, d);
    }
  }

 private:
  int nx_;
  int ny_;
};

/// k1 x k2 x k3 3-D mesh. Interior nodes have degree 6.
class Mesh3D {
 public:
  Mesh3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
    assert(nx > 0 && ny > 0 && nz > 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  size_t node_count() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }

  bool contains(Coord3 c) const {
    return c.x >= 0 && c.x < nx_ && c.y >= 0 && c.y < ny_ && c.z >= 0 &&
           c.z < nz_;
  }

  size_t index(Coord3 c) const {
    assert(contains(c));
    return (static_cast<size_t>(c.z) * ny_ + c.y) * nx_ + c.x;
  }

  Coord3 coord(size_t i) const {
    const int x = static_cast<int>(i % nx_);
    const int y = static_cast<int>((i / nx_) % ny_);
    const int z = static_cast<int>(i / (static_cast<size_t>(nx_) * ny_));
    return {x, y, z};
  }

  template <class Fn>
  void for_each_neighbor(Coord3 c, Fn&& fn) const {
    for (Dir3 d : kAllDir3) {
      const Coord3 n = step(c, d);
      if (contains(n)) fn(n, d);
    }
  }

 private:
  int nx_;
  int ny_;
  int nz_;
};

}  // namespace mcc::mesh
