#include "mesh/octant.h"

namespace mcc::mesh {

FaultSet2D materialize(const FaultSet2D& f, const Mesh2D& mesh, Octant2 o) {
  FaultSet2D out(mesh);
  for (int y = 0; y < mesh.ny(); ++y)
    for (int x = 0; x < mesh.nx(); ++x) {
      const Coord2 c{x, y};
      if (f.is_faulty(c)) out.set_faulty(o.transform(c, mesh));
    }
  return out;
}

FaultSet3D materialize(const FaultSet3D& f, const Mesh3D& mesh, Octant3 o) {
  FaultSet3D out(mesh);
  for (int z = 0; z < mesh.nz(); ++z)
    for (int y = 0; y < mesh.ny(); ++y)
      for (int x = 0; x < mesh.nx(); ++x) {
        const Coord3 c{x, y, z};
        if (f.is_faulty(c)) out.set_faulty(o.transform(c, mesh));
      }
  return out;
}

}  // namespace mcc::mesh
