// Orientation handling.
//
// All core algorithms are written for the canonical octant: source at the
// origin, destination with non-negative offsets, preferred directions
// +X/+Y(/+Z). An OctantView maps an arbitrary (s,d) pair into that frame by
// flipping axes; `transform` / `untransform` convert coordinates, and
// `materialize` produces the flipped fault set the canonical algorithms run
// on. This is how the library serves all 4 quadrant classes in 2-D and all
// 8 octant classes in 3-D from a single implementation (DESIGN.md §6).
#pragma once

#include "mesh/fault_set.h"
#include "mesh/mesh.h"

namespace mcc::mesh {

/// Axis flip mask for 2-D: flip.x means the canonical +X corresponds to the
/// physical -X direction.
struct Octant2 {
  bool flip_x = false;
  bool flip_y = false;

  /// Orientation class of routing from s toward d (ties resolve to "no
  /// flip"; a zero offset means the axis is degenerate and unaffected).
  static Octant2 from_pair(Coord2 s, Coord2 d) {
    return {d.x < s.x, d.y < s.y};
  }

  Coord2 transform(Coord2 c, const Mesh2D& mesh) const {
    return {flip_x ? mesh.nx() - 1 - c.x : c.x,
            flip_y ? mesh.ny() - 1 - c.y : c.y};
  }
  /// The flip is an involution, so untransform == transform.
  Coord2 untransform(Coord2 c, const Mesh2D& mesh) const {
    return transform(c, mesh);
  }

  /// Index of this octant in [0, 4).
  int id() const { return (flip_x ? 1 : 0) | (flip_y ? 2 : 0); }
};

struct Octant3 {
  bool flip_x = false;
  bool flip_y = false;
  bool flip_z = false;

  static Octant3 from_pair(Coord3 s, Coord3 d) {
    return {d.x < s.x, d.y < s.y, d.z < s.z};
  }

  Coord3 transform(Coord3 c, const Mesh3D& mesh) const {
    return {flip_x ? mesh.nx() - 1 - c.x : c.x,
            flip_y ? mesh.ny() - 1 - c.y : c.y,
            flip_z ? mesh.nz() - 1 - c.z : c.z};
  }
  Coord3 untransform(Coord3 c, const Mesh3D& mesh) const {
    return transform(c, mesh);
  }

  /// Index of this octant in [0, 8).
  int id() const {
    return (flip_x ? 1 : 0) | (flip_y ? 2 : 0) | (flip_z ? 4 : 0);
  }
};

/// Materializes the axis-flipped copy of a fault set.
FaultSet2D materialize(const FaultSet2D& f, const Mesh2D& mesh, Octant2 o);
FaultSet3D materialize(const FaultSet3D& f, const Mesh3D& mesh, Octant3 o);

}  // namespace mcc::mesh
