// Plane slices of a 3-D fault set.
//
// When a source/destination pair is degenerate in one dimension (equal
// coordinates), minimal routing is confined to the corresponding 2-D plane
// and the problem reduces exactly to the 2-D model on that slice
// (DESIGN.md §3). These helpers extract the slice.
#pragma once

#include "mesh/fault_set.h"
#include "mesh/mesh.h"

namespace mcc::mesh {

enum class Plane : uint8_t { XY = 0, XZ = 1, YZ = 2 };

/// Shape of the slice plane.
inline Mesh2D slice_mesh(const Mesh3D& mesh, Plane p) {
  switch (p) {
    case Plane::XY: return Mesh2D(mesh.nx(), mesh.ny());
    case Plane::XZ: return Mesh2D(mesh.nx(), mesh.nz());
    case Plane::YZ: return Mesh2D(mesh.ny(), mesh.nz());
  }
  return Mesh2D(1, 1);
}

/// Maps a 2-D slice coordinate back into the 3-D mesh; `level` is the fixed
/// coordinate of the plane.
inline Coord3 unslice(Plane p, Coord2 c, int level) {
  switch (p) {
    case Plane::XY: return {c.x, c.y, level};
    case Plane::XZ: return {c.x, level, c.y};
    case Plane::YZ: return {level, c.x, c.y};
  }
  return {};
}

/// Projects a 3-D coordinate onto the slice plane.
inline Coord2 slice_coord(Plane p, Coord3 c) {
  switch (p) {
    case Plane::XY: return {c.x, c.y};
    case Plane::XZ: return {c.x, c.z};
    case Plane::YZ: return {c.y, c.z};
  }
  return {};
}

/// Extracts the fault pattern of one plane.
inline FaultSet2D slice_faults(const Mesh3D& mesh, const FaultSet3D& faults,
                               Plane p, int level) {
  const Mesh2D m2 = slice_mesh(mesh, p);
  FaultSet2D out(m2);
  for (int y = 0; y < m2.ny(); ++y)
    for (int x = 0; x < m2.nx(); ++x)
      if (faults.is_faulty(unslice(p, {x, y}, level))) out.set_faulty({x, y});
  return out;
}

}  // namespace mcc::mesh
