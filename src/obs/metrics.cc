#include "obs/metrics.h"

namespace mcc::obs {

void MetricRegistry::add_counter(const std::string& name, uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += v;
}

void MetricRegistry::set_counter(const std::string& name, uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = v;
}

void MetricRegistry::set_gauge(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = v;
}

void MetricRegistry::add_gauge(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] += v;
}

void MetricRegistry::observe(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramData& h = hists_[name];
  if (h.count == 0 || v < h.min) h.min = v;
  if (h.count == 0 || v > h.max) h.max = v;
  h.sum += v;
  ++h.count;
}

std::map<std::string, uint64_t> MetricRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, HistogramData> MetricRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hists_;
}

bool MetricRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && hists_.empty();
}

}  // namespace mcc::obs
