// MetricRegistry — the deterministically-ordered name/value surface every
// layer publishes its end-of-run observables through.
//
// Determinism contract (docs/observability.md has the full argument):
//
//   * The registry itself never sits on a hot path. Hot loops accumulate
//     into shard-local plain fields exactly as they did before this layer
//     existed; the serial merge phases that already make the simulator
//     bit-identical across `threads=` also make those aggregates
//     deterministic, and only the final aggregate is published here.
//   * `counters` hold values that are bit-identical across thread counts
//     (flit/packet totals, route computations, arena high-water mark,
//     cache hit/miss/eviction totals on non-evicting runs). The
//     bench_trend gate compares them exactly.
//   * `gauges` hold values that legitimately depend on scheduling or the
//     wall clock (spin/park counts, dedup waits, reader lag, rates).
//     bench_trend treats them as informational.
//   * `histograms` summarize distributions (count/sum/min/max); the
//     count is exact when the underlying distribution is deterministic,
//     but the gate treats the whole section as informational.
//
// Iteration order is the map's lexicographic key order, so serialization
// is byte-stable run to run. All mutators take a mutex — publication is a
// cold path and the lock keeps concurrent publishers (serve's writer and
// readers at teardown) trivially safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace mcc::obs {

/// Summary of an observed distribution. min/max are meaningless until
/// count > 0.
struct HistogramData {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

class MetricRegistry {
 public:
  /// Adds `v` to the named counter (creating it at zero).
  void add_counter(const std::string& name, uint64_t v = 1);
  /// Sets the named counter to `v` outright (for published aggregates).
  void set_counter(const std::string& name, uint64_t v);
  /// Sets the named gauge.
  void set_gauge(const std::string& name, double v);
  /// Adds `v` to the named gauge (creating it at zero).
  void add_gauge(const std::string& name, double v);
  /// Folds one observation into the named histogram.
  void observe(const std::string& name, double v);

  /// Deterministically ordered snapshots (copies; safe to hold while the
  /// registry keeps mutating).
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistogramData> histograms() const;

  bool empty() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> hists_;
};

}  // namespace mcc::obs
