#include "obs/obs.h"

#include <atomic>
#include <thread>

#include "obs_build_info.h"

namespace mcc::obs {

namespace {
std::atomic<MetricRegistry*> g_metrics{nullptr};
std::atomic<TraceSink*> g_trace{nullptr};
std::atomic<FlitTrace*> g_flit{nullptr};
}  // namespace

ScopedRunObs::ScopedRunObs(RunObs& r)
    : prev_metrics_(g_metrics.load(std::memory_order_relaxed)),
      prev_prof_(detail::g_profiler.load(std::memory_order_relaxed)),
      prev_trace_(g_trace.load(std::memory_order_relaxed)),
      prev_flit_(g_flit.load(std::memory_order_relaxed)) {
  g_metrics.store(r.metrics_on ? &r.registry : nullptr,
                  std::memory_order_relaxed);
  detail::g_profiler.store(r.profile_on ? &r.prof : nullptr,
                           std::memory_order_relaxed);
  g_trace.store(r.trace.get(), std::memory_order_relaxed);
  g_flit.store(r.flit.get(), std::memory_order_relaxed);
}

ScopedRunObs::~ScopedRunObs() {
  g_metrics.store(prev_metrics_, std::memory_order_relaxed);
  detail::g_profiler.store(prev_prof_, std::memory_order_relaxed);
  g_trace.store(prev_trace_, std::memory_order_relaxed);
  g_flit.store(prev_flit_, std::memory_order_relaxed);
}

MetricRegistry* metrics() { return g_metrics.load(std::memory_order_relaxed); }
TraceSink* trace() { return g_trace.load(std::memory_order_relaxed); }
FlitTrace* flit_trace() { return g_flit.load(std::memory_order_relaxed); }

const BuildProvenance& build_provenance() {
  static const BuildProvenance info{
      MCC_BUILD_GIT_HASH, MCC_BUILD_COMPILER, MCC_BUILD_FLAGS,
      MCC_BUILD_TYPE, std::thread::hardware_concurrency()};
  return info;
}

}  // namespace mcc::obs
