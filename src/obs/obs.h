// Process-wide observability context.
//
// One RunObs bundles the four facilities (registry, profiler, trace sink,
// flit trace) for a single Experiment run. The api layer constructs it
// from the front-door config keys (`metrics= profile= trace_json=
// flit_trace=`) and installs it for the duration of the driver call via
// ScopedRunObs; deep code (the wormhole network, the MCC kernels, the
// serve loop) reaches it through the free functions below, each of which
// is a single relaxed atomic load returning nullptr when that facility is
// off. This keeps constructors and call chains free of plumbing, and the
// off path free of work — with everything off, instrumented code paths
// execute the same instructions they did before this layer existed plus
// one predictable branch per scope.
//
// Installation is not reentrant (one run at a time per process), which
// matches the Experiment/Campaign execution model: campaign points run
// sequentially within a shard, and `--jobs` parallelism is process-level.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace mcc::obs {

struct RunObs {
  bool metrics_on = false;
  bool profile_on = false;
  MetricRegistry registry;
  Profiler prof;
  std::unique_ptr<TraceSink> trace;    // non-null when span tracing is on
  std::unique_ptr<FlitTrace> flit;     // non-null when flit tracing is on
};

/// Installs `r`'s enabled facilities as the process globals; restores the
/// previous installation (normally none) on destruction.
class ScopedRunObs {
 public:
  explicit ScopedRunObs(RunObs& r);
  ~ScopedRunObs();

  ScopedRunObs(const ScopedRunObs&) = delete;
  ScopedRunObs& operator=(const ScopedRunObs&) = delete;

 private:
  MetricRegistry* prev_metrics_;
  Profiler* prev_prof_;
  TraceSink* prev_trace_;
  FlitTrace* prev_flit_;
};

/// Each returns nullptr when that facility is not installed/enabled.
MetricRegistry* metrics();
TraceSink* trace();
FlitTrace* flit_trace();
inline Profiler* profiler() {
  return detail::g_profiler.load(std::memory_order_relaxed);
}

/// Build provenance stamped into RunReport headers and BENCH_* envelopes
/// (satellite: makes trend-gate diffs triageable — which binary produced
/// which baseline). Strings are baked at CMake configure time; the git
/// hash falls back to "unknown" outside a git checkout.
struct BuildProvenance {
  std::string git_hash;
  std::string compiler;
  std::string flags;
  std::string build_type;
  unsigned hw_lanes = 0;  // std::thread::hardware_concurrency() at runtime
};

const BuildProvenance& build_provenance();

}  // namespace mcc::obs
