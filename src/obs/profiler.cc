#include "obs/profiler.h"

namespace mcc::obs {

namespace detail {
std::atomic<Profiler*> g_profiler{nullptr};
thread_local int t_current_phase = kPhaseRoot;
}  // namespace detail

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Run: return "run";
    case Phase::TickWires: return "tick.wires";
    case Phase::TickHeads: return "tick.heads";
    case Phase::TickAlloc: return "tick.alloc";
    case Phase::TickTraverse: return "tick.traverse";
    case Phase::TickCommit: return "tick.commit";
    case Phase::KernelSafeReach: return "kernel.safe_reach";
    case Phase::KernelFlood: return "kernel.flood";
    case Phase::KernelLabelFixpoint: return "kernel.label_fixpoint";
    case Phase::KernelCacheBuild: return "kernel.cache_build";
    case Phase::ServeWriterApply: return "serve.writer_apply";
    case Phase::ServeReaderQuery: return "serve.reader_query";
    case Phase::kCount: break;
  }
  return "?";
}

uint64_t Profiler::total_ns(Phase p) const {
  uint64_t n = 0;
  for (int parent = 0; parent <= kPhaseCount; ++parent)
    n += edge_ns(parent, p);
  return n;
}

uint64_t Profiler::total_calls(Phase p) const {
  uint64_t n = 0;
  for (int parent = 0; parent <= kPhaseCount; ++parent)
    n += edge_calls(parent, p);
  return n;
}

uint64_t Profiler::children_ns(Phase p) const {
  uint64_t n = 0;
  for (int child = 0; child < kPhaseCount; ++child)
    n += edge_ns(static_cast<int>(p), static_cast<Phase>(child));
  return n;
}

}  // namespace mcc::obs
