// Hierarchical scoped-timer profiler over a fixed, enumerated phase set.
//
// The phases are the known hot structure of the system: the wormhole
// tick's pipeline stages, the MCC kernels that dominate Model-mode
// routing (ROADMAP: "profile-guided tightening of the safe-reach/flood
// kernels"), and the serve core's writer/reader spans. A fixed enum —
// rather than string-keyed timers — keeps the off path to one relaxed
// atomic load and the on path to two steady_clock reads plus two relaxed
// atomic adds, cheap enough to leave compiled into per-hop kernel code.
//
// Hierarchy is observed, not declared: each thread tracks its current
// phase in a thread_local, and a scope attributes its time to the
// (parent, child) edge it actually ran under. The report layer folds the
// edge matrix into a tree, so KernelSafeReach shows up under TickHeads
// when called from candidate discovery and under ServeReaderQuery when
// called from a serve reader — with self-time = node total − children.
//
// Times are *lane-summed*: a kernel running on 4 pool lanes accumulates
// ~4x its wall time, like CPU time in a conventional profiler. Phase
// scopes taken on the coordinating thread (the tick phases, Run) are
// wall time. Call counts of the tick phases and of the routing kernels
// are deterministic across thread counts (the simulator is bit-identical
// across `threads=`); durations never are, which is why the profile
// table's timing columns are informational to the bench_trend gate.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace mcc::obs {

enum class Phase : int {
  Run = 0,           // the whole Experiment driver invocation
  TickWires,         // wormhole: wire delivery (parallel shards)
  TickHeads,         // wormhole: ready-head discovery (parallel shards)
  TickAlloc,         // wormhole: serial switch allocation
  TickTraverse,      // wormhole: switch traversal (parallel shards)
  TickCommit,        // wormhole: serial wire/eject commit
  KernelSafeReach,   // core::safe_reach_box2/3
  KernelFlood,       // core::ReachField2D/3D flood build
  KernelLabelFixpoint,  // core::LabelField2D/3D full fixpoint
  KernelCacheBuild,  // runtime::GuidanceCache miss-path field build
  ServeWriterApply,  // serve: one timeline event applied by the writer
  ServeReaderQuery,  // serve: one reader query (view + feasible + route)
  kCount
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);
/// Parent index used for time observed outside any enclosing scope.
inline constexpr int kPhaseRoot = kPhaseCount;

const char* phase_name(Phase p);

class Profiler {
 public:
  /// Attributes `ns` under the (parent, child) edge. parent is a phase
  /// index or kPhaseRoot.
  void add(int parent, Phase child, uint64_t ns) {
    Slot& s = edges_[static_cast<size_t>(parent)][static_cast<size_t>(child)];
    s.ns.fetch_add(ns, std::memory_order_relaxed);
    s.calls.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t edge_ns(int parent, Phase child) const {
    return edges_[static_cast<size_t>(parent)][static_cast<size_t>(child)]
        .ns.load(std::memory_order_relaxed);
  }
  uint64_t edge_calls(int parent, Phase child) const {
    return edges_[static_cast<size_t>(parent)][static_cast<size_t>(child)]
        .calls.load(std::memory_order_relaxed);
  }

  /// Sums over all parents: total time/calls attributed to `p`.
  uint64_t total_ns(Phase p) const;
  uint64_t total_calls(Phase p) const;
  /// Sum over all children of `p`: time nested inside `p`'s scopes.
  uint64_t children_ns(Phase p) const;

 private:
  struct Slot {
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> calls{0};
  };
  // [parent (incl. root)][child]
  std::array<std::array<Slot, kPhaseCount>, kPhaseCount + 1> edges_{};
};

namespace detail {
// Installed profiler (nullptr = profiling off). Owned by obs::ScopedRunObs.
extern std::atomic<Profiler*> g_profiler;
// Per-thread innermost active phase (kPhaseRoot when outside any scope).
extern thread_local int t_current_phase;
}  // namespace detail

/// RAII timed scope. One relaxed load when profiling is off.
class ProfScope {
 public:
  explicit ProfScope(Phase p)
      : prof_(detail::g_profiler.load(std::memory_order_relaxed)) {
    if (!prof_) return;
    phase_ = p;
    parent_ = detail::t_current_phase;
    detail::t_current_phase = static_cast<int>(p);
    t0_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (!prof_) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    detail::t_current_phase = parent_;
    prof_->add(parent_, phase_,
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                       .count()));
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* prof_;
  Phase phase_ = Phase::Run;
  int parent_ = kPhaseRoot;
  std::chrono::steady_clock::time_point t0_;
};

/// RAII phase *context* without timing: marks the current thread as
/// logically inside `p` so nested ProfScopes attribute to the right
/// parent. Used in pool-worker shard bodies, where the enclosing tick
/// phase was timed on the coordinating thread and per-lane re-timing
/// would double count.
class PhaseContext {
 public:
  explicit PhaseContext(Phase p) {
    if (!detail::g_profiler.load(std::memory_order_relaxed)) return;
    active_ = true;
    parent_ = detail::t_current_phase;
    detail::t_current_phase = static_cast<int>(p);
  }
  ~PhaseContext() {
    if (active_) detail::t_current_phase = parent_;
  }

  PhaseContext(const PhaseContext&) = delete;
  PhaseContext& operator=(const PhaseContext&) = delete;

 private:
  bool active_ = false;
  int parent_ = kPhaseRoot;
};

}  // namespace mcc::obs
