#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <fstream>

namespace mcc::obs {

TraceSink::TraceSink(size_t max_events)
    : epoch_(std::chrono::steady_clock::now()), max_events_(max_events) {
  events_.reserve(std::min<size_t>(max_events, 4096));
}

void TraceSink::complete(const char* name, uint32_t tid, int64_t ts_us,
                         int64_t dur_us, std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{name, tid, ts_us, dur_us, std::move(args_json)});
}

int64_t TraceSink::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t TraceSink::this_tid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1);
  return tid;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

bool TraceSink::write(const std::string& path) const {
  std::vector<Event> sorted;
  uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = events_;
    dropped = dropped_;
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : sorted) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << e.name << "\",\"cat\":\"mcc\",\"ph\":\"X\""
        << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
        << ",\"dur\":" << e.dur_us;
    if (!e.args_json.empty()) out << ",\"args\":{" << e.args_json << "}";
    out << "}";
  }
  if (dropped != 0) {
    if (!first) out << ",";
    out << "\n{\"name\":\"trace_buffer_full\",\"cat\":\"mcc\",\"ph\":\"X\""
        << ",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":0,\"args\":{\"dropped\":"
        << dropped << "}}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

FlitTrace::FlitTrace(size_t max_events) : max_events_(max_events) {}

void FlitTrace::event(uint64_t cycle, const char* ev, uint64_t packet,
                      const std::string& extra_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lines_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  std::string line = "{\"schema\":\"mcc.flit/1\",\"cycle\":";
  line += std::to_string(cycle);
  line += ",\"ev\":\"";
  line += ev;
  line += "\",\"pkt\":";
  line += std::to_string(packet);
  if (!extra_json.empty()) {
    line += ",";
    line += extra_json;
  }
  line += "}";
  lines_.push_back(std::move(line));
}

size_t FlitTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

bool FlitTrace::write(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  for (const std::string& line : lines_) out << line << "\n";
  if (dropped_ != 0)
    out << "{\"schema\":\"mcc.flit/1\",\"cycle\":0,\"ev\":\"truncated\","
           "\"pkt\":0,\"dropped\":"
        << dropped_ << "}\n";
  return static_cast<bool>(out);
}

}  // namespace mcc::obs
