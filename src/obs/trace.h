// Trace sinks: Chrome trace-event JSON (load in Perfetto / chrome://tracing)
// and the cycle-stamped flit-lifecycle NDJSON trace.
//
// TraceSink buffers complete ("ph":"X") events in memory and writes one
// `{"traceEvents":[...]}` document at the end of the run. Events are
// sorted by (tid, ts) at write time, so `ts` is monotone within each tid
// regardless of how nested scopes completed — the property the CI trace
// checker asserts. The buffer is capped; past the cap events are counted
// and dropped, and the drop count is recorded in a final metadata event
// (a silent truncation would read as "the run ended here").
//
// FlitTrace buffers NDJSON lines describing flit/packet lifecycle events
// (inject / route / deliver / drop). The simulator emits them only from
// its *serial* tick phases, where iteration order is deterministic — so
// the trace is byte-identical across `threads=1..N` and golden-testable.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mcc::obs {

class TraceSink {
 public:
  explicit TraceSink(size_t max_events = 250000);

  /// Records one complete event. `ts_us`/`dur_us` are microseconds since
  /// the sink's epoch; `args_json` is either empty or a pre-rendered JSON
  /// object body (`"key":1,"k2":"v"`) — keys and string values must not
  /// need escaping.
  void complete(const char* name, uint32_t tid, int64_t ts_us, int64_t dur_us,
                std::string args_json = "");

  /// Microseconds since the sink was created (the trace's time origin).
  int64_t now_us() const;

  /// Small dense id for the calling thread, stable for its lifetime.
  static uint32_t this_tid();

  /// Writes the Chrome trace-event document. Returns false on I/O error.
  bool write(const std::string& path) const;

  uint64_t dropped() const;
  size_t size() const;

 private:
  struct Event {
    const char* name;
    uint32_t tid;
    int64_t ts_us;
    int64_t dur_us;
    std::string args_json;
  };

  std::chrono::steady_clock::time_point epoch_;
  size_t max_events_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
};

/// RAII span: times a region and records it into the sink on destruction.
/// Null sink = no-op.
class TraceScope {
 public:
  TraceScope(TraceSink* sink, const char* name)
      : sink_(sink), name_(name) {
    if (sink_) t0_us_ = sink_->now_us();
  }
  ~TraceScope() {
    if (sink_)
      sink_->complete(name_, TraceSink::this_tid(), t0_us_,
                      sink_->now_us() - t0_us_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
  int64_t t0_us_ = 0;
};

class FlitTrace {
 public:
  explicit FlitTrace(size_t max_events = 1000000);

  /// Appends one `mcc.flit/1` NDJSON line. `extra_json` is either empty
  /// or a pre-rendered JSON object body appended after the fixed fields.
  /// Must only be called from deterministic (serial-phase) code.
  void event(uint64_t cycle, const char* ev, uint64_t packet,
             const std::string& extra_json = "");

  bool write(const std::string& path) const;
  size_t size() const;

 private:
  size_t max_events_;
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  uint64_t dropped_ = 0;
};

}  // namespace mcc::obs
