#include "proto/boundary2d_proto.h"

#include <algorithm>

namespace mcc::proto {

using core::MccRegion2D;
using core::NodeState;
using mesh::Coord2;
using mesh::Dir2;

namespace {

// Message: kWall, payload
//   [guard, mode, heading, shape-count, {shape-len, shape...}xN]
// shape[0] is the owner; the rest is the merged chain.
constexpr int kBoot = 1;
constexpr int kWall = 2;
constexpr int kPlain = 0;
constexpr int kFollow = 1;

Dir2 left_of(Dir2 d) {
  switch (d) {
    case Dir2::PosX: return Dir2::PosY;
    case Dir2::NegX: return Dir2::NegY;
    case Dir2::PosY: return Dir2::NegX;
    case Dir2::NegY: return Dir2::PosX;
  }
  return d;
}
Dir2 right_of(Dir2 d) { return opposite(left_of(d)); }

std::vector<MccRegion2D> decode_chain(const sim::Message& msg) {
  std::vector<MccRegion2D> out;
  if (msg.data.size() < 4) return out;
  const size_t n = static_cast<size_t>(msg.data[3]);
  size_t at = 4;
  for (size_t i = 0; i < n && at < msg.data.size(); ++i) {
    const size_t len = static_cast<size_t>(msg.data[at++]);
    if (at + len > msg.data.size()) break;
    out.push_back(decode_shape(msg.data.data() + at, len));
    at += len;
  }
  return out;
}

void append_shape(sim::Message& msg, const MccRegion2D& shape) {
  const auto enc = encode_shape(shape);
  msg.data.push_back(static_cast<int32_t>(enc.size()));
  msg.data.insert(msg.data.end(), enc.begin(), enc.end());
  ++msg.data[3];
}

}  // namespace

BoundaryProtocol2D::BoundaryProtocol2D(const mesh::Mesh2D& mesh,
                                       const LabelingProtocol2D& labels,
                                       const IdentProtocol2D& ident)
    : mesh_(mesh),
      labels_(labels),
      ident_(ident),
      engine_(mesh),
      records_(mesh.nx(), mesh.ny()),
      seen_(mesh.nx(), mesh.ny()) {}

sim::RunStats BoundaryProtocol2D::run() {
  for (const Coord2 c : ident_.corners()) {
    if (ident_.shape_at(c)) engine_.inject(c, sim::Message{kBoot, {}});
  }
  return engine_.run(
      [this](Coord2 self, const sim::Message& msg, std::optional<Dir2> from) {
        deliver(self, msg, from);
      });
}

void BoundaryProtocol2D::deliver(Coord2 self, const sim::Message& msg,
                                 std::optional<Dir2> from) {
  auto safe_at = [&](Coord2 c) {
    return mesh_.contains(c) && labels_.state(c) == NodeState::Safe;
  };

  // Shared step logic: decides the next hop of a wall message from `self`
  // with the given mode/heading and forwards it. Used by relay nodes and
  // by the corner itself for the first hop (whose resume direction may
  // already be blocked — the walk must deflect in place, not die).
  auto advance = [&](sim::Message&& next, int mode, Dir2 heading) {
    const Dir2 guard = static_cast<Dir2>(next.data[0]);
    const bool y_wall = guard == Dir2::PosX;
    const Dir2 resume = y_wall ? Dir2::NegY : Dir2::NegX;
    auto wall_side = [&](Dir2 h) {
      return y_wall ? left_of(h) : right_of(h);
    };

    if (mode == kPlain) {
      const Coord2 target = step(self, resume);
      if (!mesh_.contains(target)) return;  // mesh edge: wall complete
      if (safe_at(target)) {
        next.data[1] = kPlain;
        next.data[2] = static_cast<int32_t>(resume);
        engine_.send(self, resume, std::move(next));
        return;
      }
      // Blocked: enter a deflection (the paper's first turn).
      next.data[1] = kFollow;
      heading = y_wall ? Dir2::NegX : Dir2::NegY;
    }

    const Dir2 try_order[4] = {wall_side(heading), heading,
                               y_wall ? right_of(heading) : left_of(heading),
                               opposite(heading)};
    for (const Dir2 d : try_order) {
      const Coord2 nb = step(self, d);
      if (!mesh_.contains(nb)) {
        if (d == resume) return;  // off-mesh along the wall: done
        continue;
      }
      if (!safe_at(nb)) continue;
      next.data[2] = static_cast<int32_t>(d);
      engine_.send(self, d, std::move(next));
      return;
    }
    // Boxed in: wall ends.
  };

  if (msg.type == kBoot) {
    const auto shape = ident_.shape_at(self);
    if (!shape) return;
    // The corner deposits its own records and launches both walls.
    for (const Dir2 guard : {Dir2::PosX, Dir2::PosY}) {
      sim::Message w{kWall,
                     {static_cast<int32_t>(guard), kPlain,
                      static_cast<int32_t>(guard == Dir2::PosX ? Dir2::NegY
                                                               : Dir2::NegX),
                      0}};
      append_shape(w, *shape);
      auto chain = std::vector<std::shared_ptr<const MccRegion2D>>{shape};
      records_.at(self.x, self.y).push_back({shape, guard, chain});
      ++record_count_;
      advance(std::move(w), kPlain,
              guard == Dir2::PosX ? Dir2::NegY : Dir2::NegX);
    }
    return;
  }
  if (msg.type != kWall || !from.has_value()) return;
  if (!safe_at(self)) return;  // walls live on safe nodes only

  const Dir2 guard = static_cast<Dir2>(msg.data[0]);
  int mode = msg.data[1];
  const Dir2 heading = opposite(*from);
  const bool y_wall = guard == Dir2::PosX;
  const Dir2 resume = y_wall ? Dir2::NegY : Dir2::NegX;
  auto wall_side = [&](Dir2 h) { return y_wall ? left_of(h) : right_of(h); };

  // Loop brake.
  auto chain_shapes = decode_chain(msg);
  if (chain_shapes.empty()) return;
  const int32_t state_key =
      (chain_shapes[0].id << 4) | (static_cast<int32_t>(guard) << 2) |
      static_cast<int32_t>(heading);
  auto& seen = seen_.at(self.x, self.y);
  if (std::find(seen.begin(), seen.end(), state_key) != seen.end()) return;
  seen.push_back(state_key);

  sim::Message next = msg;

  // Follow-exit: heading in resume direction with the wall side free again
  // — we are at the blocking region's corner; merge its shape if the
  // identification phase left one here. The merge happens BEFORE the local
  // deposit: the paper merges QY(v) into QY(c) AT corner v, and the record
  // at v itself must already guard the merged region (the corner is where
  // messages sliding along the blocker get filtered).
  if (mode == kFollow && heading == resume &&
      safe_at(step(self, wall_side(heading)))) {
    mode = kPlain;
    next.data[1] = kPlain;
    if (const auto blocker = ident_.shape_at(self)) {
      const MccRegion2D& owner = chain_shapes[0];
      const bool downstream = y_wall ? blocker->y0 < owner.y0
                                     : blocker->x0 < owner.x0;
      bool already = false;
      for (const auto& s : chain_shapes) already |= s.id == blocker->id;
      if (downstream && !already) {
        append_shape(next, *blocker);
        chain_shapes.push_back(*blocker);
      }
    }
  }

  // Deposit the (possibly just merged) record.
  {
    ProtoRecord2D rec;
    rec.guard = guard;
    rec.chain.reserve(chain_shapes.size());
    for (const auto& s : chain_shapes)
      rec.chain.push_back(std::make_shared<const MccRegion2D>(s));
    rec.owner = rec.chain.front();
    records_.at(self.x, self.y).push_back(std::move(rec));
    ++record_count_;
  }

  advance(std::move(next), mode, heading);
}

}  // namespace mcc::proto
