// Distributed boundary construction — Algorithm 2 step 3 as messages.
//
// Every identified corner launches two wall messages (Y boundary south,
// X boundary west) carrying the owner's encoded shape. Each hop deposits a
// record at the local node; deflections around blocking regions follow the
// same hand-on-wall rules as the centralized construction, driven purely by
// the node-local neighbor labels. When a deflection exits at the blocking
// region's corner, the message reads the shape the identification phase
// left there and merges it into its carried chain ("QY(c) := QY(c) ∪
// QY(v)"). Payload therefore grows with the chain — the accounted message
// cost is realistic.
//
// The record stores of this protocol are what the distributed router
// consults; tests validate them functionally against the centralized
// Boundary2D (router success/minimality equivalence) and structurally on
// clean configurations.
#pragma once

#include <memory>
#include <vector>

#include "proto/ident2d.h"
#include "proto/labeling_proto.h"
#include "sim/engine.h"

namespace mcc::proto {

struct ProtoRecord2D {
  std::shared_ptr<const core::MccRegion2D> owner;
  mesh::Dir2 guard = mesh::Dir2::PosX;
  // Chain of merged forbidden regions as known when the record was
  // deposited (the owner itself is always chain[0]).
  std::vector<std::shared_ptr<const core::MccRegion2D>> chain;
};

class BoundaryProtocol2D {
 public:
  BoundaryProtocol2D(const mesh::Mesh2D& mesh,
                     const LabelingProtocol2D& labels,
                     const IdentProtocol2D& ident);

  sim::RunStats run();

  const std::vector<ProtoRecord2D>& records_at(mesh::Coord2 c) const {
    return records_.at(c.x, c.y);
  }
  size_t record_count() const { return record_count_; }

 private:
  void deliver(mesh::Coord2 self, const sim::Message& msg,
               std::optional<mesh::Dir2> from);

  const mesh::Mesh2D& mesh_;
  const LabelingProtocol2D& labels_;
  const IdentProtocol2D& ident_;
  sim::Engine2D engine_;
  util::Grid2<std::vector<ProtoRecord2D>> records_;
  // Loop brake: (node, guard, owner-id, heading) states already seen.
  util::Grid2<std::vector<int32_t>> seen_;
  size_t record_count_ = 0;
};

}  // namespace mcc::proto
