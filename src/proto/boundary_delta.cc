#include "proto/boundary_delta.h"

#include <algorithm>

namespace mcc::proto {

using mesh::Coord2;
using mesh::Dir2;

namespace {

uint64_t wall_key(int owner, Dir2 guard) {
  return (static_cast<uint64_t>(owner) << 1) |
         (guard == Dir2::PosY ? 1u : 0u);
}

}  // namespace

BoundaryDelta make_boundary_delta(const core::Boundary2D& boundary,
                                  const core::BoundaryUpdate& update) {
  BoundaryDelta delta;
  delta.messages.reserve(update.walls.size());
  for (const core::BoundaryUpdate::WallChange& wc : update.walls) {
    std::vector<int32_t> msg;
    msg.push_back(wc.region);
    msg.push_back(wc.guard == Dir2::PosY ? 1 : 0);
    msg.push_back(wc.removed ? 1 : 0);
    if (wc.removed) {
      msg.push_back(0);  // no replacement path
      msg.push_back(0);  // no chain
    } else {
      const core::Wall2D& w = wc.guard == Dir2::PosX
                                  ? boundary.y_wall(wc.region)
                                  : boundary.x_wall(wc.region);
      if (!w.exists) {
        msg.push_back(0);
        msg.push_back(0);
      } else {
        msg.push_back(static_cast<int32_t>(w.path.size()));
        for (const Coord2 c : w.path) {
          msg.push_back(c.x);
          msg.push_back(c.y);
        }
        msg.push_back(static_cast<int32_t>(w.chain.size()));
        for (const int id : w.chain) msg.push_back(id);
      }
    }
    delta.messages.push_back(std::move(msg));
  }
  return delta;
}

RecordReplica2D::RecordReplica2D(const mesh::Mesh2D& mesh)
    : mesh_(mesh), records_(mesh.nx(), mesh.ny()) {}

void RecordReplica2D::snapshot(const core::Boundary2D& boundary) {
  for (auto& recs : records_) recs.clear();
  wall_paths_.clear();
  record_count_ = 0;
  for (int y = 0; y < mesh_.ny(); ++y)
    for (int x = 0; x < mesh_.nx(); ++x)
      for (const core::Record2D& r : boundary.records_at({x, y})) {
        records_.at(x, y).push_back({r.owner, r.guard, *r.chain});
        wall_paths_[wall_key(r.owner, r.guard)].push_back({x, y});
        ++record_count_;
      }
}

void RecordReplica2D::drop_wall(int owner, Dir2 guard) {
  const auto it = wall_paths_.find(wall_key(owner, guard));
  if (it == wall_paths_.end()) return;
  for (const Coord2 c : it->second) {
    auto& recs = records_.at(c.x, c.y);
    const size_t before = recs.size();
    recs.erase(std::remove_if(recs.begin(), recs.end(),
                              [&](const Rec& r) {
                                return r.owner == owner && r.guard == guard;
                              }),
               recs.end());
    record_count_ -= before - recs.size();
  }
  wall_paths_.erase(it);
}

void RecordReplica2D::apply(const BoundaryDelta& delta) {
  for (const std::vector<int32_t>& msg : delta.messages) {
    size_t at = 0;
    const int owner = msg[at++];
    const Dir2 guard = msg[at++] ? Dir2::PosY : Dir2::PosX;
    const bool removed = msg[at++] != 0;
    drop_wall(owner, guard);
    if (removed) continue;
    const int path_n = msg[at++];
    if (path_n == 0) continue;  // wall exists=false: nothing deposited
    std::vector<Coord2> path(static_cast<size_t>(path_n));
    for (auto& c : path) {
      c.x = msg[at++];
      c.y = msg[at++];
    }
    // chain length sits after the path in the message layout.
    const int chain_n = msg[at++];
    std::vector<int> chain(static_cast<size_t>(chain_n));
    for (int& id : chain) id = msg[at++];
    auto& stored = wall_paths_[wall_key(owner, guard)];
    for (const Coord2 c : path) {
      records_.at(c.x, c.y).push_back({owner, guard, chain});
      stored.push_back(c);
      ++record_count_;
    }
  }
}

}  // namespace mcc::proto
