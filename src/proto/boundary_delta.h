// Incremental boundary-record deltas — the update messages a distributed
// deployment would broadcast after a fault/repair event instead of
// re-running the full boundary protocol.
//
// The dynamic runtime's Boundary2D::update already computes the minimal
// set of walls an event invalidated; this codec turns that report into
// per-wall messages ([owner, guard, removed, |path|, path, |chain|,
// chain], int32 words — the same cost unit E7 accounts for the static
// protocol) and RecordReplica2D plays the consumer side: a record store
// kept consistent purely by applying deltas. tests/test_runtime.cc proves
// a replica seeded once and fed every event's delta stays bit-equal to
// the authoritative incremental store; bench_e12 reports the per-event
// payload, i.e. the wire cost of keeping the limited-global-information
// model current under churn.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/boundary2d.h"
#include "mesh/mesh.h"
#include "util/grid.h"

namespace mcc::proto {

/// One event's delta stream: one message per rebuilt/removed wall.
struct BoundaryDelta {
  std::vector<std::vector<int32_t>> messages;

  size_t payload_ints() const {
    size_t n = 0;
    for (const auto& m : messages) n += m.size();
    return n;
  }
};

/// Encodes the walls `update` touched, reading their new state from the
/// (already updated) authoritative boundary.
BoundaryDelta make_boundary_delta(const core::Boundary2D& boundary,
                                  const core::BoundaryUpdate& update);

/// Passive record store maintained by snapshot + deltas only.
class RecordReplica2D {
 public:
  struct Rec {
    int owner = -1;
    mesh::Dir2 guard = mesh::Dir2::PosX;
    std::vector<int> chain;
  };

  explicit RecordReplica2D(const mesh::Mesh2D& mesh);

  /// Seeds from the authoritative store (what one full protocol run
  /// leaves behind); subsequent consistency comes from apply() alone.
  void snapshot(const core::Boundary2D& boundary);

  void apply(const BoundaryDelta& delta);

  const std::vector<Rec>& records_at(mesh::Coord2 c) const {
    return records_.at(c.x, c.y);
  }
  size_t record_count() const { return record_count_; }

 private:
  void drop_wall(int owner, mesh::Dir2 guard);

  const mesh::Mesh2D& mesh_;
  util::Grid2<std::vector<Rec>> records_;
  // Current path of each wall ((owner << 1) | pass) so a delta can retire
  // the wall's old records without scanning the mesh.
  std::unordered_map<uint64_t, std::vector<mesh::Coord2>> wall_paths_;
  size_t record_count_ = 0;
};

}  // namespace mcc::proto
