#include "proto/detect_route.h"

#include "core/labeling.h"
#include "util/grid.h"

namespace mcc::proto {

using core::NodeState;
using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;

namespace {
constexpr int kWalkY = 1;  // 2-D detection walker hugging +Y
constexpr int kWalkX = 2;
constexpr int kRoute = 3;
constexpr int kFloodX = 4;  // 3-D surface floods
constexpr int kFloodY = 5;
constexpr int kFloodZ = 6;
}  // namespace

DetectOutcome2D run_detect2d(const mesh::Mesh2D& mesh,
                             const LabelingProtocol2D& labels, Coord2 s,
                             Coord2 d) {
  DetectOutcome2D out;
  if (labels.state(s) != NodeState::Safe) return out;
  sim::Engine2D engine(mesh);
  engine.inject(s, sim::Message{kWalkY, {s.x, s.y, d.x, d.y}});
  engine.inject(s, sim::Message{kWalkX, {s.x, s.y, d.x, d.y}});

  auto in_rect = [&](Coord2 c) {
    return c.x >= s.x && c.x <= d.x && c.y >= s.y && c.y <= d.y;
  };
  auto usable = [&](Coord2 c) {
    return in_rect(c) && labels.state(c) == NodeState::Safe;
  };

  out.stats = engine.run([&](Coord2 self, const sim::Message& msg,
                             std::optional<Dir2>) {
    const bool y_walker = msg.type == kWalkY;
    if (y_walker ? self.y == d.y : self.x == d.x) {
      // Reached the target line; the acknowledgment travels back along the
      // walk (cost accounted as one message per hop is omitted here — the
      // forward walk already measured the path).
      (y_walker ? out.y_walker_ok : out.x_walker_ok) = true;
      return;
    }
    const Dir2 primary = y_walker ? Dir2::PosY : Dir2::PosX;
    const Dir2 deflect = y_walker ? Dir2::PosX : Dir2::PosY;
    const Coord2 p = step(self, primary);
    if (usable(p)) {
      engine.send(self, primary, msg);
      return;
    }
    // Primary blocked by an MCC inside the rectangle: turn (the paper's
    // "make a turn, then turn back as soon as possible").
    if (in_rect(p) && core::is_unsafe(labels.state(p))) {
      const Coord2 q = step(self, deflect);
      if (usable(q)) engine.send(self, deflect, msg);
    }
  });
  return out;
}

RouteOutcome2D run_route2d(const mesh::Mesh2D& mesh,
                           const LabelingProtocol2D& labels,
                           const BoundaryProtocol2D& boundary, Coord2 s,
                           Coord2 d, uint64_t seed) {
  RouteOutcome2D out;
  out.path.push_back(s);
  util::Rng rng(seed);
  sim::Engine2D engine(mesh);
  engine.inject(s, sim::Message{kRoute, {d.x, d.y}});

  out.stats = engine.run([&](Coord2 self, const sim::Message& msg,
                             std::optional<Dir2> from) {
    if (from.has_value()) out.path.push_back(self);
    if (self == d) {
      out.delivered = true;
      return;
    }
    // Candidate preferred directions (Algorithm 3 step 2).
    Dir2 candidates[2];
    size_t n = 0;
    for (const Dir2 dir : mesh::kPosDir2) {
      const int remaining =
          dir == Dir2::PosX ? d.x - self.x : d.y - self.y;
      if (remaining <= 0) continue;
      const Coord2 nb = step(self, dir);
      // Rule 1: node status of the neighbor (local knowledge).
      const NodeState nbs = labels.neighbor_state(self, dir);
      if (core::is_unsafe(nbs) && !(nb == d)) continue;
      // Rule 2: boundary records stored at this node.
      bool excluded = false;
      for (const ProtoRecord2D& rec : boundary.records_at(self)) {
        if (rec.guard != dir) continue;
        const bool critical = rec.guard == Dir2::PosX
                                  ? rec.owner->in_critical_y(d)
                                  : rec.owner->in_critical_x(d);
        if (!critical) continue;
        for (const auto& member : rec.chain) {
          const bool forbidden = rec.guard == Dir2::PosX
                                     ? member->in_forbidden_y(nb)
                                     : member->in_forbidden_x(nb);
          if (forbidden) {
            excluded = true;
            break;
          }
        }
        if (excluded) break;
      }
      if (excluded) continue;
      candidates[n++] = dir;
    }
    if (n == 0) return;  // stuck; message dropped
    engine.send(self, candidates[rng.pick(n)], msg);
  });
  return out;
}

DetectOutcome3D run_detect3d(const mesh::Mesh3D& mesh,
                             const LabelingProtocol3D& labels, Coord3 s,
                             Coord3 d) {
  DetectOutcome3D out;
  if (labels.state(s) != NodeState::Safe) return out;
  sim::Engine3D engine(mesh);
  for (const int t : {kFloodX, kFloodY, kFloodZ})
    engine.inject(s, sim::Message{t, {}});

  auto in_box = [&](Coord3 c) {
    return c.x >= s.x && c.x <= d.x && c.y >= s.y && c.y <= d.y &&
           c.z >= s.z && c.z <= d.z;
  };
  // Per-flood visited marks (each node forwards one flood once).
  util::Grid3<uint8_t> seen(mesh.nx(), mesh.ny(), mesh.nz(), uint8_t{0});

  out.stats = engine.run([&](Coord3 self, const sim::Message& msg,
                             std::optional<Dir3>) {
    const int flood = msg.type;
    const uint8_t bit = static_cast<uint8_t>(1 << (flood - kFloodX));
    uint8_t& marks = seen[mesh.index(self)];
    if (marks & bit) return;
    marks |= bit;

    if (flood == kFloodX && self.y == d.y) out.x_surface_ok = true;
    if (flood == kFloodY && self.z == d.z) out.y_surface_ok = true;
    if (flood == kFloodZ && self.x == d.x) out.z_surface_ok = true;

    const Dir3 primaries[2] = {
        flood == kFloodX ? Dir3::PosY : Dir3::PosX,
        flood == kFloodZ ? Dir3::PosY : Dir3::PosZ};
    const Dir3 deflect = flood == kFloodX   ? Dir3::PosX
                         : flood == kFloodY ? Dir3::PosY
                                            : Dir3::PosZ;
    bool blocked = false;
    for (const Dir3 dir : primaries) {
      const Coord3 p = step(self, dir);
      if (!in_box(p)) {
        blocked = true;  // RMP face caps the primary (see core/detect3d)
        continue;
      }
      if (core::is_unsafe(labels.state(p))) {
        blocked = true;
      } else {
        engine.send(self, dir, msg);
      }
    }
    if (blocked) {
      const Coord3 q = step(self, deflect);
      if (in_box(q) && !core::is_unsafe(labels.state(q)))
        engine.send(self, deflect, msg);
    }
  });
  return out;
}

}  // namespace mcc::proto
