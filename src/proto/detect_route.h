// Distributed feasibility detection and routing.
//
// 2-D (Algorithm 3): two detection walker messages leave the source — one
// hugging +Y and deflecting +X around MCCs, one mirrored — and report
// whether they reached the destination row/column inside the rectangle.
// The deflection decisions use only the local neighbor labels, and the
// 2-D walk is deterministic (a single relayed message per walker, exactly
// as the paper describes). Routing messages then forward hop by hop using
// the local labels plus the records deposited by BoundaryProtocol2D.
//
// 3-D (Algorithm 6 phase 1): three genuine message floods sweep the RMP
// surfaces (per-node visited marks, branching on +Y/+Z etc.), with the
// cyclic success pairing of the paper. The 3-D routing phase is served by
// the core library (see DESIGN.md §8: the per-hop choreography of
// Algorithm 5's boundary surfaces is simplified; the 2-D stack carries the
// full message-level fidelity).
#pragma once

#include "proto/boundary2d_proto.h"
#include "proto/labeling_proto.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace mcc::proto {

struct DetectOutcome2D {
  bool y_walker_ok = false;
  bool x_walker_ok = false;
  sim::RunStats stats;
  bool feasible() const { return y_walker_ok && x_walker_ok; }
};

/// Runs the two detection walkers from s toward d (canonical quadrant,
/// s <= d componentwise, both offsets strict).
DetectOutcome2D run_detect2d(const mesh::Mesh2D& mesh,
                             const LabelingProtocol2D& labels, mesh::Coord2 s,
                             mesh::Coord2 d);

struct RouteOutcome2D {
  bool delivered = false;
  std::vector<mesh::Coord2> path;
  sim::RunStats stats;
  int hops() const { return static_cast<int>(path.size()) - 1; }
};

/// Routes one message s -> d with the fully adaptive rule of Algorithm 3
/// step 2, deciding each hop from node-local information only. `seed`
/// drives the random tie-break among surviving candidate directions.
RouteOutcome2D run_route2d(const mesh::Mesh2D& mesh,
                           const LabelingProtocol2D& labels,
                           const BoundaryProtocol2D& boundary, mesh::Coord2 s,
                           mesh::Coord2 d, uint64_t seed);

struct DetectOutcome3D {
  bool x_surface_ok = false;
  bool y_surface_ok = false;
  bool z_surface_ok = false;
  sim::RunStats stats;
  bool feasible() const {
    return x_surface_ok && y_surface_ok && z_surface_ok;
  }
};

DetectOutcome3D run_detect3d(const mesh::Mesh3D& mesh,
                             const LabelingProtocol3D& labels, mesh::Coord3 s,
                             mesh::Coord3 d);

}  // namespace mcc::proto
