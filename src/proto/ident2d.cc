#include "proto/ident2d.h"

#include <algorithm>

namespace mcc::proto {

using core::NodeState;
using mesh::Coord2;
using mesh::Dir2;

namespace {

// Message: kWalk, payload [corner.x, corner.y, hand, ttl, cell pairs...].
constexpr int kBoot = 1;
constexpr int kWalk = 2;
constexpr int kHandRight = 0;  // counter-clockwise walker
constexpr int kHandLeft = 1;   // clockwise walker

Dir2 left_of(Dir2 d) {
  switch (d) {
    case Dir2::PosX: return Dir2::PosY;
    case Dir2::NegX: return Dir2::NegY;
    case Dir2::PosY: return Dir2::NegX;
    case Dir2::NegY: return Dir2::PosX;
  }
  return d;
}
Dir2 right_of(Dir2 d) { return opposite(left_of(d)); }

}  // namespace

IdentProtocol2D::IdentProtocol2D(const mesh::Mesh2D& mesh,
                                 const LabelingProtocol2D& labels)
    : mesh_(mesh),
      labels_(labels),
      engine_(mesh),
      shapes_(mesh.nx(), mesh.ny()) {}

bool IdentProtocol2D::safe_at(Coord2 c) const {
  return mesh_.contains(c) && labels_.state(c) == NodeState::Safe;
}

sim::RunStats IdentProtocol2D::run() {
  // Corner self-detection (purely local knowledge).
  for (int y = 0; y < mesh_.ny(); ++y) {
    for (int x = 0; x < mesh_.nx(); ++x) {
      const Coord2 c{x, y};
      if (!safe_at(c)) continue;
      const Coord2 px{x + 1, y}, py{x, y + 1};
      if (!mesh_.contains(px) || !mesh_.contains(py)) continue;
      if (labels_.state(px) != NodeState::Safe ||
          labels_.state(py) != NodeState::Safe)
        continue;
      if (!core::is_unsafe(labels_.diagonal_state(c, +1, +1))) continue;
      corners_.push_back(c);
      engine_.inject(c, sim::Message{kBoot, {}});
    }
  }

  return engine_.run(
      [this](Coord2 self, const sim::Message& msg, std::optional<Dir2> from) {
        deliver(self, msg, from);
      });
}

void IdentProtocol2D::deliver(Coord2 self, const sim::Message& msg,
                              std::optional<Dir2> from) {
  const int32_t ttl0 = static_cast<int32_t>(mesh_.node_count()) * 4;
  if (msg.type == kBoot) {
    // Launch the two walkers with forced first hops (+Y for the
    // counter-clockwise one, +X for the clockwise one).
    launched_ += 2;
    engine_.send(self, Dir2::PosY,
                 sim::Message{kWalk, {self.x, self.y, kHandRight, ttl0}});
    engine_.send(self, Dir2::PosX,
                 sim::Message{kWalk, {self.x, self.y, kHandLeft, ttl0}});
    return;
  }
  if (msg.type != kWalk || !from.has_value()) return;

  const Coord2 corner{msg.data[0], msg.data[1]};
  const int hand = msg.data[2];
  const int32_t ttl = msg.data[3];

  // Arrived back at the launching corner: hand the collected cells to the
  // assembly; when both walkers are in, accept or discard the shape.
  if (self == corner) {
    Assembly& a = assembly_[mesh_.index(self)];
    a.arrived[hand] = true;
    for (size_t i = 4; i + 1 < msg.data.size(); i += 2)
      a.collected[hand].push_back({msg.data[i], msg.data[i + 1]});
    if (!(a.arrived[0] && a.arrived[1])) return;
    const auto s0 = shape_from_cells(static_cast<int>(mesh_.index(self)),
                                     a.collected[0]);
    const auto s1 = shape_from_cells(static_cast<int>(mesh_.index(self)),
                                     a.collected[1]);
    if (!s0.bot.empty() && s0.x0 == s1.x0 && s0.bot == s1.bot &&
        s0.top == s1.top) {
      shapes_.at(self.x, self.y) =
          std::make_shared<const core::MccRegion2D>(s0);
      ++identified_;
    } else {
      ++discarded_;  // unstable shape, paper's discard rule
    }
    return;
  }

  if (ttl <= 0) return;  // expired (broken ring): walker dies, shape
                         // never assembles -> discarded implicitly

  // Collect the hugged cells: the wall-side neighbor and the straight-ahead
  // cell when blocked. Collecting ALL unsafe neighbors would absorb
  // unrelated regions across one-cell corridors; the hugged side is exactly
  // the contour the paper's messages trace. Dead-end notches are walked in
  // both directions, so their far wall is collected on the way back.
  const Dir2 heading = opposite(*from);
  const Dir2 wall_side =
      hand == kHandRight ? right_of(heading) : left_of(heading);
  sim::Message next = msg;
  next.data[3] = ttl - 1;
  auto unsafe_cell = [&](Coord2 c) {
    return mesh_.contains(c) && core::is_unsafe(labels_.state(c));
  };
  const Coord2 side_cell = step(self, wall_side);
  const bool side_unsafe = unsafe_cell(side_cell);
  if (side_unsafe) {
    next.data.push_back(side_cell.x);
    next.data.push_back(side_cell.y);
    // Concave corner: the straight-ahead cell belongs to the hugged region
    // too. Without wall contact a blocked straight-ahead cell is an
    // UNRELATED region the walker is about to turn away from — collecting
    // it would corrupt the shape.
    const Coord2 ahead = step(self, heading);
    if (unsafe_cell(ahead)) {
      next.data.push_back(ahead.x);
      next.data.push_back(ahead.y);
    }
  }
  const Dir2 try_order[4] = {
      hand == kHandRight ? right_of(heading) : left_of(heading), heading,
      hand == kHandRight ? left_of(heading) : right_of(heading),
      opposite(heading)};
  for (const Dir2 d : try_order) {
    if (safe_at(step(self, d))) {
      engine_.send(self, d, std::move(next));
      return;
    }
  }
  // Boxed in (isolated pocket): walker dies.
}

}  // namespace mcc::proto
