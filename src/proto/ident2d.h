// Distributed MCC identification — Algorithm 2 steps 1–2.
//
// After labelling and the neighborhood exchange, the initialization corner
// of every region detects itself locally (safe node, safe +X/+Y neighbors,
// unsafe NE diagonal — the unique SW "nose"). It launches two
// identification messages, one clockwise and one counter-clockwise, that
// walk the safe contour ring of the region, each accumulating the unsafe
// boundary cells it passes. When both messages return to the corner with
// matching shapes, the region is identified and its shape is stored at the
// corner; on a mismatch or TTL expiry the shape is discarded, exactly as
// the paper prescribes for unstable regions.
//
// The walk naturally groups diagonally-touching regions into one shape
// (Connectivity::Eight — the convention of the paper's Figure 5). Regions
// pressed against a mesh edge have a broken ring and are discarded; the
// discard count is an E7 metric (the paper leaves this case open).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/mcc_region.h"
#include "proto/labeling_proto.h"
#include "proto/shape_codec.h"
#include "sim/engine.h"

namespace mcc::proto {

class IdentProtocol2D {
 public:
  IdentProtocol2D(const mesh::Mesh2D& mesh, const LabelingProtocol2D& labels);

  /// Detects corners, runs the walkers to quiescence, assembles shapes.
  sim::RunStats run();

  /// Shape stored at an initialization corner (nullptr elsewhere / failed).
  std::shared_ptr<const core::MccRegion2D> shape_at(mesh::Coord2 c) const {
    return shapes_.at(c.x, c.y);
  }

  const std::vector<mesh::Coord2>& corners() const { return corners_; }
  int identified() const { return identified_; }
  int discarded() const { return discarded_; }

 private:
  void deliver(mesh::Coord2 self, const sim::Message& msg,
               std::optional<mesh::Dir2> from);
  bool safe_at(mesh::Coord2 c) const;

  const mesh::Mesh2D& mesh_;
  const LabelingProtocol2D& labels_;
  sim::Engine2D engine_;
  util::Grid2<std::shared_ptr<const core::MccRegion2D>> shapes_;
  std::vector<mesh::Coord2> corners_;

  struct Assembly {
    std::vector<mesh::Coord2> collected[2];
    bool arrived[2] = {false, false};
  };
  std::unordered_map<size_t, Assembly> assembly_;
  int identified_ = 0;
  int discarded_ = 0;
  int launched_ = 0;
};

}  // namespace mcc::proto
