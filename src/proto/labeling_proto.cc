#include "proto/labeling_proto.h"

namespace mcc::proto {

using core::NodeState;
using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;

namespace {

// Message layout: [state, is_edge] — a node's current label plus whether it
// currently sees an unsafe neighbor (the edge-node bit used later).
constexpr int kStatus = 1;

bool blocks_pos(NodeState s) {
  return s == NodeState::Faulty || s == NodeState::Useless;
}
bool blocks_neg(NodeState s) {
  return s == NodeState::Faulty || s == NodeState::CantReach;
}

}  // namespace

LabelingProtocol2D::LabelingProtocol2D(const mesh::Mesh2D& mesh,
                                       const mesh::FaultSet2D& faults)
    : mesh_(mesh),
      engine_(mesh),
      state_(mesh.nx(), mesh.ny(), NodeState::Safe),
      nbr_state_(mesh.nx(), mesh.ny(),
                 {NodeState::Safe, NodeState::Safe, NodeState::Safe,
                  NodeState::Safe}),
      nbr_edge_(mesh.nx(), mesh.ny(), {0, 0, 0, 0}),
      has_unsafe_nbr_(mesh.nx(), mesh.ny(), uint8_t{0}),
      diag_(mesh.nx(), mesh.ny(),
            {NodeState::Safe, NodeState::Safe, NodeState::Safe,
             NodeState::Safe}) {
  for (int y = 0; y < mesh.ny(); ++y)
    for (int x = 0; x < mesh.nx(); ++x) {
      if (faults.is_faulty({x, y})) state_.at(x, y) = NodeState::Faulty;
      engine_.inject({x, y}, sim::Message{kStatus, {}});
    }
}

void LabelingProtocol2D::broadcast(Coord2 self) {
  const auto st = static_cast<int32_t>(state_.at(self.x, self.y));
  const int32_t edge = has_unsafe_nbr_.at(self.x, self.y);
  for (const Dir2 d : mesh::kAllDir2)
    engine_.send(self, d, sim::Message{kStatus, {st, edge}});
}

void LabelingProtocol2D::reevaluate(Coord2 self) {
  auto& st = state_.at(self.x, self.y);
  if (st != NodeState::Safe) return;
  const auto& nbr = nbr_state_.at(self.x, self.y);
  auto nb_in = [&](Dir2 d) { return mesh_.contains(step(self, d)); };
  const bool pos =
      nb_in(Dir2::PosX) && nb_in(Dir2::PosY) &&
      blocks_pos(nbr[static_cast<size_t>(Dir2::PosX)]) &&
      blocks_pos(nbr[static_cast<size_t>(Dir2::PosY)]);
  const bool neg =
      nb_in(Dir2::NegX) && nb_in(Dir2::NegY) &&
      blocks_neg(nbr[static_cast<size_t>(Dir2::NegX)]) &&
      blocks_neg(nbr[static_cast<size_t>(Dir2::NegY)]);
  if (pos)
    st = NodeState::Useless;
  else if (neg)
    st = NodeState::CantReach;
  if (st != NodeState::Safe) broadcast(self);
}

void LabelingProtocol2D::deliver(Coord2 self, const sim::Message& msg,
                                 std::optional<Dir2> from) {
  if (!from.has_value()) {
    // Bootstrap: announce the initial status.
    broadcast(self);
    return;
  }
  const auto prev = nbr_state_.at(self.x, self.y)[static_cast<size_t>(*from)];
  const auto next = static_cast<NodeState>(msg.data[0]);
  nbr_state_.at(self.x, self.y)[static_cast<size_t>(*from)] = next;
  nbr_edge_.at(self.x, self.y)[static_cast<size_t>(*from)] =
      static_cast<uint8_t>(msg.data[1]);
  if (core::is_unsafe(next) && !has_unsafe_nbr_.at(self.x, self.y)) {
    has_unsafe_nbr_.at(self.x, self.y) = 1;
    // The edge bit changed: neighbors relying on it must hear again.
    broadcast(self);
  }
  if (prev != next) reevaluate(self);
}

sim::RunStats LabelingProtocol2D::run() {
  return engine_.run(
      [this](Coord2 self, const sim::Message& msg, std::optional<Dir2> from) {
        deliver(self, msg, from);
      });
}

sim::RunStats LabelingProtocol2D::exchange_neighborhoods() {
  // Each node sends its ±Y neighbor labels to its ±X neighbors; receivers
  // learn their diagonals. One round, two messages per node.
  constexpr int kShare = 2;
  for (int y = 0; y < mesh_.ny(); ++y)
    for (int x = 0; x < mesh_.nx(); ++x)
      engine_.inject({x, y}, sim::Message{kShare, {}});
  return engine_.run([this](Coord2 self, const sim::Message& msg,
                            std::optional<Dir2> from) {
    if (!from.has_value()) {
      const auto& nbr = nbr_state_.at(self.x, self.y);
      const sim::Message share{
          kShare,
          {static_cast<int32_t>(nbr[static_cast<size_t>(Dir2::PosY)]),
           static_cast<int32_t>(nbr[static_cast<size_t>(Dir2::NegY)])}};
      engine_.send(self, Dir2::PosX, share);
      engine_.send(self, Dir2::NegX, share);
      return;
    }
    if (msg.data.size() != 2) return;
    auto& diag = diag_.at(self.x, self.y);
    const auto up = static_cast<NodeState>(msg.data[0]);
    const auto down = static_cast<NodeState>(msg.data[1]);
    if (*from == Dir2::PosX) {  // sender is the +X neighbor
      diag[1 + 2] = up;         // NE
      diag[1 + 0] = down;       // SE
    } else if (*from == Dir2::NegX) {
      diag[0 + 2] = up;    // NW
      diag[0 + 0] = down;  // SW
    }
  });
}

LabelingProtocol3D::LabelingProtocol3D(const mesh::Mesh3D& mesh,
                                       const mesh::FaultSet3D& faults)
    : mesh_(mesh),
      engine_(mesh),
      state_(mesh.nx(), mesh.ny(), mesh.nz(), NodeState::Safe),
      nbr_state_(mesh.nx(), mesh.ny(), mesh.nz(),
                 {NodeState::Safe, NodeState::Safe, NodeState::Safe,
                  NodeState::Safe, NodeState::Safe, NodeState::Safe}) {
  for (int z = 0; z < mesh.nz(); ++z)
    for (int y = 0; y < mesh.ny(); ++y)
      for (int x = 0; x < mesh.nx(); ++x) {
        if (faults.is_faulty({x, y, z}))
          state_.at(x, y, z) = NodeState::Faulty;
        engine_.inject({x, y, z}, sim::Message{kStatus, {}});
      }
}

void LabelingProtocol3D::broadcast(Coord3 self) {
  const auto st = static_cast<int32_t>(state_.at(self.x, self.y, self.z));
  for (const Dir3 d : mesh::kAllDir3)
    engine_.send(self, d, sim::Message{kStatus, {st}});
}

void LabelingProtocol3D::reevaluate(Coord3 self) {
  auto& st = state_.at(self.x, self.y, self.z);
  if (st != NodeState::Safe) return;
  const auto& nbr = nbr_state_.at(self.x, self.y, self.z);
  auto nb_in = [&](Dir3 d) { return mesh_.contains(step(self, d)); };
  const bool pos =
      nb_in(Dir3::PosX) && nb_in(Dir3::PosY) && nb_in(Dir3::PosZ) &&
      blocks_pos(nbr[static_cast<size_t>(Dir3::PosX)]) &&
      blocks_pos(nbr[static_cast<size_t>(Dir3::PosY)]) &&
      blocks_pos(nbr[static_cast<size_t>(Dir3::PosZ)]);
  const bool neg =
      nb_in(Dir3::NegX) && nb_in(Dir3::NegY) && nb_in(Dir3::NegZ) &&
      blocks_neg(nbr[static_cast<size_t>(Dir3::NegX)]) &&
      blocks_neg(nbr[static_cast<size_t>(Dir3::NegY)]) &&
      blocks_neg(nbr[static_cast<size_t>(Dir3::NegZ)]);
  if (pos)
    st = NodeState::Useless;
  else if (neg)
    st = NodeState::CantReach;
  if (st != NodeState::Safe) broadcast(self);
}

void LabelingProtocol3D::deliver(Coord3 self, const sim::Message& msg,
                                 std::optional<Dir3> from) {
  if (!from.has_value()) {
    broadcast(self);
    return;
  }
  const auto prev =
      nbr_state_.at(self.x, self.y, self.z)[static_cast<size_t>(*from)];
  const auto next = static_cast<NodeState>(msg.data[0]);
  nbr_state_.at(self.x, self.y, self.z)[static_cast<size_t>(*from)] = next;
  if (prev != next) reevaluate(self);
}

sim::RunStats LabelingProtocol3D::run() {
  return engine_.run(
      [this](Coord3 self, const sim::Message& msg, std::optional<Dir3> from) {
        deliver(self, msg, from);
      });
}

}  // namespace mcc::proto
