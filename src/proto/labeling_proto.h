// Distributed labelling — the message-passing realization of Algorithms 1
// and 4.
//
// Every node starts knowing only whether it itself is faulty. Each node
// broadcasts its status to its neighbors; on receiving a neighbor status a
// node re-evaluates the useless / can't-reach rules and, when its label
// changes, broadcasts again. The protocol reaches quiescence in O(longest
// fill chain) rounds; the resulting labels must equal the centralized
// fixpoint exactly (tests/test_proto_labeling.cc).
//
// After quiescence every node also holds its neighbors' final labels and
// each neighbor's unsafe-adjacency flag (the "edge node" bit), which is the
// 2-hop knowledge the identification protocol builds on (DESIGN.md §8).
#pragma once

#include <array>

#include "core/labeling.h"
#include "mesh/fault_set.h"
#include "sim/engine.h"
#include "util/grid.h"

namespace mcc::proto {

/// One orientation class of distributed labelling on a 2-D mesh.
class LabelingProtocol2D {
 public:
  LabelingProtocol2D(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults);

  /// Runs to quiescence; returns engine statistics.
  sim::RunStats run();

  core::NodeState state(mesh::Coord2 c) const {
    return state_.at(c.x, c.y);
  }
  /// Neighbor label as known locally (valid after run()).
  core::NodeState neighbor_state(mesh::Coord2 c, mesh::Dir2 d) const {
    return nbr_state_.at(c.x, c.y)[static_cast<size_t>(d)];
  }
  /// True when the neighbor in direction d reported having an unsafe
  /// neighbor itself (the 2-hop edge-node bit).
  bool neighbor_is_edge(mesh::Coord2 c, mesh::Dir2 d) const {
    return nbr_edge_.at(c.x, c.y)[static_cast<size_t>(d)];
  }

  /// One extra exchange round after run(): nodes share their neighbor-label
  /// vectors so that every node also knows its diagonal cells' labels (the
  /// 2-hop knowledge the identification protocol needs; DESIGN.md §8).
  sim::RunStats exchange_neighborhoods();

  /// Label of the diagonal cell (sx, sy ∈ {-1, +1}); valid after
  /// exchange_neighborhoods(). Out-of-mesh diagonals read Safe.
  core::NodeState diagonal_state(mesh::Coord2 c, int sx, int sy) const {
    return diag_.at(c.x, c.y)[(sx > 0 ? 1 : 0) + (sy > 0 ? 2 : 0)];
  }

 private:
  void deliver(mesh::Coord2 self, const sim::Message& msg,
               std::optional<mesh::Dir2> from);
  void reevaluate(mesh::Coord2 self);
  void broadcast(mesh::Coord2 self);

  const mesh::Mesh2D& mesh_;
  sim::Engine2D engine_;
  util::Grid2<core::NodeState> state_;
  util::Grid2<std::array<core::NodeState, 4>> nbr_state_;
  util::Grid2<std::array<uint8_t, 4>> nbr_edge_;
  util::Grid2<uint8_t> has_unsafe_nbr_;
  util::Grid2<std::array<core::NodeState, 4>> diag_;
};

class LabelingProtocol3D {
 public:
  LabelingProtocol3D(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults);

  sim::RunStats run();

  core::NodeState state(mesh::Coord3 c) const {
    return state_.at(c.x, c.y, c.z);
  }

 private:
  void deliver(mesh::Coord3 self, const sim::Message& msg,
               std::optional<mesh::Dir3> from);
  void reevaluate(mesh::Coord3 self);
  void broadcast(mesh::Coord3 self);

  const mesh::Mesh3D& mesh_;
  sim::Engine3D engine_;
  util::Grid3<core::NodeState> state_;
  util::Grid3<std::array<core::NodeState, 6>> nbr_state_;
};

}  // namespace mcc::proto
