#include "proto/shape_codec.h"

#include <algorithm>
#include <limits>

namespace mcc::proto {

using core::MccRegion2D;
using mesh::Coord2;

namespace {

// Derives the row spans (left/right) and bounding rows from column spans.
void finish_shape(MccRegion2D& r) {
  r.y0 = *std::min_element(r.bot.begin(), r.bot.end());
  r.y1 = *std::max_element(r.top.begin(), r.top.end());
  const int h = r.y1 - r.y0 + 1;
  r.left.assign(h, std::numeric_limits<int>::max());
  r.right.assign(h, std::numeric_limits<int>::min());
  for (int x = r.x0; x <= r.x1; ++x) {
    for (int y = r.bot[x - r.x0]; y <= r.top[x - r.x0]; ++y) {
      r.left[y - r.y0] = std::min(r.left[y - r.y0], x);
      r.right[y - r.y0] = std::max(r.right[y - r.y0], x);
    }
  }
  // Rows inside the bounding box that the spans never touch (possible for
  // eight-connected unions) get sentinels the predicates can never match:
  // in_forbidden_x tests x < left, in_critical_x tests x > right.
  for (int i = 0; i < h; ++i) {
    if (r.left[i] > r.right[i]) {
      r.left[i] = std::numeric_limits<int>::min();
      r.right[i] = std::numeric_limits<int>::max();
    }
  }
}

}  // namespace

std::vector<int32_t> encode_shape(const MccRegion2D& region) {
  std::vector<int32_t> out;
  out.reserve(3 + 2 * region.bot.size());
  out.push_back(region.id);
  out.push_back(region.x0);
  out.push_back(static_cast<int32_t>(region.bot.size()));
  for (const int b : region.bot) out.push_back(b);
  for (const int t : region.top) out.push_back(t);
  return out;
}

MccRegion2D decode_shape(const int32_t* data, size_t size) {
  MccRegion2D r;
  if (size < 3) return r;
  r.id = data[0];
  r.x0 = data[1];
  const int w = data[2];
  if (w <= 0 || size < 3 + 2 * static_cast<size_t>(w)) return r;
  r.x1 = r.x0 + w - 1;
  r.bot.assign(data + 3, data + 3 + w);
  r.top.assign(data + 3 + w, data + 3 + 2 * w);
  finish_shape(r);
  return r;
}

MccRegion2D shape_from_cells(int id, const std::vector<Coord2>& cells) {
  MccRegion2D r;
  r.id = id;
  if (cells.empty()) return r;
  r.x0 = r.x1 = cells[0].x;
  for (const Coord2 c : cells) {
    r.x0 = std::min(r.x0, c.x);
    r.x1 = std::max(r.x1, c.x);
  }
  const int w = r.x1 - r.x0 + 1;
  r.bot.assign(w, std::numeric_limits<int>::max());
  r.top.assign(w, std::numeric_limits<int>::min());
  for (const Coord2 c : cells) {
    r.bot[c.x - r.x0] = std::min(r.bot[c.x - r.x0], c.y);
    r.top[c.x - r.x0] = std::max(r.top[c.x - r.x0], c.y);
  }
  // A column gap means the cells came from disconnected objects (a walker
  // that wandered): the shape is invalid and must be discarded upstream.
  for (int i = 0; i < w; ++i) {
    if (r.bot[i] > r.top[i]) return MccRegion2D{};
  }
  finish_shape(r);
  return r;
}

}  // namespace mcc::proto
