// Wire encoding of MCC shapes.
//
// Identification leaves the region shape at the initialization corner;
// boundary messages then carry it along walls. The encoding is the
// per-column span list [x0, y-base, width, bot[0..w), top[0..w)] — exactly
// the information the paper's identification walk accumulates (the contour
// corners determine the spans). Payload sizes therefore reflect the real
// message cost accounted by E7.
#pragma once

#include <memory>
#include <vector>

#include "core/mcc_region.h"

namespace mcc::proto {

/// Serializes the span geometry of a region (cells list not included).
std::vector<int32_t> encode_shape(const core::MccRegion2D& region);

/// Rebuilds a region's span geometry (predicates and corner usable; the
/// cell list and fill statistics are not transported).
core::MccRegion2D decode_shape(const int32_t* data, size_t size);

/// Builds a span-backed region directly from collected boundary cells
/// (what an identification walker gathers). Cells may arrive unordered and
/// may contain duplicates.
core::MccRegion2D shape_from_cells(int id,
                                   const std::vector<mesh::Coord2>& cells);

}  // namespace mcc::proto
