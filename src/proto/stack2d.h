// Convenience facade: runs the full distributed 2-D stack in the paper's
// phase order — labelling, neighborhood exchange, identification, boundary
// construction — and keeps the per-phase cost statistics (experiment E7).
#pragma once

#include "proto/boundary2d_proto.h"
#include "proto/detect_route.h"
#include "proto/ident2d.h"
#include "proto/labeling_proto.h"

namespace mcc::proto {

struct Stack2D {
  Stack2D(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults)
      : labeling(mesh, faults),
        ident(mesh, labeling),
        boundary(mesh, labeling, ident) {
    labeling_stats = labeling.run();
    exchange_stats = labeling.exchange_neighborhoods();
    ident_stats = ident.run();
    boundary_stats = boundary.run();
  }

  size_t total_messages() const {
    return labeling_stats.messages + exchange_stats.messages +
           ident_stats.messages + boundary_stats.messages;
  }
  size_t total_payload_words() const {
    return labeling_stats.payload_words + exchange_stats.payload_words +
           ident_stats.payload_words + boundary_stats.payload_words;
  }

  LabelingProtocol2D labeling;
  IdentProtocol2D ident;
  BoundaryProtocol2D boundary;
  sim::RunStats labeling_stats;
  sim::RunStats exchange_stats;
  sim::RunStats ident_stats;
  sim::RunStats boundary_stats;
};

}  // namespace mcc::proto
