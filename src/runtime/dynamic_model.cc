#include "runtime/dynamic_model.h"

#include "mesh/octant.h"
#include "obs/obs.h"

namespace mcc::runtime {

using mesh::Coord2;
using mesh::Coord3;
using mesh::Octant2;
using mesh::Octant3;

// ---------------------------------------------------------------------------
// 2-D

DynamicModel2D::DynamicModel2D(const mesh::Mesh2D& mesh,
                               const mesh::FaultSet2D& initial,
                               size_t cache_capacity)
    : mesh_(mesh),
      faults_(initial),
      cache_(cache_capacity ? cache_capacity : 4 * mesh.node_count()) {
  for (const bool fx : {false, true})
    for (const bool fy : {false, true}) {
      const Octant2 o{fx, fy};
      octants_[o.id()] = std::make_unique<core::OctantModel2D>(
          mesh_, mesh::materialize(faults_, mesh_, o));
    }
}

DynamicModel2D::EventReport DynamicModel2D::apply(Coord2 c, bool repair) {
  EventReport rep;
  rep.repair = repair;
  rep.node = c;
  if (faults_.is_faulty(c) != repair) return rep;  // no-op event
  faults_.set_faulty(c, !repair);

  for (const bool fx : {false, true})
    for (const bool fy : {false, true}) {
      const Octant2 o{fx, fy};
      core::OctantModel2D& m = *octants_[o.id()];
      const Coord2 fc = o.transform(c, mesh_);
      m.faults.set_faulty(fc, !repair);
      OctantDeltaT<Coord2>& delta = rep.octants[o.id()];
      delta.relabeled = repair ? m.labels.apply_repair(mesh_, fc)
                               : m.labels.apply_fault(mesh_, fc);
      delta.label_fallback = m.labels.last_event_fell_back();
      delta.regions = m.mccs.update(mesh_, m.labels, delta.relabeled);
      delta.boundary = m.boundary.update(delta.relabeled, delta.regions);
    }

  // The ambiguous doubly-blocked patterns (docs/dynamic.md) force a full
  // relabel in at least one octant; surfacing the frequency makes the
  // incremental path's effectiveness observable in every run report.
  if (rep.any_label_fallback())
    if (auto* m = obs::metrics()) m->add_counter("runtime.full_relabels");
  rep.epoch = ++epoch_;
  // Every cached field is keyed with a pre-bump epoch and can never be hit
  // again; reclaim the memory in one sweep.
  cache_.clear();
  return rep;
}

DynamicModel2D::EventReport DynamicModel2D::fail(Coord2 c) {
  return apply(c, false);
}

DynamicModel2D::EventReport DynamicModel2D::repair(Coord2 c) {
  return apply(c, true);
}

core::FeasibilityResult DynamicModel2D::feasible(Coord2 s, Coord2 d) const {
  const Octant2 o = Octant2::from_pair(s, d);
  return core::feasible_in_octant(mesh_, octant(o), o, s, d);
}

core::RouteResult2D DynamicModel2D::route(Coord2 s, Coord2 d,
                                          core::RouterKind kind,
                                          core::RoutePolicy policy,
                                          uint64_t seed) const {
  const Octant2 o = Octant2::from_pair(s, d);
  return core::route_in_octant(mesh_, octant(o), o, s, d, kind, policy, seed);
}

std::shared_ptr<const core::ReachField2D> DynamicModel2D::cached_field(
    Octant2 o, Coord2 dest_canonical) const {
  const core::OctantModel2D& m = octant(o);
  return cache_.get_or_build(
      epoch_, o.id(), mesh_.index(dest_canonical), [&] {
        return core::ReachField2D(mesh_, m.labels, dest_canonical,
                                  core::NodeFilter::SafeOnly);
      });
}

// ---------------------------------------------------------------------------
// 3-D

DynamicModel3D::DynamicModel3D(const mesh::Mesh3D& mesh,
                               const mesh::FaultSet3D& initial,
                               size_t cache_capacity)
    : mesh_(mesh),
      faults_(initial),
      cache_(cache_capacity ? cache_capacity : 8 * mesh.node_count()) {
  for (const bool fx : {false, true})
    for (const bool fy : {false, true})
      for (const bool fz : {false, true}) {
        const Octant3 o{fx, fy, fz};
        octants_[o.id()] = std::make_unique<core::OctantModel3D>(
            mesh_, mesh::materialize(faults_, mesh_, o));
      }
}

DynamicModel3D::EventReport DynamicModel3D::apply(Coord3 c, bool repair) {
  EventReport rep;
  rep.repair = repair;
  rep.node = c;
  if (faults_.is_faulty(c) != repair) return rep;
  faults_.set_faulty(c, !repair);

  for (const bool fx : {false, true})
    for (const bool fy : {false, true})
      for (const bool fz : {false, true}) {
        const Octant3 o{fx, fy, fz};
        core::OctantModel3D& m = *octants_[o.id()];
        const Coord3 fc = o.transform(c, mesh_);
        m.faults.set_faulty(fc, !repair);
        OctantDeltaT<Coord3>& delta = rep.octants[o.id()];
        delta.relabeled = repair ? m.labels.apply_repair(mesh_, fc)
                                 : m.labels.apply_fault(mesh_, fc);
        delta.label_fallback = m.labels.last_event_fell_back();
        delta.regions = m.mccs.update(mesh_, m.labels, delta.relabeled);
      }

  if (rep.any_label_fallback())
    if (auto* m = obs::metrics()) m->add_counter("runtime.full_relabels");
  rep.epoch = ++epoch_;
  cache_.clear();
  return rep;
}

DynamicModel3D::EventReport DynamicModel3D::fail(Coord3 c) {
  return apply(c, false);
}

DynamicModel3D::EventReport DynamicModel3D::repair(Coord3 c) {
  return apply(c, true);
}

core::FeasibilityResult DynamicModel3D::feasible(Coord3 s, Coord3 d) const {
  const Octant3 o = Octant3::from_pair(s, d);
  return core::feasible_in_octant(mesh_, octant(o), o, s, d);
}

core::RouteResult3D DynamicModel3D::route(Coord3 s, Coord3 d,
                                          core::RouterKind kind,
                                          core::RoutePolicy policy,
                                          uint64_t seed) const {
  const Octant3 o = Octant3::from_pair(s, d);
  return core::route_in_octant(mesh_, octant(o), o, s, d, kind, policy, seed);
}

std::shared_ptr<const core::ReachField3D> DynamicModel3D::cached_field(
    Octant3 o, Coord3 dest_canonical) const {
  const core::OctantModel3D& m = octant(o);
  return cache_.get_or_build(
      epoch_, o.id(), mesh_.index(dest_canonical), [&] {
        return core::ReachField3D(mesh_, m.labels, dest_canonical,
                                  core::NodeFilter::SafeOnly);
      });
}

}  // namespace mcc::runtime
