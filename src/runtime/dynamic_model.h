// Dynamic-fault runtime: the paper's future-work scenario ("all the faulty
// components can occur during the routing process") served as a
// first-class subsystem instead of rebuild-from-scratch.
//
// DynamicModel2D/3D own a mutable fault set and keep the full MCC stack —
// per-octant flipped fault sets, label fields, MCC regions and (2-D)
// boundary records — consistent across fault/repair events by calling the
// core layer's incremental hooks:
//
//   LabelField::apply_fault/apply_repair   relabels only the event's
//                                          cascade neighborhood;
//   MccSet::update                         merges/splits exactly the
//                                          affected regions (stable ids);
//   Boundary2D::update                     rebuilds exactly the walls whose
//                                          dependency set the event touched.
//
// Every event bumps a monotonically increasing epoch; the embedded
// GuidanceCache keys reachability fields on (epoch, octant, destination),
// so guidance consumers (the wormhole's Model mode, DynamicMccRouting)
// can never read pre-event fields. Queries mirror MccModel2D/3D exactly —
// both call the shared core::feasible_in_octant / route_in_octant — and
// tests/test_runtime.cc proves the maintained stack equivalent to a fresh
// MccModel after every event of randomized churn schedules.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/model.h"
#include "runtime/guidance_cache.h"

namespace mcc::runtime {

/// Per-octant effect of one event, in that octant's canonical frame.
template <class Coord>
struct OctantDeltaT {
  std::vector<Coord> relabeled;     // cells whose label changed
  core::RegionUpdate regions;       // MCC merges/splits
  core::BoundaryUpdate boundary;    // wall/record rebuilds (2-D only)
  bool label_fallback = false;      // label hook took the full relabel
};

template <class Coord, size_t N>
struct EventReportT {
  uint64_t epoch = 0;  // epoch AFTER the event (0 = event was a no-op)
  bool repair = false;
  Coord node{};
  std::array<OctantDeltaT<Coord>, N> octants;

  size_t relabeled_total() const {
    size_t n = 0;
    for (const auto& o : octants) n += o.relabeled.size();
    return n;
  }
  size_t walls_rebuilt() const {
    size_t n = 0;
    for (const auto& o : octants) n += o.boundary.walls.size();
    return n;
  }
  /// True when any octant's label hook fell back to a full relabel
  /// (ambiguous doubly-blocked regime; see core/labeling.h).
  bool any_label_fallback() const {
    for (const auto& o : octants)
      if (o.label_fallback) return true;
    return false;
  }
};

class DynamicModel2D {
 public:
  using EventReport = EventReportT<mesh::Coord2, 4>;

  /// Materializes all four octant models eagerly (an event touches every
  /// orientation class, unlike the lazily-built static MccModel2D).
  /// `cache_capacity` 0 sizes the guidance cache to one epoch's full key
  /// space (octants x destinations) so it never thrashes within an epoch.
  DynamicModel2D(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& initial,
                 size_t cache_capacity = 0);

  // Pinned: each octant's Boundary2D holds references into mesh_ and its
  // sibling members, so a moved model would leave them dangling.
  DynamicModel2D(const DynamicModel2D&) = delete;
  DynamicModel2D& operator=(const DynamicModel2D&) = delete;

  const mesh::Mesh2D& mesh() const { return mesh_; }
  const mesh::FaultSet2D& faults() const { return faults_; }
  uint64_t epoch() const { return epoch_; }

  const core::OctantModel2D& octant(mesh::Octant2 o) const {
    return *octants_[o.id()];
  }

  /// Applies one event incrementally and bumps the epoch. Striking an
  /// already-faulty node / repairing a healthy one is a no-op (report
  /// epoch 0, epoch unchanged).
  EventReport fail(mesh::Coord2 c);
  EventReport repair(mesh::Coord2 c);

  /// Same contracts as MccModel2D (shared core implementation).
  core::FeasibilityResult feasible(mesh::Coord2 s, mesh::Coord2 d) const;
  core::RouteResult2D route(mesh::Coord2 s, mesh::Coord2 d,
                            core::RouterKind kind, core::RoutePolicy policy,
                            uint64_t seed) const;

  /// Epoch-keyed safe-only reachability field toward `dest_canonical` in
  /// octant `o`'s frame — the per-destination guidance surface served to
  /// the core router's per-hop consumers and the wormhole sim.
  std::shared_ptr<const core::ReachField2D> cached_field(
      mesh::Octant2 o, mesh::Coord2 dest_canonical) const;

  GuidanceCache2D& cache() const { return cache_; }

 private:
  EventReport apply(mesh::Coord2 c, bool repair);

  mesh::Mesh2D mesh_;
  mesh::FaultSet2D faults_;
  std::array<std::unique_ptr<core::OctantModel2D>, 4> octants_;
  uint64_t epoch_ = 1;
  mutable GuidanceCache2D cache_;
};

class DynamicModel3D {
 public:
  using EventReport = EventReportT<mesh::Coord3, 8>;

  DynamicModel3D(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& initial,
                 size_t cache_capacity = 0);

  DynamicModel3D(const DynamicModel3D&) = delete;
  DynamicModel3D& operator=(const DynamicModel3D&) = delete;

  const mesh::Mesh3D& mesh() const { return mesh_; }
  const mesh::FaultSet3D& faults() const { return faults_; }
  uint64_t epoch() const { return epoch_; }

  const core::OctantModel3D& octant(mesh::Octant3 o) const {
    return *octants_[o.id()];
  }

  EventReport fail(mesh::Coord3 c);
  EventReport repair(mesh::Coord3 c);

  core::FeasibilityResult feasible(mesh::Coord3 s, mesh::Coord3 d) const;
  core::RouteResult3D route(mesh::Coord3 s, mesh::Coord3 d,
                            core::RouterKind kind, core::RoutePolicy policy,
                            uint64_t seed) const;

  std::shared_ptr<const core::ReachField3D> cached_field(
      mesh::Octant3 o, mesh::Coord3 dest_canonical) const;

  GuidanceCache3D& cache() const { return cache_; }

 private:
  EventReport apply(mesh::Coord3 c, bool repair);

  mesh::Mesh3D mesh_;
  mesh::FaultSet3D faults_;
  std::array<std::unique_ptr<core::OctantModel3D>, 8> octants_;
  uint64_t epoch_ = 1;
  mutable GuidanceCache3D cache_;
};

}  // namespace mcc::runtime
