// Epoch-versioned guidance cache — the runtime's answer to the ROADMAP's
// "cache per-destination fields octant-wide behind a shared LRU" item.
//
// Keys are (epoch, octant, destination): the epoch is the dynamic model's
// monotonically increasing event counter, so a cached reachability field
// can never be served across a fault/repair boundary — invalidation is by
// construction, not by tracking. Entries are spread over independently
// locked shards (key-hash striping) so concurrent per-hop consumers — the
// wormhole's routing functions, parallel sweep workers — contend only when
// they hash to the same shard; a miss builds the field while holding that
// shard's lock, which also deduplicates concurrent builds of the same
// destination. Each shard evicts LRU beyond its capacity slice.
//
// The CI ThreadSanitizer job drives GuidanceCacheConcurrent.* in
// tests/test_runtime.cc against exactly this code.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/reachability.h"

namespace mcc::runtime {

struct GuidanceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <class Field>
class GuidanceCacheT {
 public:
  explicit GuidanceCacheT(size_t capacity = 4096, size_t shard_count = 8)
      : per_shard_cap_(std::max<size_t>(1, capacity / std::max<size_t>(1, shard_count))) {
    shards_.reserve(std::max<size_t>(1, shard_count));
    for (size_t i = 0; i < std::max<size_t>(1, shard_count); ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  /// Returns the field for (epoch, octant, dest), building it via
  /// `build()` (which must return a Field) on a miss. The returned
  /// shared_ptr stays valid after eviction.
  template <class Build>
  std::shared_ptr<const Field> get_or_build(uint64_t epoch, int octant,
                                            size_t dest, Build&& build) {
    const Key key{epoch, static_cast<uint32_t>(octant),
                  static_cast<uint64_t>(dest)};
    Shard& s = *shards_[shard_of(key)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      s.lru.splice(s.lru.begin(), s.lru, it->second.where);
      return it->second.field;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto field = std::make_shared<const Field>(build());
    s.lru.push_front(key);
    s.map.emplace(key, Entry{field, s.lru.begin()});
    while (s.map.size() > per_shard_cap_) {
      s.map.erase(s.lru.back());
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return field;
  }

  /// Drops every entry (the dynamic model calls this on each event: all
  /// cached fields carry a pre-bump epoch and could never be hit again).
  void clear() {
    for (auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      sp->map.clear();
      sp->lru.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      n += sp->map.size();
    }
    return n;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const { return per_shard_cap_ * shards_.size(); }

  GuidanceCacheStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            evictions_.load(std::memory_order_relaxed)};
  }

  void reset_stats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Key {
    uint64_t epoch = 0;
    uint32_t octant = 0;
    uint64_t dest = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.epoch * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<uint64_t>(k.octant) << 56) ^ k.dest;
      h *= 0xc2b2ae3d27d4eb4fULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct Entry {
    std::shared_ptr<const Field> field;
    typename std::list<Key>::iterator where;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Key> lru;  // front = most recently used
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  size_t shard_of(const Key& k) const {
    return KeyHash{}(k) % shards_.size();
  }

  size_t per_shard_cap_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

using GuidanceCache2D = GuidanceCacheT<core::ReachField2D>;
using GuidanceCache3D = GuidanceCacheT<core::ReachField3D>;

}  // namespace mcc::runtime
