// Epoch-versioned guidance cache — the runtime's answer to the ROADMAP's
// "cache per-destination fields octant-wide behind a shared LRU" item.
//
// Keys are (epoch, octant, destination): the epoch is the dynamic model's
// monotonically increasing event counter, so a cached reachability field
// can never be served across a fault/repair boundary — invalidation is by
// construction, not by tracking. Entries are spread over independently
// locked shards (key-hash striping) so concurrent per-hop consumers — the
// wormhole's routing functions, parallel sweep workers, serve readers —
// contend only when they hash to the same shard. A miss builds the field
// *outside* the shard lock: the missing caller registers a per-key
// in-flight latch, drops the lock, builds, then publishes — so distinct
// destinations that stripe to the same shard build concurrently, while
// concurrent misses of the *same* key block on the latch and share the
// one build. Each shard evicts LRU beyond its capacity slice.
//
// The CI ThreadSanitizer job drives GuidanceCacheConcurrent.* in
// tests/test_runtime.cc against exactly this code.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/reachability.h"

namespace mcc::runtime {

struct GuidanceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  // Hits that were served by waiting on another thread's in-flight build
  // (a subset of `hits`). Zero when single-threaded; scheduling-dependent
  // under concurrency, so observability surfaces it as a gauge.
  uint64_t dedup_waits = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <class Field>
class GuidanceCacheT {
 public:
  explicit GuidanceCacheT(size_t capacity = 4096, size_t shard_count = 8)
      : per_shard_cap_(std::max<size_t>(1, capacity / std::max<size_t>(1, shard_count))) {
    shards_.reserve(std::max<size_t>(1, shard_count));
    for (size_t i = 0; i < std::max<size_t>(1, shard_count); ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  /// Returns the field for (epoch, octant, dest), building it via
  /// `build()` (which must return a Field) on a miss. The build runs
  /// without the shard lock held; a per-key latch deduplicates
  /// concurrent builds of the same key. The returned shared_ptr stays
  /// valid after eviction.
  template <class Build>
  std::shared_ptr<const Field> get_or_build(uint64_t epoch, int octant,
                                            size_t dest, Build&& build) {
    const Key key{epoch, static_cast<uint32_t>(octant),
                  static_cast<uint64_t>(dest)};
    Shard& s = *shards_[shard_of(key)];
    for (;;) {
      std::shared_ptr<Latch> latch;
      {
        std::unique_lock<std::mutex> lock(s.mu);
        auto it = s.map.find(key);
        if (it != s.map.end()) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          s.lru.splice(s.lru.begin(), s.lru, it->second.where);
          return it->second.field;
        }
        auto bit = s.building.find(key);
        if (bit == s.building.end()) {
          latch = std::make_shared<Latch>();
          s.building.emplace(key, latch);
          lock.unlock();
          return run_build(s, key, std::move(latch),
                           std::forward<Build>(build));
        }
        latch = bit->second;
      }
      // Someone else is building this exact key: wait on its latch and
      // share the result (counted as a hit — one build served N calls).
      std::unique_lock<std::mutex> lk(latch->mu);
      latch->cv.wait(lk, [&] { return latch->ready; });
      if (!latch->failed) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        dedup_waits_.fetch_add(1, std::memory_order_relaxed);
        return latch->field;
      }
      // The builder threw; retry from scratch (stats counted on the
      // path that finally produces a field).
    }
  }

  /// Drops every entry (the dynamic model calls this on each event: all
  /// cached fields carry a pre-bump epoch and could never be hit again).
  /// In-flight builds are deregistered too: their waiters still receive
  /// the built field through the latch, but the stale-epoch result is
  /// not inserted.
  void clear() {
    for (auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      sp->map.clear();
      sp->lru.clear();
      sp->building.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      n += sp->map.size();
    }
    return n;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const { return per_shard_cap_ * shards_.size(); }

  GuidanceCacheStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            evictions_.load(std::memory_order_relaxed),
            dedup_waits_.load(std::memory_order_relaxed)};
  }

  void reset_stats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    dedup_waits_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Key {
    uint64_t epoch = 0;
    uint32_t octant = 0;
    uint64_t dest = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.epoch * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<uint64_t>(k.octant) << 56) ^ k.dest;
      h *= 0xc2b2ae3d27d4eb4fULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct Entry {
    std::shared_ptr<const Field> field;
    typename std::list<Key>::iterator where;
  };
  /// One in-flight build: the builder publishes through `field`/`ready`,
  /// waiters block on `cv`. Lives on past clear() via shared_ptr.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::shared_ptr<const Field> field;
    bool ready = false;
    bool failed = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Key> lru;  // front = most recently used
    std::unordered_map<Key, Entry, KeyHash> map;
    std::unordered_map<Key, std::shared_ptr<Latch>, KeyHash> building;
  };

  size_t shard_of(const Key& k) const {
    return KeyHash{}(k) % shards_.size();
  }

  /// The miss path, entered with this thread registered as the builder
  /// for `key` and the shard lock released. Builds, re-locks to publish
  /// into the LRU (unless clear() deregistered the build meanwhile),
  /// then wakes any same-key waiters.
  template <class Build>
  std::shared_ptr<const Field> run_build(Shard& s, const Key& key,
                                         std::shared_ptr<Latch> latch,
                                         Build&& build) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const Field> field;
    try {
      field = std::make_shared<const Field>(build());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(s.mu);
        auto cur = s.building.find(key);
        if (cur != s.building.end() && cur->second == latch)
          s.building.erase(cur);
      }
      {
        std::lock_guard<std::mutex> lk(latch->mu);
        latch->failed = true;
        latch->ready = true;
      }
      latch->cv.notify_all();
      throw;
    }
    {
      std::lock_guard<std::mutex> lock(s.mu);
      auto cur = s.building.find(key);
      if (cur != s.building.end() && cur->second == latch) {
        s.building.erase(cur);
        s.lru.push_front(key);
        s.map.emplace(key, Entry{field, s.lru.begin()});
        while (s.map.size() > per_shard_cap_) {
          s.map.erase(s.lru.back());
          s.lru.pop_back();
          evictions_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(latch->mu);
      latch->field = field;
      latch->ready = true;
    }
    latch->cv.notify_all();
    return field;
  }

  size_t per_shard_cap_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dedup_waits_{0};
};

using GuidanceCache2D = GuidanceCacheT<core::ReachField2D>;
using GuidanceCache3D = GuidanceCacheT<core::ReachField3D>;

}  // namespace mcc::runtime
