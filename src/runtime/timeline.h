// Fault/repair event schedules in mesh coordinates, driving the dynamic
// runtime and the wormhole's churn mode. The schedule itself is sampled by
// util::sample_churn (Poisson arrivals, bounded repairs) so every consumer
// — bench_e12, the examples, tests/test_runtime.cc — draws identically
// from a seed; this header only binds it to a mesh shape and adds the
// cursor interface a cycle-driven simulation needs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::runtime {

template <class MeshT, class CoordT, class FaultsT>
class FaultTimelineT {
 public:
  struct Event {
    uint64_t cycle = 0;
    CoordT node{};
    bool repair = false;
  };

  FaultTimelineT() = default;
  explicit FaultTimelineT(std::vector<Event> events)
      : events_(std::move(events)) {}

  /// Samples a schedule over the live nodes of `initial` (initially-faulty
  /// nodes are never struck; they are the static part of the fault set).
  static FaultTimelineT sample(const MeshT& mesh, const FaultsT& initial,
                               util::Rng& rng, const util::ChurnParams& p) {
    const std::vector<util::ChurnEvent> raw = util::sample_churn(
        mesh, rng, p, [&](CoordT c) { return !initial.is_faulty(c); });
    std::vector<Event> events;
    events.reserve(raw.size());
    for (const util::ChurnEvent& e : raw)
      events.push_back({e.cycle, mesh.coord(e.node), e.repair});
    return FaultTimelineT(std::move(events));
  }

  const std::vector<Event>& events() const { return events_; }
  bool done() const { return cursor_ >= events_.size(); }
  void reset() { cursor_ = 0; }

  /// Returns the next event due at or before `cycle` and advances the
  /// cursor, or nullptr when none is due (call repeatedly per cycle).
  const Event* next_due(uint64_t cycle) {
    if (done() || events_[cursor_].cycle > cycle) return nullptr;
    return &events_[cursor_++];
  }

 private:
  std::vector<Event> events_;
  size_t cursor_ = 0;
};

using FaultTimeline2D =
    FaultTimelineT<mesh::Mesh2D, mesh::Coord2, mesh::FaultSet2D>;
using FaultTimeline3D =
    FaultTimelineT<mesh::Mesh3D, mesh::Coord3, mesh::FaultSet3D>;

}  // namespace mcc::runtime
