#include "serve/load.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "proto/boundary_delta.h"
#include "util/rng.h"

namespace mcc::serve {

void LatencyHist::add(uint64_t us) {
  if (us < counts_.size())
    ++counts_[us];
  else
    ++overflow_;
  ++count_;
  sum_ += static_cast<double>(us);
  max_ = std::max(max_, us);
}

void LatencyHist::merge(const LatencyHist& other) {
  if (counts_.size() < other.counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

uint64_t LatencyHist::percentile(double p) const {
  if (count_ == 0) return 0;
  const auto want = static_cast<uint64_t>(
      p * static_cast<double>(count_) + 0.5);
  uint64_t seen = 0;
  for (size_t us = 0; us < counts_.size(); ++us) {
    seen += counts_[us];
    if (seen >= want) return us;
  }
  return counts_.size();  // landed in the overflow bucket
}

bool parse_query_mix(const std::string& text, QueryMix& out) {
  if (text == "feasible") out = QueryMix::Feasible;
  else if (text == "route") out = QueryMix::Route;
  else if (text == "mixed") out = QueryMix::Mixed;
  else return false;
  return true;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Writer-side consumer of the 2-D boundary_delta stream: a passive
/// canonical-quadrant record replica kept consistent by apply() alone,
/// verified record-for-record against the final snapshot.
struct ReplicaFeed2D {
  explicit ReplicaFeed2D(const mesh::Mesh2D& mesh) : replica(mesh) {}

  void seed(const runtime::DynamicModel2D& model) {
    replica.snapshot(model.octant(canon).boundary);
  }
  void on_event(const runtime::DynamicModel2D& model,
                const runtime::DynamicModel2D::EventReport& report) {
    const proto::BoundaryDelta delta = proto::make_boundary_delta(
        model.octant(canon).boundary, report.octants[canon.id()].boundary);
    payload += delta.payload_ints();
    replica.apply(delta);
  }
  void finish(const mesh::Mesh2D& mesh,
              const runtime::DynamicModel2D& model, LoadResult& out) const {
    const core::Boundary2D& auth = model.octant(canon).boundary;
    out.replica_checked = true;
    out.delta_payload_ints = payload;
    out.replica_records = replica.record_count();
    bool ok = replica.record_count() == auth.record_count();
    using CanonRec = std::pair<std::pair<int, int>, std::vector<int>>;
    for (size_t i = 0; ok && i < mesh.node_count(); ++i) {
      const mesh::Coord2 c = mesh.coord(i);
      std::vector<CanonRec> a, r;
      for (const core::Record2D& rec : auth.records_at(c))
        a.push_back({{rec.owner, static_cast<int>(rec.guard)}, *rec.chain});
      for (const auto& rec : replica.records_at(c))
        r.push_back({{rec.owner, static_cast<int>(rec.guard)}, rec.chain});
      std::sort(a.begin(), a.end());
      std::sort(r.begin(), r.end());
      ok = a == r;
    }
    out.replica_consistent = ok;
  }

  const mesh::Octant2 canon{false, false};
  proto::RecordReplica2D replica;
  size_t payload = 0;
};

struct NoReplicaFeed {
  template <class Model>
  void seed(const Model&) {}
  template <class Model, class Report>
  void on_event(const Model&, const Report&) {}
  template <class Mesh, class Model>
  void finish(const Mesh&, const Model&, LoadResult&) const {}
};

template <class T, class Feed>
LoadResult run_load_impl(const typename T::Mesh& mesh,
                         const typename T::Faults& initial,
                         const typename T::Timeline& timeline,
                         const LoadConfig& cfg, Feed feed) {
  using Coord = typename T::Coord;
  SnapshotStoreT<T> store(mesh, initial, cfg.pool_size, cfg.cache_capacity);

  LoadResult out;
  out.events_total = timeline.events().size();
  out.readers.resize(static_cast<size_t>(std::max(1, cfg.readers)));

  const auto t0 = Clock::now();

  std::thread writer([&] {
    obs::TraceSink* const ts = obs::trace();
    feed.seed(*store.snapshot());
    for (const auto& e : timeline.events()) {
      const auto res = [&] {
        obs::ProfScope prof(obs::Phase::ServeWriterApply);
        obs::TraceScope span(ts, "serve.writer_apply");
        return store.apply(e.node, e.repair);
      }();
      if (res.report.epoch != 0) {
        ++out.events_applied;
        feed.on_event(*res.model, res.report);
      }
      if (cfg.event_interval_us != 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg.event_interval_us));
    }
  });

  // Aggregate target_qps split evenly over the readers.
  const auto query_interval =
      cfg.target_qps > 0
          ? std::chrono::nanoseconds(static_cast<uint64_t>(
                static_cast<double>(out.readers.size()) * 1e9 /
                cfg.target_qps))
          : std::chrono::nanoseconds(0);

  std::vector<std::thread> pool;
  for (size_t r = 0; r < out.readers.size(); ++r) {
    pool.emplace_back([&, r] {
      ReaderResult& me = out.readers[r];
      obs::TraceSink* const ts = obs::trace();
      util::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 0xC0FFEE + r);
      const size_t nodes = mesh.node_count();
      Clock::time_point next = Clock::now();
      for (uint64_t q = 0; q < cfg.queries_per_reader; ++q) {
        if (query_interval.count() != 0) {
          std::this_thread::sleep_until(next);
          next += query_interval;
        }
        const Coord s = mesh.coord(rng.pick(nodes));
        const Coord d = mesh.coord(rng.pick(nodes));
        const uint64_t route_seed = rng.fork();
        const bool want_route =
            cfg.mix == QueryMix::Route ||
            (cfg.mix == QueryMix::Mixed && (q & 1) == 0);

        const auto q0 = Clock::now();
        {
          obs::ProfScope prof(obs::Phase::ServeReaderQuery);
          obs::TraceScope span(ts, "serve.reader_query");
          const auto v = store.view();
          const core::FeasibilityResult fr = v.snap->feasible(s, d);
          if (fr.feasible) {
            ++me.feasible_yes;
            if (want_route) {
              constexpr bool k2d = std::is_same_v<T, Serve2D>;
              const auto route =
                  v.snap->route(s, d, k2d ? cfg.kind2d : cfg.kind3d,
                                cfg.policy, route_seed);
              ++me.routed;
              if (route.delivered) {
                ++me.delivered;
                me.hops += static_cast<uint64_t>(route.hops());
              }
            }
          }
          me.max_lag = std::max(me.max_lag, v.lag);
        }
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - q0)
                            .count();
        me.latency.add(static_cast<uint64_t>(us));
        ++me.queries;
      }
    });
  }

  writer.join();
  for (auto& w : pool) w.join();
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  for (const ReaderResult& me : out.readers) {
    out.queries_total += me.queries;
    out.latency.merge(me.latency);
    out.max_reader_lag = std::max(out.max_reader_lag, me.max_lag);
  }
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(out.queries_total) / out.wall_seconds
                : 0;
  out.final_epoch = store.writer_epoch();
  out.publishes = store.publishes();
  out.buffers = store.buffer_count();
  out.buffers_grown = store.buffers_grown();
  feed.finish(mesh, *store.snapshot(), out);
  return out;
}

}  // namespace

LoadResult run_load(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& initial,
                    const runtime::FaultTimeline2D& timeline,
                    const LoadConfig& cfg) {
  return run_load_impl<Serve2D>(mesh, initial, timeline, cfg,
                                ReplicaFeed2D(mesh));
}

LoadResult run_load(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& initial,
                    const runtime::FaultTimeline3D& timeline,
                    const LoadConfig& cfg) {
  return run_load_impl<Serve3D>(mesh, initial, timeline, cfg,
                                NoReplicaFeed{});
}

}  // namespace mcc::serve
