// The serving load harness over SnapshotStoreT: one writer thread feeding
// FaultTimeline events into the store (and, in 2-D, the boundary_delta
// stream into a passive RecordReplica2D), N reader threads answering a
// fixed number of feasibility/route queries each against their current
// snapshot. Per-query latency lands in an exact microsecond histogram;
// counts (queries, events, final epoch, delta payload) are deterministic
// given the seeds, wall-clock numbers (QPS, percentiles, epoch lag,
// buffer growth) vary run to run — the serve_load driver keeps the two
// apart so bench_trend can gate the former and report the latter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/router.h"
#include "serve/snapshot_store.h"

namespace mcc::serve {

/// Exact latency histogram: unit microsecond buckets up to a cap plus an
/// overflow bucket (same shape as the wormhole's cycle histogram).
class LatencyHist {
 public:
  explicit LatencyHist(size_t cap = 8192) : counts_(cap, 0) {}

  void add(uint64_t us);
  void merge(const LatencyHist& other);

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  uint64_t overflow() const { return overflow_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Smallest latency L with cdf(L) >= p (overflow reports the cap).
  uint64_t percentile(double p) const;
  const std::vector<uint64_t>& buckets() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0;
};

enum class QueryMix : uint8_t {
  Feasible,  // feasibility checks only
  Route,     // feasibility + a full route for every feasible pair
  Mixed,     // alternate: every other query also routes
};

/// Parses "feasible" | "route" | "mixed"; false on anything else.
bool parse_query_mix(const std::string& text, QueryMix& out);

struct LoadConfig {
  int readers = 4;
  uint64_t queries_per_reader = 2000;
  QueryMix mix = QueryMix::Mixed;
  double target_qps = 0;           // aggregate cap; 0 = unthrottled
  uint64_t event_interval_us = 0;  // writer pacing; 0 = back-to-back
  uint64_t seed = 1;
  core::RouterKind kind2d = core::RouterKind::Records;
  core::RouterKind kind3d = core::RouterKind::Flood;
  core::RoutePolicy policy = core::RoutePolicy::Random;
  size_t pool_size = 3;
  size_t cache_capacity = 0;
};

struct ReaderResult {
  uint64_t queries = 0;
  uint64_t feasible_yes = 0;
  uint64_t routed = 0;
  uint64_t delivered = 0;
  uint64_t hops = 0;
  uint64_t max_lag = 0;
  LatencyHist latency;
};

struct LoadResult {
  std::vector<ReaderResult> readers;
  LatencyHist latency;  // merged over readers

  // Deterministic counters (gateable).
  uint64_t queries_total = 0;
  uint64_t events_total = 0;    // timeline length
  uint64_t events_applied = 0;  // non-no-op events
  uint64_t final_epoch = 1;
  uint64_t publishes = 0;  // events_applied-dependent, still deterministic

  // Wall-clock / interleaving-dependent observability.
  double wall_seconds = 0;
  double qps = 0;
  uint64_t max_reader_lag = 0;
  uint64_t buffers = 0;
  uint64_t buffers_grown = 0;

  // 2-D canonical-quadrant delta replica (unchecked in 3-D).
  bool replica_checked = false;
  bool replica_consistent = true;
  uint64_t delta_payload_ints = 0;
  uint64_t replica_records = 0;
};

LoadResult run_load(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& initial,
                    const runtime::FaultTimeline2D& timeline,
                    const LoadConfig& cfg);
LoadResult run_load(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& initial,
                    const runtime::FaultTimeline3D& timeline,
                    const LoadConfig& cfg);

}  // namespace mcc::serve
