// Guidance-as-a-service: the RCU-style epoch-snapshot store at the heart
// of the serving core (ROADMAP "Guidance-as-a-service" item).
//
// One writer thread applies FaultTimeline events through apply(); each
// event is appended to a writer-owned log and replayed onto a DynamicModel
// buffer with no outstanding readers, which is then published as the
// current snapshot through an atomic shared_ptr slot (SnapshotSlotT — the
// std::atomic<std::shared_ptr> design with TSan-visible lock-bit
// ordering; see its comment). Readers call snapshot()/view() — one
// lock-bit exchange, no mutex, readers never block each other — and
// answer feasibility/route queries against the immutable model they hold;
// the snapshot they got stays valid (and bit-stable) for as long as they
// hold the shared_ptr, however many events the writer publishes meanwhile.
//
// Buffer lifecycle: DynamicModel2D/3D is pinned (its Boundary2D holds
// references into sibling members), so buffers are never copied — the
// store keeps a pool of models all constructed from the same initial
// fault set, each tagged with how many log events it has replayed. The
// published shared_ptr carries a custom deleter that returns the buffer
// to a mutex-guarded free list when the last reader drops it; the mutex
// handoff (reader release -> writer acquire) is the happens-before edge
// that makes writer reuse race-free, so the whole core is TSan-clean by
// construction rather than by use_count() guessing. If every buffer is
// pinned by laggard readers the writer allocates a fresh one (replaying
// the full log) and counts it in buffers_grown().
//
// Epoch coherence: every buffer replays the same event sequence, so
// "epoch" (1 + non-no-op events) agrees across buffers and a snapshot at
// epoch E answers byte-identically to a fresh DynamicModel replayed to
// epoch E — tests/test_serve.cc differential-pins exactly that. The
// writer stores writer_epoch() (release) *before* publishing the matching
// snapshot, so a reader that loads the snapshot first and the writer
// epoch second always observes lag = writer_epoch - snapshot_epoch >= 0;
// view() records the observed lag in the max_reader_lag() counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"

namespace mcc::serve {

/// 2-D/3-D trait bundles (the same shape api/drivers.cc uses).
struct Serve2D {
  using Mesh = mesh::Mesh2D;
  using Coord = mesh::Coord2;
  using Faults = mesh::FaultSet2D;
  using Model = runtime::DynamicModel2D;
  using Timeline = runtime::FaultTimeline2D;
};
struct Serve3D {
  using Mesh = mesh::Mesh3D;
  using Coord = mesh::Coord3;
  using Faults = mesh::FaultSet3D;
  using Model = runtime::DynamicModel3D;
  using Timeline = runtime::FaultTimeline3D;
};

/// Atomic publication slot for the current snapshot.
///
/// libstdc++ ships std::atomic<std::shared_ptr>, but its reader path
/// unlocks the spin bit embedded in the count word with
/// memory_order_relaxed — correct under the RMW total order the standard
/// guarantees for that word, yet invisible to ThreadSanitizer's pure
/// happens-before model, so every writer publish is reported as racing
/// with every reader load. This slot is the same lock-bit design with
/// acquire/release on BOTH ends of both paths: the ordering TSan checks
/// is exactly the ordering the code relies on, at the cost of one
/// uncontended exchange per access (readers still take no mutex and
/// never block on each other).
template <class M>
class SnapshotSlotT {
 public:
  std::shared_ptr<const M> load() const {
    lock();
    std::shared_ptr<const M> out = slot_;
    unlock();
    return out;
  }

  void store(std::shared_ptr<const M> next) {
    lock();
    slot_.swap(next);
    unlock();
    // `next` now holds the PREVIOUS snapshot; it releases here, outside
    // the critical section, because dropping the last reference runs the
    // buffer-recycling deleter (which takes the store's buffer mutex).
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire))
      std::this_thread::yield();  // single-core friendly
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const M> slot_;
};

template <class T>
class SnapshotStoreT {
 public:
  using Mesh = typename T::Mesh;
  using Coord = typename T::Coord;
  using Faults = typename T::Faults;
  using Model = typename T::Model;
  using EventReport = typename Model::EventReport;
  /// An immutable published model; readers query it lock-free.
  using Snapshot = std::shared_ptr<const Model>;

  /// Builds `pool_size` model buffers from the initial fault set and
  /// publishes the epoch-1 snapshot. `cache_capacity` is forwarded to
  /// each buffer's GuidanceCache (0 = one full epoch's key space).
  SnapshotStoreT(const Mesh& mesh, const Faults& initial,
                 size_t pool_size = 3, size_t cache_capacity = 0)
      : mesh_(mesh), initial_(initial), cache_capacity_(cache_capacity) {
    if (pool_size < 2) pool_size = 2;  // current + one to write into
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < pool_size; ++i) {
      buffers_.push_back(
          std::make_unique<Buffer>(mesh_, initial_, cache_capacity_));
      free_.push_back(buffers_.back().get());
    }
    Buffer* first = free_.back();
    free_.pop_back();
    writer_epoch_.store(first->model.epoch(), std::memory_order_release);
    publish(first);
  }

  /// All snapshots must be released before the store dies (the serving
  /// harness joins its readers first).
  ~SnapshotStoreT() { published_.store(Snapshot{}); }

  SnapshotStoreT(const SnapshotStoreT&) = delete;
  SnapshotStoreT& operator=(const SnapshotStoreT&) = delete;

  // --- writer side (one thread) -------------------------------------------

  /// What one apply() published: the event's report (epoch 0 = no-op) and
  /// the just-published model, valid for const reads — e.g. feeding
  /// proto::make_boundary_delta — until the next apply() call.
  struct ApplyResult {
    EventReport report;
    const Model* model = nullptr;
  };

  /// Appends the event to the log, replays the pending log suffix onto a
  /// reader-free buffer and publishes it as the new snapshot.
  ApplyResult apply(Coord node, bool repair) {
    log_.push_back(LogEvent{node, repair});
    Buffer* buf = acquire_buffer();
    EventReport report;
    while (buf->applied < log_.size()) {
      const LogEvent& e = log_[buf->applied++];
      report = e.repair ? buf->model.repair(e.node) : buf->model.fail(e.node);
    }
    writer_epoch_.store(buf->model.epoch(), std::memory_order_release);
    publish(buf);
    return {std::move(report), &buf->model};
  }

  size_t events_logged() const { return log_.size(); }  // writer thread only

  // --- reader side (any number of threads) --------------------------------

  /// The current snapshot: one lock-bit exchange + shared_ptr copy.
  Snapshot snapshot() const { return published_.load(); }

  /// Epoch of the newest event the writer has published (monotone).
  uint64_t writer_epoch() const {
    return writer_epoch_.load(std::memory_order_acquire);
  }

  /// A consistent (snapshot, writer-epoch) pair. Loading the snapshot
  /// first guarantees writer_epoch >= snapshot->epoch(), so lag is a
  /// well-defined non-negative staleness measure; it is folded into the
  /// max_reader_lag() observability counter.
  struct View {
    Snapshot snap;
    uint64_t writer_epoch = 0;
    uint64_t lag = 0;
  };
  View view() const {
    View v;
    v.snap = snapshot();
    v.writer_epoch = writer_epoch();
    v.lag = v.writer_epoch - v.snap->epoch();
    uint64_t cur = max_reader_lag_.load(std::memory_order_relaxed);
    while (v.lag > cur &&
           !max_reader_lag_.compare_exchange_weak(cur, v.lag,
                                                  std::memory_order_relaxed)) {
    }
    return v;
  }

  // --- observability -------------------------------------------------------

  uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  uint64_t max_reader_lag() const {
    return max_reader_lag_.load(std::memory_order_relaxed);
  }
  /// Buffers allocated beyond the initial pool (laggard-reader pressure).
  uint64_t buffers_grown() const {
    return grown_.load(std::memory_order_relaxed);
  }
  size_t buffer_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffers_.size();
  }

 private:
  struct LogEvent {
    Coord node{};
    bool repair = false;
  };
  struct Buffer {
    Buffer(const Mesh& m, const Faults& f, size_t cache_capacity)
        : model(m, f, cache_capacity) {}
    Model model;
    size_t applied = 0;  // prefix of log_ this buffer has replayed
  };

  Buffer* acquire_buffer() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      Buffer* b = free_.back();
      free_.pop_back();
      return b;
    }
    buffers_.push_back(
        std::make_unique<Buffer>(mesh_, initial_, cache_capacity_));
    grown_.fetch_add(1, std::memory_order_relaxed);
    return buffers_.back().get();
  }

  void publish(Buffer* buf) {
    Snapshot snap(&buf->model, [this, buf](const Model*) {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(buf);
    });
    published_.store(std::move(snap));
    publishes_.fetch_add(1, std::memory_order_relaxed);
  }

  const Mesh mesh_;
  const Faults initial_;
  const size_t cache_capacity_;

  mutable std::mutex mu_;  // guards buffers_ / free_
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<Buffer*> free_;

  std::vector<LogEvent> log_;  // writer-owned, append-only
  SnapshotSlotT<Model> published_;
  std::atomic<uint64_t> writer_epoch_{1};
  std::atomic<uint64_t> publishes_{0};
  mutable std::atomic<uint64_t> max_reader_lag_{0};
  std::atomic<uint64_t> grown_{0};
};

using SnapshotStore2D = SnapshotStoreT<Serve2D>;
using SnapshotStore3D = SnapshotStoreT<Serve3D>;

}  // namespace mcc::serve
