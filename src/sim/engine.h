// Synchronous message-passing simulator.
//
// The paper's system model: nodes know only their own status and whatever
// neighbors tell them; everything happens "through the message transmission
// between two neighboring nodes along one of those dimensions" (§1). The
// engine enforces exactly that: a handler runs per (node, message) delivery
// and may only emit messages to direct neighbors; deliveries happen one
// synchronous round later. The engine counts rounds, messages and payload
// words — the cost metrics of experiment E7.
//
// Protocols keep their own per-node state (grids indexed by node) and give
// the engine a delivery callback; see src/proto/*.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mesh/mesh.h"

namespace mcc::sim {

/// A protocol message. `type` is protocol-defined; `data` is the payload
/// (coordinates, shape encodings, ...) whose size is the accounted cost.
struct Message {
  int type = 0;
  std::vector<int32_t> data;
};

struct RunStats {
  size_t rounds = 0;
  size_t messages = 0;       // delivered node-to-node messages
  size_t payload_words = 0;  // total int32 words carried
  bool quiescent = false;    // true when the run drained all traffic
};

template <class MeshT, class CoordT, class DirT>
class SyncEngine {
 public:
  /// Handler invoked once per delivered message. `from` is the direction
  /// the message arrived FROM (i.e., the link toward the sender), or
  /// nullopt for self-injected bootstrap messages.
  using Handler =
      std::function<void(CoordT self, const Message&, std::optional<DirT>)>;

  explicit SyncEngine(const MeshT& mesh) : mesh_(mesh) {}

  const MeshT& mesh() const { return mesh_; }

  /// Queues a bootstrap message a node sends to itself before round 0.
  void inject(CoordT at, Message msg) {
    next_.push_back({at, std::move(msg), std::nullopt});
  }

  /// Sends to the neighbor in direction `d`; silently dropped at walls.
  /// Legal only from inside a handler (delivery next round).
  void send(CoordT from, DirT d, Message msg) {
    const CoordT to = step(from, d);
    if (!mesh_.contains(to)) return;
    next_.push_back({to, std::move(msg), opposite(d)});
  }

  /// Runs rounds until quiescence or the round cap.
  RunStats run(const Handler& handler, size_t max_rounds = 100000) {
    RunStats stats;
    while (!next_.empty() && stats.rounds < max_rounds) {
      ++stats.rounds;
      current_.swap(next_);
      next_.clear();
      for (auto& env : current_) {
        ++stats.messages;
        stats.payload_words += env.msg.data.size();
        handler(env.to, env.msg, env.from);
      }
      current_.clear();
    }
    stats.quiescent = next_.empty();
    return stats;
  }

 private:
  struct Envelope {
    CoordT to;
    Message msg;
    std::optional<DirT> from;
  };

  const MeshT& mesh_;
  std::vector<Envelope> current_;
  std::vector<Envelope> next_;
};

using Engine2D = SyncEngine<mesh::Mesh2D, mesh::Coord2, mesh::Dir2>;
using Engine3D = SyncEngine<mesh::Mesh3D, mesh::Coord3, mesh::Dir3>;

}  // namespace mcc::sim
