#include "sim/wormhole/baseline_routing.h"

#include <algorithm>

namespace mcc::sim::wh {

using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;

const char* to_string(BlockFill f) {
  switch (f) {
    case BlockFill::Safety: return "safety";
    case BlockFill::BoundingBox: return "bounding-box";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// 2-D

FaultBlockRouting2D::FaultBlockRouting2D(const mesh::Mesh2D& mesh,
                                         const mesh::FaultSet2D& faults,
                                         BlockFill fill)
    : mesh_(mesh), faults_(faults), fill_(fill) {}

const baselines::BlockField2D& FaultBlockRouting2D::field() {
  if (dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    if (dirty_.load(std::memory_order_relaxed)) {
      field_.emplace(fill_ == BlockFill::Safety
                         ? baselines::safety_fill(mesh_, faults_)
                         : baselines::bounding_box_fill(mesh_, faults_));
      dirty_.store(false, std::memory_order_release);
    }
  }
  return *field_;
}

int FaultBlockRouting2D::vc_class(Coord2 s, Coord2 d) const {
  const int id = mesh::Octant2::from_pair(s, d).id();
  return std::min(id, 3 - id);
}

size_t FaultBlockRouting2D::candidates(Coord2 u, Coord2, Coord2 d,
                                       std::array<Dir2, 2>& out) {
  const baselines::BlockField2D& f = field();
  size_t n = 0;
  if (u.x != d.x) {
    const Coord2 next{u.x + (u.x < d.x ? 1 : -1), u.y};
    if (baselines::block_feasible(mesh_, f, next, d))
      out[n++] = u.x < d.x ? Dir2::PosX : Dir2::NegX;
  }
  if (u.y != d.y) {
    const Coord2 next{u.x, u.y + (u.y < d.y ? 1 : -1)};
    if (baselines::block_feasible(mesh_, f, next, d))
      out[n++] = u.y < d.y ? Dir2::PosY : Dir2::NegY;
  }
  return n;
}

bool FaultBlockRouting2D::feasible(Coord2 s, Coord2 d) {
  return !(s == d) && baselines::block_feasible(mesh_, field(), s, d);
}

bool FaultBlockRouting2D::completable(Coord2 u, Coord2, Coord2 d) {
  return u == d || baselines::block_feasible(mesh_, field(), u, d);
}

// ---------------------------------------------------------------------------
// 3-D

FaultBlockRouting3D::FaultBlockRouting3D(const mesh::Mesh3D& mesh,
                                         const mesh::FaultSet3D& faults,
                                         BlockFill fill)
    : mesh_(mesh), faults_(faults), fill_(fill) {}

const baselines::BlockField3D& FaultBlockRouting3D::field() {
  if (dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    if (dirty_.load(std::memory_order_relaxed)) {
      field_.emplace(fill_ == BlockFill::Safety
                         ? baselines::safety_fill(mesh_, faults_)
                         : baselines::bounding_box_fill(mesh_, faults_));
      dirty_.store(false, std::memory_order_release);
    }
  }
  return *field_;
}

int FaultBlockRouting3D::vc_class(Coord3 s, Coord3 d) const {
  const int id = mesh::Octant3::from_pair(s, d).id();
  return std::min(id, 7 - id);
}

size_t FaultBlockRouting3D::candidates(Coord3 u, Coord3, Coord3 d,
                                       std::array<Dir3, 3>& out) {
  const baselines::BlockField3D& f = field();
  size_t n = 0;
  if (u.x != d.x) {
    const Coord3 next{u.x + (u.x < d.x ? 1 : -1), u.y, u.z};
    if (baselines::block_feasible(mesh_, f, next, d))
      out[n++] = u.x < d.x ? Dir3::PosX : Dir3::NegX;
  }
  if (u.y != d.y) {
    const Coord3 next{u.x, u.y + (u.y < d.y ? 1 : -1), u.z};
    if (baselines::block_feasible(mesh_, f, next, d))
      out[n++] = u.y < d.y ? Dir3::PosY : Dir3::NegY;
  }
  if (u.z != d.z) {
    const Coord3 next{u.x, u.y, u.z + (u.z < d.z ? 1 : -1)};
    if (baselines::block_feasible(mesh_, f, next, d))
      out[n++] = u.z < d.z ? Dir3::PosZ : Dir3::NegZ;
  }
  return n;
}

bool FaultBlockRouting3D::feasible(Coord3 s, Coord3 d) {
  return !(s == d) && baselines::block_feasible(mesh_, field(), s, d);
}

bool FaultBlockRouting3D::completable(Coord3 u, Coord3, Coord3 d) {
  return u == d || baselines::block_feasible(mesh_, field(), u, d);
}

}  // namespace mcc::sim::wh
