// Wormhole routing functions for the classic rectangular fault-block
// baselines (safety-rule fill / bounding-box fill, src/baselines).
//
// FaultBlockRouting2D/3D route minimally and adaptively through the nodes a
// block fill leaves enabled: a productive direction survives iff a minimal
// completion through non-unsafe nodes still exists from the next hop
// (monotone DAG reachability, the same comparator E3/E4 use). Deadlock
// classes are the antipodal octant pairs of the MCC routers — every hop of
// a minimal route strictly increases its octant potential, so the
// per-class channel-dependency argument of docs/wormhole.md applies to any
// minimal-adaptive function, this one included.
//
// The block field is derived from a LIVE fault-set reference: under churn
// the driver applies each event to the fault state and then calls
// on_network_event(), which marks the field dirty; the next per-hop query
// rebuilds it. (The classic models have no incremental maintenance story —
// a full refill per event is exactly the cost a fault-block deployment
// would pay, and the comparison should charge it.)
#pragma once

#include <atomic>
#include <mutex>
#include <optional>

#include "baselines/fault_block.h"
#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "sim/wormhole/routing.h"

namespace mcc::sim::wh {

enum class BlockFill : uint8_t { Safety, BoundingBox };

const char* to_string(BlockFill f);

class FaultBlockRouting2D final : public RoutingFunction2D {
 public:
  FaultBlockRouting2D(const mesh::Mesh2D& mesh,
                      const mesh::FaultSet2D& faults,
                      BlockFill fill = BlockFill::Safety);

  /// Antipodal quadrant pairs share a class, as in MccRouting2D.
  int vc_classes() const override { return 2; }
  int vc_class(mesh::Coord2 s, mesh::Coord2 d) const override;
  size_t candidates(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d,
                    std::array<mesh::Dir2, 2>& out) override;
  bool feasible(mesh::Coord2 s, mesh::Coord2 d) override;
  bool completable(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d) override;
  void on_network_event() override { dirty_.store(true); }

 private:
  const baselines::BlockField2D& field();

  const mesh::Mesh2D& mesh_;
  const mesh::FaultSet2D& faults_;
  BlockFill fill_;
  // Lazy rebuild is double-checked (atomic flag + mutex) so concurrent
  // per-hop queries from the router-parallel tick see a complete field.
  // Events only fire between cycles, so the flag never flips mid-phase.
  std::atomic<bool> dirty_{true};
  std::mutex rebuild_mu_;
  std::optional<baselines::BlockField2D> field_;
};

class FaultBlockRouting3D final : public RoutingFunction3D {
 public:
  FaultBlockRouting3D(const mesh::Mesh3D& mesh,
                      const mesh::FaultSet3D& faults,
                      BlockFill fill = BlockFill::Safety);

  /// Antipodal octant pairs share a class, as in MccRouting3D.
  int vc_classes() const override { return 4; }
  int vc_class(mesh::Coord3 s, mesh::Coord3 d) const override;
  size_t candidates(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d,
                    std::array<mesh::Dir3, 3>& out) override;
  bool feasible(mesh::Coord3 s, mesh::Coord3 d) override;
  bool completable(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d) override;
  void on_network_event() override { dirty_.store(true); }

 private:
  const baselines::BlockField3D& field();

  const mesh::Mesh3D& mesh_;
  const mesh::FaultSet3D& faults_;
  BlockFill fill_;
  // Same double-checked lazy rebuild as the 2-D variant.
  std::atomic<bool> dirty_{true};
  std::mutex rebuild_mu_;
  std::optional<baselines::BlockField3D> field_;
};

}  // namespace mcc::sim::wh
