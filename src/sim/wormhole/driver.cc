#include "sim/wormhole/driver.h"

#include <algorithm>
#include <utility>

#include "sim/wormhole/network.h"

namespace mcc::sim::wh {

namespace {

// Shared measurement loop for the static and churn drivers: warmup,
// measurement window, drain with stall-based deadlock detection, stats
// extraction. Keeping it in one place keeps the deadlock/saturation
// definitions identical between the two sweeps. `before_cycle` runs first
// every cycle (event application in churn mode, no-op statically),
// `on_window_open` right before the measurement window (cache-stat
// snapshots), and `live_nodes` supplies the per-cycle population the
// offered/accepted rates are normalized by (constant statically; under
// churn the live count changes inside the window, so the rates integrate
// live-node-cycles).
template <class Topo, class BeforeCycle, class OnWindowOpen, class LiveNodes>
SimResult run_measurement(Network<Topo>& net, TrafficGenT<Topo>& traffic,
                          const LoadPoint& load, BeforeCycle&& before_cycle,
                          OnWindowOpen&& on_window_open,
                          LiveNodes&& live_nodes) {
  for (int c = 0; c < load.warmup; ++c) {
    before_cycle();
    traffic.tick(net, load.rate);
    net.step();
  }

  on_window_open();
  const auto [inj0, del0] = net.begin_window();
  double live_node_cycles = 0;
  for (int c = 0; c < load.measure; ++c) {
    before_cycle();
    live_node_cycles += live_nodes();
    traffic.tick(net, load.rate);
    net.step();
  }
  const uint64_t offered_window = net.stats().injected_flits - inj0;
  // delivered_flits can retreat when a partially-ejected packet is dropped
  // by an event, so the window diff is clamped at zero.
  const uint64_t accepted_window =
      net.stats().delivered_flits > del0 ? net.stats().delivered_flits - del0
                                         : 0;

  SimResult r;

  // Drain: a deeply saturated point (hotspot past the ejection-bandwidth
  // knee) can hold a backlog far larger than the budget; that is congestion,
  // not deadlock. Deadlock is the absence of forward progress — measured
  // from drain entry, so a quiet pre-drain stretch (low-rate runs whose
  // last delivery is long past) cannot masquerade as a stall. Events keep
  // firing during a churn drain (a repair can be what unblocks the
  // backlog).
  const uint64_t drain_start = net.cycle();
  const auto progress_ref = [&] {
    return std::max(net.stats().last_delivery_cycle, drain_start);
  };
  int spent = 0;
  while (!net.idle() && spent < load.drain &&
         net.cycle() - progress_ref() < static_cast<uint64_t>(load.stall)) {
    before_cycle();
    net.step();
    ++spent;
  }
  r.deadlocked = !net.idle() && net.cycle() - progress_ref() >=
                                    static_cast<uint64_t>(load.stall);

  // Latency is read after the drain so that packets still in flight when
  // the window closed — the slowest ones, exactly the tail a saturated
  // point is characterized by — are included in the histogram.
  r.avg_latency = net.stats().latency.mean();
  r.p99_latency = net.stats().latency.percentile(0.99);
  r.max_latency = net.stats().latency.max();
  r.delivered_packets = net.stats().latency.count();

  const double denom = std::max(live_node_cycles, 1.0);
  r.offered_flits = static_cast<double>(offered_window) / denom;
  r.accepted_flits = static_cast<double>(accepted_window) / denom;
  r.filtered = traffic.filtered();
  r.wedged_head_cycles = net.stats().wedged_head_cycles;
  r.violations = net.stats().violations.size();
  r.drained = net.idle();
  r.saturated = accepted_window <
                static_cast<uint64_t>(0.9 * static_cast<double>(offered_window));
  return r;
}

// Topology glue shared by the named 2-D/3-D entry points.
template <class Topo>
SimResult run_load_point(const typename Topo::Mesh& mesh,
                         const typename Topo::Faults& faults,
                         typename Topo::Routing& routing, Pattern pattern,
                         const Config& cfg, core::RoutePolicy policy,
                         const LoadPoint& load, uint64_t seed,
                         double hotspot_fraction, int hotspot_count) {
  Network<Topo> net(mesh, faults, routing, cfg, policy, seed);
  TrafficGenT<Topo> traffic(mesh, faults, routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  const auto live = static_cast<double>(mesh.node_count()) -
                    static_cast<double>(faults.count());
  return run_measurement(
      net, traffic, load, [] {}, [] {}, [&] { return live; });
}

template <class Topo, class Model, class Timeline>
ChurnResult run_churn_load_point(Model& model,
                                 typename Topo::Routing& routing,
                                 Pattern pattern, Config cfg,
                                 core::RoutePolicy policy,
                                 const LoadPoint& load, Timeline timeline,
                                 uint64_t seed, double hotspot_fraction,
                                 int hotspot_count) {
  cfg.drop_infeasible = true;
  const auto& mesh = model.mesh();
  // The traffic generator reads the model's fault set by reference, so
  // dead sources stop injecting and revived ones resume.
  Network<Topo> net(mesh, model.faults(), routing, cfg, policy, seed);
  TrafficGenT<Topo> traffic(mesh, model.faults(), routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  timeline.reset();
  const auto apply_due_events = [&] {
    while (const auto* e = timeline.next_due(net.cycle())) {
      if (e->repair) {
        if (model.repair(e->node).epoch == 0) continue;
        net.apply_repair(e->node);
      } else {
        if (model.fail(e->node).epoch == 0) continue;
        net.apply_fault(e->node);
      }
      routing.on_network_event();
    }
  };

  ChurnResult out;
  // Cache stats cover measurement + drain only, so the reported hit rate
  // excludes the warmup's cold misses (the interval matches the
  // throughput/latency columns it is tabulated beside).
  auto cache0 = model.cache().stats();
  out.sim = run_measurement(
      net, traffic, load, apply_due_events,
      [&] { cache0 = model.cache().stats(); },
      [&] {
        return static_cast<double>(mesh.node_count()) -
               static_cast<double>(model.faults().count());
      });

  out.fault_events = net.stats().fault_events;
  out.repair_events = net.stats().repair_events;
  out.dropped_packets = net.stats().dropped_packets;
  out.dropped_flits = net.stats().dropped_flits;
  const auto cache1 = model.cache().stats();
  out.cache = {cache1.hits - cache0.hits, cache1.misses - cache0.misses,
               cache1.evictions - cache0.evictions};
  return out;
}

}  // namespace

SimResult run_load_point3d(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults,
                           RoutingFunction3D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction, int hotspot_count) {
  return run_load_point<Topo3>(mesh, faults, routing, pattern, cfg, policy,
                               load, seed, hotspot_fraction, hotspot_count);
}

SimResult run_load_point2d(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults,
                           RoutingFunction2D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction, int hotspot_count) {
  return run_load_point<Topo2>(mesh, faults, routing, pattern, cfg, policy,
                               load, seed, hotspot_fraction, hotspot_count);
}

ChurnResult run_churn_load_point3d(runtime::DynamicModel3D& model,
                                   RoutingFunction3D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline3D timeline,
                                   uint64_t seed, double hotspot_fraction,
                                   int hotspot_count) {
  return run_churn_load_point<Topo3>(model, routing, pattern, cfg, policy,
                                     load, std::move(timeline), seed,
                                     hotspot_fraction, hotspot_count);
}

ChurnResult run_churn_load_point2d(runtime::DynamicModel2D& model,
                                   RoutingFunction2D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline2D timeline,
                                   uint64_t seed, double hotspot_fraction,
                                   int hotspot_count) {
  return run_churn_load_point<Topo2>(model, routing, pattern, cfg, policy,
                                     load, std::move(timeline), seed,
                                     hotspot_fraction, hotspot_count);
}

}  // namespace mcc::sim::wh
