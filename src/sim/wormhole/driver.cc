#include "sim/wormhole/driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/wormhole/network.h"
#include "util/stats.h"

namespace mcc::sim::wh {

namespace {

// Shared measurement loop for the static and churn drivers: warmup,
// measurement window, drain with stall-based deadlock detection, stats
// extraction. Keeping it in one place keeps the deadlock/saturation
// definitions identical between the two sweeps. `before_cycle` runs first
// every cycle (event application in churn mode, no-op statically),
// `on_window_open` right before the measurement window (cache-stat
// snapshots), and `live_nodes` supplies the per-cycle population the
// offered/accepted rates are normalized by (constant statically; under
// churn the live count changes inside the window, so the rates integrate
// live-node-cycles).
// Relative delta between two consecutive samples, safe at zero.
double rel_delta(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 ? 0.0 : std::abs(a - b) / scale;
}

template <class Topo, class BeforeCycle, class OnWindowOpen, class LiveNodes>
SimResult run_measurement(Network<Topo>& net, TrafficGenT<Topo>& traffic,
                          const LoadPoint& load, BeforeCycle&& before_cycle,
                          OnWindowOpen&& on_window_open,
                          LiveNodes&& live_nodes) {
  SimResult r;
  // The per-packet latency sum so far, recovered from the aggregate stats;
  // period means are sum/count diffs (heuristic-grade FP is fine here —
  // convergence detection steers the warmup length, nothing pinned).
  const auto latency_sum = [&] {
    return net.stats().latency.mean() *
           static_cast<double>(net.stats().latency.count());
  };

  if (load.warmup_mode == WarmupMode::Fixed) {
    for (int c = 0; c < load.warmup; ++c) {
      before_cycle();
      traffic.tick(net, load.rate);
      net.step();
    }
    r.warmup_cycles_used = static_cast<uint64_t>(load.warmup);
  } else {
    // Converge: run sample periods until the per-period delivered
    // throughput and mean latency both settle, capped at load.warmup.
    const int period = std::max(load.sample_period, 1);
    double prev_thr = 0, prev_lat = 0;
    bool have_prev = false;
    int spent = 0;
    while (spent < load.warmup && !r.warmup_converged) {
      const uint64_t del0 = net.stats().delivered_flits;
      const uint64_t lat_n0 = net.stats().latency.count();
      const double lat_sum0 = latency_sum();
      for (int c = 0; c < period && spent < load.warmup; ++c, ++spent) {
        before_cycle();
        traffic.tick(net, load.rate);
        net.step();
      }
      const double thr =
          static_cast<double>(net.stats().delivered_flits - del0);
      const uint64_t lat_n = net.stats().latency.count() - lat_n0;
      const double lat =
          lat_n ? (latency_sum() - lat_sum0) / static_cast<double>(lat_n)
                : prev_lat;
      if (have_prev && rel_delta(thr, prev_thr) < load.convergence &&
          rel_delta(lat, prev_lat) < load.convergence)
        r.warmup_converged = true;
      prev_thr = thr;
      prev_lat = lat;
      have_prev = true;
    }
    r.warmup_cycles_used = static_cast<uint64_t>(spent);
  }

  on_window_open();
  const WindowStart w0 = net.begin_window();
  double live_node_cycles = 0;
  if (load.warmup_mode == WarmupMode::Fixed) {
    for (int c = 0; c < load.measure; ++c) {
      before_cycle();
      live_node_cycles += live_nodes();
      traffic.tick(net, load.rate);
      net.step();
    }
  } else {
    // Same per-cycle sequence, with per-period samples recorded so the
    // point can report ±95% confidence intervals on its window columns.
    const int period = std::max(load.sample_period, 1);
    util::RunningStats acc_samples, lat_samples;
    int c = 0;
    while (c < load.measure) {
      const uint64_t del0 = net.stats().delivered_flits;
      const uint64_t lat_n0 = net.stats().latency.count();
      const double lat_sum0 = latency_sum();
      const double live0 = live_node_cycles;
      for (int k = 0; k < period && c < load.measure; ++k, ++c) {
        before_cycle();
        live_node_cycles += live_nodes();
        traffic.tick(net, load.rate);
        net.step();
      }
      const double live_span =
          std::max(live_node_cycles - live0, 1.0);
      const uint64_t del = net.stats().delivered_flits - del0;
      acc_samples.add(static_cast<double>(del) / live_span);
      const uint64_t lat_n = net.stats().latency.count() - lat_n0;
      if (lat_n)
        lat_samples.add((latency_sum() - lat_sum0) /
                        static_cast<double>(lat_n));
    }
    r.samples = acc_samples.count();
    r.accepted_ci95 = acc_samples.ci95();
    r.latency_ci95 = lat_samples.ci95();
  }
  const uint64_t offered_window = net.stats().injected_flits - w0.injected_flits;
  // delivered_flits can retreat when a partially-ejected packet is dropped
  // by an event, so the window diff is clamped at zero.
  const uint64_t accepted_window =
      net.stats().delivered_flits > w0.delivered_flits
          ? net.stats().delivered_flits - w0.delivered_flits
          : 0;

  // Drain: a deeply saturated point (hotspot past the ejection-bandwidth
  // knee) can hold a backlog far larger than the budget; that is congestion,
  // not deadlock. Deadlock is the absence of forward progress — measured
  // from drain entry, so a quiet pre-drain stretch (low-rate runs whose
  // last delivery is long past) cannot masquerade as a stall. Events keep
  // firing during a churn drain (a repair can be what unblocks the
  // backlog).
  const uint64_t drain_start = net.cycle();
  const auto progress_ref = [&] {
    return std::max(net.stats().last_delivery_cycle, drain_start);
  };
  int spent = 0;
  while (!net.idle() && spent < load.drain &&
         net.cycle() - progress_ref() < static_cast<uint64_t>(load.stall)) {
    before_cycle();
    net.step();
    ++spent;
  }
  r.deadlocked = !net.idle() && net.cycle() - progress_ref() >=
                                    static_cast<uint64_t>(load.stall);

  // Latency is read after the drain so that packets still in flight when
  // the window closed — the slowest ones, exactly the tail a saturated
  // point is characterized by — are included in the histogram.
  r.avg_latency = net.stats().latency.mean();
  r.p99_latency = net.stats().latency.percentile(0.99);
  r.max_latency = net.stats().latency.max();
  r.delivered_packets = net.stats().latency.count();

  const double denom = std::max(live_node_cycles, 1.0);
  r.offered_flits = static_cast<double>(offered_window) / denom;
  r.accepted_flits = static_cast<double>(accepted_window) / denom;
  r.filtered = traffic.filtered();
  // Window-scoped diffs (measurement + drain): tabulated beside the
  // offered/accepted/latency columns, they must cover the same interval —
  // the whole-run values silently included the warmup.
  r.wedged_head_cycles = net.stats().wedged_head_cycles - w0.wedged_head_cycles;
  r.violations =
      static_cast<uint64_t>(net.stats().violations.size()) - w0.violations;
  r.drained = net.idle();
  r.saturated = saturated_window(accepted_window, offered_window);
  r.route_computes = net.stats().route_computes;
  r.arena_high_water = static_cast<uint64_t>(net.arena_high_water());
  r.pool_spin_iters = net.pool_spin_iters();
  r.pool_parks = net.pool_parks();
  return r;
}

// Topology glue shared by the named 2-D/3-D entry points.
template <class Topo>
SimResult run_load_point(const typename Topo::Mesh& mesh,
                         const typename Topo::Faults& faults,
                         typename Topo::Routing& routing, Pattern pattern,
                         const Config& cfg, core::RoutePolicy policy,
                         const LoadPoint& load, uint64_t seed,
                         double hotspot_fraction, int hotspot_count) {
  Network<Topo> net(mesh, faults, routing, cfg, policy, seed);
  TrafficGenT<Topo> traffic(mesh, faults, routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  const auto live = static_cast<double>(mesh.node_count()) -
                    static_cast<double>(faults.count());
  return run_measurement(
      net, traffic, load, [] {}, [] {}, [&] { return live; });
}

template <class Topo, class Model, class Timeline>
ChurnResult run_churn_load_point(Model& model,
                                 typename Topo::Routing& routing,
                                 Pattern pattern, Config cfg,
                                 core::RoutePolicy policy,
                                 const LoadPoint& load, Timeline timeline,
                                 uint64_t seed, double hotspot_fraction,
                                 int hotspot_count) {
  cfg.drop_infeasible = true;
  const auto& mesh = model.mesh();
  // The traffic generator reads the model's fault set by reference, so
  // dead sources stop injecting and revived ones resume.
  Network<Topo> net(mesh, model.faults(), routing, cfg, policy, seed);
  TrafficGenT<Topo> traffic(mesh, model.faults(), routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  timeline.reset();
  const auto apply_due_events = [&] {
    while (const auto* e = timeline.next_due(net.cycle())) {
      if (e->repair) {
        if (model.repair(e->node).epoch == 0) continue;
        net.apply_repair(e->node);
      } else {
        if (model.fail(e->node).epoch == 0) continue;
        net.apply_fault(e->node);
      }
      routing.on_network_event();
    }
  };

  ChurnResult out;
  // Cache stats cover measurement + drain only, so the reported hit rate
  // excludes the warmup's cold misses (the interval matches the
  // throughput/latency columns it is tabulated beside).
  auto cache0 = model.cache().stats();
  out.sim = run_measurement(
      net, traffic, load, apply_due_events,
      [&] { cache0 = model.cache().stats(); },
      [&] {
        return static_cast<double>(mesh.node_count()) -
               static_cast<double>(model.faults().count());
      });

  out.fault_events = net.stats().fault_events;
  out.repair_events = net.stats().repair_events;
  out.dropped_packets = net.stats().dropped_packets;
  out.dropped_flits = net.stats().dropped_flits;
  const auto cache1 = model.cache().stats();
  out.cache = {cache1.hits - cache0.hits, cache1.misses - cache0.misses,
               cache1.evictions - cache0.evictions,
               cache1.dedup_waits - cache0.dedup_waits};
  return out;
}

}  // namespace

SimResult run_load_point3d(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults,
                           RoutingFunction3D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction, int hotspot_count) {
  return run_load_point<Topo3>(mesh, faults, routing, pattern, cfg, policy,
                               load, seed, hotspot_fraction, hotspot_count);
}

SimResult run_load_point2d(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults,
                           RoutingFunction2D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction, int hotspot_count) {
  return run_load_point<Topo2>(mesh, faults, routing, pattern, cfg, policy,
                               load, seed, hotspot_fraction, hotspot_count);
}

ChurnResult run_churn_load_point3d(runtime::DynamicModel3D& model,
                                   RoutingFunction3D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline3D timeline,
                                   uint64_t seed, double hotspot_fraction,
                                   int hotspot_count) {
  return run_churn_load_point<Topo3>(model, routing, pattern, cfg, policy,
                                     load, std::move(timeline), seed,
                                     hotspot_fraction, hotspot_count);
}

ChurnResult run_churn_load_point2d(runtime::DynamicModel2D& model,
                                   RoutingFunction2D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline2D timeline,
                                   uint64_t seed, double hotspot_fraction,
                                   int hotspot_count) {
  return run_churn_load_point<Topo2>(model, routing, pattern, cfg, policy,
                                     load, std::move(timeline), seed,
                                     hotspot_fraction, hotspot_count);
}

}  // namespace mcc::sim::wh
