#include "sim/wormhole/driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/wormhole/network.h"
#include "util/stats.h"

namespace mcc::sim::wh {

namespace {

// Shared measurement loop for the static and churn drivers: warmup,
// measurement window, drain with stall-based deadlock detection, stats
// extraction. Keeping it in one place keeps the deadlock/saturation
// definitions identical between the two sweeps. `before_cycle` runs first
// every cycle (event application in churn mode, no-op statically),
// `on_window_open` right before the measurement window (cache-stat
// snapshots), and `live_nodes` supplies the per-cycle population the
// offered/accepted rates are normalized by (constant statically; under
// churn the live count changes inside the window, so the rates integrate
// live-node-cycles).
// Relative delta between two consecutive samples, safe at zero.
double rel_delta(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 ? 0.0 : std::abs(a - b) / scale;
}

template <class Topo, class BeforeCycle, class OnWindowOpen, class LiveNodes>
SimResult run_measurement(Network<Topo>& net, TrafficGenT<Topo>& traffic,
                          const LoadPoint& load, BeforeCycle&& before_cycle,
                          OnWindowOpen&& on_window_open,
                          LiveNodes&& live_nodes) {
  SimResult r;
  // The per-packet latency sum so far, recovered from the aggregate stats;
  // period means are sum/count diffs (heuristic-grade FP is fine here —
  // convergence detection steers the warmup length, nothing pinned).
  const auto latency_sum = [&] {
    return net.stats().latency.mean() *
           static_cast<double>(net.stats().latency.count());
  };

  if (load.warmup_mode == WarmupMode::Fixed) {
    for (int c = 0; c < load.warmup; ++c) {
      before_cycle();
      traffic.tick(net, load.rate);
      net.step();
    }
    r.warmup_cycles_used = static_cast<uint64_t>(load.warmup);
  } else {
    // Converge: run sample periods until the per-period delivered
    // throughput and mean latency both settle, capped at load.warmup.
    const int period = std::max(load.sample_period, 1);
    double prev_thr = 0, prev_lat = 0;
    bool have_prev = false;
    int spent = 0;
    while (spent < load.warmup && !r.warmup_converged) {
      const uint64_t del0 = net.stats().delivered_flits;
      const uint64_t lat_n0 = net.stats().latency.count();
      const double lat_sum0 = latency_sum();
      for (int c = 0; c < period && spent < load.warmup; ++c, ++spent) {
        before_cycle();
        traffic.tick(net, load.rate);
        net.step();
      }
      const double thr =
          static_cast<double>(net.stats().delivered_flits - del0);
      const uint64_t lat_n = net.stats().latency.count() - lat_n0;
      const double lat =
          lat_n ? (latency_sum() - lat_sum0) / static_cast<double>(lat_n)
                : prev_lat;
      if (have_prev && rel_delta(thr, prev_thr) < load.convergence &&
          rel_delta(lat, prev_lat) < load.convergence)
        r.warmup_converged = true;
      prev_thr = thr;
      prev_lat = lat;
      have_prev = true;
    }
    r.warmup_cycles_used = static_cast<uint64_t>(spent);
  }

  on_window_open();
  const WindowStart w0 = net.begin_window();
  double live_node_cycles = 0;
  if (load.warmup_mode == WarmupMode::Fixed) {
    for (int c = 0; c < load.measure; ++c) {
      before_cycle();
      live_node_cycles += live_nodes();
      traffic.tick(net, load.rate);
      net.step();
    }
  } else {
    // Same per-cycle sequence, with per-period samples recorded so the
    // point can report ±95% confidence intervals on its window columns.
    const int period = std::max(load.sample_period, 1);
    util::RunningStats acc_samples, lat_samples;
    int c = 0;
    while (c < load.measure) {
      const uint64_t del0 = net.stats().delivered_flits;
      const uint64_t lat_n0 = net.stats().latency.count();
      const double lat_sum0 = latency_sum();
      const double live0 = live_node_cycles;
      for (int k = 0; k < period && c < load.measure; ++k, ++c) {
        before_cycle();
        live_node_cycles += live_nodes();
        traffic.tick(net, load.rate);
        net.step();
      }
      const double live_span =
          std::max(live_node_cycles - live0, 1.0);
      const uint64_t del = net.stats().delivered_flits - del0;
      acc_samples.add(static_cast<double>(del) / live_span);
      const uint64_t lat_n = net.stats().latency.count() - lat_n0;
      if (lat_n)
        lat_samples.add((latency_sum() - lat_sum0) /
                        static_cast<double>(lat_n));
    }
    r.samples = acc_samples.count();
    r.accepted_ci95 = acc_samples.ci95();
    r.latency_ci95 = lat_samples.ci95();
  }
  const uint64_t offered_window = net.stats().injected_flits - w0.injected_flits;
  // delivered_flits can retreat when a partially-ejected packet is dropped
  // by an event, so the window diff is clamped at zero.
  const uint64_t accepted_window =
      net.stats().delivered_flits > w0.delivered_flits
          ? net.stats().delivered_flits - w0.delivered_flits
          : 0;

  // Drain: a deeply saturated point (hotspot past the ejection-bandwidth
  // knee) can hold a backlog far larger than the budget; that is congestion,
  // not deadlock. Deadlock is the absence of forward progress — measured
  // from drain entry, so a quiet pre-drain stretch (low-rate runs whose
  // last delivery is long past) cannot masquerade as a stall. Events keep
  // firing during a churn drain (a repair can be what unblocks the
  // backlog).
  const uint64_t drain_start = net.cycle();
  const auto progress_ref = [&] {
    return std::max(net.stats().last_delivery_cycle, drain_start);
  };
  int spent = 0;
  while (!net.idle() && spent < load.drain &&
         net.cycle() - progress_ref() < static_cast<uint64_t>(load.stall)) {
    before_cycle();
    net.step();
    ++spent;
  }
  r.deadlocked = !net.idle() && net.cycle() - progress_ref() >=
                                    static_cast<uint64_t>(load.stall);

  // Latency is read after the drain so that packets still in flight when
  // the window closed — the slowest ones, exactly the tail a saturated
  // point is characterized by — are included in the histogram.
  r.avg_latency = net.stats().latency.mean();
  r.p99_latency = net.stats().latency.percentile(0.99);
  r.max_latency = net.stats().latency.max();
  r.delivered_packets = net.stats().latency.count();

  const double denom = std::max(live_node_cycles, 1.0);
  r.offered_flits = static_cast<double>(offered_window) / denom;
  r.accepted_flits = static_cast<double>(accepted_window) / denom;
  r.filtered = traffic.filtered();
  // Window-scoped diffs (measurement + drain): tabulated beside the
  // offered/accepted/latency columns, they must cover the same interval —
  // the whole-run values silently included the warmup.
  r.wedged_head_cycles = net.stats().wedged_head_cycles - w0.wedged_head_cycles;
  r.violations =
      static_cast<uint64_t>(net.stats().violations.size()) - w0.violations;
  r.drained = net.idle();
  r.saturated = saturated_window(accepted_window, offered_window);
  r.route_computes = net.stats().route_computes;
  r.arena_high_water = static_cast<uint64_t>(net.arena_high_water());
  r.pool_spin_iters = net.pool_spin_iters();
  r.pool_parks = net.pool_parks();
  return r;
}

// Topology glue shared by the named 2-D/3-D entry points.
template <class Topo>
SimResult run_load_point(const typename Topo::Mesh& mesh,
                         const typename Topo::Faults& faults,
                         typename Topo::Routing& routing, Pattern pattern,
                         const Config& cfg, core::RoutePolicy policy,
                         const LoadPoint& load, uint64_t seed,
                         double hotspot_fraction, int hotspot_count) {
  Network<Topo> net(mesh, faults, routing, cfg, policy, seed);
  TrafficGenT<Topo> traffic(mesh, faults, routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  const auto live = static_cast<double>(mesh.node_count()) -
                    static_cast<double>(faults.count());
  return run_measurement(
      net, traffic, load, [] {}, [] {}, [&] { return live; });
}

template <class Topo, class Model, class Timeline>
ChurnResult run_churn_load_point(Model& model,
                                 typename Topo::Routing& routing,
                                 Pattern pattern, Config cfg,
                                 core::RoutePolicy policy,
                                 const LoadPoint& load, Timeline timeline,
                                 uint64_t seed, double hotspot_fraction,
                                 int hotspot_count) {
  cfg.drop_infeasible = true;
  const auto& mesh = model.mesh();
  // The traffic generator reads the model's fault set by reference, so
  // dead sources stop injecting and revived ones resume.
  Network<Topo> net(mesh, model.faults(), routing, cfg, policy, seed);
  TrafficGenT<Topo> traffic(mesh, model.faults(), routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  timeline.reset();
  const auto apply_due_events = [&] {
    while (const auto* e = timeline.next_due(net.cycle())) {
      if (e->repair) {
        if (model.repair(e->node).epoch == 0) continue;
        net.apply_repair(e->node);
      } else {
        if (model.fail(e->node).epoch == 0) continue;
        net.apply_fault(e->node);
      }
      routing.on_network_event();
    }
  };

  ChurnResult out;
  // Cache stats cover measurement + drain only, so the reported hit rate
  // excludes the warmup's cold misses (the interval matches the
  // throughput/latency columns it is tabulated beside).
  auto cache0 = model.cache().stats();
  out.sim = run_measurement(
      net, traffic, load, apply_due_events,
      [&] { cache0 = model.cache().stats(); },
      [&] {
        return static_cast<double>(mesh.node_count()) -
               static_cast<double>(model.faults().count());
      });

  out.fault_events = net.stats().fault_events;
  out.repair_events = net.stats().repair_events;
  out.dropped_packets = net.stats().dropped_packets;
  out.dropped_flits = net.stats().dropped_flits;
  const auto cache1 = model.cache().stats();
  out.cache = {cache1.hits - cache0.hits, cache1.misses - cache0.misses,
               cache1.evictions - cache0.evictions,
               cache1.dedup_waits - cache0.dedup_waits};
  return out;
}

// Topo <-> fault-axes glue for the E14 entry points.
template <class Topo>
struct FaultAxesOf;
template <>
struct FaultAxesOf<Topo2> {
  using type = fault::Axes2;
};
template <>
struct FaultAxesOf<Topo3> {
  using type = fault::Axes3;
};

template <class Topo>
LinkEnvResult run_link_load_point(
    const fault::FaultUniverseT<typename FaultAxesOf<Topo>::type>& universe,
    const typename Topo::Faults& projected, typename Topo::Routing& routing,
    Pattern pattern, const Config& cfg, core::RoutePolicy policy,
    const LoadPoint& load, uint64_t seed, double hotspot_fraction,
    int hotspot_count) {
  const auto& mesh = universe.mesh();
  // Physical truth: only node/router faults kill a router.
  typename Topo::Faults dead(mesh);
  for (size_t i = 0; i < mesh.node_count(); ++i)
    if (universe.dead(mesh.coord(i))) dead.set_faulty(mesh.coord(i));

  Network<Topo> net(mesh, dead, routing, cfg, policy, seed);
  LinkEnvResult out;
  for (const auto& l : universe.faulty_links()) {
    net.fail_link(l.node, l.dir);
    ++out.link_faults;
  }
  out.sacrificed = projected.count() - dead.count();

  // Traffic filters by the projected set: sacrificed nodes are
  // administratively down even though their routers run.
  TrafficGenT<Topo> traffic(mesh, projected, routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);
  const auto live = static_cast<double>(mesh.node_count()) -
                    static_cast<double>(projected.count());
  out.sim = run_measurement(
      net, traffic, load, [] {}, [] {}, [&] { return live; });
  return out;
}

template <class Topo, class Model>
UniverseChurnResult run_universe_churn_load_point(
    Model& model, typename Topo::Routing& routing, Pattern pattern,
    Config cfg, core::RoutePolicy policy, const LoadPoint& load,
    fault::FaultUniverseT<typename FaultAxesOf<Topo>::type> universe,
    std::vector<fault::UniverseEventT<typename FaultAxesOf<Topo>::type>>
        events,
    uint64_t seed, double hotspot_fraction, int hotspot_count) {
  using Axes = typename FaultAxesOf<Topo>::type;
  cfg.drop_infeasible = true;
  const auto& mesh = model.mesh();
  // The caller seeded `model` with the projection of the initial universe,
  // so routing/traffic (projected view) and the network (true dead set
  // plus initial link severs) start consistent.
  Network<Topo> net(mesh, model.faults(), routing, cfg, policy, seed);
  // Sacrificed nodes are projected-faulty but physically alive; revive
  // their routers so only the true dead set is down.
  std::vector<uint8_t> was_dead(mesh.node_count(), 0);
  for (size_t i = 0; i < mesh.node_count(); ++i) {
    const auto c = mesh.coord(i);
    was_dead[i] = universe.dead(c) ? 1 : 0;
    if (model.faults().is_faulty(c) && !universe.dead(c)) net.apply_repair(c);
  }
  for (const auto& l : universe.faulty_links()) net.fail_link(l.node, l.dir);
  // The pre-warmup consistency fix-up is setup, not churn: event counters
  // start from here.
  const uint64_t fault0 = net.stats().fault_events;
  const uint64_t repair0 = net.stats().repair_events;
  const uint64_t linkf0 = net.stats().link_fault_events;
  const uint64_t linkr0 = net.stats().link_repair_events;

  TrafficGenT<Topo> traffic(mesh, model.faults(), routing, pattern,
                            seed * 11400714819323198485ULL + 1,
                            hotspot_fraction, hotspot_count);

  fault::ProjectionTrackerT<Axes> tracker(universe);
  UniverseChurnResult out;
  size_t next = 0;
  const auto apply_due_events = [&] {
    if (next >= events.size() || events[next].cycle > net.cycle()) return;
    // 1. Universe state: apply the whole due batch, staging the physical
    //    link actions (redundant events — a strike on an already-down
    //    component — change nothing anywhere).
    std::vector<std::pair<fault::LinkIdT<Axes>, bool>> link_actions;
    while (next < events.size() && events[next].cycle <= net.cycle()) {
      const auto& e = events[next++];
      if (!fault::apply_event(universe, e)) continue;
      if (e.comp == fault::Component::Link)
        link_actions.push_back({{e.node, e.dir}, e.repair});
    }
    // 2. Projection delta -> the model (routing guidance) first, as every
    //    network event path requires.
    const auto delta = tracker.refresh();
    for (const auto& c : delta.fail) {
      model.fail(c);
      if (!universe.dead(c)) ++out.projection_sacrifices;
    }
    for (const auto& c : delta.repair) model.repair(c);
    // 3. Physical truth: node/router deaths and revivals...
    for (size_t i = 0; i < mesh.node_count(); ++i) {
      const auto c = mesh.coord(i);
      const uint8_t now = universe.dead(c) ? 1 : 0;
      if (now == was_dead[i]) continue;
      was_dead[i] = now;
      if (now)
        net.apply_fault(c);
      else
        net.apply_repair(c);
    }
    // ...then link severs/restores (idempotent against node deaths).
    for (const auto& [l, repair] : link_actions) {
      if (repair)
        net.repair_link(l.node, l.dir);
      else
        net.fail_link(l.node, l.dir);
    }
    routing.on_network_event();
  };

  auto cache0 = model.cache().stats();
  out.sim = run_measurement(
      net, traffic, load, apply_due_events,
      [&] { cache0 = model.cache().stats(); },
      [&] {
        return static_cast<double>(mesh.node_count()) -
               static_cast<double>(model.faults().count());
      });

  out.fault_events = net.stats().fault_events - fault0;
  out.repair_events = net.stats().repair_events - repair0;
  out.link_fault_events = net.stats().link_fault_events - linkf0;
  out.link_repair_events = net.stats().link_repair_events - linkr0;
  out.dropped_packets = net.stats().dropped_packets;
  out.dropped_flits = net.stats().dropped_flits;
  const auto cache1 = model.cache().stats();
  out.cache = {cache1.hits - cache0.hits, cache1.misses - cache0.misses,
               cache1.evictions - cache0.evictions,
               cache1.dedup_waits - cache0.dedup_waits};
  return out;
}

}  // namespace

SimResult run_load_point3d(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults,
                           RoutingFunction3D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction, int hotspot_count) {
  return run_load_point<Topo3>(mesh, faults, routing, pattern, cfg, policy,
                               load, seed, hotspot_fraction, hotspot_count);
}

SimResult run_load_point2d(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults,
                           RoutingFunction2D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction, int hotspot_count) {
  return run_load_point<Topo2>(mesh, faults, routing, pattern, cfg, policy,
                               load, seed, hotspot_fraction, hotspot_count);
}

ChurnResult run_churn_load_point3d(runtime::DynamicModel3D& model,
                                   RoutingFunction3D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline3D timeline,
                                   uint64_t seed, double hotspot_fraction,
                                   int hotspot_count) {
  return run_churn_load_point<Topo3>(model, routing, pattern, cfg, policy,
                                     load, std::move(timeline), seed,
                                     hotspot_fraction, hotspot_count);
}

ChurnResult run_churn_load_point2d(runtime::DynamicModel2D& model,
                                   RoutingFunction2D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline2D timeline,
                                   uint64_t seed, double hotspot_fraction,
                                   int hotspot_count) {
  return run_churn_load_point<Topo2>(model, routing, pattern, cfg, policy,
                                     load, std::move(timeline), seed,
                                     hotspot_fraction, hotspot_count);
}

LinkEnvResult run_link_load_point3d(const fault::FaultUniverse3D& universe,
                                    const mesh::FaultSet3D& projected,
                                    RoutingFunction3D& routing,
                                    Pattern pattern, const Config& cfg,
                                    core::RoutePolicy policy,
                                    const LoadPoint& load, uint64_t seed,
                                    double hotspot_fraction,
                                    int hotspot_count) {
  return run_link_load_point<Topo3>(universe, projected, routing, pattern,
                                    cfg, policy, load, seed,
                                    hotspot_fraction, hotspot_count);
}

LinkEnvResult run_link_load_point2d(const fault::FaultUniverse2D& universe,
                                    const mesh::FaultSet2D& projected,
                                    RoutingFunction2D& routing,
                                    Pattern pattern, const Config& cfg,
                                    core::RoutePolicy policy,
                                    const LoadPoint& load, uint64_t seed,
                                    double hotspot_fraction,
                                    int hotspot_count) {
  return run_link_load_point<Topo2>(universe, projected, routing, pattern,
                                    cfg, policy, load, seed,
                                    hotspot_fraction, hotspot_count);
}

UniverseChurnResult run_universe_churn_load_point3d(
    runtime::DynamicModel3D& model, RoutingFunction3D& routing,
    Pattern pattern, Config cfg, core::RoutePolicy policy,
    const LoadPoint& load, fault::FaultUniverse3D universe,
    std::vector<fault::UniverseEvent3> events, uint64_t seed,
    double hotspot_fraction, int hotspot_count) {
  return run_universe_churn_load_point<Topo3>(
      model, routing, pattern, cfg, policy, load, std::move(universe),
      std::move(events), seed, hotspot_fraction, hotspot_count);
}

UniverseChurnResult run_universe_churn_load_point2d(
    runtime::DynamicModel2D& model, RoutingFunction2D& routing,
    Pattern pattern, Config cfg, core::RoutePolicy policy,
    const LoadPoint& load, fault::FaultUniverse2D universe,
    std::vector<fault::UniverseEvent2> events, uint64_t seed,
    double hotspot_fraction, int hotspot_count) {
  return run_universe_churn_load_point<Topo2>(
      model, routing, pattern, cfg, policy, load, std::move(universe),
      std::move(events), seed, hotspot_fraction, hotspot_count);
}

}  // namespace mcc::sim::wh
