#include "sim/wormhole/driver.h"

#include <algorithm>

#include "sim/wormhole/network.h"

namespace mcc::sim::wh {

SimResult run_load_point3d(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults,
                           RoutingFunction3D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed) {
  Network3D net(mesh, faults, routing, cfg, policy, seed);
  TrafficGen3D traffic(mesh, faults, routing, pattern, seed * 11400714819323198485ULL + 1);

  const auto live = static_cast<double>(mesh.node_count()) -
                    static_cast<double>(faults.count());

  for (int c = 0; c < load.warmup; ++c) {
    traffic.tick(net, load.rate);
    net.step();
  }

  const auto [inj0, del0] = net.begin_window();
  for (int c = 0; c < load.measure; ++c) {
    traffic.tick(net, load.rate);
    net.step();
  }
  const uint64_t offered_window = net.stats().injected_flits - inj0;
  const uint64_t accepted_window = net.stats().delivered_flits - del0;

  SimResult r;

  // Drain: a deeply saturated point (hotspot past the ejection-bandwidth
  // knee) can hold a backlog far larger than the budget; that is congestion,
  // not deadlock. Deadlock is the absence of forward progress — measured
  // from drain entry, so a quiet pre-drain stretch (low-rate runs whose
  // last delivery is long past) cannot masquerade as a stall.
  const uint64_t drain_start = net.cycle();
  const auto progress_ref = [&] {
    return std::max(net.stats().last_delivery_cycle, drain_start);
  };
  int spent = 0;
  while (!net.idle() && spent < load.drain &&
         net.cycle() - progress_ref() < static_cast<uint64_t>(load.stall)) {
    net.step();
    ++spent;
  }
  r.deadlocked = !net.idle() && net.cycle() - progress_ref() >=
                                    static_cast<uint64_t>(load.stall);

  // Latency is read after the drain so that packets still in flight when
  // the window closed — the slowest ones, exactly the tail a saturated
  // point is characterized by — are included in the histogram.
  r.avg_latency = net.stats().latency.mean();
  r.p99_latency = net.stats().latency.percentile(0.99);
  r.max_latency = net.stats().latency.max();
  r.delivered_packets = net.stats().latency.count();

  const double denom = live * load.measure;
  r.offered_flits = static_cast<double>(offered_window) / denom;
  r.accepted_flits = static_cast<double>(accepted_window) / denom;
  r.filtered = traffic.filtered();
  r.wedged_head_cycles = net.stats().wedged_head_cycles;
  r.violations = net.stats().violations.size();
  r.drained = net.idle();
  r.saturated =
      accepted_window < static_cast<uint64_t>(0.9 * static_cast<double>(offered_window));
  return r;
}

}  // namespace mcc::sim::wh
