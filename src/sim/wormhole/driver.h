// Load-point driver for latency-throughput sweeps (experiment E11).
//
// One load point = fresh network, warmup (inject, discard statistics),
// measurement window (inject, record), drain (no injection, run until the
// network empties or the drain budget runs out). Everything is
// deterministic given `seed`.
#pragma once

#include <cstdint>
#include <vector>

#include "core/router.h"
#include "fault/process.h"
#include "fault/projection.h"
#include "fault/universe.h"
#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"
#include "sim/wormhole/flit.h"
#include "sim/wormhole/routing.h"
#include "sim/wormhole/traffic.h"

namespace mcc::sim::wh {

/// How the warmup length is chosen. Fixed runs exactly LoadPoint::warmup
/// cycles (the original behavior; every committed pin uses it). Converge
/// samples throughput and latency every sample_period cycles and ends the
/// warmup once both change by less than `convergence` (relative) between
/// consecutive periods — the standard steady-state detection of
/// network-simulator methodology — with LoadPoint::warmup as the cap.
enum class WarmupMode { Fixed, Converge };

struct LoadPoint {
  double rate = 0.01;      // packets per live node per cycle
  int warmup = 500;        // warmup cycles (Converge: upper bound)
  int measure = 2000;      // measurement window, injection on
  int drain = 30000;       // post-injection budget to empty the network
  int stall = 1000;        // drain cycles without a delivery = deadlock
  WarmupMode warmup_mode = WarmupMode::Fixed;
  int sample_period = 250;    // Converge: cycles per throughput/latency sample
  double convergence = 0.05;  // Converge: relative-delta threshold
};

struct SimResult {
  double offered_flits = 0;   // flits/node/cycle offered in the window
  double accepted_flits = 0;  // flits/node/cycle delivered in the window
  // Latency covers every packet delivered from window open through the end
  // of the drain, so the slow tail of a saturated point is not truncated.
  double avg_latency = 0;
  uint64_t p99_latency = 0;
  uint64_t max_latency = 0;
  uint64_t delivered_packets = 0;  // latency-sampled deliveries
  uint64_t filtered = 0;           // infeasible draws over the whole run
  // Window-scoped (begin_window snapshot through the end of the drain —
  // the same interval the latency columns cover, warmup excluded).
  uint64_t wedged_head_cycles = 0;
  uint64_t violations = 0;
  bool drained = false;     // network emptied within the drain budget
  bool deadlocked = false;  // drain stopped making forward progress
  bool saturated = false;   // accepted lagged offered by >10% in the window
  // Convergence-mode extras (Fixed mode leaves samples/CIs zero).
  uint64_t warmup_cycles_used = 0;  // cycles actually spent warming up
  bool warmup_converged = false;    // deltas crossed the threshold in budget
  uint64_t samples = 0;             // measurement sample periods recorded
  double accepted_ci95 = 0;         // ±95% CI on accepted flits/node/cycle
  double latency_ci95 = 0;          // ±95% CI on per-period mean latency
  // Observability extras (whole run). The first two are deterministic
  // across thread counts (serial-phase accounting); the pool counters are
  // scheduling-dependent and 0 at threads=1 — surfaced as notes/gauges,
  // never compared across thread counts.
  uint64_t route_computes = 0;    // routing-function candidate computations
  uint64_t arena_high_water = 0;  // peak in-flight flits (arena slots)
  uint64_t pool_spin_iters = 0;   // ThreadPool wait-spin iterations
  uint64_t pool_parks = 0;        // ThreadPool cv parks
};

/// Saturation test on window flit counts: accepted lagged offered by more
/// than 10%. Integer form of accepted/offered < 0.9 — the previous
/// float expression (`accepted < uint64_t(0.9 * offered)`) both truncated
/// the threshold and inherited 0.9's binary rounding, misclassifying
/// boundary windows whose offered count is not a multiple of 10.
constexpr bool saturated_window(uint64_t accepted_window,
                                uint64_t offered_window) {
  return accepted_window * 10 < offered_window * 9;
}

/// Runs one load point of `pattern` traffic through `routing` on a fresh
/// wormhole network.
SimResult run_load_point3d(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults,
                           RoutingFunction3D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction = 0.5,
                           int hotspot_count = 2);

/// 2-D variant over Network2D/TrafficGen2D (same measurement loop).
SimResult run_load_point2d(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults,
                           RoutingFunction2D& routing, Pattern pattern,
                           const Config& cfg, core::RoutePolicy policy,
                           const LoadPoint& load, uint64_t seed,
                           double hotspot_fraction = 0.5,
                           int hotspot_count = 2);

/// A load point under churn: fault/repair events from `timeline` fire at
/// their cycles, updating the dynamic model (epoch bump, incremental MCC
/// maintenance) and then the network (worm flush / node revival) in one
/// atomic step between cycles.
struct ChurnResult {
  SimResult sim;
  // Whole-run totals (warmup + measurement + drain).
  uint64_t fault_events = 0;
  uint64_t repair_events = 0;
  uint64_t dropped_packets = 0;
  uint64_t dropped_flits = 0;
  // The model's cache over measurement + drain (warmup cold misses
  // excluded — the same interval the latency columns cover).
  runtime::GuidanceCacheStats cache;
};

/// Drives `routing` (normally a DynamicMccRouting3D over `model`) through
/// warmup + measurement + drain while applying the timeline. Forces
/// Config::drop_infeasible so severed worms drain instead of wedging.
/// After each applied event the routing function's on_network_event() hook
/// fires, so fault-set-derived baselines (FaultBlockRouting) refresh too.
ChurnResult run_churn_load_point3d(runtime::DynamicModel3D& model,
                                   RoutingFunction3D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline3D timeline,
                                   uint64_t seed,
                                   double hotspot_fraction = 0.5,
                                   int hotspot_count = 2);

/// 2-D churn variant (same measurement loop; closes the ROADMAP item on
/// extending the wormhole churn driver to 2-D networks).
ChurnResult run_churn_load_point2d(runtime::DynamicModel2D& model,
                                   RoutingFunction2D& routing,
                                   Pattern pattern, Config cfg,
                                   core::RoutePolicy policy,
                                   const LoadPoint& load,
                                   runtime::FaultTimeline2D timeline,
                                   uint64_t seed,
                                   double hotspot_fraction = 0.5,
                                   int hotspot_count = 2);

/// A load point in a static three-class fault environment (E14). The
/// network is built over the TRUE dead set (node ∪ router faults) and
/// every faulty link is severed before warmup; `projected` is the
/// conservative node-fault projection the caller built `routing` over, and
/// it is what the traffic generator filters by — sacrificed nodes are
/// administratively down (never source, sink or carry traffic) even though
/// their routers physically run.
struct LinkEnvResult {
  SimResult sim;
  uint64_t link_faults = 0;  // links severed before warmup
  int sacrificed = 0;        // projection fallback nodes (live-but-avoided)
};

LinkEnvResult run_link_load_point3d(const fault::FaultUniverse3D& universe,
                                    const mesh::FaultSet3D& projected,
                                    RoutingFunction3D& routing,
                                    Pattern pattern, const Config& cfg,
                                    core::RoutePolicy policy,
                                    const LoadPoint& load, uint64_t seed,
                                    double hotspot_fraction = 0.5,
                                    int hotspot_count = 2);

LinkEnvResult run_link_load_point2d(const fault::FaultUniverse2D& universe,
                                    const mesh::FaultSet2D& projected,
                                    RoutingFunction2D& routing,
                                    Pattern pattern, const Config& cfg,
                                    core::RoutePolicy policy,
                                    const LoadPoint& load, uint64_t seed,
                                    double hotspot_fraction = 0.5,
                                    int hotspot_count = 2);

/// A load point under a universe event schedule (E14 transient/composite
/// churn). Each applied batch updates, in order: the universe, the
/// projection (whose node-fault delta feeds `model` — the caller must have
/// seeded `model` with the projection of the initial `universe`), then the
/// network's physical state (true node/router deaths and revivals, link
/// severs and restores), then the routing function's event hook.
struct UniverseChurnResult {
  SimResult sim;
  // Whole-run physical event totals, per component class.
  uint64_t fault_events = 0;
  uint64_t repair_events = 0;
  uint64_t link_fault_events = 0;
  uint64_t link_repair_events = 0;
  uint64_t dropped_packets = 0;
  uint64_t dropped_flits = 0;
  /// Projection fallbacks: live nodes newly sacrificed to cover a link
  /// fault across the run (the measured cost of the conservative rule).
  uint64_t projection_sacrifices = 0;
  runtime::GuidanceCacheStats cache;
};

UniverseChurnResult run_universe_churn_load_point3d(
    runtime::DynamicModel3D& model, RoutingFunction3D& routing,
    Pattern pattern, Config cfg, core::RoutePolicy policy,
    const LoadPoint& load, fault::FaultUniverse3D universe,
    std::vector<fault::UniverseEvent3> events, uint64_t seed,
    double hotspot_fraction = 0.5, int hotspot_count = 2);

UniverseChurnResult run_universe_churn_load_point2d(
    runtime::DynamicModel2D& model, RoutingFunction2D& routing,
    Pattern pattern, Config cfg, core::RoutePolicy policy,
    const LoadPoint& load, fault::FaultUniverse2D universe,
    std::vector<fault::UniverseEvent2> events, uint64_t seed,
    double hotspot_fraction = 0.5, int hotspot_count = 2);

}  // namespace mcc::sim::wh
