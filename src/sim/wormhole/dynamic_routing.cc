#include "sim/wormhole/dynamic_routing.h"

#include <algorithm>

namespace mcc::sim::wh {

using core::NodeState;
using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;
using mesh::Octant2;
using mesh::Octant3;

size_t DynamicMccRouting2D::candidates(Coord2 u, Coord2 s, Coord2 d,
                                       std::array<Dir2, 2>& out) {
  const Octant2 o = Octant2::from_pair(s, d);
  const Coord2 uc = o.transform(u, model_.mesh());
  const Coord2 dc = o.transform(d, model_.mesh());
  const auto field = model_.cached_field(o, dc);
  const FieldGuidance2D g(*field);
  const size_t n = core::admissible2d(uc, dc, g, out);
  for (size_t i = 0; i < n; ++i) out[i] = physical(out[i], o);
  return n;
}

bool DynamicMccRouting2D::feasible_in(Octant2 o, Coord2 u, Coord2 d) const {
  const core::LabelField2D& labels = model_.octant(o).labels;
  const Coord2 uc = o.transform(u, model_.mesh());
  const Coord2 dc = o.transform(d, model_.mesh());
  if (labels.state(uc) == NodeState::Faulty ||
      labels.state(dc) == NodeState::Faulty)
    return false;
  return model_.cached_field(o, dc)->feasible(uc);
}

bool DynamicMccRouting2D::feasible(Coord2 s, Coord2 d) {
  if (s == d) return false;
  return feasible_in(Octant2::from_pair(s, d), s, d);
}

bool DynamicMccRouting2D::completable(Coord2 u, Coord2 s, Coord2 d) {
  if (u == d) return true;
  return feasible_in(Octant2::from_pair(s, d), u, d);
}

size_t DynamicMccRouting3D::candidates(Coord3 u, Coord3 s, Coord3 d,
                                       std::array<Dir3, 3>& out) {
  const Octant3 o = Octant3::from_pair(s, d);
  const Coord3 uc = o.transform(u, model_.mesh());
  const Coord3 dc = o.transform(d, model_.mesh());
  const auto field = model_.cached_field(o, dc);
  const FieldGuidance3D g(*field);
  const size_t n = core::admissible3d(uc, dc, g, out);
  for (size_t i = 0; i < n; ++i) out[i] = physical(out[i], o);
  return n;
}

bool DynamicMccRouting3D::feasible_in(Octant3 o, Coord3 u, Coord3 d) const {
  const core::LabelField3D& labels = model_.octant(o).labels;
  const Coord3 uc = o.transform(u, model_.mesh());
  const Coord3 dc = o.transform(d, model_.mesh());
  if (labels.state(uc) == NodeState::Faulty ||
      labels.state(dc) == NodeState::Faulty)
    return false;
  return model_.cached_field(o, dc)->feasible(uc);
}

bool DynamicMccRouting3D::feasible(Coord3 s, Coord3 d) {
  if (s == d) return false;
  return feasible_in(Octant3::from_pair(s, d), s, d);
}

bool DynamicMccRouting3D::completable(Coord3 u, Coord3 s, Coord3 d) {
  if (u == d) return true;
  return feasible_in(Octant3::from_pair(s, d), u, d);
}

}  // namespace mcc::sim::wh
