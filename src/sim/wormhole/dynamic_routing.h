// Routing functions backed by the dynamic-fault runtime.
//
// DynamicMccRouting2D/3D adapt a runtime::DynamicModel the way
// MccRouting2D/3D adapt a static fault set, but every per-hop decision
// reads an epoch-keyed reachability field from the model's GuidanceCache:
// after a fault/repair event bumps the epoch, the next head decision of
// every in-flight worm is served from fields built over the incrementally
// maintained labels — stale guidance cannot be read by construction.
//
// Deadlock classes are structural (antipodal octant pairs) and unaffected
// by events: a packet keeps the class of its injection-time (s, d) pair,
// and every hop of a minimal route still strictly increases its octant
// potential, so the per-class channel-dependency argument of
// docs/wormhole.md carries over epoch boundaries unchanged — the worms
// that an event makes undeliverable are flushed by the network instead of
// blocking (docs/dynamic.md spells this out).
#pragma once

#include "runtime/dynamic_model.h"
#include "sim/wormhole/routing.h"

namespace mcc::sim::wh {

class DynamicMccRouting2D final : public RoutingFunction2D {
 public:
  explicit DynamicMccRouting2D(const runtime::DynamicModel2D& model)
      : model_(model) {}

  int vc_classes() const override { return 2; }
  int vc_class(mesh::Coord2 s, mesh::Coord2 d) const override {
    const int id = mesh::Octant2::from_pair(s, d).id();
    return std::min(id, 3 - id);
  }
  size_t candidates(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d,
                    std::array<mesh::Dir2, 2>& out) override;
  bool feasible(mesh::Coord2 s, mesh::Coord2 d) override;
  bool completable(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d) override;

 private:
  bool feasible_in(mesh::Octant2 o, mesh::Coord2 u, mesh::Coord2 d) const;

  const runtime::DynamicModel2D& model_;
};

class DynamicMccRouting3D final : public RoutingFunction3D {
 public:
  explicit DynamicMccRouting3D(const runtime::DynamicModel3D& model)
      : model_(model) {}

  int vc_classes() const override { return 4; }
  int vc_class(mesh::Coord3 s, mesh::Coord3 d) const override {
    const int id = mesh::Octant3::from_pair(s, d).id();
    return std::min(id, 7 - id);
  }
  size_t candidates(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d,
                    std::array<mesh::Dir3, 3>& out) override;
  bool feasible(mesh::Coord3 s, mesh::Coord3 d) override;
  bool completable(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d) override;

 private:
  bool feasible_in(mesh::Octant3 o, mesh::Coord3 u, mesh::Coord3 d) const;

  const runtime::DynamicModel3D& model_;
};

}  // namespace mcc::sim::wh
