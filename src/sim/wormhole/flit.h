// Flit-level wormhole data types (experiment E11).
//
// A packet is cut into flits: a Head that carries the route state
// (source/destination/deadlock class), Body flits, and a Tail that releases
// the virtual channels the head acquired; a single-flit packet is a
// HeadTail. Flits carry their packet id and sequence number so the ejection
// side can verify wormhole's per-VC contiguous, in-order delivery.
#pragma once

#include <cstdint>

namespace mcc::sim::wh {

using PacketId = uint64_t;

enum class FlitKind : uint8_t { Head, Body, Tail, HeadTail };

template <class Coord>
struct FlitT {
  PacketId packet = 0;
  uint32_t seq = 0;  // flit index within the packet
  FlitKind kind = FlitKind::HeadTail;
  uint8_t vc_class = 0;  // deadlock class, fixed at injection
  Coord src{};
  Coord dst{};
  uint64_t birth = 0;  // cycle the packet entered its source queue
};

/// Knobs of the wormhole network. Defaults model a small classic
/// input-buffered VC router.
struct Config {
  int vcs_per_class = 2;  // adaptive VCs inside each deadlock class
  int buffer_depth = 4;   // flits of buffering per input VC
  int packet_size = 4;    // flits per packet (>= 1)
  // Dynamic-fault mode: a head whose admissible set is empty AND whose
  // remaining pair the routing function declares infeasible is dropped
  // (the worm is flushed network-wide) instead of wedging its VC forever.
  // Off by default so static experiments keep their exact behavior.
  bool drop_infeasible = false;
  // Router-parallel tick lanes. 1 = everything inline on the caller; N > 1
  // shards the routers over a persistent thread pool. Results are
  // bit-identical for every value (docs/wormhole.md, "Parallel tick").
  int threads = 1;
};

}  // namespace mcc::sim::wh
