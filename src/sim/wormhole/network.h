// Cycle-level wormhole network: input-buffered routers with virtual
// channels, credit-based flow control and separable two-stage switch
// allocation, driven by a pluggable routing function (routing.h).
//
// Router model (one cycle = one step() call):
//   1. wire delivery    — flits and credits sent last cycle arrive;
//   2. VC allocation    — a head flit at the front of an idle input VC asks
//                         the routing function for its admissible outputs,
//                         orders them by the configured RoutePolicy, and
//                         grabs the first free output VC in its deadlock
//                         class (adaptivity = choosing by availability);
//   3. switch allocation / traversal — per input port one flit, per output
//                         port one flit (separable round-robin allocator);
//                         winners move one hop (link) or leave (ejection),
//                         consume a credit, and return one upstream.
//
// Virtual channels are partitioned into deadlock classes; a packet's class
// is fixed at injection (for the MCC routing functions it is the antipodal
// octant-pair of its source/destination). Every hop of a minimal route
// strictly increases the sign-weighted potential of its own octant, so the
// channel-dependency graph inside one class is acyclic and the network is
// deadlock-free — the full argument is in docs/wormhole.md.
//
// The network is deterministic given its seed: all iteration orders are
// fixed and the only randomness is the RoutePolicy::Random candidate pick.
//
// Parallel tick (Config::threads > 1): each cycle runs as a two-phase
// compute/commit barrier over contiguous router shards. The parallel
// phases touch only router-local state (plus the read-only previous-phase
// wire lists and the thread-safe routing caches); everything with a
// serial-order contract — the VC allocator and its shared RNG, the wire
// list append order, the latency histogram's Welford accumulator, the
// violations log — is committed on one thread in ascending router order.
// threads=1 runs the same phases inline and is the reference; every thread
// count produces bit-identical statistics (docs/wormhole.md has the full
// determinism argument, tests/test_parallel_tick.cc pins it).
//
// Flits live in a per-network arena with a freelist; buffers and wire
// entries carry 32-bit slot indices, so the steady-state hot loop moves
// indices instead of ~48-byte flits and performs no per-flit allocation.
#pragma once

#include <algorithm>
#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/router.h"
#include "mesh/mesh.h"
#include "obs/obs.h"
#include "sim/wormhole/flit.h"
#include "sim/wormhole/routing.h"
#include "sim/wormhole/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mcc::sim::wh {

struct Topo2 {
  using Mesh = mesh::Mesh2D;
  using Coord = mesh::Coord2;
  using Dir = mesh::Dir2;
  using Faults = mesh::FaultSet2D;
  using Routing = RoutingFunction2D;
  static constexpr int kDirs = 4;
  static constexpr size_t kMaxCand = 2;
};

struct Topo3 {
  using Mesh = mesh::Mesh3D;
  using Coord = mesh::Coord3;
  using Dir = mesh::Dir3;
  using Faults = mesh::FaultSet3D;
  using Routing = RoutingFunction3D;
  static constexpr int kDirs = 6;
  static constexpr size_t kMaxCand = 3;
};

inline int comp(mesh::Coord2 c, int axis) { return axis == 0 ? c.x : c.y; }
inline int comp(mesh::Coord3 c, int axis) {
  return axis == 0 ? c.x : axis == 1 ? c.y : c.z;
}

// Coordinate rendering for the flit-lifecycle trace. (Built by append:
// GCC 12's -Werror=restrict misfires on chained const char* + string.)
inline std::string coord_json(mesh::Coord2 c) {
  std::string s = "[";
  s += std::to_string(c.x);
  s += ',';
  s += std::to_string(c.y);
  s += ']';
  return s;
}
inline std::string coord_json(mesh::Coord3 c) {
  std::string s = "[";
  s += std::to_string(c.x);
  s += ',';
  s += std::to_string(c.y);
  s += ',';
  s += std::to_string(c.z);
  s += ']';
  return s;
}

/// Counter snapshot taken at begin_window(): every per-window column a
/// driver tabulates (offered/accepted flits, wedged head cycles,
/// violations) diffs against it, so all columns cover the same interval.
struct WindowStart {
  uint64_t injected_flits = 0;
  uint64_t delivered_flits = 0;
  uint64_t wedged_head_cycles = 0;
  uint64_t violations = 0;
};

template <class Topo>
class Network {
 public:
  using Mesh = typename Topo::Mesh;
  using Coord = typename Topo::Coord;
  using Dir = typename Topo::Dir;
  using Flit = FlitT<Coord>;
  static constexpr int kDirs = Topo::kDirs;
  static constexpr int kPorts = kDirs + 1;  // + injection/ejection port

  Network(const Mesh& mesh, const typename Topo::Faults& faults,
          typename Topo::Routing& routing, const Config& cfg,
          core::RoutePolicy policy, uint64_t seed)
      : mesh_(mesh),
        routing_(routing),
        cfg_(cfg),
        policy_(policy),
        rng_(seed),
        vcs_(routing.vc_classes() * cfg.vcs_per_class),
        nodes_(mesh.node_count()),
        dead_links_(mesh.node_count(), 0) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      Node& nd = nodes_[i];
      nd.alive = !faults.is_faulty(mesh_.coord(i));
      if (!nd.alive) continue;
      nd.in.resize(static_cast<size_t>(kPorts) * vcs_);
      nd.out.resize(static_cast<size_t>(kPorts) * vcs_);
      for (int p = 0; p < kDirs; ++p)
        for (int v = 0; v < vcs_; ++v)
          nd.out[static_cast<size_t>(p) * vcs_ + v].credits =
              cfg_.buffer_depth;
      nd.in_rr.assign(kPorts, 0);
      nd.out_rr.assign(kPorts, 0);
      nd.eject.resize(vcs_);
    }
    unsigned lanes = cfg_.threads < 1 ? 1u : static_cast<unsigned>(cfg_.threads);
    if (static_cast<size_t>(lanes) > nodes_.size() && !nodes_.empty())
      lanes = static_cast<unsigned>(nodes_.size());
    shards_.resize(lanes);
    if (lanes > 1) pool_ = std::make_unique<util::ThreadPool>(lanes);
  }

  const Mesh& mesh() const { return mesh_; }
  uint64_t cycle() const { return cycle_; }
  const NetStats& stats() const { return stats_; }
  int total_vcs() const { return vcs_; }

  /// Packets injected but not yet fully ejected or dropped (source queues
  /// included).
  uint64_t in_flight() const {
    return stats_.injected_packets - stats_.delivered_packets -
           stats_.dropped_packets;
  }
  bool idle() const { return in_flight() == 0; }

  /// Starts a measurement window: clears the latency histogram and returns
  /// the counter snapshot drivers diff their window columns against.
  WindowStart begin_window() {
    stats_.latency.clear();
    return {stats_.injected_flits, stats_.delivered_flits,
            stats_.wedged_head_cycles,
            static_cast<uint64_t>(stats_.violations.size())};
  }

  /// Appends a packet to s's source queue. The caller is responsible for
  /// only injecting pairs the routing function can deliver.
  PacketId inject(Coord s, Coord d) {
    const PacketId id = ++next_packet_;
    Node& nd = nodes_[mesh_.index(s)];
    if (!nd.alive) {
      fail("inject into dead node");
      return id;
    }
    const int cls = routing_.vc_class(s, d);
    InVc& vc = nd.in[in_index(kDirs, cls * cfg_.vcs_per_class)];
    for (int i = 0; i < cfg_.packet_size; ++i) {
      Flit f;
      f.packet = id;
      f.seq = static_cast<uint32_t>(i);
      f.kind = cfg_.packet_size == 1 ? FlitKind::HeadTail
               : i == 0              ? FlitKind::Head
               : i == cfg_.packet_size - 1 ? FlitKind::Tail
                                           : FlitKind::Body;
      f.vc_class = static_cast<uint8_t>(cls);
      f.src = s;
      f.dst = d;
      f.birth = cycle_;
      vc.buf.push_back(arena_alloc(f));
    }
    ++stats_.injected_packets;
    stats_.injected_flits += static_cast<uint64_t>(cfg_.packet_size);
    if (auto* ft = obs::flit_trace())
      ft->event(cycle_, "inject", id,
                "\"src\":" + coord_json(s) + ",\"dst\":" + coord_json(d) +
                    ",\"flits\":" + std::to_string(cfg_.packet_size));
    return id;
  }

  /// One cycle: the two-phase compute/commit barrier. Parallel phases
  /// (wire delivery, route precompute, switch traversal) mutate only
  /// router-local state and per-shard staging buffers; the serial phases
  /// between them (VC allocation with the shared RNG, wire/stat commits in
  /// ascending router order) carry everything with an ordering contract.
  void step() {
    obs::TraceSink* const ts = obs::trace();
    for (ShardState& sh : shards_) sh.clear_cycle();
    {
      obs::ProfScope prof(obs::Phase::TickWires);
      obs::TraceScope span(ts, "tick.wires");
      run_sharded([this](unsigned w) { deliver_wires_shard(w); });
      commit_wire_failures();
      flit_wire_.clear();
      credit_wire_.clear();
    }
    {
      obs::ProfScope prof(obs::Phase::TickHeads);
      obs::TraceScope span(ts, "tick.heads");
      run_sharded([this](unsigned w) { discover_heads_shard(w); });
    }
    {
      obs::ProfScope prof(obs::Phase::TickAlloc);
      obs::TraceScope span(ts, "tick.alloc");
      allocate_ready();
    }
    {
      obs::ProfScope prof(obs::Phase::TickTraverse);
      obs::TraceScope span(ts, "tick.traverse");
      run_sharded([this](unsigned w) { traverse_shard(w); });
    }
    {
      obs::ProfScope prof(obs::Phase::TickCommit);
      obs::TraceScope span(ts, "tick.commit");
      commit_traverse();
    }
    ++cycle_;
  }

  /// Arena slots ever allocated — the in-flight-flit high-water mark.
  /// Alloc/release happen only in serial phases, so the value is invariant
  /// across thread counts (test_parallel_tick pins it).
  size_t arena_high_water() const { return arena_.size(); }

  /// Pool wait-behaviour totals (0 when threads=1 — no pool exists).
  uint64_t pool_spin_iters() const { return pool_ ? pool_->spin_iters() : 0; }
  uint64_t pool_parks() const { return pool_ ? pool_->parks() : 0; }

  // -------------------------------------------------------------------------
  // Mid-run fault/repair events. Callers must update the routing function's
  // model FIRST (new epoch), then apply the matching network event between
  // steps; every in-flight head re-asks the routing function at its next
  // decision (route caches are invalidated), so surviving worms re-route
  // under the new fault set while worms that lost their node, destination
  // or (see Config::drop_infeasible) every minimal completion drain away.

  /// Kills a node: its buffered flits vanish, every worm that occupies it,
  /// was allocated toward it, or is destined to it is flushed network-wide
  /// (counted as dropped), link state is reset to pristine and credits are
  /// recomputed from ground truth so check_credits() stays exact.
  void apply_fault(Coord c) {
    const size_t ci = mesh_.index(c);
    Node& nd = nodes_[ci];
    if (!nd.alive) return;  // no-op: no counter bump, no cache clear
    ++stats_.fault_events;
    invalidate_routes();

    // Doomed worms: any flit or VC hold at the dead node, any allocation
    // pointing at it from a neighbor, any wire flit touching it, and any
    // in-flight packet destined to it.
    std::unordered_set<PacketId> doomed;
    for (const InVc& vc : nd.in) {
      for (const uint32_t fi : vc.buf) doomed.insert(arena_[fi].packet);
      if (vc.cur_packet) doomed.insert(vc.cur_packet);
    }
    for (int q = 0; q < kDirs; ++q) {
      const Coord w = mesh::step(c, static_cast<Dir>(q));
      if (!mesh_.contains(w)) continue;
      Node& nb = nodes_[mesh_.index(w)];
      if (!nb.alive) continue;
      const int toward = static_cast<int>(opposite(static_cast<Dir>(q)));
      for (const InVc& vc : nb.in)
        if (vc.active && vc.out_port == toward && vc.cur_packet)
          doomed.insert(vc.cur_packet);
    }
    for (const FlitArrival& a : flit_wire_) {
      if (a.node == ci) doomed.insert(arena_[a.flit].packet);
      if (arena_[a.flit].dst == c) doomed.insert(arena_[a.flit].packet);
    }
    for (const Node& node : nodes_) {
      if (!node.alive) continue;
      for (const InVc& vc : node.in)
        for (const uint32_t fi : vc.buf)
          if (arena_[fi].dst == c) doomed.insert(arena_[fi].packet);
    }

    // Kill the node: its own buffered flits are gone for good.
    for (const InVc& vc : nd.in) {
      stats_.dropped_flits += static_cast<uint64_t>(vc.buf.size());
      for (const uint32_t fi : vc.buf) arena_release(fi);
    }
    nd.alive = false;
    nd.in.clear();
    nd.out.clear();
    nd.in_rr.clear();
    nd.out_rr.clear();
    nd.eject.clear();

    // Wires touching the dead node disappear with it.
    for (size_t i = 0; i < flit_wire_.size();) {
      if (flit_wire_[i].node == ci) {
        ++stats_.dropped_flits;
        arena_release(flit_wire_[i].flit);
        flit_wire_[i] = flit_wire_.back();
        flit_wire_.pop_back();
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < credit_wire_.size();) {
      const CreditReturn& cr = credit_wire_[i];
      bool dead_link = cr.node == ci;
      if (!dead_link) {
        const Coord owner = mesh_.coord(cr.node);
        if (cr.port < kDirs &&
            mesh::step(owner, static_cast<Dir>(cr.port)) == c)
          dead_link = true;
      }
      if (dead_link) {
        credit_wire_[i] = credit_wire_.back();
        credit_wire_.pop_back();
      } else {
        ++i;
      }
    }

    flush_packets(doomed);
    // recompute_credits() also returns every link into the dead node to
    // pristine (check_credits demands exactly that while it stays dead).
    recompute_credits();
  }

  /// Severs one bidirectional link while both endpoint routers keep
  /// running (E14). Reuses the apply_fault flush machinery: every worm
  /// with flits buffered at either receiving end of the link, allocated
  /// across it, or with a flit on its wires is flushed network-wide;
  /// in-flight credits on the link are dropped; credits then rebuild from
  /// ground truth, returning both endpoint counters to pristine exactly as
  /// check_credits() demands of a dead link. No-op on a wall or an
  /// already-severed link.
  void fail_link(Coord u, Dir d) {
    const Coord w = mesh::step(u, d);
    if (!mesh_.contains(w)) return;
    const size_t ui = mesh_.index(u);
    const int q = static_cast<int>(d);
    if (link_dead(ui, q)) return;
    const size_t wi = mesh_.index(w);
    const int pw = static_cast<int>(opposite(d));
    ++stats_.link_fault_events;
    invalidate_routes();
    dead_links_[ui] |= static_cast<uint8_t>(1u << q);
    dead_links_[wi] |= static_cast<uint8_t>(1u << pw);

    // Doomed worms: flits buffered at either receiving end arrived over
    // this link (their worm is cut mid-body), worms holding an allocation
    // across it would send into it, and wire flits addressed across it die
    // with it. Port number q at u faces w for both roles; pw at w faces u.
    std::unordered_set<PacketId> doomed;
    const auto collect = [&](size_t ni, int port) {
      const Node& nd = nodes_[ni];
      if (!nd.alive) return;
      for (int v = 0; v < vcs_; ++v) {
        const InVc& vc = nd.in[in_index(port, v)];
        for (const uint32_t fi : vc.buf) doomed.insert(arena_[fi].packet);
        if (vc.cur_packet) doomed.insert(vc.cur_packet);
      }
      for (const InVc& vc : nd.in)
        if (vc.active && vc.out_port == port && vc.cur_packet)
          doomed.insert(vc.cur_packet);
    };
    collect(ui, q);
    collect(wi, pw);
    for (const FlitArrival& a : flit_wire_)
      if ((a.node == wi && a.port == pw) || (a.node == ui && a.port == q))
        doomed.insert(arena_[a.flit].packet);

    // Credits in flight across the dead link would land on counters that
    // must stay pristine while it is down; they vanish with the link.
    for (size_t i = 0; i < credit_wire_.size();) {
      const CreditReturn& cr = credit_wire_[i];
      if ((cr.node == ui && cr.port == q) ||
          (cr.node == wi && cr.port == pw)) {
        credit_wire_[i] = credit_wire_.back();
        credit_wire_.pop_back();
      } else {
        ++i;
      }
    }

    flush_packets(doomed);
    recompute_credits();
  }

  /// Restores a severed link. Both directions are empty by construction
  /// (fail_link drained them and nothing can cross a dead link), so the
  /// ground-truth credit rebuild brings the counters back pristine.
  void repair_link(Coord u, Dir d) {
    const Coord w = mesh::step(u, d);
    if (!mesh_.contains(w)) return;
    const size_t ui = mesh_.index(u);
    const int q = static_cast<int>(d);
    if (!link_dead(ui, q)) return;
    ++stats_.link_repair_events;
    invalidate_routes();
    dead_links_[ui] &= static_cast<uint8_t>(~(1u << q));
    dead_links_[mesh_.index(w)] &=
        static_cast<uint8_t>(~(1u << static_cast<int>(opposite(d))));
    recompute_credits();
  }

  /// Symmetric link-failure query (either endpoint view of the channel).
  bool link_failed(Coord c, Dir d) const {
    return link_dead(mesh_.index(c), static_cast<int>(d));
  }

  /// Revives a node with pristine router state. Credits are then rebuilt
  /// from ground truth: a surviving worm (one whose tail had already left
  /// the node before it died) may still hold flits in a neighbor's input
  /// buffer on a link from this node, and those flits must stay debited
  /// against the fresh credit counters.
  void apply_repair(Coord c) {
    Node& nd = nodes_[mesh_.index(c)];
    if (nd.alive) return;  // no-op: no counter bump, no cache clear
    ++stats_.repair_events;
    invalidate_routes();
    nd.alive = true;
    nd.in.assign(static_cast<size_t>(kPorts) * vcs_, InVc{});
    nd.out.assign(static_cast<size_t>(kPorts) * vcs_, OutVc{});
    for (int p = 0; p < kDirs; ++p)
      for (int v = 0; v < vcs_; ++v)
        nd.out[static_cast<size_t>(p) * vcs_ + v].credits = cfg_.buffer_depth;
    nd.in_rr.assign(kPorts, 0);
    nd.out_rr.assign(kPorts, 0);
    nd.eject.assign(vcs_, Reassembly{});
    recompute_credits();
  }

  /// Clears every head's cached route so the next decision re-asks the
  /// routing function (called by both event paths; also useful after an
  /// external epoch bump).
  void invalidate_routes() {
    for (Node& node : nodes_) {
      if (!node.alive) continue;
      for (InVc& vc : node.in) {
        vc.routed_packet = 0;
        vc.cand_n = 0;
      }
    }
  }

  /// Credit-conservation invariant: for every link VC, credits held
  /// upstream plus flits buffered (or on the wire) downstream plus credits
  /// on the wire equal the buffer depth. Call between steps.
  bool check_credits(std::string* err = nullptr) const {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const Node& nd = nodes_[i];
      if (!nd.alive) continue;
      const Coord u = mesh_.coord(i);
      for (int q = 0; q < kDirs; ++q) {
        const Coord w = mesh::step(u, static_cast<Dir>(q));
        const bool live_link = mesh_.contains(w) &&
                               nodes_[mesh_.index(w)].alive &&
                               !link_dead(i, q);
        const int pw = live_link
                           ? static_cast<int>(opposite(static_cast<Dir>(q)))
                           : 0;
        for (int v = 0; v < vcs_; ++v) {
          const OutVc& ov = nd.out[static_cast<size_t>(q) * vcs_ + v];
          int total = ov.credits;
          if (!live_link) {
            if (total != cfg_.buffer_depth || ov.busy) {
              if (err)
                *err = "wall/dead link VC not pristine at node " +
                       std::to_string(i);
              return false;
            }
            continue;
          }
          const Node& wd = nodes_[mesh_.index(w)];
          total +=
              static_cast<int>(wd.in[in_index(pw, v)].buf.size());
          for (const FlitArrival& a : flit_wire_)
            if (a.node == mesh_.index(w) && a.port == pw && a.vc == v)
              ++total;
          for (const CreditReturn& c : credit_wire_)
            if (c.node == i && c.port == q && c.vc == v) ++total;
          if (total != cfg_.buffer_depth) {
            if (err)
              *err = "credit conservation broken: node " + std::to_string(i) +
                     " port " + std::to_string(q) + " vc " +
                     std::to_string(v) + " total " + std::to_string(total);
            return false;
          }
        }
      }
    }
    return true;
  }

 private:
  static constexpr uint32_t kNoFlit = 0xFFFFFFFFu;

  /// FIFO of arena slot indices backing one VC buffer: a vector plus a head
  /// cursor, compacted lazily, so steady-state push/pop allocate nothing.
  /// The source queue (injection port) is unbounded; link VCs never exceed
  /// buffer_depth.
  class IndexQueue {
   public:
    bool empty() const { return head_ == q_.size(); }
    size_t size() const { return q_.size() - head_; }
    uint32_t front() const { return q_[head_]; }
    uint32_t at(size_t pos) const { return q_[head_ + pos]; }
    void push_back(uint32_t v) { q_.push_back(v); }
    void pop_front() {
      if (++head_ == q_.size()) {
        q_.clear();
        head_ = 0;
      } else if (head_ >= 32 && head_ * 2 >= q_.size()) {
        q_.erase(q_.begin(), q_.begin() + static_cast<long>(head_));
        head_ = 0;
      }
    }
    void erase_at(size_t pos) {
      q_.erase(q_.begin() + static_cast<long>(head_ + pos));
    }
    auto begin() const { return q_.begin() + static_cast<long>(head_); }
    auto end() const { return q_.end(); }

   private:
    std::vector<uint32_t> q_;
    size_t head_ = 0;
  };

  struct InVc {
    IndexQueue buf;       // arena slot indices, FIFO
    bool active = false;  // holds an output VC
    int out_port = -1;
    int out_vc = -1;
    // Packet currently holding this VC (0 when idle) — lets fault events
    // find and flush every hop of a doomed worm.
    PacketId cur_packet = 0;
    // Route-computation cache: a head's candidate set depends only on
    // (node, src, dst), so a head blocked on VC availability must not
    // re-run the routing function (Model mode sweeps the remaining box)
    // every cycle. Valid while `routed_packet` matches the head.
    PacketId routed_packet = 0;
    std::array<Dir, Topo::kMaxCand> cand{};
    uint8_t cand_n = 0;
  };
  struct OutVc {
    bool busy = false;
    int credits = 0;
  };
  struct Reassembly {
    PacketId packet = 0;
    uint32_t next_seq = 0;
    bool open = false;
  };
  struct Node {
    bool alive = false;
    std::vector<InVc> in;    // [port][vc] flattened
    std::vector<OutVc> out;  // [port][vc] flattened
    std::vector<int> in_rr;
    std::vector<int> out_rr;
    std::vector<Reassembly> eject;  // per ejection VC
  };
  struct FlitArrival {
    size_t node;
    int port;
    int vc;
    uint32_t flit;  // arena slot
  };
  struct CreditReturn {
    size_t node;
    int port;
    int vc;
  };

  // Per-shard staging for one cycle of the two-phase tick. The parallel
  // phases write here; the serial commit phases drain the shards in index
  // order, which (shards being contiguous ascending router ranges) replays
  // exactly the serial engine's ascending-router order.
  struct ReadyHead {
    uint32_t node;
    uint8_t port;
    uint8_t vc;
  };
  struct WireFail {
    size_t order;            // position in the cycle's wire scan
    uint32_t freed = kNoFlit;  // arena slot dropped with the failure
    const char* msg;
  };
  struct EjectEvent {
    uint32_t flit = 0;
    bool delivered = false;
    std::vector<const char*> fails;
  };
  struct ShardState {
    std::vector<WireFail> wire_fails;
    std::vector<ReadyHead> ready;
    std::vector<PacketId> doomed;
    std::vector<FlitArrival> flits;
    std::vector<CreditReturn> credits;
    std::vector<EjectEvent> ejects;
    uint64_t route_computes = 0;
    void clear_cycle() {
      wire_fails.clear();
      ready.clear();
      doomed.clear();
      flits.clear();
      credits.clear();
      ejects.clear();
      route_computes = 0;
    }
  };

  size_t in_index(int port, int vc) const {
    return static_cast<size_t>(port) * vcs_ + vc;
  }

  bool link_dead(size_t i, int q) const {
    return (dead_links_[i] >> q) & 1;
  }

  uint32_t arena_alloc(const Flit& f) {
    if (free_slots_.empty()) {
      arena_.push_back(f);
      return static_cast<uint32_t>(arena_.size() - 1);
    }
    const uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    arena_[idx] = f;
    return idx;
  }
  void arena_release(uint32_t idx) { free_slots_.push_back(idx); }

  void fail(std::string msg) {
    if (stats_.violations.size() < 32)
      stats_.violations.push_back("cycle " + std::to_string(cycle_) + ": " +
                                  std::move(msg));
  }

  std::pair<size_t, size_t> shard_range(unsigned w) const {
    const size_t n = nodes_.size();
    const size_t shards = shards_.size();
    const size_t chunk = (n + shards - 1) / shards;
    const size_t lo = std::min(n, w * chunk);
    return {lo, std::min(n, lo + chunk)};
  }

  template <class Fn>
  void run_sharded(Fn&& fn) {
    if (pool_) {
      pool_->run(fn);
    } else {
      for (unsigned w = 0; w < shards_.size(); ++w) fn(w);
    }
  }

  /// Phase A (parallel): each shard applies the wire entries addressed to
  /// its routers — writes are router-local. Protocol violations (arrival
  /// at a dead node, buffer overflow) are staged with their wire-scan
  /// position so the serial commit reports them in the exact serial order.
  void deliver_wires_shard(unsigned w) {
    ShardState& sh = shards_[w];
    const auto [lo, hi] = shard_range(w);
    for (size_t wi = 0; wi < flit_wire_.size(); ++wi) {
      const FlitArrival& a = flit_wire_[wi];
      if (a.node < lo || a.node >= hi) continue;
      Node& nd = nodes_[a.node];
      if (!nd.alive) {
        sh.wire_fails.push_back({wi, a.flit, "flit arrived at dead node"});
        continue;
      }
      InVc& vc = nd.in[in_index(a.port, a.vc)];
      if (static_cast<int>(vc.buf.size()) >= cfg_.buffer_depth) {
        sh.wire_fails.push_back(
            {wi, a.flit, "input buffer overflow (credit protocol broken)"});
        continue;
      }
      vc.buf.push_back(a.flit);
    }
    const size_t base = flit_wire_.size();
    for (size_t ci = 0; ci < credit_wire_.size(); ++ci) {
      const CreditReturn& c = credit_wire_[ci];
      if (c.node < lo || c.node >= hi) continue;
      // A surviving worm can still drain flits it buffered beyond a node
      // that has since died; the credits it returns toward the dead node
      // are dropped with it (repair rebuilds counters from ground truth).
      if (!nodes_[c.node].alive) continue;
      OutVc& ov = nodes_[c.node].out[in_index(c.port, c.vc)];
      if (ov.credits >= cfg_.buffer_depth) {
        sh.wire_fails.push_back({base + ci, kNoFlit,
                                 "credit counter overflow"});
        continue;
      }
      ++ov.credits;
    }
  }

  void commit_wire_failures() {
    // Violations only: the common case is every shard list empty.
    bool any = false;
    for (const ShardState& sh : shards_)
      if (!sh.wire_fails.empty()) any = true;
    if (!any) return;
    std::vector<WireFail> all;
    for (const ShardState& sh : shards_)
      all.insert(all.end(), sh.wire_fails.begin(), sh.wire_fails.end());
    std::sort(all.begin(), all.end(),
              [](const WireFail& a, const WireFail& b) {
                return a.order < b.order;
              });
    for (const WireFail& wf : all) {
      fail(wf.msg);
      if (wf.freed != kNoFlit) arena_release(wf.freed);
    }
  }

  /// Phase B (parallel): find every allocatable head and warm its route
  /// cache. Eligibility (idle VC, head flit at the front) depends only on
  /// pre-allocation state — a grant mutates nothing but the granted VC
  /// itself — so this discovers exactly the set the serial allocator
  /// would visit, and candidates() depends only on (node, src, dst), so
  /// the cached sets are exactly what the serial allocator would compute.
  void discover_heads_shard(unsigned w) {
    // Kernel scopes fired by candidates() (safe-reach sweeps, cache-miss
    // field builds) nest under the heads phase on pool workers too.
    obs::PhaseContext phase_ctx(obs::Phase::TickHeads);
    ShardState& sh = shards_[w];
    const auto [lo, hi] = shard_range(w);
    for (size_t i = lo; i < hi; ++i) {
      Node& nd = nodes_[i];
      if (!nd.alive) continue;
      const Coord u = mesh_.coord(i);
      for (int p = 0; p < kPorts; ++p) {
        for (int v = 0; v < vcs_; ++v) {
          InVc& vc = nd.in[in_index(p, v)];
          if (vc.active || vc.buf.empty()) continue;
          const Flit& head = arena_[vc.buf.front()];
          if (head.kind != FlitKind::Head && head.kind != FlitKind::HeadTail)
            continue;
          sh.ready.push_back({static_cast<uint32_t>(i),
                              static_cast<uint8_t>(p),
                              static_cast<uint8_t>(v)});
          if (head.dst == u) continue;  // ejection needs no route
          if (vc.routed_packet != head.packet) {
            const uint8_t pre = static_cast<uint8_t>(
                routing_.candidates(u, head.src, head.dst, vc.cand));
            // Dead links never carry traffic: their directions leave the
            // candidate set here. Routing built over the projected fault
            // set avoids them already (every dead link has a sacrificed
            // endpoint); this is the physical guarantee for routing
            // functions that know nothing of link faults. Link state only
            // changes between steps, so the parallel read is safe.
            uint8_t n = 0;
            for (uint8_t k = 0; k < pre; ++k)
              if (!link_dead(i, static_cast<int>(vc.cand[k])))
                vc.cand[n++] = vc.cand[k];
            vc.cand_n = n;
            ++sh.route_computes;
            vc.routed_packet = head.packet;
            if (vc.cand_n == 0 && cfg_.drop_infeasible &&
                (pre != 0 ||
                 !routing_.completable(u, head.src, head.dst))) {
              // A fault event severed every minimal completion (judged in
              // the worm's injection octant — the frame its remaining
              // moves are constrained to): drain the worm instead of
              // wedging its VCs forever.
              sh.doomed.push_back(head.packet);
            }
          }
        }
      }
    }
  }

  /// Serial phase: VC allocation over the discovered heads, in ascending
  /// (router, port, vc) order — the shard lists, drained in shard order,
  /// are exactly that order. All shared-RNG draws and grant decisions
  /// happen here, single-threaded, which is what makes the parallel tick
  /// bit-identical to the serial reference. Worms found undeliverable are
  /// flushed in one batch after the loop: a single event can sever many
  /// worms, and flush + credit recompute are network-wide.
  void allocate_ready() {
    for (const ShardState& sh : shards_)
      stats_.route_computes += sh.route_computes;
    std::unordered_set<PacketId> doomed;
    for (const ShardState& sh : shards_)
      doomed.insert(sh.doomed.begin(), sh.doomed.end());
    for (const ShardState& sh : shards_) {
      for (const ReadyHead& rh : sh.ready) {
        Node& nd = nodes_[rh.node];
        const Coord u = mesh_.coord(rh.node);
        InVc& vc = nd.in[in_index(rh.port, rh.vc)];
        const Flit& head = arena_[vc.buf.front()];
        if (doomed.count(head.packet)) continue;

        const int base = head.vc_class * cfg_.vcs_per_class;
        if (head.dst == u) {
          // Ejection: grab a free ejection VC in the packet's class.
          for (int ov = base; ov < base + cfg_.vcs_per_class; ++ov) {
            if (!nd.out[in_index(kDirs, ov)].busy) {
              grant(nd, vc, kDirs, ov, head.packet);
              break;
            }
          }
          continue;
        }

        const size_t n = vc.cand_n;
        if (n == 0) {
          ++stats_.wedged_head_cycles;
          continue;
        }
        const int last_axis =
            rh.port < kDirs ? axis_of(static_cast<Dir>(rh.port)) : -1;
        const size_t preferred = core::select_candidate(
            vc.cand, n, policy_, last_axis, rng_, [&](Dir dir) {
              const int axis = axis_of(dir);
              return std::abs(comp(head.dst, axis) - comp(u, axis));
            });
        // Try the policy's choice first, the rest in order: adaptivity by
        // output-VC availability.
        for (size_t k = 0; k < n && !vc.active; ++k) {
          const Dir dir = vc.cand[(preferred + k) % n];
          const int q = static_cast<int>(dir);
          for (int ov = base; ov < base + cfg_.vcs_per_class; ++ov) {
            if (!nd.out[in_index(q, ov)].busy) {
              grant(nd, vc, q, ov, head.packet);
              break;
            }
          }
        }
      }
    }
    if (!doomed.empty()) {
      flush_packets(doomed);
      recompute_credits();
    }
  }

  void grant(Node& nd, InVc& vc, int out_port, int out_vc, PacketId packet) {
    vc.active = true;
    vc.out_port = out_port;
    vc.out_vc = out_vc;
    vc.cur_packet = packet;
    nd.out[in_index(out_port, out_vc)].busy = true;
    // Serial phase only (allocate_ready), so the trace order is
    // deterministic. Ejection grants are not routing decisions.
    if (out_port < kDirs)
      if (auto* ft = obs::flit_trace())
        ft->event(cycle_, "route", packet,
                  "\"port\":" + std::to_string(out_port) +
                      ",\"vc\":" + std::to_string(out_vc));
  }

  /// Removes every trace of the given packets from the network: buffered
  /// and wire flits, VC holds, reassembly state and route caches. Callers
  /// must recompute_credits() afterwards.
  void flush_packets(const std::unordered_set<PacketId>& doomed) {
    if (doomed.empty()) return;
    stats_.dropped_packets += static_cast<uint64_t>(doomed.size());
    if (auto* ft = obs::flit_trace()) {
      // The set's iteration order is not deterministic; sort for the trace.
      std::vector<PacketId> ids(doomed.begin(), doomed.end());
      std::sort(ids.begin(), ids.end());
      for (const PacketId id : ids) ft->event(cycle_, "drop", id);
    }
    for (Node& node : nodes_) {
      if (!node.alive) continue;
      for (InVc& vc : node.in) {
        for (size_t pos = 0; pos < vc.buf.size();) {
          const uint32_t fi = vc.buf.at(pos);
          if (doomed.count(arena_[fi].packet)) {
            ++stats_.dropped_flits;
            arena_release(fi);
            vc.buf.erase_at(pos);
          } else {
            ++pos;
          }
        }
        if (vc.cur_packet && doomed.count(vc.cur_packet)) {
          vc.active = false;
          vc.out_port = vc.out_vc = -1;
          vc.cur_packet = 0;
        }
        if (vc.routed_packet && doomed.count(vc.routed_packet)) {
          vc.routed_packet = 0;
          vc.cand_n = 0;
        }
      }
      for (Reassembly& r : node.eject)
        if (r.open && doomed.count(r.packet)) {
          // Flits this packet already ejected move from delivered to
          // dropped, keeping flit conservation exact:
          // injected == delivered + dropped + buffered + on-wire.
          stats_.delivered_flits -= r.next_seq;
          stats_.dropped_flits += r.next_seq;
          r.open = false;
          r.packet = 0;
          r.next_seq = 0;
        }
    }
    for (size_t i = 0; i < flit_wire_.size();) {
      if (doomed.count(arena_[flit_wire_[i].flit].packet)) {
        ++stats_.dropped_flits;
        arena_release(flit_wire_[i].flit);
        flit_wire_[i] = flit_wire_.back();
        flit_wire_.pop_back();
      } else {
        ++i;
      }
    }
  }

  /// Re-derives busy flags and credit counters from ground truth (buffer
  /// occupancy plus both wire directions) — events tear worms out of the
  /// middle of the credit loop, so the counters are rebuilt rather than
  /// patched. check_credits() holds again immediately afterwards.
  void recompute_credits() {
    for (Node& node : nodes_) {
      if (!node.alive) continue;
      for (OutVc& ov : node.out) ov.busy = false;
      for (const InVc& vc : node.in)
        if (vc.active) node.out[in_index(vc.out_port, vc.out_vc)].busy = true;
    }
    // One pass over the wires, tallied per downstream (node, port, vc) so
    // the per-link loop below stays O(1) per VC.
    std::unordered_map<size_t, int> wire_inflight;
    const auto slot = [this](size_t node, int port, int vc) {
      return (node * kPorts + static_cast<size_t>(port)) * vcs_ + vc;
    };
    for (const FlitArrival& a : flit_wire_) ++wire_inflight[slot(a.node, a.port, a.vc)];
    for (const CreditReturn& cr : credit_wire_) {
      // A credit in flight toward (cr.node, cr.port) belongs to the
      // downstream side of that link.
      const Coord owner = mesh_.coord(cr.node);
      const Coord w = mesh::step(owner, static_cast<Dir>(cr.port));
      const int pw = static_cast<int>(opposite(static_cast<Dir>(cr.port)));
      ++wire_inflight[slot(mesh_.index(w), pw, cr.vc)];
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (!node.alive) continue;
      const Coord u = mesh_.coord(i);
      for (int q = 0; q < kDirs; ++q) {
        const Coord w = mesh::step(u, static_cast<Dir>(q));
        const bool live_link = mesh_.contains(w) &&
                               nodes_[mesh_.index(w)].alive &&
                               !link_dead(i, q);
        for (int v = 0; v < vcs_; ++v) {
          OutVc& ov = node.out[in_index(q, v)];
          if (!live_link) {
            ov.busy = false;
            ov.credits = cfg_.buffer_depth;
            continue;
          }
          const int pw = static_cast<int>(opposite(static_cast<Dir>(q)));
          const size_t wi = mesh_.index(w);
          int inflight =
              static_cast<int>(nodes_[wi].in[in_index(pw, v)].buf.size());
          const auto it = wire_inflight.find(slot(wi, pw, v));
          if (it != wire_inflight.end()) inflight += it->second;
          ov.credits = cfg_.buffer_depth - inflight;
        }
      }
    }
  }

  /// Phase C (parallel): switch allocation and traversal. Both stages read
  /// and mutate only router-local state; outgoing wire entries and
  /// ejection results are staged per shard for the serial commit.
  void traverse_shard(unsigned w) {
    ShardState& sh = shards_[w];
    const auto [lo, hi] = shard_range(w);
    std::array<int, kPorts> winner;
    for (size_t i = lo; i < hi; ++i) {
      Node& nd = nodes_[i];
      if (!nd.alive) continue;
      const Coord u = mesh_.coord(i);

      // Stage 1: each input port nominates one ready VC (round-robin).
      for (int p = 0; p < kPorts; ++p) {
        winner[p] = -1;
        for (int k = 0; k < vcs_; ++k) {
          const int v = (nd.in_rr[p] + k) % vcs_;
          const InVc& vc = nd.in[in_index(p, v)];
          if (!vc.active || vc.buf.empty()) continue;
          if (vc.out_port < kDirs &&
              nd.out[in_index(vc.out_port, vc.out_vc)].credits <= 0)
            continue;
          winner[p] = v;
          break;
        }
      }

      // Stage 2: each output port admits one input port (round-robin),
      // then the winning flit traverses.
      for (int q = 0; q < kPorts; ++q) {
        for (int k = 0; k < kPorts; ++k) {
          const int p = (nd.out_rr[q] + k) % kPorts;
          if (winner[p] < 0) continue;
          InVc& vc = nd.in[in_index(p, winner[p])];
          if (vc.out_port != q) continue;
          send_flit(sh, nd, u, p, winner[p], vc);
          nd.in_rr[p] = (winner[p] + 1) % vcs_;
          nd.out_rr[q] = (p + 1) % kPorts;
          winner[p] = -1;
          break;
        }
      }
    }
  }

  void send_flit(ShardState& sh, Node& nd, Coord u, int in_port, int in_vc,
                 InVc& vc) {
    const uint32_t fi = vc.buf.front();
    vc.buf.pop_front();
    const Flit& f = arena_[fi];
    const int q = vc.out_port;
    const int ov = vc.out_vc;
    const bool tail =
        f.kind == FlitKind::Tail || f.kind == FlitKind::HeadTail;

    if (q == kDirs) {
      sh.ejects.push_back(eject_local(nd, ov, fi, u));
    } else {
      OutVc& out = nd.out[in_index(q, ov)];
      --out.credits;
      const Coord w = mesh::step(u, static_cast<Dir>(q));
      sh.flits.push_back(
          {mesh_.index(w), static_cast<int>(opposite(static_cast<Dir>(q))),
           ov, fi});
    }

    // Return a credit upstream (link inputs only; the source queue is not
    // credit-controlled).
    if (in_port < kDirs) {
      const Coord up = mesh::step(u, static_cast<Dir>(in_port));
      sh.credits.push_back(
          {mesh_.index(up),
           static_cast<int>(opposite(static_cast<Dir>(in_port))), in_vc});
    }
    if (tail) {
      nd.out[in_index(q, ov)].busy = false;
      vc.active = false;
      vc.out_port = vc.out_vc = -1;
      vc.cur_packet = 0;
    }
  }

  /// Reassembly bookkeeping runs in the parallel phase (router-local); the
  /// stats commit — delivered counters and the order-sensitive Welford
  /// latency accumulator — is the returned event, applied serially in
  /// ascending router order (at most one ejection per router per cycle).
  EjectEvent eject_local(Node& nd, int eject_vc, uint32_t fi, Coord here) {
    EjectEvent ev;
    ev.flit = fi;
    const Flit& f = arena_[fi];
    Reassembly& r = nd.eject[eject_vc];
    if (!(f.dst == here)) ev.fails.push_back("flit ejected at wrong node");
    switch (f.kind) {
      case FlitKind::HeadTail:
        if (r.open)
          ev.fails.push_back("single-flit packet interleaved with open packet");
        ev.delivered = true;
        break;
      case FlitKind::Head:
        if (r.open)
          ev.fails.push_back("head flit while a packet is open on this VC");
        r.packet = f.packet;
        r.next_seq = 1;
        r.open = true;
        if (f.seq != 0) ev.fails.push_back("head flit with non-zero sequence");
        break;
      case FlitKind::Body:
      case FlitKind::Tail:
        if (!r.open || r.packet != f.packet)
          ev.fails.push_back("flit of a foreign packet inside a wormhole");
        else if (f.seq != r.next_seq)
          ev.fails.push_back("out-of-order flit within a packet");
        else
          ++r.next_seq;
        if (f.kind == FlitKind::Tail) {
          if (r.open && static_cast<int>(r.next_seq) != cfg_.packet_size)
            ev.fails.push_back("tail with wrong packet length");
          r.open = false;
          ev.delivered = true;
        }
        break;
    }
    return ev;
  }

  /// Serial commit of the traverse phase: wire appends and ejection stats
  /// drain shard by shard. Shards are contiguous ascending router ranges
  /// and each shard stages in ascending router order, so the global append
  /// and histogram-insertion order is exactly the serial engine's.
  void commit_traverse() {
    for (ShardState& sh : shards_) {
      flit_wire_.insert(flit_wire_.end(), sh.flits.begin(), sh.flits.end());
      credit_wire_.insert(credit_wire_.end(), sh.credits.begin(),
                          sh.credits.end());
      for (const EjectEvent& ev : sh.ejects) {
        for (const char* m : ev.fails) fail(m);
        ++stats_.delivered_flits;
        if (ev.delivered) {
          ++stats_.delivered_packets;
          stats_.last_delivery_cycle = cycle_;
          stats_.latency.add(cycle_ - arena_[ev.flit].birth);
          if (auto* ft = obs::flit_trace())
            ft->event(cycle_, "deliver", arena_[ev.flit].packet,
                      "\"latency\":" +
                          std::to_string(cycle_ - arena_[ev.flit].birth));
        }
        arena_release(ev.flit);
      }
    }
  }

  const Mesh& mesh_;
  typename Topo::Routing& routing_;
  Config cfg_;
  core::RoutePolicy policy_;
  util::Rng rng_;
  int vcs_;
  uint64_t cycle_ = 0;
  PacketId next_packet_ = 0;
  std::vector<Node> nodes_;
  // Severed-link incident-direction bitmask, both endpoints (mirrors
  // fault::FaultUniverse's symmetric link storage). Node death does not
  // touch these bits: a link fault outlives the repair of its endpoints.
  std::vector<uint8_t> dead_links_;
  std::vector<FlitArrival> flit_wire_;
  std::vector<CreditReturn> credit_wire_;
  // Flit arena: slots_ owns every in-flight flit, free_slots_ recycles.
  std::vector<Flit> arena_;
  std::vector<uint32_t> free_slots_;
  std::vector<ShardState> shards_;
  std::unique_ptr<util::ThreadPool> pool_;
  NetStats stats_;
};

using Network2D = Network<Topo2>;
using Network3D = Network<Topo3>;

}  // namespace mcc::sim::wh
