#include "sim/wormhole/routing.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "obs/profiler.h"

namespace mcc::sim::wh {

using core::LabelsOnlyGuidance2D;
using core::LabelsOnlyGuidance3D;
using core::NodeState;
using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;
using mesh::Octant2;
using mesh::Octant3;

const char* to_string(GuidanceMode m) {
  switch (m) {
    case GuidanceMode::Oracle: return "oracle";
    case GuidanceMode::Model: return "model";
    case GuidanceMode::LabelsOnly: return "labels-only";
  }
  return "?";
}

namespace {

// True when the MCC_NOCACHE environment escape hatch disables the
// GuidanceCache behind Model mode (restoring the per-hop exact sweep).
bool nocache_env() {
  const char* v = std::getenv("MCC_NOCACHE");
  return v != nullptr && *v != '\0' && *v != '0';
}

// Model mode (MCC_NOCACHE path): the MCC model's safe-only per-hop
// decision, computed exactly
// by a monotone sweep of the remaining box. The message-passing walkers and
// floods (DetectGuidance2D / FloodGuidance3D) approximate exactly this
// decision and are evaluated at the core-router layer; a wormhole head that
// wedges blocks its virtual channel forever, so the network must use the
// exact form.
struct SafeReachGuidance2D final : core::Guidance2D {
  SafeReachGuidance2D(const core::LabelField2D& labels, Coord2 d)
      : l(labels), dst(d) {}
  bool exclude(Coord2, Dir2, Coord2 next) const override {
    if (next == dst) return l.state(next) == NodeState::Faulty;
    if (l.unsafe(next)) return true;
    return !core::safe_reach_box2(l, next, dst);
  }
  const core::LabelField2D& l;
  Coord2 dst;
};

struct SafeReachGuidance3D final : core::Guidance3D {
  SafeReachGuidance3D(const core::LabelField3D& labels, Coord3 d)
      : l(labels), dst(d) {}
  bool exclude(Coord3, Dir3, Coord3 next) const override {
    if (next == dst) return l.state(next) == NodeState::Faulty;
    if (l.unsafe(next)) return true;
    return !core::safe_reach_box3(l, next, dst);
  }
  const core::LabelField3D& l;
  Coord3 dst;
};

}  // namespace

// ---------------------------------------------------------------------------
// MccRouting2D

struct MccRouting2D::QuadCtx {
  mesh::FaultSet2D faults;
  core::LabelField2D labels;
  // Lazily filled per destination; shared-mutex double-check so the
  // router-parallel tick's route-precompute phase can query concurrently.
  // unordered_map never invalidates references on insert, so a reference
  // handed out under the shared lock stays valid for the context's life.
  std::shared_mutex fields_mu;
  std::unordered_map<size_t, core::ReachField2D> fields;

  QuadCtx(const mesh::Mesh2D& m, const mesh::FaultSet2D& f, Octant2 o)
      : faults(mesh::materialize(f, m, o)), labels(m, faults) {}

  const core::ReachField2D& field(const mesh::Mesh2D& m, Coord2 dc) {
    const size_t key = m.index(dc);
    {
      std::shared_lock lock(fields_mu);
      const auto it = fields.find(key);
      if (it != fields.end()) return it->second;
    }
    std::unique_lock lock(fields_mu);
    const auto [it, inserted] =
        fields.try_emplace(key, m, labels, dc, core::NodeFilter::SafeOnly);
    return it->second;
  }
};

MccRouting2D::MccRouting2D(const mesh::Mesh2D& mesh,
                           const mesh::FaultSet2D& faults, GuidanceMode mode,
                           std::optional<bool> use_cache)
    : mesh_(mesh),
      mode_(mode),
      use_cache_(use_cache.value_or(!nocache_env())),
      // The static key space is exactly (quadrant, destination): sizing to
      // it means Model-mode sweeps never thrash the LRU.
      cache_(4 * mesh.node_count()) {
  for (const bool fx : {false, true})
    for (const bool fy : {false, true}) {
      const Octant2 o{fx, fy};
      quads_[o.id()] = std::make_unique<QuadCtx>(mesh, faults, o);
    }
}

MccRouting2D::~MccRouting2D() = default;

MccRouting2D::QuadCtx& MccRouting2D::quad(Octant2 o) {
  return *quads_[o.id()];
}

int MccRouting2D::vc_class(Coord2 s, Coord2 d) const {
  const int id = Octant2::from_pair(s, d).id();
  return std::min(id, 3 - id);
}

size_t MccRouting2D::candidates(Coord2 u, Coord2 s, Coord2 d,
                                std::array<Dir2, 2>& out) {
  const Octant2 o = Octant2::from_pair(s, d);
  QuadCtx& q = quad(o);
  const Coord2 uc = o.transform(u, mesh_);
  const Coord2 dc = o.transform(d, mesh_);

  size_t n = 0;
  if (mode_ == GuidanceMode::Oracle) {
    const FieldGuidance2D g(q.field(mesh_, dc));
    n = core::admissible2d(uc, dc, g, out);
  } else if (mode_ == GuidanceMode::Model) {
    if (use_cache_) {
      // One cached safe-only field per destination replaces the O(box)
      // per-hop sweep; decisions are bit-identical to SafeReachGuidance2D.
      const auto field = cache_.get_or_build(0, o.id(), mesh_.index(dc), [&] {
        obs::ProfScope prof(obs::Phase::KernelCacheBuild);
        return core::ReachField2D(mesh_, q.labels, dc,
                                  core::NodeFilter::SafeOnly);
      });
      const FieldGuidance2D g(*field);
      n = core::admissible2d(uc, dc, g, out);
    } else {
      const SafeReachGuidance2D g(q.labels, dc);
      n = core::admissible2d(uc, dc, g, out);
    }
  } else {
    const LabelsOnlyGuidance2D g(q.labels, dc);
    n = core::admissible2d(uc, dc, g, out);
  }
  for (size_t i = 0; i < n; ++i) out[i] = physical(out[i], o);
  return n;
}

bool MccRouting2D::feasible_in(Octant2 o, Coord2 u, Coord2 d) {
  QuadCtx& q = quad(o);
  const Coord2 uc = o.transform(u, mesh_);
  const Coord2 dc = o.transform(d, mesh_);
  if (q.labels.state(uc) == NodeState::Faulty ||
      q.labels.state(dc) == NodeState::Faulty)
    return false;
  if (mode_ == GuidanceMode::Oracle) return q.field(mesh_, dc).feasible(uc);
  if (mode_ == GuidanceMode::Model && use_cache_) {
    const auto field = cache_.get_or_build(0, o.id(), mesh_.index(dc), [&] {
      obs::ProfScope prof(obs::Phase::KernelCacheBuild);
      return core::ReachField2D(mesh_, q.labels, dc,
                                core::NodeFilter::SafeOnly);
    });
    return field->feasible(uc);
  }
  return core::safe_reach_box2(q.labels, uc, dc);
}

bool MccRouting2D::feasible(Coord2 s, Coord2 d) {
  if (s == d) return false;
  return feasible_in(Octant2::from_pair(s, d), s, d);
}

bool MccRouting2D::completable(Coord2 u, Coord2 s, Coord2 d) {
  if (u == d) return true;
  return feasible_in(Octant2::from_pair(s, d), u, d);
}

// ---------------------------------------------------------------------------
// MccRouting3D

struct MccRouting3D::OctCtx {
  mesh::FaultSet3D faults;
  core::LabelField3D labels;
  // Same double-checked locking as QuadCtx::field (see the 2-D comment).
  std::shared_mutex fields_mu;
  std::unordered_map<size_t, core::ReachField3D> fields;

  OctCtx(const mesh::Mesh3D& m, const mesh::FaultSet3D& f, Octant3 o)
      : faults(mesh::materialize(f, m, o)), labels(m, faults) {}

  const core::ReachField3D& field(const mesh::Mesh3D& m, Coord3 dc) {
    const size_t key = m.index(dc);
    {
      std::shared_lock lock(fields_mu);
      const auto it = fields.find(key);
      if (it != fields.end()) return it->second;
    }
    std::unique_lock lock(fields_mu);
    const auto [it, inserted] =
        fields.try_emplace(key, m, labels, dc, core::NodeFilter::SafeOnly);
    return it->second;
  }
};

MccRouting3D::MccRouting3D(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults, GuidanceMode mode,
                           std::optional<bool> use_cache)
    : mesh_(mesh),
      mode_(mode),
      use_cache_(use_cache.value_or(!nocache_env())),
      cache_(8 * mesh.node_count()) {
  for (const bool fx : {false, true})
    for (const bool fy : {false, true})
      for (const bool fz : {false, true}) {
        const Octant3 o{fx, fy, fz};
        octs_[o.id()] = std::make_unique<OctCtx>(mesh, faults, o);
      }
}

MccRouting3D::~MccRouting3D() = default;

MccRouting3D::OctCtx& MccRouting3D::oct(Octant3 o) { return *octs_[o.id()]; }

int MccRouting3D::vc_class(Coord3 s, Coord3 d) const {
  const int id = Octant3::from_pair(s, d).id();
  return std::min(id, 7 - id);
}

size_t MccRouting3D::candidates(Coord3 u, Coord3 s, Coord3 d,
                                std::array<Dir3, 3>& out) {
  const Octant3 o = Octant3::from_pair(s, d);
  OctCtx& q = oct(o);
  const Coord3 uc = o.transform(u, mesh_);
  const Coord3 dc = o.transform(d, mesh_);

  size_t n = 0;
  if (mode_ == GuidanceMode::Oracle) {
    // The reachability field covers every degeneracy uniformly.
    const FieldGuidance3D g(q.field(mesh_, dc));
    n = core::admissible3d(uc, dc, g, out);
  } else if (mode_ == GuidanceMode::Model) {
    if (use_cache_) {
      const auto field = cache_.get_or_build(0, o.id(), mesh_.index(dc), [&] {
        obs::ProfScope prof(obs::Phase::KernelCacheBuild);
        return core::ReachField3D(mesh_, q.labels, dc,
                                  core::NodeFilter::SafeOnly);
      });
      const FieldGuidance3D g(*field);
      n = core::admissible3d(uc, dc, g, out);
    } else {
      const SafeReachGuidance3D g(q.labels, dc);
      n = core::admissible3d(uc, dc, g, out);
    }
  } else {
    const LabelsOnlyGuidance3D g(q.labels, dc);
    n = core::admissible3d(uc, dc, g, out);
  }
  for (size_t i = 0; i < n; ++i) out[i] = physical(out[i], o);
  return n;
}

bool MccRouting3D::feasible_in(Octant3 o, Coord3 u, Coord3 d) {
  OctCtx& q = oct(o);
  const Coord3 uc = o.transform(u, mesh_);
  const Coord3 dc = o.transform(d, mesh_);
  if (q.labels.state(uc) == NodeState::Faulty ||
      q.labels.state(dc) == NodeState::Faulty)
    return false;
  if (mode_ == GuidanceMode::Oracle) return q.field(mesh_, dc).feasible(uc);
  if (mode_ == GuidanceMode::Model && use_cache_) {
    const auto field = cache_.get_or_build(0, o.id(), mesh_.index(dc), [&] {
      obs::ProfScope prof(obs::Phase::KernelCacheBuild);
      return core::ReachField3D(mesh_, q.labels, dc,
                                core::NodeFilter::SafeOnly);
    });
    return field->feasible(uc);
  }
  return core::safe_reach_box3(q.labels, uc, dc);
}

bool MccRouting3D::feasible(Coord3 s, Coord3 d) {
  if (s == d) return false;
  return feasible_in(Octant3::from_pair(s, d), s, d);
}

bool MccRouting3D::completable(Coord3 u, Coord3 s, Coord3 d) {
  if (u == d) return true;
  return feasible_in(Octant3::from_pair(s, d), u, d);
}

// ---------------------------------------------------------------------------
// DorRouting2D / DorRouting3D

size_t DorRouting2D::candidates(Coord2 u, Coord2, Coord2 d,
                                std::array<Dir2, 2>& out) {
  if (u.x != d.x)
    out[0] = u.x < d.x ? Dir2::PosX : Dir2::NegX;
  else if (u.y != d.y)
    out[0] = u.y < d.y ? Dir2::PosY : Dir2::NegY;
  else
    return 0;
  return 1;
}

size_t DorRouting3D::candidates(Coord3 u, Coord3, Coord3 d,
                                std::array<Dir3, 3>& out) {
  if (u.x != d.x)
    out[0] = u.x < d.x ? Dir3::PosX : Dir3::NegX;
  else if (u.y != d.y)
    out[0] = u.y < d.y ? Dir3::PosY : Dir3::NegY;
  else if (u.z != d.z)
    out[0] = u.z < d.z ? Dir3::PosZ : Dir3::NegZ;
  else
    return 0;
  return 1;
}

}  // namespace mcc::sim::wh
