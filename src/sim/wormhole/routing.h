// Pluggable per-hop routing functions for the wormhole network.
//
// A routing function answers three questions the router pipeline needs:
//   * vc_class(s, d)     — which deadlock class the packet travels in (the
//                          network gives every class its own set of virtual
//                          channels; see docs/wormhole.md for the argument
//                          that this makes minimal adaptive routing
//                          deadlock-free);
//   * candidates(u,s,d)  — the admissible productive output directions at u
//                          (physical frame, canonical-axis order);
//   * feasible(s, d)     — the injection filter: traffic generators drop
//                          pairs the function cannot deliver, so offered
//                          load consists of deliverable packets only.
//
// MccRouting2D/3D adapt the core:: guidance machinery: every packet is
// assigned the octant class of its (s, d) pair at injection; per-hop state
// (u, d) is flipped into the canonical frame, core::admissible2d/3d run the
// guidance there, and surviving directions are flipped back. Model mode
// evaluates the MCC model's safe-only decision exactly with a per-hop
// monotone sweep of the remaining box; Oracle mode makes the identical
// decisions from cached reachability fields (the two must produce
// bit-identical simulations — test_wormhole checks it). The message-passing
// approximations of that decision (records, walkers, floods) are evaluated
// at the core-router layer, where a rare wedge fails one route; inside a
// wormhole it would block a virtual channel forever.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/labeling.h"
#include "core/reachability.h"
#include "core/router.h"
#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "mesh/octant.h"
#include "runtime/guidance_cache.h"

namespace mcc::sim::wh {

/// Which core guidance drives per-hop choices.
enum class GuidanceMode : uint8_t {
  Oracle,      // cached reachability fields — the gold standard
  Model,       // the model's safe-only decision, served by the shared
               // GuidanceCache (MCC_NOCACHE=1 restores the per-hop sweep;
               // the two are bit-identical — test_runtime proves it)
  LabelsOnly,  // ablation: avoid unsafe neighbors only (can wedge)
};

const char* to_string(GuidanceMode m);

/// Canonical positive direction -> physical direction under an octant flip
/// (shared by every octant-adapting routing function).
inline mesh::Dir2 physical(mesh::Dir2 dir, mesh::Octant2 o) {
  const bool flip = axis_of(dir) == 0 ? o.flip_x : o.flip_y;
  return flip ? opposite(dir) : dir;
}

inline mesh::Dir3 physical(mesh::Dir3 dir, mesh::Octant3 o) {
  bool flip = false;
  switch (axis_of(dir)) {
    case 0: flip = o.flip_x; break;
    case 1: flip = o.flip_y; break;
    default: flip = o.flip_z; break;
  }
  return flip ? opposite(dir) : dir;
}

/// Guidance over a prepared reachability field (Oracle mode, the cached
/// Model mode, and the dynamic routing functions).
struct FieldGuidance2D final : core::Guidance2D {
  explicit FieldGuidance2D(const core::ReachField2D& field) : f(field) {}
  bool exclude(mesh::Coord2, mesh::Dir2, mesh::Coord2 next) const override {
    return !f.feasible(next);
  }
  const core::ReachField2D& f;
};

struct FieldGuidance3D final : core::Guidance3D {
  explicit FieldGuidance3D(const core::ReachField3D& field) : f(field) {}
  bool exclude(mesh::Coord3, mesh::Dir3, mesh::Coord3 next) const override {
    return !f.feasible(next);
  }
  const core::ReachField3D& f;
};

// ---------------------------------------------------------------------------
// Interfaces

class RoutingFunction2D {
 public:
  virtual ~RoutingFunction2D() = default;
  /// Number of deadlock classes this function needs.
  virtual int vc_classes() const = 0;
  /// Deadlock class of a packet, fixed at injection.
  virtual int vc_class(mesh::Coord2 s, mesh::Coord2 d) const = 0;
  /// Admissible productive output directions at u for a packet s -> d.
  /// Returns the count written to `out` (0 = the head is wedged).
  virtual size_t candidates(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d,
                            std::array<mesh::Dir2, 2>& out) = 0;
  /// Injection filter: true when this function can deliver s -> d.
  virtual bool feasible(mesh::Coord2 s, mesh::Coord2 d) = 0;
  /// Can a packet injected as s -> d still complete from u? Evaluated in
  /// the INJECTION octant — a worm's remaining moves are constrained to
  /// that frame's preferred directions, so `feasible(u, d)` (which would
  /// re-derive the octant from the remaining pair, with different labels)
  /// is the wrong question. Drives Config::drop_infeasible.
  virtual bool completable(mesh::Coord2 u, mesh::Coord2 /*s*/,
                           mesh::Coord2 d) {
    return feasible(u, d);
  }
  /// Called by the churn driver after a fault/repair event has been applied
  /// to the fault state and the network. Routing functions that derive
  /// their guidance from the fault set outside the epoch-versioned cache
  /// (the fault-block baselines) rebuild here; the MCC functions need
  /// nothing (the epoch bump already invalidates their cached fields).
  virtual void on_network_event() {}
};

class RoutingFunction3D {
 public:
  virtual ~RoutingFunction3D() = default;
  virtual int vc_classes() const = 0;
  virtual int vc_class(mesh::Coord3 s, mesh::Coord3 d) const = 0;
  virtual size_t candidates(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d,
                            std::array<mesh::Dir3, 3>& out) = 0;
  virtual bool feasible(mesh::Coord3 s, mesh::Coord3 d) = 0;
  virtual bool completable(mesh::Coord3 u, mesh::Coord3 /*s*/,
                           mesh::Coord3 d) {
    return feasible(u, d);
  }
  virtual void on_network_event() {}
};

// ---------------------------------------------------------------------------
// MCC-guided adaptive minimal routing

class MccRouting2D final : public RoutingFunction2D {
 public:
  /// `use_cache` overrides the MCC_NOCACHE environment escape hatch for
  /// Model mode (tests compare both paths; they must be bit-identical).
  MccRouting2D(const mesh::Mesh2D& mesh, const mesh::FaultSet2D& faults,
               GuidanceMode mode, std::optional<bool> use_cache = {});
  ~MccRouting2D() override;

  /// Antipodal quadrant pairs {++,--} and {+-,-+} share a class: their
  /// channel sets are disjoint, so two classes suffice (docs/wormhole.md).
  int vc_classes() const override { return 2; }
  int vc_class(mesh::Coord2 s, mesh::Coord2 d) const override;
  size_t candidates(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d,
                    std::array<mesh::Dir2, 2>& out) override;
  bool feasible(mesh::Coord2 s, mesh::Coord2 d) override;
  bool completable(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d) override;

  /// Cache behind Model mode (hit-rate reporting for bench_e12).
  const runtime::GuidanceCache2D& cache() const { return cache_; }

 private:
  struct QuadCtx;
  QuadCtx& quad(mesh::Octant2 o);
  bool feasible_in(mesh::Octant2 o, mesh::Coord2 u, mesh::Coord2 d);

  const mesh::Mesh2D& mesh_;
  GuidanceMode mode_;
  bool use_cache_;
  runtime::GuidanceCache2D cache_;
  std::array<std::unique_ptr<QuadCtx>, 4> quads_;
};

class MccRouting3D final : public RoutingFunction3D {
 public:
  MccRouting3D(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults,
               GuidanceMode mode, std::optional<bool> use_cache = {});
  ~MccRouting3D() override;

  /// Antipodal octant pairs share a class: four classes in 3-D.
  int vc_classes() const override { return 4; }
  int vc_class(mesh::Coord3 s, mesh::Coord3 d) const override;
  size_t candidates(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d,
                    std::array<mesh::Dir3, 3>& out) override;
  bool feasible(mesh::Coord3 s, mesh::Coord3 d) override;
  bool completable(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d) override;

  const runtime::GuidanceCache3D& cache() const { return cache_; }

 private:
  struct OctCtx;
  OctCtx& oct(mesh::Octant3 o);
  bool feasible_in(mesh::Octant3 o, mesh::Coord3 u, mesh::Coord3 d);

  const mesh::Mesh3D& mesh_;
  GuidanceMode mode_;
  bool use_cache_;
  runtime::GuidanceCache3D cache_;
  std::array<std::unique_ptr<OctCtx>, 8> octs_;
};

// ---------------------------------------------------------------------------
// Baseline

/// Fault-oblivious dimension-order (e-cube) routing: the classic
/// deterministic deadlock-free baseline. One deadlock class; only usable on
/// fault-free meshes.
class DorRouting2D final : public RoutingFunction2D {
 public:
  int vc_classes() const override { return 1; }
  int vc_class(mesh::Coord2, mesh::Coord2) const override { return 0; }
  size_t candidates(mesh::Coord2 u, mesh::Coord2 s, mesh::Coord2 d,
                    std::array<mesh::Dir2, 2>& out) override;
  bool feasible(mesh::Coord2 s, mesh::Coord2 d) override { return !(s == d); }
};

class DorRouting3D final : public RoutingFunction3D {
 public:
  int vc_classes() const override { return 1; }
  int vc_class(mesh::Coord3, mesh::Coord3) const override { return 0; }
  size_t candidates(mesh::Coord3 u, mesh::Coord3 s, mesh::Coord3 d,
                    std::array<mesh::Dir3, 3>& out) override;
  bool feasible(mesh::Coord3 s, mesh::Coord3 d) override { return !(s == d); }
};

}  // namespace mcc::sim::wh
