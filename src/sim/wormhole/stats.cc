#include "sim/wormhole/stats.h"

namespace mcc::sim::wh {

void LatencyHistogram::add(uint64_t latency) {
  if (latency < counts_.size())
    ++counts_[latency];
  else
    ++overflow_;
  agg_.add(static_cast<double>(latency));
}

void LatencyHistogram::clear() {
  counts_.assign(counts_.size(), 0);
  overflow_ = 0;
  agg_ = util::RunningStats();
}

uint64_t LatencyHistogram::percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  const auto target =
      static_cast<uint64_t>(p * static_cast<double>(total) + 0.5);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return i;
  }
  return counts_.size();  // inside the overflow bucket
}

}  // namespace mcc::sim::wh
