// Measurement pipeline of the wormhole simulator: per-packet latency
// histograms and the aggregate counters a latency-throughput sweep needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace mcc::sim::wh {

/// Exact latency histogram: unit buckets up to a cap plus an overflow
/// bucket; mean/min/max come from the embedded RunningStats.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(uint64_t cap = 4096) : counts_(cap, 0) {}

  void add(uint64_t latency);
  void clear();

  uint64_t count() const { return agg_.count(); }
  double mean() const { return agg_.mean(); }
  double stddev() const { return agg_.stddev(); }
  uint64_t max() const {
    return agg_.count() ? static_cast<uint64_t>(agg_.max()) : 0;
  }
  uint64_t overflow() const { return overflow_; }

  /// Smallest latency L with cdf(L) >= p (overflow bucket reports the cap).
  uint64_t percentile(double p) const;

  const util::RunningStats& aggregate() const { return agg_; }

 private:
  std::vector<uint64_t> counts_;
  uint64_t overflow_ = 0;
  util::RunningStats agg_;
};

/// Counters the network maintains while it runs. `violations` holds
/// human-readable descriptions of broken invariants (buffer overflow,
/// reassembly errors, traffic into dead nodes) — always empty in a correct
/// run; tests assert on it.
struct NetStats {
  uint64_t injected_packets = 0;
  uint64_t injected_flits = 0;
  uint64_t delivered_packets = 0;
  uint64_t delivered_flits = 0;
  uint64_t last_delivery_cycle = 0;
  /// Head-of-VC waiting cycles with an empty admissible set, counted per
  /// wedged head per cycle (so it can exceed the cycle count when several
  /// heads are wedged at once). Non-zero means the routing function wedged
  /// a packet — never happens for feasibility-filtered traffic under
  /// Oracle/Model guidance.
  uint64_t wedged_head_cycles = 0;
  /// Dynamic-fault accounting: packets/flits discarded because a fault
  /// event killed their node, their destination, or (with
  /// Config::drop_infeasible) every minimal completion of their route.
  uint64_t dropped_packets = 0;
  uint64_t dropped_flits = 0;
  uint64_t fault_events = 0;
  uint64_t repair_events = 0;
  /// Link-granular events (E14): one bidirectional channel severed or
  /// restored while both endpoint routers keep running.
  uint64_t link_fault_events = 0;
  uint64_t link_repair_events = 0;
  /// Routing-function candidate computations (route-cache misses in the
  /// head-discovery phase). Staged per shard, merged serially — identical
  /// across thread counts, like every other counter here.
  uint64_t route_computes = 0;
  LatencyHistogram latency;
  std::vector<std::string> violations;
};

}  // namespace mcc::sim::wh
