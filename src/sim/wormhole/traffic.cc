#include "sim/wormhole/traffic.h"

#include <utility>

#include "util/scenario.h"

namespace mcc::sim::wh {

using mesh::Coord2;
using mesh::Coord3;

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::Uniform: return "uniform";
    case Pattern::Transpose: return "transpose";
    case Pattern::BitComplement: return "bit-complement";
    case Pattern::Hotspot: return "hotspot";
  }
  return "?";
}

namespace {

// Per-topology pattern geometry. Transpose rotates the axes (the 3-D form
// (x,y,z) -> (y,z,x) matches the original generator); bit-complement
// mirrors every axis. sample_any dispatches to the shared seeded node
// samplers so the draw order stays identical across topologies.
template <class Pred>
std::optional<Coord2> sample_any(const mesh::Mesh2D& m, util::Rng& rng,
                                 Pred&& ok, int tries) {
  return util::sample_node2d(m, rng, std::forward<Pred>(ok), tries);
}
template <class Pred>
std::optional<Coord3> sample_any(const mesh::Mesh3D& m, util::Rng& rng,
                                 Pred&& ok, int tries) {
  return util::sample_node3d(m, rng, std::forward<Pred>(ok), tries);
}

Coord2 transpose_of(const mesh::Mesh2D&, Coord2 s) { return {s.y, s.x}; }
Coord3 transpose_of(const mesh::Mesh3D&, Coord3 s) {
  return {s.y, s.z, s.x};
}

Coord2 complement_of(const mesh::Mesh2D& m, Coord2 s) {
  return {m.nx() - 1 - s.x, m.ny() - 1 - s.y};
}
Coord3 complement_of(const mesh::Mesh3D& m, Coord3 s) {
  return {m.nx() - 1 - s.x, m.ny() - 1 - s.y, m.nz() - 1 - s.z};
}

}  // namespace

template <class Topo>
TrafficGenT<Topo>::TrafficGenT(const Mesh& mesh, const Faults& faults,
                               Routing& routing, Pattern pattern,
                               uint64_t seed, double hotspot_fraction,
                               int hotspot_count)
    : mesh_(mesh),
      faults_(faults),
      routing_(routing),
      pattern_(pattern),
      rng_(seed),
      hotspot_fraction_(hotspot_fraction) {
  for (size_t i = 0; i < mesh.node_count(); ++i) {
    const Coord c = mesh.coord(i);
    if (!faults.is_faulty(c)) sources_.push_back(c);
  }
  if (pattern_ == Pattern::Hotspot) {
    // Fixed, seed-determined live hotspots, distinct from one another.
    for (int h = 0; h < hotspot_count; ++h) {
      const auto spot = sample_any(
          mesh_, rng_,
          [&](Coord c) {
            if (faults_.is_faulty(c)) return false;
            for (const Coord seen : hotspots_)
              if (seen == c) return false;
            return true;
          },
          64);
      if (spot) hotspots_.push_back(*spot);
    }
    if (hotspots_.empty() && !sources_.empty())
      hotspots_.push_back(sources_[sources_.size() / 2]);
  }
}

template <class Topo>
std::optional<typename Topo::Coord> TrafficGenT<Topo>::draw_dest(Coord s) {
  switch (pattern_) {
    case Pattern::Uniform:
      return sample_any(
          mesh_, rng_,
          [&](Coord c) {
            return !faults_.is_faulty(c) && !(c == s) &&
                   routing_.feasible(s, c);
          },
          8);
    case Pattern::Transpose: {
      const Coord d = transpose_of(mesh_, s);
      if (!mesh_.contains(d) || d == s || faults_.is_faulty(d) ||
          !routing_.feasible(s, d))
        return std::nullopt;
      return d;
    }
    case Pattern::BitComplement: {
      const Coord d = complement_of(mesh_, s);
      if (d == s || faults_.is_faulty(d) || !routing_.feasible(s, d))
        return std::nullopt;
      return d;
    }
    case Pattern::Hotspot: {
      if (!hotspots_.empty() && rng_.chance(hotspot_fraction_)) {
        const Coord d = hotspots_[rng_.pick(hotspots_.size())];
        if (!(d == s) && routing_.feasible(s, d)) return d;
        return std::nullopt;
      }
      return sample_any(
          mesh_, rng_,
          [&](Coord c) {
            return !faults_.is_faulty(c) && !(c == s) &&
                   routing_.feasible(s, c);
          },
          8);
    }
  }
  return std::nullopt;
}

template <class Topo>
int TrafficGenT<Topo>::tick(Network<Topo>& net, double rate) {
  int injected = 0;
  for (const Coord s : sources_) {
    // A source that died mid-run (dynamic-fault mode) stops injecting and
    // consumes no randomness; static runs never hit this (sources_ holds
    // live nodes only), so seeded static sweeps draw identically.
    if (faults_.is_faulty(s)) continue;
    if (!rng_.chance(rate)) continue;
    ++offered_;
    const auto d = draw_dest(s);
    if (!d) {
      ++filtered_;
      continue;
    }
    net.inject(s, *d);
    ++injected;
  }
  return injected;
}

template class TrafficGenT<Topo2>;
template class TrafficGenT<Topo3>;

}  // namespace mcc::sim::wh
