#include "sim/wormhole/traffic.h"

#include "util/scenario.h"

namespace mcc::sim::wh {

using mesh::Coord3;

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::Uniform: return "uniform";
    case Pattern::Transpose: return "transpose";
    case Pattern::BitComplement: return "bit-complement";
    case Pattern::Hotspot: return "hotspot";
  }
  return "?";
}

TrafficGen3D::TrafficGen3D(const mesh::Mesh3D& mesh,
                           const mesh::FaultSet3D& faults,
                           RoutingFunction3D& routing, Pattern pattern,
                           uint64_t seed, double hotspot_fraction,
                           int hotspot_count)
    : mesh_(mesh),
      faults_(faults),
      routing_(routing),
      pattern_(pattern),
      rng_(seed),
      hotspot_fraction_(hotspot_fraction) {
  for (size_t i = 0; i < mesh.node_count(); ++i) {
    const Coord3 c = mesh.coord(i);
    if (!faults.is_faulty(c)) sources_.push_back(c);
  }
  if (pattern_ == Pattern::Hotspot) {
    // Fixed, seed-determined live hotspots, distinct from one another.
    for (int h = 0; h < hotspot_count; ++h) {
      const auto spot = util::sample_node3d(
          mesh_, rng_,
          [&](Coord3 c) {
            if (faults_.is_faulty(c)) return false;
            for (const Coord3 seen : hotspots_)
              if (seen == c) return false;
            return true;
          },
          64);
      if (spot) hotspots_.push_back(*spot);
    }
    if (hotspots_.empty() && !sources_.empty())
      hotspots_.push_back(sources_[sources_.size() / 2]);
  }
}

std::optional<Coord3> TrafficGen3D::draw_dest(Coord3 s) {
  switch (pattern_) {
    case Pattern::Uniform:
      return util::sample_node3d(mesh_, rng_, [&](Coord3 c) {
        return !faults_.is_faulty(c) && !(c == s) && routing_.feasible(s, c);
      });
    case Pattern::Transpose: {
      const Coord3 d{s.y, s.z, s.x};
      if (!mesh_.contains(d) || d == s || faults_.is_faulty(d) ||
          !routing_.feasible(s, d))
        return std::nullopt;
      return d;
    }
    case Pattern::BitComplement: {
      const Coord3 d{mesh_.nx() - 1 - s.x, mesh_.ny() - 1 - s.y,
                     mesh_.nz() - 1 - s.z};
      if (d == s || faults_.is_faulty(d) || !routing_.feasible(s, d))
        return std::nullopt;
      return d;
    }
    case Pattern::Hotspot: {
      if (!hotspots_.empty() && rng_.chance(hotspot_fraction_)) {
        const Coord3 d = hotspots_[rng_.pick(hotspots_.size())];
        if (!(d == s) && routing_.feasible(s, d)) return d;
        return std::nullopt;
      }
      return util::sample_node3d(mesh_, rng_, [&](Coord3 c) {
        return !faults_.is_faulty(c) && !(c == s) && routing_.feasible(s, c);
      });
    }
  }
  return std::nullopt;
}

int TrafficGen3D::tick(Network3D& net, double rate) {
  int injected = 0;
  for (const Coord3 s : sources_) {
    // A source that died mid-run (dynamic-fault mode) stops injecting and
    // consumes no randomness; static runs never hit this (sources_ holds
    // live nodes only), so seeded static sweeps draw identically.
    if (faults_.is_faulty(s)) continue;
    if (!rng_.chance(rate)) continue;
    ++offered_;
    const auto d = draw_dest(s);
    if (!d) {
      ++filtered_;
      continue;
    }
    net.inject(s, *d);
    ++injected;
  }
  return injected;
}

}  // namespace mcc::sim::wh
