// Synthetic traffic for the wormhole network: the four classic patterns
// with Bernoulli injection, made fault-aware — dead nodes neither inject
// nor receive, and every candidate pair is filtered through the routing
// function's feasibility test so offered load consists of deliverable
// packets only (dropped draws are counted, not silently retried forever).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "sim/wormhole/network.h"
#include "sim/wormhole/routing.h"
#include "util/rng.h"

namespace mcc::sim::wh {

enum class Pattern : uint8_t { Uniform, Transpose, BitComplement, Hotspot };

const char* to_string(Pattern p);

class TrafficGen3D {
 public:
  /// `hotspot_fraction` of Hotspot packets target one of `hotspot_count`
  /// fixed live nodes; the rest fall back to uniform.
  TrafficGen3D(const mesh::Mesh3D& mesh, const mesh::FaultSet3D& faults,
               RoutingFunction3D& routing, Pattern pattern, uint64_t seed,
               double hotspot_fraction = 0.5, int hotspot_count = 2);

  /// One injection cycle: every live node flips a Bernoulli(rate) coin and,
  /// on success, tries to draw a feasible destination and inject a packet.
  /// Returns the number of packets injected.
  int tick(Network3D& net, double rate);

  uint64_t offered() const { return offered_; }
  uint64_t filtered() const { return filtered_; }
  const std::vector<mesh::Coord3>& hotspots() const { return hotspots_; }

 private:
  std::optional<mesh::Coord3> draw_dest(mesh::Coord3 s);

  const mesh::Mesh3D& mesh_;
  const mesh::FaultSet3D& faults_;
  RoutingFunction3D& routing_;
  Pattern pattern_;
  util::Rng rng_;
  double hotspot_fraction_;
  std::vector<mesh::Coord3> sources_;   // live nodes, fixed order
  std::vector<mesh::Coord3> hotspots_;  // live hotspot destinations
  uint64_t offered_ = 0;   // Bernoulli successes
  uint64_t filtered_ = 0;  // draws dropped as infeasible/unroutable
};

}  // namespace mcc::sim::wh
