// Synthetic traffic for the wormhole network: the four classic patterns
// with Bernoulli injection, made fault-aware — dead nodes neither inject
// nor receive, and every candidate pair is filtered through the routing
// function's feasibility test so offered load consists of deliverable
// packets only (dropped draws are counted, not silently retried forever).
//
// One template serves both topologies (TrafficGen2D / TrafficGen3D); the
// 3-D draw order is part of the seeded-experiment contract and unchanged
// from the original hand-written generator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mesh/fault_set.h"
#include "mesh/mesh.h"
#include "sim/wormhole/network.h"
#include "sim/wormhole/routing.h"
#include "util/rng.h"

namespace mcc::sim::wh {

enum class Pattern : uint8_t { Uniform, Transpose, BitComplement, Hotspot };

const char* to_string(Pattern p);

template <class Topo>
class TrafficGenT {
 public:
  using Mesh = typename Topo::Mesh;
  using Coord = typename Topo::Coord;
  using Faults = typename Topo::Faults;
  using Routing = typename Topo::Routing;

  /// `hotspot_fraction` of Hotspot packets target one of `hotspot_count`
  /// fixed live nodes; the rest fall back to uniform.
  TrafficGenT(const Mesh& mesh, const Faults& faults, Routing& routing,
              Pattern pattern, uint64_t seed, double hotspot_fraction = 0.5,
              int hotspot_count = 2);

  /// One injection cycle: every live node flips a Bernoulli(rate) coin and,
  /// on success, tries to draw a feasible destination and inject a packet.
  /// Returns the number of packets injected.
  int tick(Network<Topo>& net, double rate);

  uint64_t offered() const { return offered_; }
  uint64_t filtered() const { return filtered_; }
  const std::vector<Coord>& hotspots() const { return hotspots_; }

 private:
  std::optional<Coord> draw_dest(Coord s);

  const Mesh& mesh_;
  const Faults& faults_;
  Routing& routing_;
  Pattern pattern_;
  util::Rng rng_;
  double hotspot_fraction_;
  std::vector<Coord> sources_;   // live nodes, fixed order
  std::vector<Coord> hotspots_;  // live hotspot destinations
  uint64_t offered_ = 0;   // Bernoulli successes
  uint64_t filtered_ = 0;  // draws dropped as infeasible/unroutable
};

using TrafficGen2D = TrafficGenT<Topo2>;
using TrafficGen3D = TrafficGenT<Topo3>;

}  // namespace mcc::sim::wh
