#include "util/ascii_viz.h"

#include <algorithm>
#include <sstream>

namespace mcc::util {

std::string render_mesh(const mesh::Mesh2D& mesh,
                        const core::LabelField2D& labels,
                        const VizOptions& opts) {
  std::ostringstream out;
  for (int y = mesh.ny() - 1; y >= 0; --y) {
    out << (y % 10) << ' ';
    for (int x = 0; x < mesh.nx(); ++x) {
      const mesh::Coord2 c{x, y};
      char ch = '.';
      switch (labels.state(c)) {
        case core::NodeState::Faulty: ch = '#'; break;
        case core::NodeState::Useless: ch = 'u'; break;
        case core::NodeState::CantReach: ch = 'c'; break;
        case core::NodeState::Safe:
          if (opts.boundary && !opts.boundary->records_at(c).empty())
            ch = 'r';
          break;
      }
      if (std::find(opts.path.begin(), opts.path.end(), c) !=
          opts.path.end())
        ch = 'o';
      if (c == opts.source) ch = 'S';
      if (c == opts.destination) ch = 'D';
      out << ch;
    }
    out << '\n';
  }
  out << "  ";
  for (int x = 0; x < mesh.nx(); ++x) out << (x % 10);
  out << '\n';
  return out.str();
}

}  // namespace mcc::util
