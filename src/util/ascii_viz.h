// ASCII rendering of 2-D meshes — used by the examples to show fault
// regions, boundary records and routed paths.
//
// Legend: '#' faulty, 'u' useless, 'c' can't-reach, 'r' node holding
// boundary records, 'o' path node, 'S'/'D' endpoints, '.' plain safe.
#pragma once

#include <string>
#include <vector>

#include "core/boundary2d.h"
#include "core/labeling.h"
#include "mesh/mesh.h"

namespace mcc::util {

struct VizOptions {
  const core::Boundary2D* boundary = nullptr;
  std::vector<mesh::Coord2> path;
  mesh::Coord2 source{-1, -1};
  mesh::Coord2 destination{-1, -1};
};

std::string render_mesh(const mesh::Mesh2D& mesh,
                        const core::LabelField2D& labels,
                        const VizOptions& opts = {});

}  // namespace mcc::util
