// Dense row-major grids used throughout the library for per-node fields
// (fault flags, labels, component ids, DP tables).
//
// Grid2<T> / Grid3<T> are deliberately minimal: bounds-checked access in
// debug builds, contiguous storage, value-semantic copies. They are the only
// containers the hot paths touch, so they avoid any indirection.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace mcc::util {

/// Dense 2-D array addressed by (x, y); row-major with x contiguous.
template <class T>
class Grid2 {
 public:
  Grid2() = default;
  Grid2(int nx, int ny, T init = T{})
      : nx_(nx), ny_(ny), data_(static_cast<size_t>(nx) * ny, init) {
    assert(nx >= 0 && ny >= 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  size_t size() const { return data_.size(); }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_;
  }

  size_t index(int x, int y) const {
    assert(in_bounds(x, y));
    return static_cast<size_t>(y) * nx_ + x;
  }

  T& at(int x, int y) { return data_[index(x, y)]; }
  const T& at(int x, int y) const { return data_[index(x, y)]; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  void fill(const T& v) { data_.assign(data_.size(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Grid2& a, const Grid2& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
  }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

/// Dense 3-D array addressed by (x, y, z); x contiguous, then y, then z.
template <class T>
class Grid3 {
 public:
  Grid3() = default;
  Grid3(int nx, int ny, int nz, T init = T{})
      : nx_(nx),
        ny_(ny),
        nz_(nz),
        data_(static_cast<size_t>(nx) * ny * nz, init) {
    assert(nx >= 0 && ny >= 0 && nz >= 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  size_t size() const { return data_.size(); }

  bool in_bounds(int x, int y, int z) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }

  size_t index(int x, int y, int z) const {
    assert(in_bounds(x, y, z));
    return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
  }

  T& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  const T& at(int x, int y, int z) const { return data_[index(x, y, z)]; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  void fill(const T& v) { data_.assign(data_.size(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Grid3& a, const Grid3& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.nz_ == b.nz_ &&
           a.data_ == b.data_;
  }

 private:
  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<T> data_;
};

}  // namespace mcc::util
