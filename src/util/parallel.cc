#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mcc::util {

unsigned default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(size_t n, const std::function<void(size_t)>& body,
                  unsigned workers) {
  if (workers == 0) workers = default_workers();
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto run = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(run);
  }  // join

  if (error) std::rethrow_exception(error);
}

}  // namespace mcc::util
