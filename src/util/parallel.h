// Minimal fork-join parallelism for experiment sweeps.
//
// Benches run hundreds of independent Monte-Carlo trials; `parallel_for`
// splits the index range across a small pool of std::jthread workers with a
// shared atomic cursor (dynamic scheduling, so uneven trial costs balance).
// Each worker receives the trial index only — callers derive per-trial RNG
// seeds from the index, which keeps results independent of thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace mcc::util {

/// Number of workers used by default (hardware concurrency, at least 1).
unsigned default_workers();

/// Runs body(i) for every i in [0, n) across `workers` threads.
/// With workers <= 1 the loop runs inline (useful under test).
/// Exceptions thrown by `body` propagate to the caller (first one wins).
void parallel_for(size_t n, const std::function<void(size_t)>& body,
                  unsigned workers = 0);

}  // namespace mcc::util
