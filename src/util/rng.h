// Deterministic random-number utilities.
//
// Every experiment in bench/ and every property sweep in tests/ derives its
// randomness from explicit 64-bit seeds so that tables and failures are
// exactly reproducible. `Rng` is a thin wrapper over std::mt19937_64 with
// the handful of draws the library needs.
#pragma once

#include <cstdint>
#include <random>

namespace mcc::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Pick an index in [0, n) uniformly; n must be positive.
  size_t pick(size_t n) {
    std::uniform_int_distribution<size_t> dist(0, n - 1);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child seed (used to hand one seed per trial to
  /// worker threads without sharing engine state across threads).
  uint64_t fork() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mcc::util
