// Seeded scenario helpers shared by bench/, tests/ and the wormhole traffic
// generators: drawing canonical source/destination pairs and single nodes
// from an explicit Rng, plus the sweep-parameter cell every parameterized
// suite uses. Centralizing these keeps the draw order (and therefore every
// seeded experiment) identical across call sites.
//
// Header-only and duck-typed on the label-field type so this file stays in
// the bottom util layer without linking against mcc_core (`Labels` only
// needs `labels.safe(coord)`). It does include the header-only mesh shape
// types — the same pragmatism as ascii_viz.cc, which sits in util/ but is
// compiled into mcc_core.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "mesh/coord.h"
#include "mesh/mesh.h"
#include "util/rng.h"

namespace mcc::util {

/// One cell of a randomized sweep: mesh edge length, fault rate, base seed
/// and the number of (s, d) pairs to exercise (suites that derive their
/// own pair counts leave it defaulted).
struct SweepParam {
  int size = 0;
  double rate = 0;
  uint64_t seed = 0;
  int pairs = 0;
};

/// Draws s with room to its upper-right, then d strictly beyond it in both
/// axes: the canonical strict-offset pair. The draw order (s.x, s.y, d.x,
/// d.y) is part of the contract — seeded sweeps depend on it.
inline std::pair<mesh::Coord2, mesh::Coord2> random_strict_pair2d(
    const mesh::Mesh2D& m, Rng& rng) {
  const mesh::Coord2 s{rng.uniform_int(0, m.nx() - 2),
                       rng.uniform_int(0, m.ny() - 2)};
  const mesh::Coord2 d{rng.uniform_int(s.x + 1, m.nx() - 1),
                       rng.uniform_int(s.y + 1, m.ny() - 1)};
  return {s, d};
}

/// 3-D analog; draw order (s.x, s.y, s.z, d.x, d.y, d.z).
inline std::pair<mesh::Coord3, mesh::Coord3> random_strict_pair3d(
    const mesh::Mesh3D& m, Rng& rng) {
  const mesh::Coord3 s{rng.uniform_int(0, m.nx() - 2),
                       rng.uniform_int(0, m.ny() - 2),
                       rng.uniform_int(0, m.nz() - 2)};
  const mesh::Coord3 d{rng.uniform_int(s.x + 1, m.nx() - 1),
                       rng.uniform_int(s.y + 1, m.ny() - 1),
                       rng.uniform_int(s.z + 1, m.nz() - 1)};
  return {s, d};
}

/// Draws a safe strict-offset pair at least `min_distance` apart; nullopt
/// when the try budget runs out (dense fault patterns).
template <class Labels>
std::optional<std::pair<mesh::Coord2, mesh::Coord2>> sample_pair2d(
    const mesh::Mesh2D& m, const Labels& labels, Rng& rng,
    int min_distance = 4) {
  for (int t = 0; t < 200; ++t) {
    const auto [s, d] = random_strict_pair2d(m, rng);
    if (manhattan(s, d) < min_distance) continue;
    if (!labels.safe(s) || !labels.safe(d)) continue;
    return std::make_pair(s, d);
  }
  return std::nullopt;
}

template <class Labels>
std::optional<std::pair<mesh::Coord3, mesh::Coord3>> sample_pair3d(
    const mesh::Mesh3D& m, const Labels& labels, Rng& rng,
    int min_distance = 4) {
  for (int t = 0; t < 200; ++t) {
    const auto [s, d] = random_strict_pair3d(m, rng);
    if (manhattan(s, d) < min_distance) continue;
    if (!labels.safe(s) || !labels.safe(d)) continue;
    return std::make_pair(s, d);
  }
  return std::nullopt;
}

/// Draws a node uniformly, retrying until `ok(c)` accepts it or the try
/// budget runs out (used by the wormhole traffic generators to find live,
/// reachable destinations).
template <class Pred>
std::optional<mesh::Coord2> sample_node2d(const mesh::Mesh2D& m, Rng& rng,
                                          Pred&& ok, int tries = 8) {
  for (int t = 0; t < tries; ++t) {
    const mesh::Coord2 c{rng.uniform_int(0, m.nx() - 1),
                         rng.uniform_int(0, m.ny() - 1)};
    if (ok(c)) return c;
  }
  return std::nullopt;
}

template <class Pred>
std::optional<mesh::Coord3> sample_node3d(const mesh::Mesh3D& m, Rng& rng,
                                          Pred&& ok, int tries = 8) {
  for (int t = 0; t < tries; ++t) {
    const mesh::Coord3 c{rng.uniform_int(0, m.nx() - 1),
                         rng.uniform_int(0, m.ny() - 1),
                         rng.uniform_int(0, m.nz() - 1)};
    if (ok(c)) return c;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Churn schedules (dynamic-fault runtime; shared by bench_e12, the examples
// and tests/test_runtime.cc so every seeded churn run draws identically).

/// Parameters of a sampled fault/repair schedule: Poisson fault arrivals at
/// `rate` expected strikes per cycle over `horizon` cycles, each strike
/// followed by a repair after a bounded uniform delay drawn between
/// repair_min and repair_max cycles (ordered either way; repair_max == 0
/// disables repairs; a struck node cannot be struck again before its
/// repair has fired).
struct ChurnParams {
  double rate = 0.002;
  uint64_t horizon = 4000;
  uint64_t repair_min = 100;
  uint64_t repair_max = 800;
  int max_events = 1 << 20;
};

/// One schedule entry in node-index form (shape-agnostic; the runtime's
/// FaultTimeline converts to coordinates).
struct ChurnEvent {
  uint64_t cycle = 0;
  size_t node = 0;
  bool repair = false;
};

/// Draws a churn schedule, sorted by cycle (faults keep their sampling
/// order on ties; a repair never precedes its own fault). `can_fail(coord)`
/// lets callers protect nodes (endpoints, already-faulty nodes, ...).
template <class MeshT, class Pred>
std::vector<ChurnEvent> sample_churn(const MeshT& m, Rng& rng,
                                     const ChurnParams& p, Pred&& can_fail) {
  std::vector<ChurnEvent> events;
  if (p.rate <= 0) return events;  // zero-churn baseline: empty schedule
  // Cycle from which a node may (again) be struck: 0 = now, ~0 = never.
  std::vector<uint64_t> up_at(m.node_count(), 0);
  const bool repairs = p.repair_max > 0;
  const uint64_t delay_lo = std::min(p.repair_min, p.repair_max);
  const uint64_t delay_hi = std::max(p.repair_min, p.repair_max);
  double t = 0;
  // A strike emits up to two entries (fault + repair); never exceed the cap.
  while (static_cast<int>(events.size()) + (repairs ? 2 : 1) <=
         p.max_events) {
    t += -std::log1p(-rng.uniform()) / p.rate;  // exponential inter-arrival
    const uint64_t cycle = static_cast<uint64_t>(t) + 1;
    if (cycle > p.horizon) break;
    std::optional<size_t> target;
    for (int tries = 0; tries < 64 && !target; ++tries) {
      const size_t i = rng.pick(m.node_count());
      if (up_at[i] <= cycle && can_fail(m.coord(i))) target = i;
    }
    if (!target) continue;
    events.push_back({cycle, *target, false});
    if (repairs) {
      const uint64_t delay = delay_lo + rng.pick(delay_hi - delay_lo + 1);
      events.push_back({cycle + delay, *target, true});
      up_at[*target] = cycle + delay + 1;
    } else {
      up_at[*target] = ~uint64_t{0};
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return events;
}

}  // namespace mcc::util
