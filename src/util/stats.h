// Streaming statistics for experiment aggregation (Welford's algorithm) and
// a small helper for normal-approximation confidence intervals.
#pragma once

#include <cmath>
#include <cstddef>

namespace mcc::util {

/// Accumulates count/mean/variance in a single pass; numerically stable.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * n_ * other.n_ / total;
    mean_ += delta * other.n_ / total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Half-width of the ~95% confidence interval for the mean.
  double ci95() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wilson score interval for a binomial proportion. Unlike the normal
/// approximation it stays inside [0, 1] and behaves at p near 0 or 1 —
/// exactly the regimes reliability curves live in (reachability ~1 at low
/// failure probability, ~0 past the percolation knee).
struct WilsonCi {
  double center = 0.0;  // adjusted point estimate (not successes/n)
  double lo = 0.0;
  double hi = 0.0;
};

inline WilsonCi wilson_ci(size_t successes, size_t n, double z = 1.96) {
  WilsonCi w;
  if (n == 0) return w;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  w.center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  w.lo = w.center - half;
  w.hi = w.center + half;
  if (w.lo < 0.0) w.lo = 0.0;
  if (w.hi > 1.0) w.hi = 1.0;
  return w;
}

}  // namespace mcc::util
