#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mcc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * v);
  return buf;
}

std::string Table::mean_ci(double mean, double ci, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, mean, precision, ci);
  return buf;
}

void Table::render(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

}  // namespace mcc::util
