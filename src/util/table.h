// Markdown table writer used by every bench binary so that all experiment
// output has one consistent, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcc::util {

/// Collects rows of pre-formatted cells and renders a GitHub-flavored
/// markdown table with column alignment.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);
  static std::string mean_ci(double mean, double ci, int precision = 3);

  void render(std::ostream& os) const;
  std::string to_string() const;

  /// Structured access for serializers (RunReport JSON) and the
  /// differential tests that pin cells.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcc::util
