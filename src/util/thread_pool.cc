#include "util/thread_pool.h"

namespace mcc::util {
namespace {

// Spin budget before a lane parks (worker waiting for work, caller waiting
// for the join). ~10-50us of polling on current hardware: comfortably
// longer than any phase of a simulated cycle, far shorter than a futex
// sleep/wake pair. yield() sprinkled in so an oversubscribed pool (more
// lanes than cores) still makes forward progress inside the budget.
constexpr int kSpinIters = 20000;

inline void relax(int i) {
  if ((i & 1023) == 1023) std::this_thread::yield();
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers) : workers_(workers < 1 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true);
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::record_error() {
  std::lock_guard<std::mutex> lock(err_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  if (workers_ == 1) {
    fn(0);
    return;
  }
  first_error_ = nullptr;  // all lanes idle here: no lock needed
  fn_ = &fn;
  outstanding_.store(workers_ - 1);
  generation_.fetch_add(1);  // publishes fn_ to anyone who observes it
  if (sleepers_.load() != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    start_cv_.notify_all();
  }

  // Lane 0 runs on the caller; its exception competes with the workers'
  // for first_error_ so "first one wins" is deterministic enough to report.
  try {
    fn(0);
  } catch (...) {
    record_error();
  }

  uint64_t spun = 0;
  for (int i = 0; outstanding_.load() != 0; ++i) {
    if (i < kSpinIters) {
      relax(i);
      ++spun;
      continue;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    caller_parked_.store(true);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return outstanding_.load() == 0; });
    }
    caller_parked_.store(false);
    break;
  }
  if (spun != 0) spin_iters_.fetch_add(spun, std::memory_order_relaxed);
  fn_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(unsigned index) {
  uint64_t seen = 0;
  for (;;) {
    // Await a new generation: spin first, park only when the budget runs dry.
    uint64_t spun = 0;
    for (int i = 0;; ++i) {
      if (shutdown_.load()) {
        if (spun != 0) spin_iters_.fetch_add(spun, std::memory_order_relaxed);
        return;
      }
      const uint64_t gen = generation_.load();
      if (gen != seen) {
        seen = gen;
        break;
      }
      if (i < kSpinIters) {
        relax(i);
        ++spun;
        continue;
      }
      parks_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(mu_);
      sleepers_.fetch_add(1);
      start_cv_.wait(lock, [&] {
        return shutdown_.load() || generation_.load() != seen;
      });
      sleepers_.fetch_sub(1);
      i = 0;
    }
    if (spun != 0) spin_iters_.fetch_add(spun, std::memory_order_relaxed);
    try {
      (*fn_)(index);
    } catch (...) {
      record_error();
    }
    if (outstanding_.fetch_sub(1) == 1 && caller_parked_.load()) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

}  // namespace mcc::util
