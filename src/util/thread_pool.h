// Persistent fork-join worker pool for the router-parallel wormhole tick.
//
// `parallel_for` (parallel.h) spins a fresh jthread pool per call — fine
// for minute-long Monte-Carlo sweeps, hopeless for a loop that forks and
// joins every simulated cycle. ThreadPool keeps its workers hot between
// run() calls: dispatch is an atomic generation bump that spinning workers
// observe in well under a microsecond, and only a worker that has spun
// through its budget with no work parks on the condition variable (so an
// idle pool costs nothing, but a tick-rate caller never pays a futex
// round-trip). The simulator issues several fork-joins per simulated
// cycle — tens of thousands per run — which is exactly the regime where
// cv-only handshakes (~10-100us each) swallow the entire parallel gain.
//
// run(fn) executes fn(w) for every worker index w in [0, workers); index 0
// runs on the calling thread (no handoff latency for its share), the rest
// on the pool's persistent threads. run() returns after every call has
// finished — it is a full barrier, and the caller may freely read anything
// the workers wrote. Exceptions thrown by fn propagate (first one wins).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcc::util {

class ThreadPool {
 public:
  /// A pool of `workers` total lanes (workers - 1 hot threads; lane 0 is
  /// the caller). workers < 1 is clamped to 1, which makes run() inline.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return workers_; }

  /// Barrier fork-join: fn(w) for every w in [0, workers()).
  void run(const std::function<void(unsigned)>& fn);

  /// Lifetime wait-behaviour totals across all lanes: spin iterations
  /// burned waiting (workers awaiting dispatch + the caller joining) and
  /// the number of times a lane exhausted its budget and parked on a cv.
  /// Scheduling-dependent — observability gauges, never gate material.
  uint64_t spin_iters() const {
    return spin_iters_.load(std::memory_order_relaxed);
  }
  uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }

 private:
  void worker_loop(unsigned index);
  void record_error();

  unsigned workers_;
  std::vector<std::thread> threads_;

  // Dispatch state. generation_ publishes fn_ (stored before the bump,
  // loaded after observing it); outstanding_ counts worker lanes still
  // inside fn this generation. All seq_cst — the flag/counter interleaving
  // arguments below want the single total order, and the cost is noise
  // next to the spin loop itself.
  const std::function<void(unsigned)>* fn_ = nullptr;
  std::atomic<uint64_t> generation_{0};
  std::atomic<unsigned> outstanding_{0};
  std::atomic<bool> shutdown_{false};

  // Park/wake fallback for workers that exhausted their spin budget and a
  // caller whose join outlasted its own. sleepers_/caller_parked_ gate the
  // notify calls: the common (hot) path never touches the mutex. A missed
  // notify is impossible — the sleeper re-checks its predicate under mu_
  // after raising the flag, and the waker raises generation_/outstanding_
  // before testing the flag, so one of the two always observes the other.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::atomic<unsigned> sleepers_{0};
  std::atomic<bool> caller_parked_{false};

  // Wait-behaviour totals; bumped once per completed wait, never inside
  // the spin loop itself.
  std::atomic<uint64_t> spin_iters_{0};
  std::atomic<uint64_t> parks_{0};

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace mcc::util
