// Experiment-API unit suite: Configuration parsing (round trips and every
// hard-failure class), smoke.* pins, deprecated env aliases, Registry
// duplicate/unknown handling, the JSON layer, RunReport schema validation
// and Experiment-level combination errors.
#include <gtest/gtest.h>

#include <cstdlib>

#include "api/experiment.h"

namespace mcc::api {
namespace {

// ---------------------------------------------------------------------------
// Configuration: types, errors, round trips

TEST(Config, DefaultsResolve) {
  Configuration cfg;
  EXPECT_EQ(cfg.get_int("dims"), 3);
  EXPECT_EQ(cfg.get_int("k"), 16);
  EXPECT_EQ(cfg.get_uint64("seed"), 1u);
  EXPECT_TRUE(cfg.get_bool("guidance_cache"));
  EXPECT_FALSE(cfg.get_bool("smoke"));
  EXPECT_EQ(cfg.get_string("fault_model"), "static");
  EXPECT_TRUE(cfg.get_int_list("ks").empty());
  EXPECT_EQ(cfg.get_double_list("rates"), std::vector<double>{0.01});
}

TEST(Config, SetAndGetEveryType) {
  Configuration cfg;
  cfg.set("dims", "2");
  cfg.set("seed", "0xE8000");  // hex accepted
  cfg.set("fault_rate", "0.125");
  cfg.set("driver", "route_quality");
  cfg.set("smoke", "true");
  cfg.set("ks", "8, 12, 16");
  cfg.set("rates", "0.01,0.02");
  cfg.set("traffic", "uniform, hotspot");
  EXPECT_EQ(cfg.get_int("dims"), 2);
  EXPECT_EQ(cfg.get_uint64("seed"), 0xE8000u);
  EXPECT_DOUBLE_EQ(cfg.get_double("fault_rate"), 0.125);
  EXPECT_EQ(cfg.get_string("driver"), "route_quality");
  EXPECT_TRUE(cfg.get_bool("smoke"));
  EXPECT_EQ(cfg.get_int_list("ks"), (std::vector<int>{8, 12, 16}));
  EXPECT_EQ(cfg.get_double_list("rates"), (std::vector<double>{0.01, 0.02}));
  EXPECT_EQ(cfg.get_string_list("traffic"),
            (std::vector<std::string>{"uniform", "hotspot"}));
}

TEST(Config, UnknownKeyIsHardError) {
  Configuration cfg;
  EXPECT_THROW(cfg.set("drvier", "x"), ConfigError);
  try {
    cfg.set("drvier", "x");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    // The nearest-key suggestion should find the typo.
    EXPECT_NE(std::string(e.what()).find("driver"), std::string::npos);
  }
}

TEST(Config, TypeErrorsAreHard) {
  Configuration cfg;
  EXPECT_THROW(cfg.set("k", "twelve"), ConfigError);
  EXPECT_THROW(cfg.set("fault_rate", "lots"), ConfigError);
  EXPECT_THROW(cfg.set("smoke", "maybe"), ConfigError);
  EXPECT_THROW(cfg.set("seed", "-1"), ConfigError);
  // Out-of-range literals must not silently saturate (ERANGE is an error).
  EXPECT_THROW(cfg.set("seed", "99999999999999999999999"), ConfigError);
  EXPECT_THROW(cfg.set("fault_rate", "1e999"), ConfigError);
  EXPECT_THROW(cfg.set("ks", "8, twelve"), ConfigError);
  EXPECT_THROW(cfg.set("rates", "0.01, x"), ConfigError);
}

TEST(Config, RangeErrorsAreHard) {
  Configuration cfg;
  EXPECT_THROW(cfg.set("dims", "4"), ConfigError);
  EXPECT_THROW(cfg.set("dims", "1"), ConfigError);
  EXPECT_THROW(cfg.set("fault_rate", "0.99"), ConfigError);
  EXPECT_THROW(cfg.set("k", "1"), ConfigError);
  EXPECT_THROW(cfg.set("hotspot_fraction", "1.5"), ConfigError);
  EXPECT_THROW(cfg.set("ks", "8, 1024"), ConfigError);  // per element
}

TEST(Config, FileSyntaxErrors) {
  Configuration cfg;
  EXPECT_THROW(cfg.load_text("driver route_quality", "t"), ConfigError);
  EXPECT_THROW(cfg.load_text("bogus_key = 1", "t"), ConfigError);
  EXPECT_THROW(cfg.load_file("/nonexistent/path.cfg"), ConfigError);
  // Comments, blank lines and inline comments parse.
  cfg.load_text("# comment\n\ndriver = route_demo  # trailing\nk = 12\n",
                "t");
  EXPECT_EQ(cfg.get_string("driver"), "route_demo");
  EXPECT_EQ(cfg.get_int("k"), 12);
}

TEST(Config, OverridesApplyLeftToRight) {
  Configuration cfg;
  cfg.apply_overrides({"k=8", "k=24", "driver=route_demo"});
  EXPECT_EQ(cfg.get_int("k"), 24);
  EXPECT_THROW(cfg.apply_overrides({"notakeyvalue"}), ConfigError);
}

TEST(Config, SmokePinsApplyOnlyWhenSmokeIsOn) {
  Configuration cfg;
  cfg.set("k", "24");
  cfg.set("smoke.k", "5");
  EXPECT_EQ(cfg.get_int("k"), 24);
  cfg.set("smoke", "1");
  EXPECT_EQ(cfg.get_int("k"), 5);
  cfg.set("smoke", "0");
  EXPECT_EQ(cfg.get_int("k"), 24);
  // smoke.* values are validated against the base key's spec.
  EXPECT_THROW(cfg.set("smoke.k", "not_an_int"), ConfigError);
  EXPECT_THROW(cfg.set("smoke.bogus", "1"), ConfigError);
}

TEST(Config, LaterOverrideBeatsSmokePin) {
  // The documented `mcc_run preset.cfg smoke=1 k=6` flow: the CLI
  // override is written AFTER the preset's smoke.k pin, so it wins.
  Configuration cfg;
  cfg.load_text("k = 24\nsmoke.k = 5\nsmoke = 1\n", "preset");
  EXPECT_EQ(cfg.get_int("k"), 5);
  cfg.apply_overrides({"k=6"});
  EXPECT_EQ(cfg.get_int("k"), 6);
  // Re-pinning after the override flips it back (last writer wins).
  cfg.set("smoke.k", "4");
  EXPECT_EQ(cfg.get_int("k"), 4);
}

TEST(Config, EchoRoundTrips) {
  Configuration cfg;
  cfg.load_text(
      "driver = wormhole_load\nk = 8\nrates = 0.002, 0.01\nseed = 0xE1100\n"
      "traffic = uniform, hotspot\n",
      "t");
  Configuration again;
  for (const auto& [k, v] : cfg.echo()) again.set(k, v);
  EXPECT_EQ(again.get_string("driver"), "wormhole_load");
  EXPECT_EQ(again.get_int("k"), 8);
  EXPECT_EQ(again.get_double_list("rates"),
            (std::vector<double>{0.002, 0.01}));
  EXPECT_EQ(again.get_uint64("seed"), 0xE1100u);
  EXPECT_EQ(again.echo(), cfg.echo());
}

TEST(Config, EnvAliasesAreDeprecatedFallbacks) {
  // Explicit config beats the environment; the env alias fills in
  // otherwise (warning once per process — count only moves forward).
  const int warnings_before = Configuration::env_alias_warning_count();
  ::setenv("MCC_SMOKE", "1", 1);
  ::setenv("MCC_NOCACHE", "1", 1);
  Configuration cfg;
  EXPECT_TRUE(cfg.get_bool("smoke"));
  EXPECT_FALSE(cfg.get_bool("guidance_cache"));  // inverted alias
  cfg.set("smoke", "0");
  cfg.set("guidance_cache", "1");
  EXPECT_FALSE(cfg.get_bool("smoke"));
  EXPECT_TRUE(cfg.get_bool("guidance_cache"));
  ::unsetenv("MCC_SMOKE");
  ::unsetenv("MCC_NOCACHE");
  Configuration clean;
  EXPECT_FALSE(clean.get_bool("smoke"));
  EXPECT_TRUE(clean.get_bool("guidance_cache"));
  // At most one warning per alias per process, ever.
  EXPECT_LE(Configuration::env_alias_warning_count() - warnings_before, 2);
  EXPECT_LE(Configuration::env_alias_warning_count(), 2);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, DuplicateNamesRejected) {
  Registry<int> r("toy axis");
  r.add("one", 1, "first");
  EXPECT_THROW(r.add("one", 2), ConfigError);
  EXPECT_EQ(r.get("one"), 1);
}

TEST(Registry, UnknownLookupListsRegisteredNames) {
  Registry<int> r("toy axis");
  r.add("alpha", 1);
  r.add("beta", 2);
  try {
    (void)r.get("gamma");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("alpha"), std::string::npos);
    EXPECT_NE(msg.find("beta"), std::string::npos);
    EXPECT_NE(msg.find("toy axis"), std::string::npos);
  }
}

TEST(Registry, BuiltinsAreRegisteredOnce) {
  register_builtins();
  register_builtins();  // idempotent
  EXPECT_TRUE(drivers().contains("route_quality"));
  EXPECT_TRUE(drivers().contains("wormhole_load"));
  EXPECT_TRUE(drivers().contains("wormhole_churn"));
  EXPECT_TRUE(drivers().contains("event_cost"));
  EXPECT_TRUE(drivers().contains("protocol_cost"));
  EXPECT_TRUE(policies().contains("oracle"));
  EXPECT_TRUE(policies().contains("model"));
  EXPECT_TRUE(policies().contains("labels_only"));
  EXPECT_TRUE(policies().contains("fault_block"));
  EXPECT_TRUE(policies().contains("dor"));
  EXPECT_TRUE(fault_models().contains("static"));
  EXPECT_TRUE(fault_models().contains("dynamic"));
  EXPECT_TRUE(traffic_patterns().contains("bit_complement"));
  EXPECT_TRUE(fault_patterns().contains("figure5"));
}

// ---------------------------------------------------------------------------
// JSON

TEST(Json, RoundTrip) {
  Json doc = Json::object();
  doc.set("schema", Json::string("x/1"));
  doc.set("count", Json::number(uint64_t{18446744073709551615ULL}));
  doc.set("pi", Json::number(3.25));
  doc.set("neg", Json::number(-1.5));
  doc.set("flag", Json::boolean(true));
  doc.set("none", Json());
  Json arr = Json::array();
  arr.push_back(Json::string("a\"b\\c\nd"));
  arr.push_back(Json::number(0));
  doc.set("items", std::move(arr));

  const std::string text = doc.dump();
  std::string error;
  const Json back = Json::parse(text, error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(back.find("schema")->as_string(), "x/1");
  EXPECT_EQ(back.find("count")->as_uint64(), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(back.find("pi")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(back.find("neg")->as_number(), -1.5);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_TRUE(back.find("none")->is_null());
  EXPECT_EQ(back.find("items")->items()[0].as_string(), "a\"b\\c\nd");
  // Serialization is stable: dump(parse(dump)) == dump.
  EXPECT_EQ(back.dump(), text);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  std::string error;
  const Json j = Json::parse("\"caf\\u00e9 \\u20ac \\ud83d\\ude00\"", error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(j.as_string(),
            "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80");  // é € 😀
  Json::parse("\"\\ud83d\"", error);  // lone high surrogate
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("\"\\ude00\"", error);  // lone low surrogate
  EXPECT_FALSE(error.empty());
}

TEST(Json, SurrogatePairRoundTrips) {
  // Decoded astral-plane text survives dump -> reparse -> dump intact
  // (the dumper passes raw UTF-8 bytes through, so the round trip is
  // byte-identical after the first parse).
  std::string error;
  const Json j = Json::parse("\"pre \\ud83d\\ude00\\ud83c\\udf55 post\"",
                             error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(j.as_string(), "pre \xf0\x9f\x98\x80\xf0\x9f\x8d\x95 post");
  const std::string text = j.dump();
  const Json back = Json::parse(text, error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(back.as_string(), j.as_string());
  EXPECT_EQ(back.dump(), text);
}

TEST(Json, ParseErrors) {
  std::string error;
  Json::parse("{", error);
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("{\"a\":1,}", error);
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("[1, 2] trailing", error);
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("\"unterminated", error);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// RunReport + schema validation

TEST(RunReport, JsonIsSchemaValid) {
  RunReport r("demo", "route_demo", 42);
  r.set_config_echo({{"driver", "route_demo"}, {"k", "16"}});
  r.text("# heading\n");
  util::Table& t = r.table("cells", {"a", "b"});
  t.add_row({"1", "2"});
  r.metric("delivered", 1.0);
  r.note("a note");
  const Json doc = r.to_json();
  EXPECT_TRUE(validate_report_json(doc).empty());

  // Round trip through text and re-validate.
  std::string error;
  const Json back = Json::parse(doc.dump_pretty(), error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_TRUE(validate_report_json(back).empty());
  EXPECT_EQ(back.find("seed")->as_uint64(), 42u);
  EXPECT_EQ(back.find("tables")->items().size(), 1u);
}

TEST(RunReport, ValidatorRejectsBrokenDocuments) {
  RunReport r("demo", "route_demo", 1);
  util::Table& t = r.table("cells", {"a", "b"});
  t.add_row({"1", "2"});
  Json doc = r.to_json();

  Json no_schema = doc;
  no_schema.set("schema", Json::number(3));
  EXPECT_FALSE(validate_report_json(no_schema).empty());

  Json bad_metrics = doc;
  Json metrics = Json::object();
  metrics.set("x", Json::string("not a number"));
  bad_metrics.set("metrics", std::move(metrics));
  EXPECT_FALSE(validate_report_json(bad_metrics).empty());

  Json not_object;
  EXPECT_FALSE(validate_report_json(not_object).empty());
}

TEST(RunReport, FailureStateSurvivesSerialization) {
  RunReport r("x", "wormhole_load", 1);
  r.fail("deadlock");
  const Json doc = r.to_json();
  EXPECT_TRUE(doc.find("failed")->as_bool());
  EXPECT_EQ(doc.find("failure")->as_string(), "deadlock");
  EXPECT_TRUE(validate_report_json(doc).empty());
}

// ---------------------------------------------------------------------------
// Experiment-level validation of axis names and combinations

Configuration base_cfg(const std::string& extra = "") {
  Configuration cfg;
  cfg.load_text("driver = route_demo\nk = 8\nfault_rate = 0.05\n" + extra,
                "test");
  return cfg;
}

TEST(Experiment, UnknownAxisValuesAreHardErrors) {
  EXPECT_THROW(Experiment(base_cfg("driver = no_such_driver\n")),
               ConfigError);
  EXPECT_THROW(Experiment(base_cfg("policy = psychic\n")), ConfigError);
  EXPECT_THROW(Experiment(base_cfg("fault_model = flaky\n")), ConfigError);
  EXPECT_THROW(Experiment(base_cfg("fault_pattern = salt\n")), ConfigError);
  EXPECT_THROW(Experiment(base_cfg("traffic = rushhour\n")), ConfigError);
  EXPECT_THROW(Experiment(base_cfg("route_policy = scenic\n")), ConfigError);
  EXPECT_THROW(Experiment(base_cfg("block_fill = round\n")), ConfigError);
}

TEST(Experiment, UnsupportedCombinationsAreHardErrors) {
  // figure5 is 3-D only.
  {
    Configuration cfg = base_cfg("dims = 2\nfault_pattern = figure5\n");
    Experiment exp(std::move(cfg));
    EXPECT_THROW(exp.run(), ConfigError);
  }
  // dor in a faulty wormhole is rejected (fault-oblivious).
  {
    Configuration cfg;
    cfg.load_text(
        "driver = wormhole_load\ndims = 3\nk = 4\npolicy = dor\n"
        "fault_pattern = exact\nfault_count = 2\nwarmup = 10\n"
        "measure = 20\n",
        "test");
    Experiment exp(std::move(cfg));
    EXPECT_THROW(exp.run(), ConfigError);
  }
  // labels_only cannot route a wormhole under churn (wedge risk).
  {
    Configuration cfg;
    cfg.load_text(
        "driver = wormhole_churn\ndims = 2\nk = 6\nfault_model = dynamic\n"
        "policy = labels_only\nwarmup = 10\nmeasure = 20\n",
        "test");
    Experiment exp(std::move(cfg));
    EXPECT_THROW(exp.run(), ConfigError);
  }
  // wormhole_churn needs the dynamic fault model.
  {
    Configuration cfg;
    cfg.load_text("driver = wormhole_churn\ndims = 2\nk = 6\n", "test");
    Experiment exp(std::move(cfg));
    EXPECT_THROW(exp.run(), ConfigError);
  }
}

TEST(Experiment, DorWormholeRunsFaultFree) {
  Configuration cfg;
  cfg.load_text(
      "driver = wormhole_load\ndims = 3\nk = 4\npolicy = dor\n"
      "fault_pattern = none\nrates = 0.02\nwarmup = 20\nmeasure = 50\n"
      "drain = 2000\nname = dor-smoke\n",
      "test");
  RunReport report = Experiment(std::move(cfg)).run();
  EXPECT_FALSE(report.failed());
  ASSERT_EQ(report.tables().size(), 1u);
  EXPECT_EQ(report.tables()[0].table.rows().size(), 1u);
}

TEST(Experiment, GuidanceCacheKeyMatchesEnvEscapeHatch) {
  // guidance_cache=0 must route exactly like the cached default (the two
  // paths are bit-identical by the runtime suite; here we pin the config
  // plumbing end to end).
  const auto run = [](const char* extra) {
    Configuration cfg;
    cfg.load_text(std::string("driver = wormhole_load\ndims = 3\nk = 5\n"
                              "fault_pattern = exact\nfault_count = 6\n"
                              "policy = model\nrates = 0.02\nwarmup = 30\n"
                              "measure = 100\ndrain = 5000\nseed = 9\n") +
                      extra,
                  "test");
    RunReport r = Experiment(std::move(cfg)).run();
    return r.tables().at(0).table.rows();
  };
  EXPECT_EQ(run(""), run("guidance_cache = 0\n"));
}

}  // namespace
}  // namespace mcc::api
