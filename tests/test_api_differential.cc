// Differential pins for the api_redesign: the mcc_run preset path must
// reproduce the PRE-REDESIGN bench computations bit for bit. Each test
// reconstructs the legacy bench loop inline (the code the old bench main
// ran, at its smoke operating point) and compares the formatted table
// cells against what Experiment produces from the corresponding preset in
// configs/. Timing columns (E12 part A) are excluded by construction —
// every pinned cell here is a deterministic count or a formatted mean of
// deterministic values.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "api/experiment.h"
#include "core/model.h"
#include "mesh/fault_injection.h"
#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/dynamic_routing.h"
#include "sim/wormhole/routing.h"
#include "util/parallel.h"
#include "util/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc {
namespace {

api::RunReport run_preset(const std::string& file) {
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/" + file);
  cfg.set("smoke", "1");
  return api::Experiment(std::move(cfg)).run();
}

// ---------------------------------------------------------------------------
// E8: the legacy bench loop (smoke shape: one trial), verbatim.

TEST(ApiDifferential, E8PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e8_routing_quality.cfg");
  ASSERT_EQ(report.tables().size(), 2u);
  const util::Table& got = report.tables()[0].table;
  const util::Table& got_div = report.tables()[1].table;

  const int kTrials = 1;  // MCC_SMOKE shape of the legacy bench
  constexpr int kPairs = 25;
  const int k = 24;
  const mesh::Mesh2D m(k, k);

  util::Table want({"fault rate", "router", "delivered", "minimal",
                    "multi-choice hops", "mean candidates/hop"});
  for (const double rate : {0.05, 0.10, 0.15}) {
    for (const core::RouterKind kind :
         {core::RouterKind::Oracle, core::RouterKind::Records,
          core::RouterKind::LabelsOnly}) {
      util::RunningStats delivered, minimal, multi, cand;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE8000 + static_cast<uint64_t>(rate * 1000) * 7 +
                      trial);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::MccModel2D model(m, f);
        const auto& oct = model.octant(mesh::Octant2{false, false});
        long n = 0, del = 0, min_ok = 0;
        util::RunningStats mstat, cstat;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = util::sample_pair2d(m, oct.labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          if (!model.feasible(s, d).feasible) continue;
          ++n;
          const auto r = model.route(s, d, kind, core::RoutePolicy::Random,
                                     trial * 1000 + i);
          del += r.delivered;
          if (r.delivered) {
            min_ok += r.hops() == manhattan(s, d);
            if (r.hops() > 0) {
              mstat.add(double(r.stats.multi_choice_hops) / r.hops());
              cstat.add(double(r.stats.candidate_sum) / r.hops());
            }
          }
        }
        if (n == 0) return;
        std::lock_guard<std::mutex> lock(mu);
        delivered.add(double(del) / n);
        minimal.add(del ? double(min_ok) / del : 0.0);
        if (mstat.count()) multi.add(mstat.mean());
        if (cstat.count()) cand.add(cstat.mean());
      });
      want.add_row({util::Table::pct(rate, 0), core::to_string(kind),
                    util::Table::pct(delivered.mean(), 1),
                    util::Table::pct(minimal.mean(), 1),
                    util::Table::pct(multi.mean(), 1),
                    util::Table::fmt(cand.mean(), 2)});
    }
  }
  EXPECT_EQ(got.headers(), want.headers());
  EXPECT_EQ(got.rows(), want.rows());

  // Path diversity table.
  util::Table want_div(
      {"fault rate", "distinct paths (20 tries)", "path length"});
  for (const double rate : {0.0, 0.10}) {
    util::RunningStats distinct, len;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE8700 + static_cast<uint64_t>(rate * 1000) + trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::MccModel2D model(m, f);
      const auto& oct = model.octant(mesh::Octant2{false, false});
      const auto pr = util::sample_pair2d(m, oct.labels, rng, 12);
      if (!pr || !model.feasible(pr->first, pr->second).feasible) return;
      std::set<std::vector<int>> paths;
      int hops = 0;
      for (int i = 0; i < 20; ++i) {
        const auto r = model.route(pr->first, pr->second,
                                   core::RouterKind::Records,
                                   core::RoutePolicy::Random, trial * 77 + i);
        if (!r.delivered) continue;
        hops = r.hops();
        std::vector<int> key;
        for (const auto c : r.path) key.push_back(c.y * k + c.x);
        paths.insert(key);
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!paths.empty()) {
        distinct.add(static_cast<double>(paths.size()));
        len.add(hops);
      }
    });
    want_div.add_row(
        {util::Table::pct(rate, 0),
         util::Table::mean_ci(distinct.mean(), distinct.ci95(), 1),
         util::Table::fmt(len.mean(), 1)});
  }
  EXPECT_EQ(got_div.rows(), want_div.rows());
}

// ---------------------------------------------------------------------------
// E11: the legacy bench loop (smoke shape), verbatim.

TEST(ApiDifferential, E11PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e11_wormhole.cfg");
  ASSERT_EQ(report.tables().size(), 2u);  // fault-free + clustered

  using sim::wh::Config;
  using sim::wh::GuidanceMode;
  using sim::wh::LoadPoint;
  using sim::wh::Pattern;
  using sim::wh::SimResult;

  const int k = 5;  // smoke shape
  const mesh::Mesh3D m(k, k, k);
  const std::vector<double> rates{0.01};
  const Pattern patterns[] = {Pattern::Uniform, Pattern::Transpose,
                              Pattern::BitComplement, Pattern::Hotspot};

  Config cfg;
  cfg.vcs_per_class = 2;
  cfg.buffer_depth = 4;
  cfg.packet_size = 4;
  LoadPoint base;
  base.warmup = 100;
  base.measure = 300;
  base.drain = 10000;

  int table_index = 0;
  for (const bool faulty : {false, true}) {
    mesh::FaultSet3D f(m);
    if (faulty) {
      util::Rng frng(0xE11);
      f = mesh::inject_clustered(m, 8, 3, frng);
    }
    sim::wh::MccRouting3D routing(m, f, GuidanceMode::Model);

    util::Table want({"pattern", "offered (f/n/c)", "accepted (f/n/c)",
                      "avg lat", "p99 lat", "max lat", "packets", "filtered",
                      "state"});
    for (const Pattern p : patterns) {
      for (const double rate : rates) {
        LoadPoint load = base;
        load.rate = rate;
        const SimResult r = sim::wh::run_load_point3d(
            m, f, routing, p, cfg, core::RoutePolicy::Random, load,
            0xE1100 + static_cast<uint64_t>(rate * 10000));
        want.add_row({to_string(p), util::Table::fmt(r.offered_flits, 4),
                      util::Table::fmt(r.accepted_flits, 4),
                      util::Table::fmt(r.avg_latency, 1),
                      std::to_string(r.p99_latency),
                      std::to_string(r.max_latency),
                      std::to_string(r.delivered_packets),
                      std::to_string(r.filtered),
                      std::string(r.violations   ? "VIOLATION"
                                  : r.deadlocked ? "DEADLOCK"
                                  : !r.drained   ? "backlogged"
                                  : r.saturated  ? "saturated"
                                                 : "stable")});
        ASSERT_EQ(r.violations, 0u);
        ASSERT_FALSE(r.deadlocked);
      }
    }
    const util::Table& got = report.tables()[table_index].table;
    EXPECT_EQ(got.headers(), want.headers());
    EXPECT_EQ(got.rows(), want.rows()) << "fault env " << table_index;
    ++table_index;
  }
}

// ---------------------------------------------------------------------------
// E12 part B: the legacy churn loop (smoke shape) — every column of the B
// table is a deterministic count given the seeds.

TEST(ApiDifferential, E12ChurnPresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e12_churn.cfg");
  ASSERT_EQ(report.tables().size(), 1u);
  const util::Table& got = report.tables()[0].table;

  sim::wh::Config cfg;
  sim::wh::LoadPoint load;
  load.rate = 0.01;
  load.warmup = 100;
  load.measure = 300;
  load.drain = 10000;

  util::Table want({"mesh", "churn/kcyc", "events (f+r)", "delivered",
                    "dropped", "accepted (f/n/c)", "avg lat", "cache hit%",
                    "state"});
  for (const int k : {5}) {
    for (const double churn : {2.0, 10.0}) {
      const mesh::Mesh3D mesh(k, k, k);
      util::Rng rng(0xE1203 + static_cast<uint64_t>(k * 31 + churn));
      const mesh::FaultSet3D initial = mesh::inject_uniform(mesh, 0.02, rng);
      runtime::DynamicModel3D model(mesh, initial);
      sim::wh::DynamicMccRouting3D routing(model);

      util::ChurnParams p;
      p.rate = churn / 1000.0;
      p.horizon =
          static_cast<uint64_t>(load.warmup + load.measure + load.drain / 4);
      p.repair_min = 100;
      p.repair_max = 1000;
      auto timeline = runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

      const auto r = sim::wh::run_churn_load_point3d(
          model, routing, sim::wh::Pattern::Uniform, cfg,
          core::RoutePolicy::Random, load, std::move(timeline),
          0xE12B0 + static_cast<uint64_t>(k));
      want.add_row({std::to_string(k) + "^3", util::Table::fmt(churn, 1),
                    std::to_string(r.fault_events) + "+" +
                        std::to_string(r.repair_events),
                    std::to_string(r.sim.delivered_packets),
                    std::to_string(r.dropped_packets),
                    util::Table::fmt(r.sim.accepted_flits, 4),
                    util::Table::fmt(r.sim.avg_latency, 1),
                    util::Table::pct(r.cache.hit_rate()),
                    std::string(r.sim.violations   ? "VIOLATION"
                                : r.sim.deadlocked ? "DEADLOCK"
                                : !r.sim.drained   ? "backlogged"
                                                   : "ok")});
    }
  }
  EXPECT_EQ(got.headers(), want.headers());
  EXPECT_EQ(got.rows(), want.rows());
}

// ---------------------------------------------------------------------------
// The acceptance combination — dynamic fault model, fault-block baseline,
// hotspot traffic, 2-D — has no bespoke main() anywhere; it must run end
// to end, be deterministic, and emit schema-valid JSON.

api::RunReport run_acceptance_combo() {
  api::Configuration cfg;
  cfg.load_text(
      "driver = wormhole_churn\nname = combo\ndims = 2\nk = 8\n"
      "fault_model = dynamic\npolicy = fault_block\ntraffic = hotspot\n"
      "fault_rate = 0.05\nrates = 0.02\nchurn = 5\nwarmup = 100\n"
      "measure = 300\ndrain = 10000\nrepair_min = 100\nrepair_max = 600\n"
      "seed = 77\n",
      "combo");
  return api::Experiment(std::move(cfg)).run();
}

TEST(ApiDifferential, DynamicFaultBlockHotspot2DRunsEndToEnd) {
  const api::RunReport report = run_acceptance_combo();
  EXPECT_FALSE(report.failed()) << report.failure();
  ASSERT_EQ(report.tables().size(), 1u);
  const auto& rows = report.tables()[0].table.rows();
  ASSERT_EQ(rows.size(), 1u);
  // Packets were actually delivered through the block-field router.
  EXPECT_GT(std::stoull(rows[0][3]), 0u);

  const api::Json doc = report.to_json();
  EXPECT_TRUE(api::validate_report_json(doc).empty());

  // Deterministic: a second run serializes byte-identically.
  const api::RunReport again = run_acceptance_combo();
  EXPECT_EQ(doc.dump(), again.to_json().dump());
}

// The 2-D churn driver must also serve the MCC policies (the ROADMAP's
// "extend the wormhole churn driver to 2-D networks" item).
TEST(ApiDifferential, WormholeChurn2DModelPolicyRuns) {
  api::Configuration cfg;
  cfg.load_text(
      "driver = wormhole_churn\nname = churn2d\ndims = 2\nk = 8\n"
      "fault_model = dynamic\npolicy = model\ntraffic = uniform\n"
      "fault_rate = 0.04\nrates = 0.02\nchurn = 6\nwarmup = 100\n"
      "measure = 400\ndrain = 10000\nseed = 5\n",
      "churn2d");
  const api::RunReport report = api::Experiment(std::move(cfg)).run();
  EXPECT_FALSE(report.failed()) << report.failure();
  const auto& rows = report.tables().at(0).table.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(std::stoull(rows[0][3]), 0u);  // delivered
  EXPECT_EQ(rows[0][8], "ok");
  // The dynamic 2-D path serves per-hop guidance from the epoch cache.
  EXPECT_NE(rows[0][7], "0.0%");
}

}  // namespace
}  // namespace mcc
